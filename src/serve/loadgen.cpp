#include "serve/loadgen.hpp"

#include <charconv>
#include <chrono>
#include <sstream>

#include "data/generator.hpp"
#include "data/synthesizer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {

namespace {

/// Short holds keep per-session streams a few hundred samples long — the
/// loadgen stresses session count, not stream length.
data::motion_tuning loadgen_tuning() {
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return tuning;
}

session_stream synthesize_stream(const data::subject_profile& subject, int task_id,
                                 std::uint64_t seed,
                                 const data::stream_perturbation& perturb) {
    util::rng gen(seed);
    const data::trial t = data::synthesize_task(task_id, subject, loadgen_tuning(),
                                                data::synthesis_config{}, gen);
    FS_CHECK(!t.samples.empty(), "loadgen synthesized an empty stream");
    session_stream stream{t.samples, 0, t.fall};
    if (perturb.any()) {
        // A perturbation substream keeps unperturbed profiles byte-
        // identical to the pre-scenario loadgen: `gen` consumption is
        // untouched and the extra draws come from a derived seed.
        util::rng perturb_gen(util::derive_seed(seed, "scenario/perturb"));
        data::apply_stream_perturbation(stream.samples, perturb, t.sample_rate_hz,
                                        perturb_gen);
    }
    return stream;
}

/// Shortest round-trip decimal form, matching the obs manifest writer.
std::string format_double(double value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, ptr);
}

}  // namespace

std::vector<session_stream> synthesize_fleet_streams(std::size_t sessions,
                                                     std::uint64_t seed) {
    return synthesize_fleet_streams(sessions, seed, data::make_profile("baseline"));
}

std::vector<session_stream> synthesize_fleet_streams(std::size_t sessions,
                                                     std::uint64_t seed,
                                                     const data::scenario_profile& profile) {
    FS_ARG_CHECK(sessions > 0, "a fleet needs at least one stream");
    FS_ARG_CHECK(!profile.task_mix.empty(), "a scenario profile needs a task mix");
    const std::size_t n_tasks = profile.task_mix.size();
    const std::vector<data::subject_profile> subjects = data::sample_subjects(
        static_cast<int>(sessions), 0, util::derive_seed(seed, "loadgen/subjects"));
    const std::uint64_t stream_seed = util::derive_seed(seed, "loadgen/stream");

    // Stream i is a pure function of (seed, profile, i), written to its
    // own slot, so parallel synthesis is deterministic for any thread
    // count.
    std::vector<session_stream> streams(sessions);
    util::parallel_for(0, sessions, 1, [&](std::size_t i) {
        streams[i] = synthesize_stream(subjects[i], profile.task_mix[i % n_tasks],
                                       util::derive_seed(stream_seed, {i}),
                                       profile.perturb);
    });
    return streams;
}

double loadgen_report::ticks_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(ticks) / wall_seconds : 0.0;
}

double loadgen_report::session_ticks_per_second() const {
    return ticks_per_second() * static_cast<double>(sessions);
}

double loadgen_report::windows_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(windows_scored) / wall_seconds : 0.0;
}

std::string loadgen_report::deterministic_summary() const {
    std::ostringstream os;
    os << "sessions: " << sessions << '\n'
       << "shards: " << shards << '\n'
       << "score_mode: " << score_mode_name(mode) << '\n'
       << "ticks: " << ticks << '\n'
       << "scorer: " << scorer << '\n'
       << "samples_offered: " << samples_offered << '\n'
       << "samples_accepted: " << samples_accepted << '\n'
       << "samples_dropped: " << samples_dropped << '\n'
       << "samples_rejected: " << samples_rejected << '\n'
       << "samples_ingested: " << samples_ingested << '\n'
       << "windows_scored: " << windows_scored << '\n'
       << "triggers: " << triggers << '\n'
       << "sessions_churned: " << sessions_churned << '\n'
       << "swap_generation: " << swap_generation << '\n'
       << "scenario: " << scenario << '\n';
    if (eval) os << eval->summary();
    return os.str();
}

loadgen_report run_loadgen(const loadgen_config& config) {
    FS_ARG_CHECK(config.sessions > 0, "loadgen needs at least one session");
    FS_ARG_CHECK(config.ticks > 0, "loadgen needs at least one tick");
    FS_ARG_CHECK(config.feed_rate > 0, "loadgen feed rate must be positive");
    FS_ARG_CHECK(config.shards > 0, "loadgen needs at least one shard");
    FS_ARG_CHECK(config.snapshot_every_ticks == 0 || config.snapshot_sink,
                 "loadgen snapshot interval needs a snapshot sink");
    FS_ARG_CHECK(!(config.stream_eval && config.restore),
                 "stream eval cannot resume from a restore: trigger history "
                 "before the snapshot is not replayed");
    OBS_SCOPE("serve/loadgen");

    const data::scenario_profile profile = data::make_profile(config.scenario);
    const std::size_t n_tasks = profile.task_mix.size();
    const std::uint64_t stream_seed = util::derive_seed(config.seed, "loadgen/stream");
    std::vector<session_stream> streams =
        synthesize_fleet_streams(config.sessions, config.seed, profile);
    // Churn stream n is a pure function of (seed, n), so a restored run
    // re-derives the same wearer the uninterrupted run admitted.
    const auto append_churn_stream = [&](std::size_t n) {
        const data::subject_profile churn_subject = data::sample_subjects(
            1, static_cast<int>(n), util::derive_seed(config.seed, {0x6368u, n}))[0];
        streams.push_back(synthesize_stream(churn_subject,
                                            profile.task_mix[n % n_tasks],
                                            util::derive_seed(stream_seed, {n}),
                                            profile.perturb));
    };

    // --- streaming-evaluation tap (config.stream_eval only) -------------
    // Annotations are indexed by session id (ids are admitted 0, 1, 2, ...
    // so id == index); ingested counts are captured at evict time for
    // churned sessions and at the end for live ones.
    std::vector<eval::stream_trigger> fired;
    std::vector<eval::session_annotation> annotations;
    const auto note_session = [&](session_id id) {
        if (!config.stream_eval) return;
        const session_stream& s = streams[id];
        eval::session_annotation a;
        a.session = id;
        a.stream_samples = s.samples.size();
        if (s.fall) a.falls.push_back({s.fall->onset_index, s.fall->impact_index});
        FS_CHECK(annotations.size() == id, "session ids must be admitted in order");
        annotations.push_back(std::move(a));
    };

    // Scorers must match the engine's window; resolve it once here so
    // callers only configure the detector.
    scorer_spec spec = config.scorer;
    spec.window_samples = config.engine.detector.window_samples;

    fleet_config fc;
    fc.engine = config.engine;
    fc.shards = config.shards;
    fc.mode = config.mode;
    fleet_router fleet(fc, make_scorer(spec));

    loadgen_report report;
    report.sessions = config.sessions;
    report.shards = config.shards;
    report.mode = config.mode;
    report.ticks = config.ticks;
    report.scorer = fleet.scorer().describe();
    report.scenario = config.scenario;

    // streams grows on churn; session id -> stream index is the identity
    // because churned sessions get monotonically increasing ids.
    std::vector<session_id> live_ids;
    std::size_t start_tick = 0;
    if (config.restore) {
        config.restore(fleet);
        const engine_stats restored = fleet.totals();
        start_tick = restored.ticks;
        FS_ARG_CHECK(start_tick <= config.ticks,
                     "restored checkpoint is already past the requested tick count");
        FS_ARG_CHECK(fleet.live_session_count() == config.sessions,
                     "restored live-session count does not match the configured sessions");
        const std::size_t total_streams = restored.sessions_created;
        // Replay the churn history: every stream ever admitted, in order.
        for (std::size_t n = config.sessions; n < total_streams; ++n) append_churn_stream(n);
        report.sessions_churned = total_streams - config.sessions;
        // Each live stream resumes at exactly the sample after the last
        // one it offered: feeds are counted per session as accepted +
        // rejected (drop_oldest admits every offer; reject_newest refuses
        // some — both counters advance the cursor).
        for (std::size_t id = 0; id < total_streams; ++id) {
            if (!fleet.is_live(static_cast<session_id>(id))) continue;
            live_ids.push_back(static_cast<session_id>(id));
            const session_stats& st = fleet.stats(static_cast<session_id>(id));
            streams[id].cursor = static_cast<std::size_t>(
                (st.accepted + st.rejected) % streams[id].samples.size());
        }
        report.samples_offered =
            static_cast<std::uint64_t>(start_tick) * config.sessions * config.feed_rate;
        // Reinstall the scorer generation the snapshot was taken under
        // (without bumping the generation — the restored counter already
        // carries the swaps that happened before the snapshot).
        if (fleet.swap_generation() > 0) {
            scorer_spec current = spec;
            for (std::uint64_t g = 0; g < fleet.swap_generation(); ++g) {
                current.seed = util::derive_seed(current.seed, "serve/swap");
            }
            fleet.install_scorer(make_scorer(current));
        }
    } else {
        for (std::size_t i = 0; i < config.sessions; ++i) note_session(fleet.create_session());
        live_ids.resize(config.sessions);
        for (std::size_t i = 0; i < config.sessions; ++i) {
            live_ids[i] = static_cast<session_id>(i);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = start_tick; t < config.ticks; ++t) {
        if (config.swap_after_ticks > 0 && t == config.swap_after_ticks) {
            // Model rollout under live traffic: rebuild the scorer from
            // the same spec with a swap-derived seed and install it
            // between ticks — no stream stops, no window is rescored.
            scorer_spec next = spec;
            next.seed = util::derive_seed(spec.seed, "serve/swap");
            fleet.swap_scorer(make_scorer(next));
        }
        if (config.churn_every_ticks > 0 && t > 0 && t % config.churn_every_ticks == 0) {
            // Rotate the oldest session out, a fresh wearer in.
            const session_id victim = live_ids.front();
            live_ids.erase(live_ids.begin());
            if (config.stream_eval) {
                // Per-session counters vanish with the eviction; the
                // evaluator still needs this wearer's worn time.
                annotations[victim].samples_ingested = fleet.stats(victim).ingested;
            }
            fleet.evict_session(victim);
            append_churn_stream(streams.size());
            const session_id admitted = fleet.create_session();
            note_session(admitted);
            live_ids.push_back(admitted);
            ++report.sessions_churned;
        }
        for (const session_id id : live_ids) {
            for (std::size_t k = 0; k < config.feed_rate; ++k) {
                ++report.samples_offered;
                fleet.feed(id, streams[id].next());
            }
        }
        if (config.stream_eval) {
            // The tap: router-global trigger ids in deterministic merge
            // order (ascending shard, then session, then time).
            const tick_result scored = fleet.tick();
            for (const trigger_event& e : scored.triggers) {
                fired.push_back({e.session, e.sample_index});
            }
        } else {
            fleet.tick();
        }
        if (config.snapshot_every_ticks > 0 && (t + 1) % config.snapshot_every_ticks == 0) {
            // Tick boundary: all staged state is consumed, only queues and
            // detector state persist — exactly what the snapshot carries.
            config.snapshot_sink(fleet);
        }
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    report.wall_seconds = elapsed.count();

    const engine_stats totals = fleet.totals();
    report.samples_accepted = totals.accepted;
    report.samples_dropped = totals.dropped;
    report.samples_rejected = totals.rejected;
    report.samples_ingested = totals.ingested;
    report.windows_scored = totals.windows_scored;
    report.triggers = totals.triggers;
    report.swap_generation = fleet.swap_generation();

    if (config.stream_eval) {
        for (const session_id id : live_ids) {
            annotations[id].samples_ingested = fleet.stats(id).ingested;
        }
        eval::evaluator_spec spec_eval;
        spec_eval.kind = eval::evaluator_kind::cost_sensitive;
        spec_eval.stream = config.eval_config;
        const std::unique_ptr<eval::evaluator> ev = eval::make_evaluator(spec_eval);
        ev->add_stream(fired, annotations);
        eval::evaluation_report evaluated = ev->finish();
        report.eval = std::move(evaluated.stream);

        const eval::stream_eval_report& e = *report.eval;
        obs::add_counter("eval/sessions", e.sessions);
        obs::add_counter("eval/samples", e.samples);
        obs::add_counter("eval/triggers", e.triggers);
        obs::add_counter("eval/fall_events", e.fall_events);
        obs::add_counter("eval/falls_detected", e.falls_detected);
        obs::add_counter("eval/falls_detected_late", e.falls_detected_late);
        obs::add_counter("eval/falls_missed", e.falls_missed);
        obs::add_counter("eval/false_alarms", e.false_alarms);
        obs::set_gauge("eval/stream_hours", e.stream_hours);
        obs::set_gauge("eval/false_alarms_per_hour", e.false_alarms_per_hour);
        obs::set_gauge("eval/mean_lead_ms", e.mean_lead_ms);
        obs::set_gauge("eval/min_lead_ms", e.min_lead_ms);
        obs::set_gauge("eval/max_lead_ms", e.max_lead_ms);
        for (const eval::cost_point& p : e.cost_curve) {
            obs::set_gauge("eval/cost/ratio_" + format_double(p.cost_ratio), p.cost);
        }
    }
    return report;
}

}  // namespace fallsense::serve
