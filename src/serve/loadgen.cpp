#include "serve/loadgen.hpp"

#include <chrono>
#include <sstream>

#include "data/generator.hpp"
#include "data/synthesizer.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {

namespace {

/// Task mix cycled over sessions: everyday ADLs, near-fall ADLs, and falls
/// from Table II, so the fleet sees both quiet streams and trigger-heavy
/// ones.  Ids must exist in data::build_task_phases.
constexpr int k_task_mix[] = {6, 20, 12, 30, 1, 25, 18, 38};

/// Short holds keep per-session streams a few hundred samples long — the
/// loadgen stresses session count, not stream length.
data::motion_tuning loadgen_tuning() {
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return tuning;
}

session_stream synthesize_stream(const data::subject_profile& subject, int task_id,
                                 std::uint64_t seed) {
    util::rng gen(seed);
    const data::trial t = data::synthesize_task(task_id, subject, loadgen_tuning(),
                                                data::synthesis_config{}, gen);
    FS_CHECK(!t.samples.empty(), "loadgen synthesized an empty stream");
    return session_stream{t.samples, 0};
}

}  // namespace

std::vector<session_stream> synthesize_fleet_streams(std::size_t sessions,
                                                     std::uint64_t seed) {
    FS_ARG_CHECK(sessions > 0, "a fleet needs at least one stream");
    const std::size_t n_tasks = std::size(k_task_mix);
    const std::vector<data::subject_profile> subjects = data::sample_subjects(
        static_cast<int>(sessions), 0, util::derive_seed(seed, "loadgen/subjects"));
    const std::uint64_t stream_seed = util::derive_seed(seed, "loadgen/stream");

    // Stream i is a pure function of (seed, i), written to its own slot,
    // so parallel synthesis is deterministic for any thread count.
    std::vector<session_stream> streams(sessions);
    util::parallel_for(0, sessions, 1, [&](std::size_t i) {
        streams[i] = synthesize_stream(subjects[i], k_task_mix[i % n_tasks],
                                       util::derive_seed(stream_seed, {i}));
    });
    return streams;
}

double loadgen_report::ticks_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(ticks) / wall_seconds : 0.0;
}

double loadgen_report::session_ticks_per_second() const {
    return ticks_per_second() * static_cast<double>(sessions);
}

double loadgen_report::windows_per_second() const {
    return wall_seconds > 0.0 ? static_cast<double>(windows_scored) / wall_seconds : 0.0;
}

std::string loadgen_report::deterministic_summary() const {
    std::ostringstream os;
    os << "sessions: " << sessions << '\n'
       << "shards: " << shards << '\n'
       << "score_mode: " << score_mode_name(mode) << '\n'
       << "ticks: " << ticks << '\n'
       << "scorer: " << scorer << '\n'
       << "samples_offered: " << samples_offered << '\n'
       << "samples_accepted: " << samples_accepted << '\n'
       << "samples_dropped: " << samples_dropped << '\n'
       << "samples_rejected: " << samples_rejected << '\n'
       << "samples_ingested: " << samples_ingested << '\n'
       << "windows_scored: " << windows_scored << '\n'
       << "triggers: " << triggers << '\n'
       << "sessions_churned: " << sessions_churned << '\n'
       << "swap_generation: " << swap_generation << '\n';
    return os.str();
}

loadgen_report run_loadgen(const loadgen_config& config) {
    FS_ARG_CHECK(config.sessions > 0, "loadgen needs at least one session");
    FS_ARG_CHECK(config.ticks > 0, "loadgen needs at least one tick");
    FS_ARG_CHECK(config.feed_rate > 0, "loadgen feed rate must be positive");
    FS_ARG_CHECK(config.shards > 0, "loadgen needs at least one shard");
    FS_ARG_CHECK(config.snapshot_every_ticks == 0 || config.snapshot_sink,
                 "loadgen snapshot interval needs a snapshot sink");
    OBS_SCOPE("serve/loadgen");

    const std::size_t n_tasks = std::size(k_task_mix);
    const std::uint64_t stream_seed = util::derive_seed(config.seed, "loadgen/stream");
    std::vector<session_stream> streams =
        synthesize_fleet_streams(config.sessions, config.seed);
    // Churn stream n is a pure function of (seed, n), so a restored run
    // re-derives the same wearer the uninterrupted run admitted.
    const auto append_churn_stream = [&](std::size_t n) {
        const data::subject_profile churn_subject = data::sample_subjects(
            1, static_cast<int>(n), util::derive_seed(config.seed, {0x6368u, n}))[0];
        streams.push_back(synthesize_stream(churn_subject, k_task_mix[n % n_tasks],
                                            util::derive_seed(stream_seed, {n})));
    };

    // Scorers must match the engine's window; resolve it once here so
    // callers only configure the detector.
    scorer_spec spec = config.scorer;
    spec.window_samples = config.engine.detector.window_samples;

    fleet_config fc;
    fc.engine = config.engine;
    fc.shards = config.shards;
    fc.mode = config.mode;
    fleet_router fleet(fc, make_scorer(spec));

    loadgen_report report;
    report.sessions = config.sessions;
    report.shards = config.shards;
    report.mode = config.mode;
    report.ticks = config.ticks;
    report.scorer = fleet.scorer().describe();

    // streams grows on churn; session id -> stream index is the identity
    // because churned sessions get monotonically increasing ids.
    std::vector<session_id> live_ids;
    std::size_t start_tick = 0;
    if (config.restore) {
        config.restore(fleet);
        const engine_stats restored = fleet.totals();
        start_tick = restored.ticks;
        FS_ARG_CHECK(start_tick <= config.ticks,
                     "restored checkpoint is already past the requested tick count");
        FS_ARG_CHECK(fleet.live_session_count() == config.sessions,
                     "restored live-session count does not match the configured sessions");
        const std::size_t total_streams = restored.sessions_created;
        // Replay the churn history: every stream ever admitted, in order.
        for (std::size_t n = config.sessions; n < total_streams; ++n) append_churn_stream(n);
        report.sessions_churned = total_streams - config.sessions;
        // Each live stream resumes at exactly the sample after the last
        // one it offered: feeds are counted per session as accepted +
        // rejected (drop_oldest admits every offer; reject_newest refuses
        // some — both counters advance the cursor).
        for (std::size_t id = 0; id < total_streams; ++id) {
            if (!fleet.is_live(static_cast<session_id>(id))) continue;
            live_ids.push_back(static_cast<session_id>(id));
            const session_stats& st = fleet.stats(static_cast<session_id>(id));
            streams[id].cursor = static_cast<std::size_t>(
                (st.accepted + st.rejected) % streams[id].samples.size());
        }
        report.samples_offered =
            static_cast<std::uint64_t>(start_tick) * config.sessions * config.feed_rate;
        // Reinstall the scorer generation the snapshot was taken under
        // (without bumping the generation — the restored counter already
        // carries the swaps that happened before the snapshot).
        if (fleet.swap_generation() > 0) {
            scorer_spec current = spec;
            for (std::uint64_t g = 0; g < fleet.swap_generation(); ++g) {
                current.seed = util::derive_seed(current.seed, "serve/swap");
            }
            fleet.install_scorer(make_scorer(current));
        }
    } else {
        for (std::size_t i = 0; i < config.sessions; ++i) fleet.create_session();
        live_ids.resize(config.sessions);
        for (std::size_t i = 0; i < config.sessions; ++i) {
            live_ids[i] = static_cast<session_id>(i);
        }
    }

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = start_tick; t < config.ticks; ++t) {
        if (config.swap_after_ticks > 0 && t == config.swap_after_ticks) {
            // Model rollout under live traffic: rebuild the scorer from
            // the same spec with a swap-derived seed and install it
            // between ticks — no stream stops, no window is rescored.
            scorer_spec next = spec;
            next.seed = util::derive_seed(spec.seed, "serve/swap");
            fleet.swap_scorer(make_scorer(next));
        }
        if (config.churn_every_ticks > 0 && t > 0 && t % config.churn_every_ticks == 0) {
            // Rotate the oldest session out, a fresh wearer in.
            const session_id victim = live_ids.front();
            live_ids.erase(live_ids.begin());
            fleet.evict_session(victim);
            append_churn_stream(streams.size());
            live_ids.push_back(fleet.create_session());
            ++report.sessions_churned;
        }
        for (const session_id id : live_ids) {
            for (std::size_t k = 0; k < config.feed_rate; ++k) {
                ++report.samples_offered;
                fleet.feed(id, streams[id].next());
            }
        }
        fleet.tick();
        if (config.snapshot_every_ticks > 0 && (t + 1) % config.snapshot_every_ticks == 0) {
            // Tick boundary: all staged state is consumed, only queues and
            // detector state persist — exactly what the snapshot carries.
            config.snapshot_sink(fleet);
        }
    }
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;
    report.wall_seconds = elapsed.count();

    const engine_stats totals = fleet.totals();
    report.samples_accepted = totals.accepted;
    report.samples_dropped = totals.dropped;
    report.samples_rejected = totals.rejected;
    report.samples_ingested = totals.ingested;
    report.windows_scored = totals.windows_scored;
    report.triggers = totals.triggers;
    report.swap_generation = fleet.swap_generation();
    return report;
}

}  // namespace fallsense::serve
