#include "serve/batch_scorer.hpp"

#include "core/preprocess.hpp"
#include "nn/trainer.hpp"
#include "util/check.hpp"

namespace fallsense::serve {

float_cnn_scorer::float_cnn_scorer(std::unique_ptr<nn::model> model,
                                   std::size_t window_samples)
    : model_(std::move(model)),
      window_samples_(window_samples),
      row_shape_{window_samples, core::k_feature_channels} {
    FS_ARG_CHECK(model_ != nullptr, "float_cnn_scorer needs a model");
    FS_ARG_CHECK(window_samples_ > 0, "float_cnn_scorer window must be positive");
}

void float_cnn_scorer::score(std::span<const float> windows, std::size_t count,
                             std::size_t window_elems, std::span<float> out) {
    FS_ARG_CHECK(window_elems == window_samples_ * core::k_feature_channels,
                 "float_cnn_scorer window shape mismatch");
    nn::predict_proba_rows(*model_, windows, count, row_shape_, out, scratch_);
}

std::unique_ptr<batch_scorer> float_cnn_scorer::clone() const {
    return std::make_unique<float_cnn_scorer>(model_->clone(), window_samples_);
}

int8_cnn_scorer::int8_cnn_scorer(std::shared_ptr<const quant::quantized_cnn> model)
    : model_(std::move(model)) {
    FS_ARG_CHECK(model_ != nullptr, "int8_cnn_scorer needs a model");
}

void int8_cnn_scorer::score(std::span<const float> windows, std::size_t count,
                            std::size_t window_elems, std::span<float> out) {
    FS_ARG_CHECK(window_elems == model_->time_steps() * model_->input_channels(),
                 "int8_cnn_scorer window shape mismatch");
    model_->predict_proba_batch(windows, count, out, scratch_);
}

std::unique_ptr<batch_scorer> int8_cnn_scorer::clone() const {
    return std::make_unique<int8_cnn_scorer>(model_);
}

callback_batch_scorer::callback_batch_scorer(core::segment_scorer scorer, std::string label)
    : scorer_(std::move(scorer)), label_(std::move(label)) {
    FS_ARG_CHECK(scorer_ != nullptr, "callback_batch_scorer needs a scorer");
}

void callback_batch_scorer::score(std::span<const float> windows, std::size_t count,
                                  std::size_t window_elems, std::span<float> out) {
    FS_ARG_CHECK(windows.size() == count * window_elems,
                 "callback_batch_scorer buffer size mismatch");
    FS_ARG_CHECK(out.size() == count, "callback_batch_scorer output size mismatch");
    for (std::size_t i = 0; i < count; ++i) {
        out[i] = scorer_(windows.subspan(i * window_elems, window_elems));
    }
}

std::unique_ptr<batch_scorer> callback_batch_scorer::clone() const {
    return std::make_unique<callback_batch_scorer>(scorer_, label_);
}

}  // namespace fallsense::serve
