// Umbrella header: the stable v1 surface of the serving layer.
//
// Everything a tool, bench, or test needs to serve a fleet comes through
// this one include:
//
//   - batch_scorer.hpp    — the batched scoring interface + implementations
//   - scorer_factory.hpp  — scorer_spec / make_scorer, the ONE way callers
//                           construct scorers
//   - engine.hpp          — session_engine, engine_config (+ validate()),
//                           drop_policy and its optional-returning parser
//   - fleet.hpp           — fleet_router: hash-sharded engines, one batched
//                           scorer call per tick, atomic model hot-swap
//   - loadgen.hpp         — the synthetic fleet-traffic generator
//
// Includers outside src/serve should prefer this header; the per-module
// headers remain includable but their layout is an implementation detail.
#pragma once

#include "serve/batch_scorer.hpp"   // IWYU pragma: export
#include "serve/engine.hpp"         // IWYU pragma: export
#include "serve/fleet.hpp"          // IWYU pragma: export
#include "serve/loadgen.hpp"        // IWYU pragma: export
#include "serve/scorer_factory.hpp" // IWYU pragma: export
