#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "serve/scorer_factory.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {

const char* score_mode_name(score_mode mode) {
    switch (mode) {
        case score_mode::fused: return "fused";
        case score_mode::per_shard: return "per_shard";
    }
    return "?";
}

std::optional<score_mode> parse_score_mode(const std::string& text) {
    if (text == "fused") return score_mode::fused;
    if (text == "per_shard" || text == "per-shard") return score_mode::per_shard;
    return std::nullopt;
}

namespace {

using clock = std::chrono::steady_clock;

double us_between(clock::time_point start, clock::time_point end) {
    return std::chrono::duration<double, std::micro>(end - start).count();
}

/// splitmix64 finalizer: a full-avalanche mix so consecutive session ids
/// spread evenly over the shards instead of striping.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

struct fleet_router::shard_slot {
    shard_slot(const engine_config& config, batch_scorer& scorer)
        : engine(config, scorer) {}

    session_engine engine;
    std::vector<session_id> local_to_global;  ///< index == shard-local id
    // Per-tick staging.
    std::size_t pending = 0;  ///< windows staged by the last tick_ingest
    std::size_t offset = 0;   ///< this shard's row offset in the fleet batch
    tick_result result;
};

fleet_router::fleet_router(const fleet_config& config, std::unique_ptr<batch_scorer> scorer)
    : config_(config), scorer_(std::move(scorer)) {
    FS_ARG_CHECK(config_.shards > 0, "fleet needs at least one shard");
    FS_ARG_CHECK(scorer_ != nullptr, "fleet needs a scorer");
    if (const auto error = config_.engine.validate()) throw std::invalid_argument(*error);
    shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
        shards_.push_back(std::make_unique<shard_slot>(config_.engine, *scorer_));
    }
    if (config_.mode == score_mode::per_shard) {
        replicas_ = make_scorer_replicas(*scorer_, config_.shards);
    }
    window_elems_ = shards_.front()->engine.window_elems();
    nonempty_.reserve(config_.shards);
    obs::set_gauge("serve/shards", static_cast<double>(config_.shards));
    obs::set_gauge("serve/swap_generation", 0.0);
}

fleet_router::~fleet_router() = default;

std::size_t fleet_router::shard_of(session_id id) const {
    return static_cast<std::size_t>(mix64(id) % shards_.size());
}

const session_engine& fleet_router::shard(std::size_t index) const {
    FS_ARG_CHECK(index < shards_.size(), "shard index out of range");
    return shards_[index]->engine;
}

const fleet_router::route& fleet_router::route_of(session_id id) const {
    FS_ARG_CHECK(id < routes_.size() && routes_[id].live,
                 "unknown or evicted session id");
    return routes_[id];
}

session_id fleet_router::create_session() {
    const auto id = static_cast<session_id>(routes_.size());
    const std::size_t s = shard_of(id);
    shard_slot& sh = *shards_[s];
    const session_id local = sh.engine.create_session();
    FS_CHECK(local == sh.local_to_global.size(), "shard-local session ids must be dense");
    sh.local_to_global.push_back(id);
    routes_.push_back({static_cast<std::uint32_t>(s), local, true});
    // The shard's engine set the gauge to its own live count; the fleet
    // value is the one observers should see.
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_session_count()));
    return id;
}

void fleet_router::evict_session(session_id id) {
    const route& r = route_of(id);
    shards_[r.shard]->engine.evict_session(r.local);
    routes_[id].live = false;
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_session_count()));
}

bool fleet_router::is_live(session_id id) const {
    return id < routes_.size() && routes_[id].live;
}

bool fleet_router::feed(session_id id, const data::raw_sample& sample) {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.feed(r.local, sample);
}

tick_result fleet_router::tick() {
    OBS_SCOPE("serve/fleet_tick");
    ++ticks_;

    // Phase 1 — shard ingest in parallel.  Shards share no state, and the
    // engine's internal parallel_for runs inline inside a pool task.
    const clock::time_point t_start = clock::now();
    util::parallel_for(0, shards_.size(), 1, [this](std::size_t s) {
        shards_[s]->pending = shards_[s]->engine.tick_ingest();
    });
    const clock::time_point t_ingested = clock::now();

    // Phase 2 — score.  Offsets are a pure function of the (ascending)
    // shard order, shared by both modes so their score buffers tile
    // identically; only shards with pending windows participate.
    std::size_t total_windows = 0;
    nonempty_.clear();
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        shard_slot& sh = *shards_[s];
        sh.offset = total_windows;
        total_windows += sh.pending;
        if (sh.pending > 0) nonempty_.push_back(s);
    }
    if (total_windows > 0) {
        const shard_slot& last = *shards_[nonempty_.back()];
        FS_CHECK(last.offset + last.pending == total_windows,
                 "fleet shard offsets must tile the score buffer");
        scores_.resize(total_windows);
        if (config_.mode == score_mode::per_shard) {
            score_per_shard();
        } else {
            score_fused(total_windows);
        }
        if (obs::enabled()) {
            // Identical in both modes (one batch per scoring tick), so the
            // default run manifest never depends on the score mode.
            obs::add_counter("serve/batches");
            obs::add_counter("serve/windows_scored", total_windows);
        }
    }
    const clock::time_point t_scored = clock::now();

    // Phase 3 — shard apply in parallel (each shard's debounce state and
    // result slot are its own; obs counters are exact under concurrency).
    util::parallel_for(0, shards_.size(), 1, [this](std::size_t s) {
        shard_slot& sh = *shards_[s];
        sh.result = sh.engine.tick_apply({scores_.data() + sh.offset, sh.pending});
    });
    const clock::time_point t_applied = clock::now();
    timings_.ingest_us = us_between(t_start, t_ingested);
    timings_.score_us = us_between(t_ingested, t_scored);
    timings_.apply_us = us_between(t_scored, t_applied);
    if (obs::enabled()) {
        obs::observe_latency_us("serve/score_ingest_us", timings_.ingest_us);
        obs::observe_latency_us("serve/score_apply_us", timings_.apply_us);
    }

    // Merge in ascending shard order, rewriting shard-local session ids to
    // router-global ids: one canonical trigger order.
    tick_result result;
    for (const auto& sh : shards_) {
        result.samples_ingested += sh->result.samples_ingested;
        result.windows_scored += sh->result.windows_scored;
        for (trigger_event e : sh->result.triggers) {
            e.session = sh->local_to_global[e.session];
            result.triggers.push_back(e);
        }
        sh->result.triggers.clear();
    }
    return result;
}

void fleet_router::score_fused(std::size_t total_windows) {
    // Gather every shard's staged windows into one contiguous batch, then
    // one serial score call over the whole fleet.
    batch_.resize(total_windows * window_elems_);
    util::parallel_for(0, nonempty_.size(), 1, [this](std::size_t i) {
        const shard_slot& sh = *shards_[nonempty_[i]];
        const std::span<const float> w = sh.engine.pending_windows();
        std::copy(w.begin(), w.end(),
                  batch_.begin() +
                      static_cast<std::ptrdiff_t>(sh.offset * window_elems_));
    });
    const std::span<const float> in(batch_.data(), total_windows * window_elems_);
    const std::span<float> out(scores_.data(), total_windows);
    if (obs::enabled()) {
        const clock::time_point start = clock::now();
        scorer_->score(in, total_windows, window_elems_, out);
        obs::observe_latency_us("serve/batch_score_us", us_between(start, clock::now()));
    } else {
        scorer_->score(in, total_windows, window_elems_, out);
    }
}

void fleet_router::score_per_shard() {
    // Each nonempty shard scores its own staged windows with its private
    // replica, straight into its disjoint slice of scores_ — no fleet-wide
    // copy.  Slices tile scores_ exactly like the fused batch, and every
    // scorer is deterministic per window, so the bits match fused mode.
    util::parallel_for(0, nonempty_.size(), 1, [this](std::size_t i) {
        const std::size_t s = nonempty_[i];
        shard_slot& sh = *shards_[s];
        const std::span<const float> in = sh.engine.pending_windows();
        const std::span<float> out(scores_.data() + sh.offset, sh.pending);
        if (obs::enabled()) {
            // The registry is thread-safe when enabled, and histograms are
            // excluded from the default manifest — recording from inside
            // pool tasks never perturbs manifest parity across modes.
            const clock::time_point start = clock::now();
            replicas_[s]->score(in, sh.pending, window_elems_, out);
            obs::observe_latency_us("serve/score_shard_us", us_between(start, clock::now()));
        } else {
            replicas_[s]->score(in, sh.pending, window_elems_, out);
        }
    });
}

void fleet_router::install_scorer(std::unique_ptr<batch_scorer> next) {
    FS_ARG_CHECK(next != nullptr, "install_scorer needs a scorer");
    scorer_ = std::move(next);
    for (const auto& sh : shards_) sh->engine.rebind_scorer(*scorer_);
    if (config_.mode == score_mode::per_shard) {
        // Rebuild every replica before the next tick: the swap is atomic
        // at tick granularity in both modes.
        replicas_ = make_scorer_replicas(*scorer_, shards_.size());
    }
}

void fleet_router::swap_scorer(std::unique_ptr<batch_scorer> next) {
    install_scorer(std::move(next));
    ++swap_generation_;
    obs::add_counter("serve/scorer_swaps");
    obs::set_gauge("serve/swap_generation", static_cast<double>(swap_generation_));
}

fleet_checkpoint fleet_router::snapshot() const {
    fleet_checkpoint cp;
    cp.ticks = ticks_;
    cp.swap_generation = swap_generation_;
    cp.shard_count = static_cast<std::uint32_t>(shards_.size());
    cp.live.resize(routes_.size());
    cp.sessions.reserve(live_session_count());
    // Live-session stat sums per shard, to back out the retired remainder.
    std::vector<session_stats> live_sums(shards_.size());
    for (std::size_t id = 0; id < routes_.size(); ++id) {
        const route& r = routes_[id];
        cp.live[id] = r.live ? 1 : 0;
        if (!r.live) continue;
        session_checkpoint& sc = cp.sessions.emplace_back();
        shards_[r.shard]->engine.capture_session(r.local, sc);
        sc.global_id = static_cast<session_id>(id);
        session_stats& sum = live_sums[r.shard];
        sum.accepted += sc.stats.accepted;
        sum.dropped += sc.stats.dropped;
        sum.rejected += sc.stats.rejected;
        sum.ingested += sc.stats.ingested;
        sum.windows_scored += sc.stats.windows_scored;
        sum.triggers += sc.stats.triggers;
    }
    cp.retired.resize(shards_.size());
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        const engine_stats& t = shards_[s]->engine.totals();
        const session_stats& sum = live_sums[s];
        cp.retired[s] = {t.accepted - sum.accepted,       t.dropped - sum.dropped,
                         t.rejected - sum.rejected,       t.ingested - sum.ingested,
                         t.windows_scored - sum.windows_scored, t.triggers - sum.triggers};
    }
    return cp;
}

void fleet_router::restore(const fleet_checkpoint& cp) {
    FS_ARG_CHECK(cp.shard_count > 0, "fleet checkpoint needs at least one shard");
    FS_ARG_CHECK(cp.retired.size() == cp.shard_count,
                 "fleet checkpoint retired stats must cover every capture shard");
    const std::size_t live_total =
        static_cast<std::size_t>(std::count(cp.live.begin(), cp.live.end(), std::uint8_t{1}));
    FS_ARG_CHECK(cp.sessions.size() == live_total,
                 "fleet checkpoint must carry exactly one record per live session");

    // Rebuild the shards from scratch under the CURRENT config (the shard
    // count may differ from the capture — that is rebalancing).
    shards_.clear();
    routes_.clear();
    shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
        shards_.push_back(std::make_unique<shard_slot>(config_.engine, *scorer_));
    }
    if (config_.mode == score_mode::per_shard) {
        replicas_ = make_scorer_replicas(*scorer_, config_.shards);
    }

    // Replay the dense global id space in order: every id hashes to its
    // shard exactly as live admission would have routed it.
    std::vector<session_stats> live_sums(shards_.size());
    std::vector<std::uint64_t> evicted(shards_.size(), 0);
    auto next = cp.sessions.begin();
    routes_.reserve(cp.live.size());
    for (std::size_t id = 0; id < cp.live.size(); ++id) {
        const std::size_t s = shard_of(static_cast<session_id>(id));
        shard_slot& sh = *shards_[s];
        session_id local = 0;
        if (cp.live[id]) {
            FS_ARG_CHECK(next != cp.sessions.end() && next->global_id == id,
                         "fleet checkpoint sessions must be ascending and match the live set");
            local = sh.engine.restore_session(*next);
            session_stats& sum = live_sums[s];
            sum.accepted += next->stats.accepted;
            sum.dropped += next->stats.dropped;
            sum.rejected += next->stats.rejected;
            sum.ingested += next->stats.ingested;
            sum.windows_scored += next->stats.windows_scored;
            sum.triggers += next->stats.triggers;
            ++next;
        } else {
            sh.engine.restore_evicted_slot();
            local = static_cast<session_id>(sh.local_to_global.size());
            ++evicted[s];
        }
        FS_CHECK(local == sh.local_to_global.size(), "shard-local session ids must be dense");
        sh.local_to_global.push_back(static_cast<session_id>(id));
        routes_.push_back({static_cast<std::uint32_t>(s), local, cp.live[id] != 0});
    }
    FS_ARG_CHECK(next == cp.sessions.end(),
                 "fleet checkpoint carries sessions missing from the live set");

    // Reinstall per-shard totals: live sums plus the retired remainder.
    // When the shard layout is unchanged the remainder is exact per shard;
    // under a resize the retired history cannot be attributed (the sessions
    // are gone), so it folds into shard 0 — fleet-wide sums stay exact.
    const bool same_layout = cp.shard_count == shards_.size();
    session_stats folded{};
    if (!same_layout) {
        for (const session_stats& r : cp.retired) {
            folded.accepted += r.accepted;
            folded.dropped += r.dropped;
            folded.rejected += r.rejected;
            folded.ingested += r.ingested;
            folded.windows_scored += r.windows_scored;
            folded.triggers += r.triggers;
        }
    }
    for (std::size_t s = 0; s < shards_.size(); ++s) {
        shard_slot& sh = *shards_[s];
        static const session_stats zero{};
        const session_stats& retired =
            same_layout ? cp.retired[s] : (s == 0 ? folded : zero);
        engine_stats t;
        t.accepted = live_sums[s].accepted + retired.accepted;
        t.dropped = live_sums[s].dropped + retired.dropped;
        t.rejected = live_sums[s].rejected + retired.rejected;
        t.ingested = live_sums[s].ingested + retired.ingested;
        t.windows_scored = live_sums[s].windows_scored + retired.windows_scored;
        t.triggers = live_sums[s].triggers + retired.triggers;
        t.ticks = cp.ticks;
        t.sessions_created = sh.local_to_global.size();
        t.sessions_evicted = evicted[s];
        sh.engine.restore_totals(t);
    }
    ticks_ = cp.ticks;
    swap_generation_ = cp.swap_generation;
    // Re-assert the serve gauges to the restored truth (a ckpt obs merge
    // may have just replayed the capture-time values, which a rebalance
    // makes stale).
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_session_count()));
    obs::set_gauge("serve/shards", static_cast<double>(shards_.size()));
    obs::set_gauge("serve/swap_generation", static_cast<double>(swap_generation_));
}

void fleet_router::rebalance(std::size_t new_shard_count) {
    FS_ARG_CHECK(new_shard_count > 0, "fleet needs at least one shard");
    const fleet_checkpoint cp = snapshot();
    config_.shards = new_shard_count;
    nonempty_.reserve(new_shard_count);
    restore(cp);
}

std::size_t fleet_router::live_session_count() const {
    std::size_t live = 0;
    for (const auto& sh : shards_) live += sh->engine.live_session_count();
    return live;
}

std::size_t fleet_router::queue_depth(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.queue_depth(r.local);
}

std::size_t fleet_router::drain_rate(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.drain_rate(r.local);
}

float fleet_router::last_score(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.last_score(r.local);
}

const session_stats& fleet_router::stats(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.stats(r.local);
}

engine_stats fleet_router::totals() const {
    engine_stats out;
    for (const auto& sh : shards_) {
        const engine_stats& t = sh->engine.totals();
        out.accepted += t.accepted;
        out.dropped += t.dropped;
        out.rejected += t.rejected;
        out.ingested += t.ingested;
        out.windows_scored += t.windows_scored;
        out.triggers += t.triggers;
        out.sessions_created += t.sessions_created;
        out.sessions_evicted += t.sessions_evicted;
    }
    out.ticks = ticks_;
    return out;
}

}  // namespace fallsense::serve
