#include "serve/fleet.hpp"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {

namespace {

/// splitmix64 finalizer: a full-avalanche mix so consecutive session ids
/// spread evenly over the shards instead of striping.
std::uint64_t mix64(std::uint64_t x) {
    x += 0x9e3779b97f4a7c15ull;
    x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ull;
    x = (x ^ (x >> 27)) * 0x94d049bb133111ebull;
    return x ^ (x >> 31);
}

}  // namespace

struct fleet_router::shard_slot {
    shard_slot(const engine_config& config, batch_scorer& scorer)
        : engine(config, scorer) {}

    session_engine engine;
    std::vector<session_id> local_to_global;  ///< index == shard-local id
    // Per-tick staging.
    std::size_t pending = 0;  ///< windows staged by the last tick_ingest
    std::size_t offset = 0;   ///< this shard's row offset in the fleet batch
    tick_result result;
};

fleet_router::fleet_router(const fleet_config& config, std::unique_ptr<batch_scorer> scorer)
    : config_(config), scorer_(std::move(scorer)) {
    FS_ARG_CHECK(config_.shards > 0, "fleet needs at least one shard");
    FS_ARG_CHECK(scorer_ != nullptr, "fleet needs a scorer");
    if (const auto error = config_.engine.validate()) throw std::invalid_argument(*error);
    shards_.reserve(config_.shards);
    for (std::size_t s = 0; s < config_.shards; ++s) {
        shards_.push_back(std::make_unique<shard_slot>(config_.engine, *scorer_));
    }
    window_elems_ = shards_.front()->engine.window_elems();
    obs::set_gauge("serve/shards", static_cast<double>(config_.shards));
    obs::set_gauge("serve/swap_generation", 0.0);
}

fleet_router::~fleet_router() = default;

std::size_t fleet_router::shard_of(session_id id) const {
    return static_cast<std::size_t>(mix64(id) % shards_.size());
}

const session_engine& fleet_router::shard(std::size_t index) const {
    FS_ARG_CHECK(index < shards_.size(), "shard index out of range");
    return shards_[index]->engine;
}

const fleet_router::route& fleet_router::route_of(session_id id) const {
    FS_ARG_CHECK(id < routes_.size() && routes_[id].live,
                 "unknown or evicted session id");
    return routes_[id];
}

session_id fleet_router::create_session() {
    const auto id = static_cast<session_id>(routes_.size());
    const std::size_t s = shard_of(id);
    shard_slot& sh = *shards_[s];
    const session_id local = sh.engine.create_session();
    FS_CHECK(local == sh.local_to_global.size(), "shard-local session ids must be dense");
    sh.local_to_global.push_back(id);
    routes_.push_back({static_cast<std::uint32_t>(s), local, true});
    // The shard's engine set the gauge to its own live count; the fleet
    // value is the one observers should see.
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_session_count()));
    return id;
}

void fleet_router::evict_session(session_id id) {
    const route& r = route_of(id);
    shards_[r.shard]->engine.evict_session(r.local);
    routes_[id].live = false;
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_session_count()));
}

bool fleet_router::is_live(session_id id) const {
    return id < routes_.size() && routes_[id].live;
}

bool fleet_router::feed(session_id id, const data::raw_sample& sample) {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.feed(r.local, sample);
}

tick_result fleet_router::tick() {
    OBS_SCOPE("serve/fleet_tick");
    ++ticks_;

    // Phase 1 — shard ingest in parallel.  Shards share no state, and the
    // engine's internal parallel_for runs inline inside a pool task.
    util::parallel_for(0, shards_.size(), 1, [&](std::size_t s) {
        shards_[s]->pending = shards_[s]->engine.tick_ingest();
    });

    // Phase 2 — one fleet-wide batch.  Offsets are a pure function of the
    // (ascending) shard order.
    std::size_t total_windows = 0;
    for (const auto& sh : shards_) {
        sh->offset = total_windows;
        total_windows += sh->pending;
    }
    if (total_windows > 0) {
        batch_.resize(total_windows * window_elems_);
        util::parallel_for(0, shards_.size(), 1, [&](std::size_t s) {
            shard_slot& sh = *shards_[s];
            if (sh.pending == 0) return;
            const std::span<const float> w = sh.engine.pending_windows();
            std::copy(w.begin(), w.end(),
                      batch_.begin() +
                          static_cast<std::ptrdiff_t>(sh.offset * window_elems_));
        });
        scores_.resize(total_windows);
        const std::span<const float> in(batch_.data(), total_windows * window_elems_);
        const std::span<float> out(scores_.data(), total_windows);
        if (obs::enabled()) {
            const auto start = std::chrono::steady_clock::now();
            scorer_->score(in, total_windows, window_elems_, out);
            const std::chrono::duration<double, std::micro> elapsed =
                std::chrono::steady_clock::now() - start;
            obs::observe_latency_us("serve/batch_score_us", elapsed.count());
            obs::add_counter("serve/batches");
            obs::add_counter("serve/windows_scored", total_windows);
        } else {
            scorer_->score(in, total_windows, window_elems_, out);
        }
    }

    // Phase 3 — shard apply in parallel (each shard's debounce state and
    // result slot are its own; obs counters are exact under concurrency).
    util::parallel_for(0, shards_.size(), 1, [&](std::size_t s) {
        shard_slot& sh = *shards_[s];
        sh.result = sh.engine.tick_apply({scores_.data() + sh.offset, sh.pending});
    });

    // Merge in ascending shard order, rewriting shard-local session ids to
    // router-global ids: one canonical trigger order.
    tick_result result;
    for (const auto& sh : shards_) {
        result.samples_ingested += sh->result.samples_ingested;
        result.windows_scored += sh->result.windows_scored;
        for (trigger_event e : sh->result.triggers) {
            e.session = sh->local_to_global[e.session];
            result.triggers.push_back(e);
        }
        sh->result.triggers.clear();
    }
    return result;
}

void fleet_router::swap_scorer(std::unique_ptr<batch_scorer> next) {
    FS_ARG_CHECK(next != nullptr, "swap_scorer needs a scorer");
    scorer_ = std::move(next);
    for (const auto& sh : shards_) sh->engine.rebind_scorer(*scorer_);
    ++swap_generation_;
    obs::add_counter("serve/scorer_swaps");
    obs::set_gauge("serve/swap_generation", static_cast<double>(swap_generation_));
}

std::size_t fleet_router::live_session_count() const {
    std::size_t live = 0;
    for (const auto& sh : shards_) live += sh->engine.live_session_count();
    return live;
}

std::size_t fleet_router::queue_depth(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.queue_depth(r.local);
}

std::size_t fleet_router::drain_rate(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.drain_rate(r.local);
}

float fleet_router::last_score(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.last_score(r.local);
}

const session_stats& fleet_router::stats(session_id id) const {
    const route& r = route_of(id);
    return shards_[r.shard]->engine.stats(r.local);
}

engine_stats fleet_router::totals() const {
    engine_stats out;
    for (const auto& sh : shards_) {
        const engine_stats& t = sh->engine.totals();
        out.accepted += t.accepted;
        out.dropped += t.dropped;
        out.rejected += t.rejected;
        out.ingested += t.ingested;
        out.windows_scored += t.windows_scored;
        out.triggers += t.triggers;
        out.sessions_created += t.sessions_created;
        out.sessions_evicted += t.sessions_evicted;
    }
    out.ticks = ticks_;
    return out;
}

}  // namespace fallsense::serve
