// Fleet-scale multi-session scoring engine.
//
// `session_engine` hosts N independent IMU streams in one process.  Each
// session owns a bounded input queue and a core::detector_state (ring
// buffer, streaming filters, sensor-fusion attitude, debounce run) — the
// same per-stream state the single-stream streaming_detector wraps, so a
// hosted session is behaviorally identical to a dedicated detector fed the
// same accepted samples.
//
// A `tick()` advances every session by up to its drain rate in queued
// samples, gathers ALL windows that became due across sessions into one
// row-major batch, scores them with a single batch_scorer call, and then
// applies thresholds/debouncing per session.  The three phases keep the
// engine deterministic for any FALLSENSE_THREADS:
//
//   A. ingest + window assembly — parallel over sessions, each session
//      writes only its own state and staging buffer (index-addressed);
//   B. batch gather + one scorer call — offsets are a pure function of the
//      session order, and every scorer implementation guarantees
//      probability i depends only on window i;
//   C. score application — serial in ascending session-id order, so the
//      trigger list and debounce transitions have one canonical order.
//
// The three phases are also exposed individually (`tick_ingest`,
// `pending_windows`, `tick_apply`) so an external batcher — the
// serve::fleet_router — can run phase A on many engines in parallel,
// concatenate their staged windows into one fleet-wide batch, score it
// with a single scorer call, and hand each engine its slice of scores.
// `tick()` is exactly the composition of the three with the engine's own
// scorer in the middle.
//
// Admission is per-session and bounded: when a session's queue is full,
// `drop_policy::drop_oldest` evicts the oldest queued sample (freshest-data
// wins — right for a latency-critical alarm), `drop_policy::reject_newest`
// refuses the new sample (lossless for already-admitted data — right for
// replay/backfill).  Both count saturation per session and engine-wide.
//
// Adaptive drain: with `max_samples_per_tick` above `samples_per_tick`, a
// session whose queue depth exceeds `drain_watermark` doubles its per-tick
// drain rate toward the max, and halves it back toward the base once the
// backlog clears.  The rate is a pure function of the session's queue
// state at the start of each tick — never of timing or thread count — so
// the determinism contract is unchanged.
#pragma once

#include <cstdint>
#include <deque>
#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "core/pipeline.hpp"
#include "serve/batch_scorer.hpp"

namespace fallsense::serve {

enum class drop_policy {
    drop_oldest,    ///< queue full: evict the oldest queued sample, admit the new one
    reject_newest,  ///< queue full: refuse the new sample
};

const char* drop_policy_name(drop_policy policy);
/// Parse "oldest" / "reject" (also the canonical "drop-oldest" /
/// "reject-newest"); anything else returns std::nullopt.
std::optional<drop_policy> parse_drop_policy(const std::string& text);

struct engine_config {
    core::detector_config detector{};
    /// Bounded per-session input queue (admission control).
    std::size_t queue_capacity = 64;
    drop_policy policy = drop_policy::drop_oldest;
    /// Baseline samples dequeued per session per tick.
    std::size_t samples_per_tick = 1;
    /// Adaptive drain ceiling: when above samples_per_tick, a backlogged
    /// session's drain rate doubles toward this value each tick its queue
    /// depth exceeds the watermark, and halves back once it no longer
    /// does.  0 (or == samples_per_tick) keeps the drain rate fixed.
    std::size_t max_samples_per_tick = 0;
    /// Queue depth above which a session counts as backlogged; 0 means
    /// half the queue capacity.
    std::size_t drain_watermark = 0;

    /// Configuration error, or std::nullopt when the config is usable.
    /// Engine and router constructors call this and throw
    /// std::invalid_argument with the returned description.
    std::optional<std::string> validate() const;
    /// The effective backlog threshold (resolves the 0 default).
    std::size_t effective_watermark() const;
    bool adaptive_drain() const { return max_samples_per_tick > samples_per_tick; }
};

using session_id = std::uint32_t;

/// Per-session lifetime counters (monotonic; survive until eviction).
struct session_stats {
    std::uint64_t accepted = 0;   ///< samples admitted to the queue
    std::uint64_t dropped = 0;    ///< oldest samples evicted (drop_oldest)
    std::uint64_t rejected = 0;   ///< new samples refused (reject_newest)
    std::uint64_t ingested = 0;   ///< samples consumed by ticks
    std::uint64_t windows_scored = 0;
    std::uint64_t triggers = 0;
};

/// Engine-wide totals (sums over all sessions ever hosted).
struct engine_stats {
    std::uint64_t accepted = 0;
    std::uint64_t dropped = 0;
    std::uint64_t rejected = 0;
    std::uint64_t ingested = 0;
    std::uint64_t windows_scored = 0;
    std::uint64_t triggers = 0;
    std::uint64_t ticks = 0;
    std::uint64_t sessions_created = 0;
    std::uint64_t sessions_evicted = 0;
};

/// Everything needed to reconstruct one live session in another engine
/// (or process): lifetime counters, the adaptive drain rate, the queued
/// but not yet ingested samples, and the detector image.  src/ckpt
/// serializes exactly these fields (docs/checkpoint.md).
struct session_checkpoint {
    session_id global_id = 0;  ///< router-global id (stamped by the fleet)
    session_stats stats{};
    std::uint64_t drain_rate = 0;
    std::vector<data::raw_sample> queue;  ///< front (oldest) first
    core::detector_state_image detector{};
};

struct trigger_event {
    session_id session = 0;
    std::size_t sample_index = 0;  ///< session-local tick of the scored window
    float probability = 0.0f;
};

struct tick_result {
    std::uint64_t samples_ingested = 0;
    std::uint64_t windows_scored = 0;
    /// Ascending session id, then chronological within a session.
    std::vector<trigger_event> triggers;
};

class session_engine {
public:
    /// `scorer` is borrowed and must outlive the engine; the engine calls
    /// it serially (one batch per tick).
    session_engine(const engine_config& config, batch_scorer& scorer);
    ~session_engine();  ///< out of line: session_slot is incomplete here

    /// Admit a new session (ids are never reused).
    session_id create_session();
    /// Remove a session; its queue and state are discarded.  Throws for
    /// unknown/already-evicted ids.
    void evict_session(session_id id);
    bool is_live(session_id id) const;

    /// Offer one sample to a session's queue.  Returns false iff the
    /// sample was refused (reject_newest on a full queue).
    bool feed(session_id id, const data::raw_sample& sample);

    /// Advance every live session by up to its drain rate in queued
    /// samples, batch-score all due windows, apply debouncing.
    tick_result tick();

    /// Phase A + B-gather for an external batcher: ingest queued samples,
    /// stage every window that became due into one row-major buffer, and
    /// return the number of staged windows.  Must be followed by exactly
    /// one `tick_apply` (even when 0 windows are pending, so ingestion
    /// counters land in a result).
    std::size_t tick_ingest();
    /// Row-major [pending x window_elems] view of the windows staged by
    /// the last `tick_ingest`; valid until the next `tick_ingest`.
    std::span<const float> pending_windows() const;
    std::size_t window_elems() const { return window_elems_; }
    /// Phase C with externally computed scores (`scores.size()` must equal
    /// the count returned by the preceding `tick_ingest`).
    tick_result tick_apply(std::span<const float> scores);

    /// Point the engine's own `tick()` at a different scorer (the fleet
    /// router rebinds shards on hot-swap).  The scorer must outlive the
    /// engine; never call during a tick.
    void rebind_scorer(batch_scorer& scorer) { scorer_ = &scorer; }

    // --- checkpoint support (driven by fleet_router::snapshot/restore;
    //     only meaningful between ticks) ---
    /// Capture one live session's full state into `out` (reusing buffers).
    /// `out.global_id` is left untouched — the fleet owns global ids.
    void capture_session(session_id id, session_checkpoint& out) const;
    /// Recreate a session from a checkpoint as the next dense id, which is
    /// returned.  Unlike create_session this touches no obs metrics and no
    /// engine totals — a restore reinstalls totals wholesale afterwards via
    /// restore_totals, and the snapshot's obs image travels separately.
    session_id restore_session(const session_checkpoint& cp);
    /// Append an evicted (null) slot so local ids line up with the source
    /// engine's dense id space.
    void restore_evicted_slot();
    /// Install engine-wide totals (the fleet recomputes these per shard).
    void restore_totals(const engine_stats& totals) { totals_ = totals; }

    std::size_t live_session_count() const { return live_count_; }
    std::size_t queue_depth(session_id id) const;
    /// Current adaptive drain rate (== samples_per_tick when fixed).
    std::size_t drain_rate(session_id id) const;
    /// Session-local score at its last scoring tick (NaN before the first).
    float last_score(session_id id) const;
    const session_stats& stats(session_id id) const;
    const engine_stats& totals() const { return totals_; }
    const engine_config& config() const { return config_; }
    batch_scorer& scorer() { return *scorer_; }

private:
    struct session_slot;

    session_slot& slot(session_id id);
    const session_slot& slot(session_id id) const;

    engine_config config_;
    batch_scorer* scorer_;
    std::size_t window_elems_ = 0;
    std::vector<std::unique_ptr<session_slot>> sessions_;  ///< index == id; null when evicted
    std::size_t live_count_ = 0;
    engine_stats totals_;
    // Tick scratch (reused across ticks so the steady state allocates
    // nothing once queues and batches have reached their high-water marks).
    std::vector<std::size_t> live_;
    std::vector<float> batch_;
    std::vector<float> scores_;
    std::size_t pending_windows_ = 0;   ///< staged by the last tick_ingest
    std::uint64_t tick_ingested_ = 0;   ///< samples consumed by the last tick_ingest
};

}  // namespace fallsense::serve
