// The one place serving scorers are constructed.
//
// Everything outside src/serve — tools, benches, tests, examples — builds
// its batch_scorer through `make_scorer(scorer_spec)`: pick a backend,
// name the window size, optionally point at trained weights.  The factory
// owns the construction details (model seeding, weight loading, int8
// calibration against synthesized motion-profile windows), so adding a
// backend or changing calibration touches exactly one translation unit.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/batch_scorer.hpp"

namespace fallsense::serve {

enum class scorer_backend {
    float32,   ///< float CNN, one GEMM forward per batch
    int8,      ///< post-training-quantized deployment path
    callback,  ///< per-window segment_scorer adapter (tests, baselines)
};

const char* scorer_backend_name(scorer_backend backend);
/// Parse "float" / "int8" / "callback"; anything else returns nullopt.
std::optional<scorer_backend> parse_scorer_backend(const std::string& text);

/// Everything needed to build a scorer.  For the CNN backends the model is
/// deterministically initialized from `seed` (weights loaded over it when
/// `weights_path` is set); the int8 backend additionally calibrates
/// against windows synthesized from the motion-profile library, so its
/// quantization grid is a pure function of (window_samples, seed).
struct scorer_spec {
    scorer_backend backend = scorer_backend::float32;
    std::size_t window_samples = 40;
    std::uint64_t seed = 42;
    std::string weights_path{};
    /// Callback backend only: the per-window scoring function and the
    /// label its describe() reports.
    core::segment_scorer callback{};
    std::string label = "callback";
};

/// Build the scorer `spec` describes; throws std::invalid_argument on an
/// unusable spec (zero window, callback backend without a callback).
std::unique_ptr<batch_scorer> make_scorer(const scorer_spec& spec);

/// `count` independent replicas of `source` (batch_scorer::clone), one per
/// concurrent user.  The fleet router's per_shard score mode builds its
/// shard replicas here so replica construction stays routed through the
/// factory translation unit, like every other scorer construction.
std::vector<std::unique_ptr<batch_scorer>> make_scorer_replicas(const batch_scorer& source,
                                                                std::size_t count);

}  // namespace fallsense::serve
