// Batched window scoring for the serving engine.
//
// The session engine (engine.hpp) collects every window due at a tick
// across all hosted sessions and hands them to one `batch_scorer::score`
// call as a row-major [count x window_elems] buffer.  Batching is where
// serving throughput comes from: one GEMM over a thousand windows amortizes
// im2col, tensor assembly, and dispatch that per-window scoring pays a
// thousand times (bench/serve_scaling quantifies the gap).
//
// Every implementation is deterministic: probability i depends only on
// window i, never on the batch around it or on FALLSENSE_THREADS.  For the
// float CNN that follows from the GEMM serial-reduction guarantee
// (src/nn/gemm.hpp); for the int8 path each window is an independent
// inference fanned out with index-addressed outputs.
#pragma once

#include <cstddef>
#include <memory>
#include <span>
#include <string>

#include "core/pipeline.hpp"
#include "nn/layer.hpp"
#include "nn/trainer.hpp"
#include "quant/quantized_cnn.hpp"

namespace fallsense::serve {

class batch_scorer {
public:
    virtual ~batch_scorer() = default;

    /// Score `count` row-major windows of `window_elems` floats each,
    /// laid out back to back in `windows`; write one probability per
    /// window into `out` (size == count).  Called serially by the engine.
    virtual void score(std::span<const float> windows, std::size_t count,
                       std::size_t window_elems, std::span<float> out) = 0;

    /// Short label for manifests and reports, e.g. "cnn-float".
    virtual std::string describe() const = 0;

    /// Independent replica: same scoring function bit for bit, zero shared
    /// mutable state — safe to run concurrently with the source and with
    /// other replicas.  The fleet router's per_shard score mode keeps one
    /// replica per shard so shards score inside their own pool tasks.
    virtual std::unique_ptr<batch_scorer> clone() const = 0;

    batch_scorer() = default;
    batch_scorer(const batch_scorer&) = delete;
    batch_scorer& operator=(const batch_scorer&) = delete;
};

/// Float CNN path: one nn model forward per batch via
/// nn::predict_proba_rows.  The model is owned (a model's forward caches
/// make it stateful, so it must not be shared with concurrent users).
class float_cnn_scorer : public batch_scorer {
public:
    float_cnn_scorer(std::unique_ptr<nn::model> model, std::size_t window_samples);

    void score(std::span<const float> windows, std::size_t count,
               std::size_t window_elems, std::span<float> out) override;
    std::string describe() const override { return "cnn-float"; }
    /// Deep-copies the model (nn::model::clone), so replica forwards never
    /// touch the source model's caches.
    std::unique_ptr<batch_scorer> clone() const override;

private:
    std::unique_ptr<nn::model> model_;
    std::size_t window_samples_;
    nn::shape_t row_shape_;        ///< {window_samples, channels}, built once
    nn::predict_scratch scratch_;  ///< reused workspace arena + logit buffer
};

/// Int8 deployment path: quant::quantized_cnn::predict_proba_batch.
class int8_cnn_scorer : public batch_scorer {
public:
    explicit int8_cnn_scorer(std::shared_ptr<const quant::quantized_cnn> model);

    void score(std::span<const float> windows, std::size_t count,
               std::size_t window_elems, std::span<float> out) override;
    std::string describe() const override { return "cnn-int8"; }
    /// Shares the immutable quantized graph (weights and quantization
    /// records are read-only after construction); every replica owns its
    /// own activation scratch, so there is no shared mutable state.
    std::unique_ptr<batch_scorer> clone() const override;

private:
    std::shared_ptr<const quant::quantized_cnn> model_;
    quant::batch_inference_scratch scratch_;  ///< per-chunk activation buffers
};

/// Adapter over the single-window core::segment_scorer callback, scored
/// serially — the degenerate "no batching" case used by tests and as the
/// apples-to-apples baseline in bench/serve_scaling.
class callback_batch_scorer : public batch_scorer {
public:
    explicit callback_batch_scorer(core::segment_scorer scorer, std::string label = "callback");

    void score(std::span<const float> windows, std::size_t count,
               std::size_t window_elems, std::span<float> out) override;
    std::string describe() const override { return label_; }
    /// Copies the callback (callbacks must be pure per-window functions —
    /// the batch_scorer determinism contract — so a copy is independent).
    std::unique_ptr<batch_scorer> clone() const override;

private:
    core::segment_scorer scorer_;
    std::string label_;
};

}  // namespace fallsense::serve
