#include "serve/engine.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::serve {

const char* drop_policy_name(drop_policy policy) {
    switch (policy) {
        case drop_policy::drop_oldest: return "drop-oldest";
        case drop_policy::reject_newest: return "reject-newest";
    }
    return "?";
}

std::optional<drop_policy> parse_drop_policy(const std::string& text) {
    if (text == "oldest" || text == "drop-oldest") return drop_policy::drop_oldest;
    if (text == "reject" || text == "reject-newest") return drop_policy::reject_newest;
    return std::nullopt;
}

std::optional<std::string> engine_config::validate() const {
    if (queue_capacity == 0) return "engine queue_capacity must be positive";
    if (samples_per_tick == 0) return "engine samples_per_tick must be positive";
    if (drain_watermark > queue_capacity) {
        std::ostringstream os;
        os << "engine drain_watermark (" << drain_watermark
           << ") exceeds queue_capacity (" << queue_capacity << ")";
        return os.str();
    }
    if (max_samples_per_tick != 0 && max_samples_per_tick < samples_per_tick) {
        std::ostringstream os;
        os << "engine max_samples_per_tick (" << max_samples_per_tick
           << ") is below samples_per_tick (" << samples_per_tick << ")";
        return os.str();
    }
    return std::nullopt;
}

std::size_t engine_config::effective_watermark() const {
    return drain_watermark > 0 ? drain_watermark : queue_capacity / 2;
}

struct session_engine::session_slot {
    session_slot(const core::detector_config& detector, std::size_t base_rate)
        : state(detector), drain_rate(base_rate) {}

    core::detector_state state;
    std::deque<data::raw_sample> queue;
    session_stats stats;
    std::size_t drain_rate;  ///< samples dequeued per tick (adaptive)
    // Per-tick staging: windows due this tick (row-major, back to back),
    // the session-local tick each was scored at, and how many queued
    // samples phase A consumed.
    std::vector<float> pending;
    std::vector<std::size_t> pending_ticks;
    std::size_t ingested_this_tick = 0;
    std::size_t batch_offset = 0;
};

session_engine::session_engine(const engine_config& config, batch_scorer& scorer)
    : config_(config),
      scorer_(&scorer),
      window_elems_(config.detector.window_samples * core::k_feature_channels) {
    if (const auto error = config_.validate()) throw std::invalid_argument(*error);
}

session_engine::~session_engine() = default;

session_engine::session_slot& session_engine::slot(session_id id) {
    FS_ARG_CHECK(id < sessions_.size() && sessions_[id] != nullptr,
                 "unknown or evicted session id");
    return *sessions_[id];
}

const session_engine::session_slot& session_engine::slot(session_id id) const {
    FS_ARG_CHECK(id < sessions_.size() && sessions_[id] != nullptr,
                 "unknown or evicted session id");
    return *sessions_[id];
}

session_id session_engine::create_session() {
    sessions_.push_back(
        std::make_unique<session_slot>(config_.detector, config_.samples_per_tick));
    ++live_count_;
    ++totals_.sessions_created;
    obs::add_counter("serve/sessions_created");
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_count_));
    return static_cast<session_id>(sessions_.size() - 1);
}

void session_engine::evict_session(session_id id) {
    slot(id);  // validates
    sessions_[id].reset();
    --live_count_;
    ++totals_.sessions_evicted;
    obs::add_counter("serve/sessions_evicted");
    obs::set_gauge("serve/sessions_live", static_cast<double>(live_count_));
}

bool session_engine::is_live(session_id id) const {
    return id < sessions_.size() && sessions_[id] != nullptr;
}

bool session_engine::feed(session_id id, const data::raw_sample& sample) {
    session_slot& s = slot(id);
    if (s.queue.size() >= config_.queue_capacity) {
        if (config_.policy == drop_policy::reject_newest) {
            ++s.stats.rejected;
            ++totals_.rejected;
            obs::add_counter("serve/samples_rejected");
            return false;
        }
        s.queue.pop_front();
        ++s.stats.dropped;
        ++totals_.dropped;
        obs::add_counter("serve/samples_dropped");
    }
    s.queue.push_back(sample);
    ++s.stats.accepted;
    ++totals_.accepted;
    obs::add_counter("serve/samples_in");
    return true;
}

std::size_t session_engine::tick_ingest() {
    ++totals_.ticks;
    live_.clear();
    for (std::size_t i = 0; i < sessions_.size(); ++i) {
        if (sessions_[i]) live_.push_back(i);
    }
    pending_windows_ = 0;
    tick_ingested_ = 0;
    if (live_.empty()) return 0;

    // Phase A — ingest + window assembly, parallel over sessions.  Each
    // task touches only its own session (index-addressed), so the set of
    // due windows is deterministic for any thread count.  The single
    // context capture keeps the closure inside the std::function
    // small-buffer store — the tick hot path must not heap-allocate.
    struct ingest_ctx {
        session_engine* self;
        bool adaptive;
        std::size_t watermark;
    } ctx{this, config_.adaptive_drain(), config_.effective_watermark()};
    util::parallel_for(0, live_.size(), 1, [&ctx](std::size_t li) {
        session_engine& eng = *ctx.self;
        session_slot& s = *eng.sessions_[eng.live_[li]];
        s.pending.clear();
        s.pending_ticks.clear();
        s.ingested_this_tick = 0;
        if (ctx.adaptive) {
            // Pure function of the queue depth at tick start: double
            // toward the max while backlogged, halve back once drained.
            if (s.queue.size() > ctx.watermark) {
                s.drain_rate = std::min(s.drain_rate * 2, eng.config_.max_samples_per_tick);
            } else {
                s.drain_rate = std::max(s.drain_rate / 2, eng.config_.samples_per_tick);
            }
        }
        for (std::size_t k = 0; k < s.drain_rate && !s.queue.empty(); ++k) {
            const data::raw_sample sample = s.queue.front();
            s.queue.pop_front();
            ++s.stats.ingested;
            ++s.ingested_this_tick;
            if (s.state.ingest(sample)) {
                const std::span<const float> w = s.state.assemble_window();
                s.pending.insert(s.pending.end(), w.begin(), w.end());
                s.pending_ticks.push_back(s.state.samples_seen() - 1);
            }
        }
    });

    // Phase B-gather — every due window into one batch.  Offsets depend
    // only on the (ascending) session order.
    std::size_t total_windows = 0;
    for (const std::size_t si : live_) {
        session_slot& s = *sessions_[si];
        tick_ingested_ += s.ingested_this_tick;
        s.batch_offset = total_windows;
        total_windows += s.pending_ticks.size();
    }
    totals_.ingested += tick_ingested_;

    if (total_windows > 0) {
        batch_.resize(total_windows * window_elems_);
        util::parallel_for(0, live_.size(), 1, [this](std::size_t li) {
            session_slot& s = *sessions_[live_[li]];
            if (s.pending.empty()) return;
            std::copy(s.pending.begin(), s.pending.end(),
                      batch_.begin() +
                          static_cast<std::ptrdiff_t>(s.batch_offset * window_elems_));
        });
    }
    pending_windows_ = total_windows;
    return total_windows;
}

std::span<const float> session_engine::pending_windows() const {
    return {batch_.data(), pending_windows_ * window_elems_};
}

tick_result session_engine::tick_apply(std::span<const float> scores) {
    FS_ARG_CHECK(scores.size() == pending_windows_,
                 "tick_apply needs one score per pending window");
    tick_result result;
    result.samples_ingested = tick_ingested_;
    if (pending_windows_ == 0) return result;

    // Phase C — apply scores serially in ascending session-id order,
    // chronologically within a session: the one canonical trigger and
    // debounce order.
    for (const std::size_t si : live_) {
        session_slot& s = *sessions_[si];
        for (std::size_t j = 0; j < s.pending_ticks.size(); ++j) {
            if (const auto d = s.state.apply_score(scores[s.batch_offset + j])) {
                // apply_score stamps the detection with the CURRENT
                // tick; when the drain rate is > 1 ingestion has moved
                // past the scoring tick, so use the staged one.
                result.triggers.push_back(
                    {static_cast<session_id>(si), s.pending_ticks[j], d->probability});
                ++s.stats.triggers;
                ++totals_.triggers;
                obs::add_counter("serve/triggers");
            }
        }
        s.stats.windows_scored += s.pending_ticks.size();
    }
    totals_.windows_scored += pending_windows_;
    result.windows_scored = pending_windows_;
    pending_windows_ = 0;
    return result;
}

tick_result session_engine::tick() {
    OBS_SCOPE("serve/tick");
    const std::size_t total_windows = tick_ingest();
    if (total_windows > 0) {
        scores_.resize(total_windows);
        const std::span<float> out(scores_.data(), total_windows);
        if (obs::enabled()) {
            const auto start = std::chrono::steady_clock::now();
            scorer_->score(pending_windows(), total_windows, window_elems_, out);
            const std::chrono::duration<double, std::micro> elapsed =
                std::chrono::steady_clock::now() - start;
            obs::observe_latency_us("serve/batch_score_us", elapsed.count());
            obs::add_counter("serve/batches");
            obs::add_counter("serve/windows_scored", total_windows);
        } else {
            scorer_->score(pending_windows(), total_windows, window_elems_, out);
        }
    }
    return tick_apply({scores_.data(), total_windows});
}

void session_engine::capture_session(session_id id, session_checkpoint& out) const {
    const session_slot& s = slot(id);
    out.stats = s.stats;
    out.drain_rate = s.drain_rate;
    out.queue.assign(s.queue.begin(), s.queue.end());
    s.state.capture(out.detector);
}

session_id session_engine::restore_session(const session_checkpoint& cp) {
    FS_ARG_CHECK(cp.queue.size() <= config_.queue_capacity,
                 "session checkpoint queue exceeds the configured capacity");
    const std::size_t base = config_.samples_per_tick;
    const std::size_t max_rate = config_.adaptive_drain() ? config_.max_samples_per_tick : base;
    FS_ARG_CHECK(cp.drain_rate >= base && cp.drain_rate <= max_rate,
                 "session checkpoint drain rate is outside the configured range");
    auto slot_ptr = std::make_unique<session_slot>(config_.detector, config_.samples_per_tick);
    slot_ptr->stats = cp.stats;
    slot_ptr->drain_rate = static_cast<std::size_t>(cp.drain_rate);
    slot_ptr->queue.assign(cp.queue.begin(), cp.queue.end());
    slot_ptr->state.restore(cp.detector);
    sessions_.push_back(std::move(slot_ptr));
    ++live_count_;
    return static_cast<session_id>(sessions_.size() - 1);
}

void session_engine::restore_evicted_slot() { sessions_.push_back(nullptr); }

std::size_t session_engine::queue_depth(session_id id) const { return slot(id).queue.size(); }

std::size_t session_engine::drain_rate(session_id id) const { return slot(id).drain_rate; }

float session_engine::last_score(session_id id) const { return slot(id).state.last_score(); }

const session_stats& session_engine::stats(session_id id) const { return slot(id).stats; }

}  // namespace fallsense::serve
