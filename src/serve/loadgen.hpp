// Synthetic fleet-traffic generator for the serving engine.
//
// Synthesizes K independent wearers from the data-layer motion profiles
// (each session gets its own subject anthropometrics and a Table II task
// script, falls and ADLs mixed), replays them through a session_engine at a
// fixed feed rate, and reports throughput, scoring volume, trigger and
// drop counts.  Everything except the measured wall time is deterministic
// in (config, seed) for any FALLSENSE_THREADS — the property the
// fallsense_loadgen acceptance check pins by diffing 1- vs 4-thread
// manifests byte for byte.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "serve/engine.hpp"

namespace fallsense::serve {

struct loadgen_config {
    std::size_t sessions = 64;
    /// Engine ticks to run; every session is fed `feed_rate` samples per
    /// tick (streams wrap around, so sessions never starve).
    std::size_t ticks = 1000;
    std::uint64_t seed = 42;
    /// Samples offered per session per tick.  Above the engine's
    /// samples_per_tick this saturates the queues and exercises the
    /// drop/reject policy.
    std::size_t feed_rate = 1;
    /// Every this many ticks, evict the oldest live session and admit a
    /// fresh one with a new synthesized stream (0 = no churn).  Exercises
    /// the create/evict lifecycle under load.
    std::size_t churn_every_ticks = 0;
    engine_config engine{};
};

struct loadgen_report {
    std::size_t sessions = 0;
    std::uint64_t ticks = 0;
    std::uint64_t samples_offered = 0;
    std::uint64_t samples_accepted = 0;
    std::uint64_t samples_dropped = 0;
    std::uint64_t samples_rejected = 0;
    std::uint64_t samples_ingested = 0;
    std::uint64_t windows_scored = 0;
    std::uint64_t triggers = 0;
    std::uint64_t sessions_churned = 0;
    std::string scorer;  ///< batch_scorer::describe()

    /// Measured, varies run to run; everything above is deterministic.
    double wall_seconds = 0.0;

    double ticks_per_second() const;
    double session_ticks_per_second() const;  ///< sessions x ticks / s
    double windows_per_second() const;

    /// The deterministic fields, one `key: value` per line — what tests
    /// and the 1-vs-4-thread acceptance check compare verbatim.
    std::string deterministic_summary() const;
};

/// Replay `config.sessions` synthesized IMU streams through a fresh
/// session_engine built on `scorer`.
loadgen_report run_loadgen(const loadgen_config& config, batch_scorer& scorer);

/// Float CNN scorer: the proposed multi-branch network for
/// `window_samples`-row windows, deterministically initialized from `seed`;
/// when `weights_path` is non-empty, trained weights are loaded over it.
std::unique_ptr<batch_scorer> make_cnn_scorer(std::size_t window_samples, std::uint64_t seed,
                                              const std::string& weights_path = "");

/// Int8 scorer: the same CNN post-training-quantized against calibration
/// windows synthesized from the loadgen motion profiles.
std::unique_ptr<batch_scorer> make_int8_scorer(std::size_t window_samples, std::uint64_t seed,
                                               const std::string& weights_path = "");

}  // namespace fallsense::serve
