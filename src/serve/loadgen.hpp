// Synthetic fleet-traffic generator for the serving layer.
//
// Synthesizes K independent wearers from the data-layer motion profiles
// (each session gets its own subject anthropometrics and a Table II task
// script, falls and ADLs mixed), replays them through a fleet_router at a
// fixed feed rate, and reports throughput, scoring volume, trigger and
// drop counts.  The scorer is built from the config's scorer_spec via
// make_scorer; with `swap_after_ticks` set, the run hot-swaps in a
// replacement scorer mid-stream (rebuilt from the same spec with a
// swap-derived seed) — the operational drill for a model rollout under
// live traffic.  Everything except the measured wall time is
// deterministic in (config, seed) for any FALLSENSE_THREADS — the
// property the fallsense_loadgen acceptance check pins by diffing 1- vs
// 4-thread manifests byte for byte.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "data/motion_profile.hpp"
#include "eval/eval.hpp"
#include "serve/fleet.hpp"
#include "serve/scorer_factory.hpp"

namespace fallsense::serve {

struct loadgen_config {
    std::size_t sessions = 64;
    /// Fleet ticks to run; every session is fed `feed_rate` samples per
    /// tick (streams wrap around, so sessions never starve).
    std::size_t ticks = 1000;
    std::uint64_t seed = 42;
    /// Samples offered per session per tick.  Above the engine's drain
    /// rate this saturates the queues and exercises the drop/reject
    /// policy (or the adaptive drain, when enabled).
    std::size_t feed_rate = 1;
    /// Every this many ticks, evict the oldest live session and admit a
    /// fresh one with a new synthesized stream (0 = no churn).  Exercises
    /// the create/evict lifecycle under load.
    std::size_t churn_every_ticks = 0;
    /// session_engine shards behind the fleet_router.
    std::size_t shards = 1;
    /// How the fleet scores each tick (fused batch vs per-shard replicas);
    /// does not change any deterministic output, only throughput.
    score_mode mode = score_mode::fused;
    /// Hot-swap the fleet scorer after this many ticks (0 = never): the
    /// replacement is rebuilt from `scorer` with a swap-derived seed.
    std::size_t swap_after_ticks = 0;
    /// How to build the scorer (window_samples is overridden with the
    /// engine's detector window before construction).
    scorer_spec scorer{};
    engine_config engine{};

    /// Named traffic scenario (data::make_profile): which task scripts
    /// the fleet cycles and how the streams are corrupted.  "baseline"
    /// replays the traffic every earlier release generated, byte for
    /// byte.  Unknown names throw data::unknown_profile_error.
    std::string scenario = "baseline";
    /// Run the event-level streaming evaluator (eval/stream.hpp) over the
    /// fleet's trigger stream against the synthesizer's ground truth,
    /// attach the report, and publish eval/* metrics.  Off by default:
    /// evaluation needs ground truth only the synthesizing side holds,
    /// so plain serving runs (and their wire-parity manifests) stay
    /// byte-identical.  Incompatible with `restore` — trigger history
    /// from before the snapshot is not replayed.
    bool stream_eval = false;
    /// Streaming-evaluator knobs (sample rate, detection grace, cost
    /// grid) used when `stream_eval` is set.
    eval::stream_eval_config eval_config{};

    // --- checkpointing hooks (serve stays codec-free: src/ckpt supplies
    //     the lambdas, e.g. ckpt::snapshot_to_file / restore_from_file;
    //     docs/checkpoint.md describes the resume contract) ---
    /// Every this many completed ticks, call `snapshot_sink` with the
    /// fleet at the tick boundary (0 = never).
    std::size_t snapshot_every_ticks = 0;
    std::function<void(const fleet_router&)> snapshot_sink;
    /// When set, called once on the freshly built (empty) fleet before any
    /// traffic; it must install a checkpoint.  The loadgen then derives
    /// everything else — completed ticks, stream cursors, churn history,
    /// scorer generation — from the restored fleet, and `ticks` counts the
    /// TOTAL run: a restore at tick T replays exactly ticks T..ticks-1, so
    /// the run is bit-identical to one that never stopped.
    std::function<void(fleet_router&)> restore;
};

/// One synthesized wearer's replay source: a motion-profile trial looped
/// endlessly (streams wrap around, so sessions never starve).
struct session_stream {
    std::vector<data::raw_sample> samples;
    std::size_t cursor = 0;
    /// Ground truth carried from the synthesizer: where the real fall
    /// sits in `samples` (recurring every loop), for the streaming
    /// evaluator.  Unset for ADL streams.
    std::optional<data::fall_annotation> fall;

    const data::raw_sample& next() {
        const data::raw_sample& s = samples[cursor];
        cursor = (cursor + 1) % samples.size();
        return s;
    }
};

/// The loadgen's initial fleet: stream i is a pure function of
/// (seed, i) — subject anthropometrics, Table II task mix, and sample
/// content all derive from it — so any consumer replaying these streams
/// in the same order (the in-process loadgen, or the wire client in
/// src/net/loadgen_client.hpp) produces identical traffic.
std::vector<session_stream> synthesize_fleet_streams(std::size_t sessions,
                                                     std::uint64_t seed);

/// Scenario-directed variant: cycle `profile.task_mix` over sessions and
/// apply `profile.perturb` to every synthesized stream (with a
/// perturbation-derived seed, consumed only when the profile perturbs —
/// the "baseline" profile reproduces the two-argument overload byte for
/// byte).  The two-argument overload forwards here with
/// data::make_profile("baseline").
std::vector<session_stream> synthesize_fleet_streams(std::size_t sessions,
                                                     std::uint64_t seed,
                                                     const data::scenario_profile& profile);

struct loadgen_report {
    std::size_t sessions = 0;
    std::size_t shards = 0;
    score_mode mode = score_mode::fused;
    std::uint64_t ticks = 0;
    std::uint64_t samples_offered = 0;
    std::uint64_t samples_accepted = 0;
    std::uint64_t samples_dropped = 0;
    std::uint64_t samples_rejected = 0;
    std::uint64_t samples_ingested = 0;
    std::uint64_t windows_scored = 0;
    std::uint64_t triggers = 0;
    std::uint64_t sessions_churned = 0;
    std::uint64_t swap_generation = 0;  ///< completed scorer swaps
    std::string scorer;  ///< batch_scorer::describe() of the initial scorer
    std::string scenario;  ///< named profile the streams were drawn from
    /// Present iff config.stream_eval: the event-level streaming report
    /// (its deterministic lines join deterministic_summary()).
    std::optional<eval::stream_eval_report> eval;

    /// Measured, varies run to run; everything above is deterministic.
    double wall_seconds = 0.0;

    double ticks_per_second() const;
    double session_ticks_per_second() const;  ///< sessions x ticks / s
    double windows_per_second() const;

    /// The deterministic fields, one `key: value` per line — what tests
    /// and the 1-vs-4-thread acceptance check compare verbatim.
    std::string deterministic_summary() const;
};

/// Replay `config.sessions` synthesized IMU streams through a fresh
/// fleet_router built on `make_scorer(config.scorer)`.
loadgen_report run_loadgen(const loadgen_config& config);

}  // namespace fallsense::serve
