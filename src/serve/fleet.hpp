// Sharded fleet router with atomic model hot-swap.
//
// `fleet_router` scales the session_engine horizontally: K engines
// ("shards"), each hosting a disjoint subset of the fleet, with sessions
// assigned by a deterministic hash of their router-global session id.  A
// router tick runs the engine sub-phases fleet-wide:
//
//   1. shard ingest — every shard runs `tick_ingest` as one thread-pool
//      task (per-shard state is disjoint, and the engine's own nested
//      parallel_for runs inline inside a pool task);
//   2. score — governed by `fleet_config::mode`:
//        fused (default): each shard's staged windows are copied, in
//        ascending shard order, into ONE row-major buffer scored by a
//        single `batch_scorer::score` call — the whole fleet's windows in
//        one GEMM;
//        per_shard: each shard scores its own staged windows inside its
//        pool task, using a private scorer replica (batch_scorer::clone),
//        writing into its disjoint slice of the shared score buffer — no
//        fleet-wide copy, K concurrent score calls;
//   3. shard apply — every shard applies its slice of the scores
//      (`tick_apply`) as one pool task; trigger lists are merged in
//      ascending shard order with shard-local session ids rewritten to
//      router-global ids.
//
// Phase offsets are a pure function of shard order, apply order within a
// shard is the engine's canonical order, and the merge order is fixed —
// so router output is bit-identical for any FALLSENSE_THREADS, the same
// contract the single engine carries.  The two score modes are also
// bit-identical to EACH OTHER: every scorer is deterministic per window
// (probability i depends only on window i), slice offsets match the fused
// batch offsets exactly, and replicas clone the installed scorer bit for
// bit.  Mode choice is pure throughput policy — see docs/serving.md.
//
// Hot-swap: the router owns the fleet's scorer.  `swap_scorer` installs a
// replacement strictly between ticks — every window staged at tick t is
// scored by the scorer installed at tick t, no window is ever dropped,
// split across models, or scored twice.  Each swap bumps a monotonic swap
// generation surfaced via `serve/swap_generation` / `serve/scorer_swaps`
// obs metrics (and therefore the run manifest).
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "serve/engine.hpp"

namespace fallsense::serve {

/// How the fleet scores a tick's staged windows (see file comment).
enum class score_mode {
    fused,      ///< one fleet-wide batch, one serial score call
    per_shard,  ///< one scorer replica per shard, K concurrent score calls
};

const char* score_mode_name(score_mode mode);
/// Parse "fused" / "per_shard" (also "per-shard"); else nullopt.
std::optional<score_mode> parse_score_mode(const std::string& text);

struct fleet_config {
    engine_config engine{};
    /// Number of session_engine shards (>= 1).
    std::size_t shards = 1;
    /// Scoring strategy; triggers and manifests are bit-identical across
    /// modes, so this only moves the throughput/latency trade-off.
    score_mode mode = score_mode::fused;
};

/// A whole fleet's state at a tick boundary — what fleet_router::snapshot
/// captures and restore rebuilds (src/ckpt serializes it, docs/checkpoint.md
/// is the normative byte layout).  Session checkpoints carry router-global
/// ids and appear in ascending id order; `live` indexes the dense global id
/// space so evicted ids keep their place (ids are never reused).
struct fleet_checkpoint {
    std::uint64_t ticks = 0;
    std::uint64_t swap_generation = 0;
    /// Shard count at capture time.  A restore into a router configured
    /// with a different count re-routes every session (rebalancing).
    std::uint32_t shard_count = 0;
    std::vector<std::uint8_t> live;  ///< index == global id, 1 = live
    std::vector<session_checkpoint> sessions;  ///< live only, ascending id
    /// Per capture-shard sample counters of sessions evicted before the
    /// snapshot (shard totals minus live-session sums).  Restored exactly
    /// when the shard count is unchanged; folded into shard 0 otherwise
    /// (fleet-wide totals — the observable surface — stay exact either way).
    std::vector<session_stats> retired;
};

/// Wall-clock microseconds of the last tick's phases, recorded every tick
/// (two steady_clock reads per phase, no allocation) so benches can report
/// per-phase costs without enabling the obs registry.
struct tick_timings {
    double ingest_us = 0.0;
    double score_us = 0.0;
    double apply_us = 0.0;
};

class fleet_router {
public:
    /// The router owns `scorer`.  In fused mode it is shared by every
    /// shard and called serially once per tick; in per_shard mode it is
    /// the pristine source the per-shard replicas are cloned from.
    fleet_router(const fleet_config& config, std::unique_ptr<batch_scorer> scorer);
    ~fleet_router();

    /// Admit a new session; returns a router-global id (never reused).
    /// Its shard is `shard_of(id)` for the life of the session.
    session_id create_session();
    void evict_session(session_id id);
    bool is_live(session_id id) const;

    /// Offer one sample; admission semantics are the owning shard's.
    bool feed(session_id id, const data::raw_sample& sample);

    /// Advance every shard one tick; triggers carry router-global ids,
    /// merged in ascending shard order (chronological within a session).
    tick_result tick();

    // --- checkpointing (tick boundaries only; see docs/checkpoint.md) ---
    /// Capture every session, the routing table, and the tick/swap
    /// counters.  Pure read; the fleet is untouched.
    fleet_checkpoint snapshot() const;
    /// Rebuild this fleet from a checkpoint: shards are reconstructed
    /// from scratch and every session is re-routed by the id hash under
    /// the CURRENT shard count, so restoring a K-shard checkpoint into an
    /// M-shard router is exactly a rebalance.  Existing sessions are
    /// discarded.  Touches no obs counters (the snapshot's obs image
    /// travels separately through src/ckpt); serve gauges are re-asserted
    /// to the restored truth.
    void restore(const fleet_checkpoint& cp);
    /// Deterministic shard resize: snapshot, re-route every session by the
    /// existing splitmix64 id hash over `new_shard_count` shards, restore.
    /// Call strictly between ticks.  The resized fleet continues
    /// bit-identically to a fleet that had `new_shard_count` shards from
    /// the start and saw the same traffic.
    void rebalance(std::size_t new_shard_count);
    /// Replace the fleet's scorer WITHOUT bumping the swap generation or
    /// touching obs — restore paths use this to reinstall the scorer
    /// generation a snapshot was taken under.  swap_scorer is this plus
    /// the generation bump and metrics.
    void install_scorer(std::unique_ptr<batch_scorer> next);

    /// Install `next` as the fleet's scorer for all subsequent ticks and
    /// bump the swap generation.  The previous scorer is destroyed.  In
    /// per_shard mode every shard replica is atomically rebuilt from the
    /// new scorer between ticks — no tick ever mixes models.
    void swap_scorer(std::unique_ptr<batch_scorer> next);
    /// Number of completed swaps (0 until the first swap_scorer call).
    std::uint64_t swap_generation() const { return swap_generation_; }

    std::size_t shard_count() const { return shards_.size(); }
    /// Deterministic shard index for a session id (stable across churn).
    std::size_t shard_of(session_id id) const;
    const session_engine& shard(std::size_t index) const;

    batch_scorer& scorer() { return *scorer_; }
    std::size_t live_session_count() const;
    std::size_t queue_depth(session_id id) const;
    std::size_t drain_rate(session_id id) const;
    float last_score(session_id id) const;
    const session_stats& stats(session_id id) const;
    /// Shard totals summed; `ticks` counts router ticks (not shard ticks).
    engine_stats totals() const;
    const fleet_config& config() const { return config_; }
    /// Per-phase wall-clock of the most recent tick().
    const tick_timings& last_tick_timings() const { return timings_; }

private:
    struct shard_slot;
    struct route {
        std::uint32_t shard = 0;
        session_id local = 0;  ///< id inside the shard's engine
        bool live = false;
    };

    const route& route_of(session_id id) const;
    void score_fused(std::size_t total_windows);
    void score_per_shard();

    fleet_config config_;
    std::unique_ptr<batch_scorer> scorer_;
    /// per_shard mode only: replicas_[s] is shard s's private scorer,
    /// rebuilt from scorer_ on every swap.  Empty in fused mode.
    std::vector<std::unique_ptr<batch_scorer>> replicas_;
    std::size_t window_elems_ = 0;
    std::vector<std::unique_ptr<shard_slot>> shards_;
    std::vector<route> routes_;  ///< index == router-global session id
    std::uint64_t ticks_ = 0;
    std::uint64_t swap_generation_ = 0;
    tick_timings timings_;
    // Tick scratch, reused across ticks.
    std::vector<float> batch_;
    std::vector<float> scores_;
    std::vector<std::size_t> nonempty_;  ///< shards with pending windows
};

}  // namespace fallsense::serve
