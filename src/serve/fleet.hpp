// Sharded fleet router with atomic model hot-swap.
//
// `fleet_router` scales the session_engine horizontally: K engines
// ("shards"), each hosting a disjoint subset of the fleet, with sessions
// assigned by a deterministic hash of their router-global session id.  A
// router tick runs the engine sub-phases fleet-wide:
//
//   1. shard ingest — every shard runs `tick_ingest` as one thread-pool
//      task (per-shard state is disjoint, and the engine's own nested
//      parallel_for runs inline inside a pool task);
//   2. fleet batch — each shard's staged windows are copied, in ascending
//      shard order, into ONE row-major buffer scored by a single
//      `batch_scorer::score` call — the whole fleet's windows in one GEMM;
//   3. shard apply — every shard applies its slice of the scores
//      (`tick_apply`) as one pool task; trigger lists are merged in
//      ascending shard order with shard-local session ids rewritten to
//      router-global ids.
//
// Phase offsets are a pure function of shard order, apply order within a
// shard is the engine's canonical order, and the merge order is fixed —
// so router output is bit-identical for any FALLSENSE_THREADS, the same
// contract the single engine carries.
//
// Hot-swap: the router owns the fleet's scorer.  `swap_scorer` installs a
// replacement strictly between ticks — every window staged at tick t is
// scored by the scorer installed at tick t, no window is ever dropped,
// split across models, or scored twice.  Each swap bumps a monotonic swap
// generation surfaced via `serve/swap_generation` / `serve/scorer_swaps`
// obs metrics (and therefore the run manifest).
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "serve/engine.hpp"

namespace fallsense::serve {

struct fleet_config {
    engine_config engine{};
    /// Number of session_engine shards (>= 1).
    std::size_t shards = 1;
};

class fleet_router {
public:
    /// The router owns `scorer` (shared by every shard; the fleet makes
    /// exactly one serial score call per tick, so no concurrent use).
    fleet_router(const fleet_config& config, std::unique_ptr<batch_scorer> scorer);
    ~fleet_router();

    /// Admit a new session; returns a router-global id (never reused).
    /// Its shard is `shard_of(id)` for the life of the session.
    session_id create_session();
    void evict_session(session_id id);
    bool is_live(session_id id) const;

    /// Offer one sample; admission semantics are the owning shard's.
    bool feed(session_id id, const data::raw_sample& sample);

    /// Advance every shard one tick; triggers carry router-global ids,
    /// merged in ascending shard order (chronological within a session).
    tick_result tick();

    /// Install `next` as the fleet's scorer for all subsequent ticks and
    /// bump the swap generation.  The previous scorer is destroyed.
    void swap_scorer(std::unique_ptr<batch_scorer> next);
    /// Number of completed swaps (0 until the first swap_scorer call).
    std::uint64_t swap_generation() const { return swap_generation_; }

    std::size_t shard_count() const { return shards_.size(); }
    /// Deterministic shard index for a session id (stable across churn).
    std::size_t shard_of(session_id id) const;
    const session_engine& shard(std::size_t index) const;

    batch_scorer& scorer() { return *scorer_; }
    std::size_t live_session_count() const;
    std::size_t queue_depth(session_id id) const;
    std::size_t drain_rate(session_id id) const;
    float last_score(session_id id) const;
    const session_stats& stats(session_id id) const;
    /// Shard totals summed; `ticks` counts router ticks (not shard ticks).
    engine_stats totals() const;
    const fleet_config& config() const { return config_; }

private:
    struct shard_slot;
    struct route {
        std::uint32_t shard = 0;
        session_id local = 0;  ///< id inside the shard's engine
        bool live = false;
    };

    const route& route_of(session_id id) const;

    fleet_config config_;
    std::unique_ptr<batch_scorer> scorer_;
    std::size_t window_elems_ = 0;
    std::vector<std::unique_ptr<shard_slot>> shards_;
    std::vector<route> routes_;  ///< index == router-global session id
    std::uint64_t ticks_ = 0;
    std::uint64_t swap_generation_ = 0;
    // Tick scratch, reused across ticks.
    std::vector<float> batch_;
    std::vector<float> scores_;
};

}  // namespace fallsense::serve
