#include "serve/scorer_factory.hpp"

#include "core/models.hpp"
#include "core/windowing.hpp"
#include "data/generator.hpp"
#include "data/synthesizer.hpp"
#include "nn/serialize.hpp"
#include "quant/cnn_spec.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fallsense::serve {

namespace {

/// Short holds keep the calibration streams a few hundred samples long —
/// calibration needs the fleet's dynamic range, not long trials (the same
/// tuning the loadgen replays with).
data::motion_tuning calibration_tuning() {
    data::motion_tuning tuning;
    tuning.static_hold_s = 1.5;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.0;
    return tuning;
}

std::unique_ptr<nn::multi_branch_network> build_model(const scorer_spec& spec) {
    auto model = core::build_fallsense_cnn(spec.window_samples,
                                           util::derive_seed(spec.seed, "serve/model"));
    if (!spec.weights_path.empty()) nn::load_weights_file(*model, spec.weights_path);
    return model;
}

std::unique_ptr<batch_scorer> make_int8(const scorer_spec& spec) {
    const auto model = build_model(spec);

    // Calibration: windows from one ADL and one fall stream, the dynamic
    // range the fleet will actually produce.
    std::vector<data::trial> calib_trials;
    const std::vector<data::subject_profile> subjects =
        data::sample_subjects(2, 0, util::derive_seed(spec.seed, "serve/calib"));
    util::rng gen(util::derive_seed(spec.seed, "serve/calib/trials"));
    calib_trials.push_back(data::synthesize_task(6, subjects[0], calibration_tuning(),
                                                 data::synthesis_config{}, gen));
    calib_trials.push_back(data::synthesize_task(30, subjects[1], calibration_tuning(),
                                                 data::synthesis_config{}, gen));
    core::windowing_config wc;
    wc.segmentation.window_samples = spec.window_samples;
    wc.segmentation.overlap_fraction = 0.5;
    const nn::labeled_data calib = core::to_labeled_data(
        core::extract_windows(calib_trials, wc), spec.window_samples);
    FS_CHECK(calib.size() > 0, "int8 scorer calibration produced no windows");

    const quant::cnn_spec qspec = quant::extract_cnn_spec(*model, spec.window_samples);
    auto qmodel = std::make_shared<const quant::quantized_cnn>(qspec, calib.features);
    return std::make_unique<int8_cnn_scorer>(std::move(qmodel));
}

}  // namespace

const char* scorer_backend_name(scorer_backend backend) {
    switch (backend) {
        case scorer_backend::float32: return "float";
        case scorer_backend::int8: return "int8";
        case scorer_backend::callback: return "callback";
    }
    return "?";
}

std::optional<scorer_backend> parse_scorer_backend(const std::string& text) {
    if (text == "float" || text == "float32" || text == "cnn-float") {
        return scorer_backend::float32;
    }
    if (text == "int8" || text == "cnn-int8") return scorer_backend::int8;
    if (text == "callback") return scorer_backend::callback;
    return std::nullopt;
}

std::unique_ptr<batch_scorer> make_scorer(const scorer_spec& spec) {
    FS_ARG_CHECK(spec.window_samples > 0, "scorer window_samples must be positive");
    switch (spec.backend) {
        case scorer_backend::float32:
            return std::make_unique<float_cnn_scorer>(build_model(spec),
                                                      spec.window_samples);
        case scorer_backend::int8:
            return make_int8(spec);
        case scorer_backend::callback:
            FS_ARG_CHECK(spec.callback != nullptr,
                         "callback scorer spec needs a callback");
            return std::make_unique<callback_batch_scorer>(spec.callback, spec.label);
    }
    FS_ARG_CHECK(false, "unknown scorer backend");
    return nullptr;  // unreachable
}

std::vector<std::unique_ptr<batch_scorer>> make_scorer_replicas(const batch_scorer& source,
                                                                std::size_t count) {
    FS_ARG_CHECK(count > 0, "scorer replica count must be positive");
    std::vector<std::unique_ptr<batch_scorer>> replicas;
    replicas.reserve(count);
    for (std::size_t i = 0; i < count; ++i) replicas.push_back(source.clone());
    return replicas;
}

}  // namespace fallsense::serve
