#include "nn/dense.hpp"

#include <sstream>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

dense::dense(std::size_t in_features, std::size_t out_features, util::rng& gen, bool relu_fan,
             std::string name)
    : in_(in_features),
      out_(out_features),
      weight_(name + ".weight", {in_features, out_features}),
      bias_(name + ".bias", {out_features}) {
    FS_ARG_CHECK(in_features > 0 && out_features > 0, "dense layer with zero features");
    if (relu_fan) {
        he_normal(weight_.value, in_, gen);
    } else {
        glorot_uniform(weight_.value, in_, out_, gen);
    }
}

tensor dense::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 2, "dense expects [batch, features], got " +
                                        shape_to_string(input.shape()));
    FS_ARG_CHECK(input.dim(1) == in_, "dense input feature mismatch");
    const std::size_t batch = input.dim(0);
    input_cache_ = input;

    // Bias seeding is fused into the GEMM row tasks (per element the same
    // seed-then-accumulate sequence the old separate prefill pass ran).
    tensor out({batch, out_});
    gemm_nn_bias_act(batch, out_, in_, input.data(), weight_.value.data(),
                     bias_.value.data(), fused_act::none, out.data());
    return out;
}

void dense::forward_into(std::span<const float> in, const shape_t& input_shape,
                         std::size_t batch, std::span<float> workspace,
                         std::span<float> out) {
    forward_into_fused(in, input_shape, batch, workspace, out, fused_act::none);
}

void dense::forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                               std::size_t batch, std::span<float> /*workspace*/,
                               std::span<float> out, fused_act act) {
    FS_ARG_CHECK(input_shape.size() == 1 && input_shape[0] == in_,
                 "dense forward_into: input shape mismatch");
    FS_ARG_CHECK(in.size() >= batch * in_ && out.size() >= batch * out_,
                 "dense forward_into: buffer too small");
    // Same math as forward — bias seed, accumulating GEMM — with any fused
    // activation applied per row block while the tile is hot.
    gemm_nn_bias_act(batch, out_, in_, in.data(), weight_.value.data(),
                     bias_.value.data(), act, out.data());
}

tensor dense::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "dense backward before forward");
    FS_ARG_CHECK(grad_output.rank() == 2 && grad_output.dim(1) == out_,
                 "dense grad_output shape mismatch");
    const std::size_t batch = grad_output.dim(0);
    FS_ARG_CHECK(batch == input_cache_.dim(0), "dense grad_output batch mismatch");

    const float* gy = grad_output.data();

    // Bias gradient: serial over the batch, legacy accumulation order.
    float* gb = bias_.grad.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* gyn = gy + n * out_;
        for (std::size_t o = 0; o < out_; ++o) gb[o] += gyn[o];
    }

    // Weight gradient: xᵀ · gy with the deterministic chunked reduction.
    gemm_tn_acc(in_, out_, batch, input_cache_.data(), gy, weight_.grad.data());

    // Input gradient: gy · Wᵀ.  wt_scratch_ grows once and is reused.
    wt_scratch_.resize(out_ * in_);
    transpose(in_, out_, weight_.value.data(), wt_scratch_.data());
    tensor grad_input({batch, in_});
    gemm_nn(batch, in_, out_, gy, wt_scratch_.data(), grad_input.data(),
            /*accumulate=*/false);
    return grad_input;
}

std::string dense::describe() const {
    std::ostringstream os;
    os << "dense(" << in_ << " -> " << out_ << ")";
    return os.str();
}

shape_t dense::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 1 && input_shape[0] == in_,
                 "dense output_shape: input mismatch");
    return {out_};
}

}  // namespace fallsense::nn
