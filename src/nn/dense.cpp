#include "nn/dense.hpp"

#include <sstream>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::nn {

dense::dense(std::size_t in_features, std::size_t out_features, util::rng& gen, bool relu_fan,
             std::string name)
    : in_(in_features),
      out_(out_features),
      weight_(name + ".weight", {in_features, out_features}),
      bias_(name + ".bias", {out_features}) {
    FS_ARG_CHECK(in_features > 0 && out_features > 0, "dense layer with zero features");
    if (relu_fan) {
        he_normal(weight_.value, in_, gen);
    } else {
        glorot_uniform(weight_.value, in_, out_, gen);
    }
}

tensor dense::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 2, "dense expects [batch, features], got " +
                                        shape_to_string(input.shape()));
    FS_ARG_CHECK(input.dim(1) == in_, "dense input feature mismatch");
    const std::size_t batch = input.dim(0);
    input_cache_ = input;

    tensor out({batch, out_});
    const float* b = bias_.value.data();
    float* y = out.data();
    util::parallel_for(0, batch, 64, [&](std::size_t n) {
        float* yn = y + n * out_;
        for (std::size_t o = 0; o < out_; ++o) yn[o] = b[o];
    });
    gemm_nn(batch, out_, in_, input.data(), weight_.value.data(), y, /*accumulate=*/true);
    return out;
}

void dense::forward_into(std::span<const float> in, const shape_t& input_shape,
                         std::size_t batch, std::span<float> /*workspace*/,
                         std::span<float> out) {
    FS_ARG_CHECK(input_shape.size() == 1 && input_shape[0] == in_,
                 "dense forward_into: input shape mismatch");
    FS_ARG_CHECK(in.size() >= batch * in_ && out.size() >= batch * out_,
                 "dense forward_into: buffer too small");
    // Same math as forward: bias prefill, then the accumulating GEMM.
    const float* b = bias_.value.data();
    for (std::size_t n = 0; n < batch; ++n) {
        float* yn = out.data() + n * out_;
        for (std::size_t o = 0; o < out_; ++o) yn[o] = b[o];
    }
    gemm_nn(batch, out_, in_, in.data(), weight_.value.data(), out.data(),
            /*accumulate=*/true);
}

tensor dense::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "dense backward before forward");
    FS_ARG_CHECK(grad_output.rank() == 2 && grad_output.dim(1) == out_,
                 "dense grad_output shape mismatch");
    const std::size_t batch = grad_output.dim(0);
    FS_ARG_CHECK(batch == input_cache_.dim(0), "dense grad_output batch mismatch");

    const float* gy = grad_output.data();

    // Bias gradient: serial over the batch, legacy accumulation order.
    float* gb = bias_.grad.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* gyn = gy + n * out_;
        for (std::size_t o = 0; o < out_; ++o) gb[o] += gyn[o];
    }

    // Weight gradient: xᵀ · gy with the deterministic chunked reduction.
    gemm_tn_acc(in_, out_, batch, input_cache_.data(), gy, weight_.grad.data());

    // Input gradient: gy · Wᵀ.
    std::vector<float> wt(out_ * in_);
    transpose(in_, out_, weight_.value.data(), wt.data());
    tensor grad_input({batch, in_});
    gemm_nn(batch, in_, out_, gy, wt.data(), grad_input.data(), /*accumulate=*/false);
    return grad_input;
}

std::string dense::describe() const {
    std::ostringstream os;
    os << "dense(" << in_ << " -> " << out_ << ")";
    return os.str();
}

shape_t dense::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 1 && input_shape[0] == in_,
                 "dense output_shape: input mismatch");
    return {out_};
}

}  // namespace fallsense::nn
