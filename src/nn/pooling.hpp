// Temporal max pooling over [batch, time, channels].
//
// Pool size == stride (non-overlapping), trailing remainder dropped —
// matching Keras MaxPooling1D defaults used by the paper's model.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fallsense::nn {

class maxpool1d : public layer {
public:
    explicit maxpool1d(std::size_t pool_size);

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    layer_kind kind() const override { return layer_kind::maxpool1d; }
    layer_ptr clone() const override { return std::make_unique<maxpool1d>(pool_); }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

    std::size_t pool_size() const { return pool_; }

private:
    std::size_t pool_;
    shape_t input_shape_cache_;
    std::vector<std::size_t> argmax_;  ///< flat input index of each output element
};

}  // namespace fallsense::nn
