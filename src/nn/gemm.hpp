// Row-major single-precision GEMM micro-kernels and the im2col/col2im
// lowering that turns conv1d into matrix multiplication.
//
// The training layers (conv1d, dense) route their forward and backward
// passes through these kernels.  Two properties are guaranteed:
//
//   * Every output element is a serial sum over the reduction dimension in
//     ascending index order (register blocking tiles rows x columns, never
//     the reduction), so forward results are bit-identical to the legacy
//     naive loops.
//   * The gradient reduction `gemm_tn_acc` splits the reduction dimension
//     into fixed-size chunks (a function of the problem shape only), has
//     each chunk produce a partial in private scratch, and adds partials in
//     chunk-index order — bit-identical results for any thread count.
//
// Layouts match the layers: conv1d weights are [kernel, in_ch, out_ch]
// (flattened [kernel*in_ch, out_ch]), dense weights [in, out], activations
// row-major with the batch outermost.
//
// gemm_nn and gemm_nn_bias_act dispatch per call between the scalar loops
// and vectorized row kernels (nn/simd.hpp: avx512 / avx2-fma / neon).
// Scalar mode reproduces the legacy results bit for bit; native mode keeps
// the same serial ascending-k order per element but fuses multiply-add
// (FMA), so float results agree to rounding, not bits.  Every vector
// backend issues the identical per-(row, j) fmadd sequence, so native
// results are bit-identical ACROSS backends.  Within one mode, results
// stay independent of thread count and of where a row sits in the batch.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fallsense::nn {

/// Activation a fused GEMM epilogue applies while the output tile is hot.
/// `relu` and `sigmoid` reproduce the standalone activation layers'
/// element operations exactly: relu is `x > 0 ? x : 0` in scalar mode and
/// max(x, 0) in vector mode (identical on all non-NaN inputs and across
/// vector backends); sigmoid always runs sigmoid_scalar per element, in
/// every mode, so fusing it never changes a probability.
enum class fused_act : std::uint8_t {
    none,
    relu,
    sigmoid,
};

const char* fused_act_name(fused_act act);

/// C[m x n] = A[m x k] · B[k x n], plus C's prior contents when
/// `accumulate`.  Parallel over row blocks; each element is a serial
/// ascending-k sum seeded with the prior C value.
void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
             float* c, bool accumulate);

/// Fused-epilogue GEMM: C[m x n] = act(A[m x k] · B[k x n] + bias[n]),
/// with the bias broadcast across rows and the activation applied while
/// each row block is still hot.  Per element this is exactly the unfused
/// sequence — bias seed, ascending-k accumulation, activation — executed
/// by the row task that owns the block, so scalar-mode results are
/// bit-identical to (bias prefill; gemm_nn accumulate; activation pass)
/// and native-mode results are bit-identical to the unfused native path.
void gemm_nn_bias_act(std::size_t m, std::size_t n, std::size_t k, const float* a,
                      const float* b, const float* bias, fused_act act, float* c);

/// The int8 GEMM inner update: acc[0..n) += xv · w[0..n) with exact int32
/// accumulation.  Returns the kernel for the active simd backend; callers
/// hoist the lookup out of their loops.  All kernels are bit-identical
/// (integer sums are exact), so int8 inference does not depend on the
/// dispatch setting.
using q8_axpy_fn = void (*)(std::size_t n, std::int32_t xv, const std::int8_t* w,
                            std::int32_t* acc);
q8_axpy_fn q8_axpy_kernel();

/// C[m x n] += A[k x m]ᵀ · B[k x n] — the weight-gradient product (reduction
/// over the batch·time dimension k).  Deterministic chunked reduction; see
/// the file comment.  Dispatches like gemm_nn: scalar mode reproduces the
/// legacy gradient bits, native mode uses per-backend fmadd rank-1 updates
/// with the same chunk boundaries and reduction order, so gradients are
/// bit-identical across thread counts per backend (and across vector
/// backends).  Reuses a thread-local partial buffer: steady-state training
/// steps perform no allocation here.
void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
                 float* c);

/// Transpose src[rows x cols] into dst[cols x rows].
void transpose(std::size_t rows, std::size_t cols, const float* src, float* dst);

/// Valid-padding stride-1 im2col for [batch, time, ch] inputs: row
/// (n·out_time + t) of `col` is the contiguous slice x[n, t .. t+kernel-1, :]
/// of length kernel·ch.  `col` must hold batch·out_time·kernel·ch floats.
void im2col(const float* x, std::size_t batch, std::size_t time, std::size_t ch,
            std::size_t kernel, float* col);

/// Scatter-accumulate the inverse of im2col: gx[n, t+k, c] += gcol row
/// segments.  gx must be zero-initialized (or hold a prior gradient);
/// parallel over the batch, serial over overlapping time steps.
void col2im_acc(const float* gcol, std::size_t batch, std::size_t time, std::size_t ch,
                std::size_t kernel, float* gx);

/// Reference kernels: the pre-GEMM naive loops, kept verbatim as the ground
/// truth for tests (1e-5 agreement) and the baseline for the GEMM-vs-naive
/// micro-benchmarks.  Single-threaded by construction.
namespace reference {

/// y[batch, out_time, out_ch] from x[batch, time, in_ch], w[kernel, in_ch,
/// out_ch], b[out_ch]; out_time = time - kernel + 1.
void conv1d_forward(const float* x, const float* w, const float* b, std::size_t batch,
                    std::size_t time, std::size_t in_ch, std::size_t out_ch,
                    std::size_t kernel, float* y);

/// Accumulates gw/gb and writes gx (gx must be zero on entry).
void conv1d_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                     std::size_t time, std::size_t in_ch, std::size_t out_ch,
                     std::size_t kernel, float* gx, float* gw, float* gb);

/// y[batch, out] from x[batch, in], w[in, out], b[out].
void dense_forward(const float* x, const float* w, const float* b, std::size_t batch,
                   std::size_t in, std::size_t out, float* y);

/// Accumulates gw/gb and writes gx.
void dense_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                    std::size_t in, std::size_t out, float* gx, float* gw, float* gb);

}  // namespace reference

}  // namespace fallsense::nn
