#include "nn/optimizer.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::nn {

optimizer::optimizer(std::vector<parameter*> params) : params_(std::move(params)) {
    FS_ARG_CHECK(!params_.empty(), "optimizer with no parameters");
    for (const parameter* p : params_) FS_ARG_CHECK(p != nullptr, "null parameter");
}

void optimizer::zero_grad() {
    for (parameter* p : params_) p->zero_grad();
}

sgd::sgd(std::vector<parameter*> params, double learning_rate, double momentum)
    : optimizer(std::move(params)), lr_(learning_rate), momentum_(momentum) {
    FS_ARG_CHECK(lr_ > 0.0, "learning rate must be positive");
    FS_ARG_CHECK(momentum_ >= 0.0 && momentum_ < 1.0, "momentum must be in [0, 1)");
    velocity_.reserve(params_.size());
    for (const parameter* p : params_) velocity_.emplace_back(p->value.shape());
}

void sgd::step() {
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        parameter& p = *params_[pi];
        tensor& vel = velocity_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            vel[i] = static_cast<float>(momentum_ * vel[i] - lr_ * p.grad[i]);
            p.value[i] += vel[i];
        }
        p.zero_grad();
    }
}

adam::adam(std::vector<parameter*> params, double learning_rate, double beta1, double beta2,
           double epsilon)
    : optimizer(std::move(params)),
      lr_(learning_rate),
      beta1_(beta1),
      beta2_(beta2),
      epsilon_(epsilon) {
    FS_ARG_CHECK(lr_ > 0.0, "learning rate must be positive");
    FS_ARG_CHECK(beta1_ >= 0.0 && beta1_ < 1.0, "beta1 must be in [0, 1)");
    FS_ARG_CHECK(beta2_ >= 0.0 && beta2_ < 1.0, "beta2 must be in [0, 1)");
    FS_ARG_CHECK(epsilon_ > 0.0, "epsilon must be positive");
    m_.reserve(params_.size());
    v_.reserve(params_.size());
    for (const parameter* p : params_) {
        m_.emplace_back(p->value.shape());
        v_.emplace_back(p->value.shape());
    }
}

void adam::step() {
    ++t_;
    const double bias1 = 1.0 - std::pow(beta1_, static_cast<double>(t_));
    const double bias2 = 1.0 - std::pow(beta2_, static_cast<double>(t_));
    const double alpha = lr_ * std::sqrt(bias2) / bias1;
    for (std::size_t pi = 0; pi < params_.size(); ++pi) {
        parameter& p = *params_[pi];
        tensor& m = m_[pi];
        tensor& v = v_[pi];
        for (std::size_t i = 0; i < p.value.size(); ++i) {
            const double g = p.grad[i];
            m[i] = static_cast<float>(beta1_ * m[i] + (1.0 - beta1_) * g);
            v[i] = static_cast<float>(beta2_ * v[i] + (1.0 - beta2_) * g * g);
            p.value[i] -= static_cast<float>(alpha * m[i] / (std::sqrt(static_cast<double>(v[i])) + epsilon_));
        }
        p.zero_grad();
    }
}

}  // namespace fallsense::nn
