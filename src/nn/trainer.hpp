// Training loop implementing the paper's procedure (Section III-C):
//   - mini-batch Adam on weighted binary cross-entropy,
//   - class weights derived from the label imbalance,
//   - output-layer bias initialized to log(p / (1 - p)) (Eq. 1-2),
//   - up to `max_epochs` epochs with early stopping (patience on validation
//     loss) and restoration of the best-epoch weights.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "nn/layer.hpp"
#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

/// A supervised batch: `features` is [N, ...] and `labels` has one 0/1
/// entry per leading-dimension row.
struct labeled_data {
    tensor features;
    std::vector<float> labels;

    std::size_t size() const { return labels.size(); }
    /// Fraction of positive (fall) labels.
    double positive_fraction() const;
    void validate() const;  ///< throws unless features rows == labels count
};

/// Select rows of a batched tensor (copies).
tensor gather_rows(const tensor& batched, std::span<const std::size_t> row_indices);

/// gather_rows into a caller-owned tensor: `out` is reshaped only when the
/// selection shape changes, so steady-state training batches reuse its
/// storage and perform no heap allocation.
void gather_rows_into(const tensor& batched, std::span<const std::size_t> row_indices,
                      tensor& out);

struct train_config {
    std::size_t max_epochs = 200;
    std::size_t batch_size = 64;
    double learning_rate = 1e-3;
    std::size_t early_stop_patience = 20;  ///< 0 disables early stopping
    bool use_class_weights = true;
    bool init_output_bias = true;  ///< Eq. (1): b = log(p / (1-p))
    std::uint64_t shuffle_seed = 1;
    bool verbose = false;
    /// Prefix for the metrics this fit emits (obs registry).  Callers that
    /// train several models in one process — parallel folds above all —
    /// give each fit its own prefix so gauges never race across threads.
    std::string metrics_prefix = "train";
};

struct train_history {
    std::vector<double> train_loss;  ///< one entry per completed epoch
    std::vector<double> val_loss;
    std::size_t best_epoch = 0;  ///< epoch index whose weights were restored
    bool stopped_early = false;
    double weight_positive = 1.0;  ///< class weights actually used
    double weight_negative = 1.0;
};

/// Balanced class weights (Keras convention): w_c = N / (2 * N_c).
/// Falls back to 1/1 when a class is absent.
std::pair<double, double> balanced_class_weights(std::span<const float> labels);

/// Snapshot / restore all parameter values (used by early stopping and by
/// tests that need weight rollback).
std::vector<tensor> snapshot_parameters(model& m);
void restore_parameters(model& m, const std::vector<tensor>& snapshot);

class optimizer;

/// Reusable buffers for train_step: the gathered feature batch and its
/// label slice, grown once to the batch-size high-water mark.  Together
/// with the tensor buffer pool and the kernels' thread-local scratch this
/// makes steady-state train steps allocation-free
/// (tests/serve/alloc_test.cpp pins this).
struct train_step_scratch {
    tensor batch;               ///< gathered feature rows
    std::vector<float> labels;  ///< matching label slice
};

/// One optimizer step on the selected rows: gather → forward(training) →
/// weighted BCE → backward → optim.step().  This is the unit `fit` loops
/// over; the whole step runs through the dispatched kernels (gemm_nn /
/// gemm_tn_acc honor the active simd backend), so gradients are
/// bit-identical across FALLSENSE_THREADS per backend.  Returns the mean
/// weighted batch loss.
double train_step(model& m, const labeled_data& data,
                  std::span<const std::size_t> row_indices, double weight_positive,
                  double weight_negative, optimizer& optim, train_step_scratch& scratch);

/// Fit `m` on `train` with early stopping against `validation`.
/// `validation` may be empty (then early stopping monitors training loss).
train_history fit(model& m, const labeled_data& train, const labeled_data& validation,
                  const train_config& config);

/// Sigmoid probabilities for every row of `features`, evaluated in chunks so
/// memory stays bounded.
std::vector<float> predict_proba(model& m, const tensor& features,
                                 std::size_t batch_size = 256);

/// Batch-scoring entry point for serving (src/serve): score `count`
/// row-major samples of shape `row_shape` laid out back to back in `rows`
/// and write one sigmoid probability per sample into `out`.  Avoids the
/// caller-built tensor and result allocation of `predict_proba`; evaluated
/// in chunks of `batch_size` rows.  Because every GEMM output element is a
/// serial ascending-k sum (src/nn/gemm.hpp), each probability is
/// bit-identical to scoring that sample alone, for any chunking and any
/// FALLSENSE_THREADS.
void predict_proba_rows(model& m, std::span<const float> rows, std::size_t count,
                        const shape_t& row_shape, std::span<float> out,
                        std::size_t batch_size = 256);

/// Reusable buffers for the scratch overload of predict_proba_rows: the
/// model's workspace arena (layer activations + scratch, laid out by the
/// model's inference plan) and the chunk logit buffer, grown once to the
/// high-water mark and reused so steady-state batch scoring performs zero
/// heap allocations (the serving tick's contract, tests/serve/alloc_test).
struct predict_scratch {
    std::vector<float> arena;   ///< model forward_into workspace
    std::vector<float> logits;  ///< one logit per chunk row
};

/// predict_proba_rows with caller-owned scratch, routed through the
/// model's allocation-free forward_into.  Bit-identical to the allocating
/// overload — the arena only changes where intermediates live, never what
/// is computed.
void predict_proba_rows(model& m, std::span<const float> rows, std::size_t count,
                        const shape_t& row_shape, std::span<float> out,
                        predict_scratch& scratch, std::size_t batch_size = 256);

}  // namespace fallsense::nn
