#include "nn/sequential.hpp"

#include <algorithm>
#include <cstring>
#include <sstream>

#include "nn/simd.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

namespace {

/// The fused epilogue a pure activation layer corresponds to, or none for
/// any layer that is not a fusable activation.
fused_act fusable_activation(layer_kind kind) {
    if (kind == layer_kind::relu) return fused_act::relu;
    if (kind == layer_kind::sigmoid) return fused_act::sigmoid;
    return fused_act::none;
}

}  // namespace

sequential& sequential::add(layer_ptr new_layer) {
    FS_ARG_CHECK(new_layer != nullptr, "sequential::add(nullptr)");
    layers_.push_back(std::move(new_layer));
    return *this;
}

tensor sequential::forward(const tensor& input, bool training) {
    tensor current = input;
    for (const auto& l : layers_) current = l->forward(current, training);
    return current;
}

tensor sequential::backward(const tensor& grad_output) {
    tensor grad = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
    return grad;
}

std::vector<parameter*> sequential::parameters() {
    std::vector<parameter*> params;
    for (const auto& l : layers_) {
        for (parameter* p : l->parameters()) params.push_back(p);
    }
    return params;
}

std::string sequential::summary() const {
    std::ostringstream os;
    os << "sequential {\n";
    for (const auto& l : layers_) os << "  " << l->describe() << '\n';
    os << "}";
    return os.str();
}

shape_t sequential::output_shape(const shape_t& input_shape) const {
    shape_t shape = input_shape;
    for (const auto& l : layers_) shape = l->output_shape(shape);
    return shape;
}

const sequential::infer_plan& sequential::ensure_plan(const shape_t& row_shape,
                                                      std::size_t batch) {
    const bool fusion = epilogue_fusion_enabled();
    if (batch <= plan_.batch_capacity && row_shape == plan_.row_shape &&
        plan_.stage_shapes.size() == layers_.size() + 1 && plan_.fusion == fusion) {
        return plan_;
    }
    const std::size_t capacity = std::max(batch, plan_.batch_capacity);
    plan_.row_shape = row_shape;
    plan_.batch_capacity = capacity;
    plan_.fusion = fusion;
    plan_.stage_shapes.clear();
    plan_.stage_shapes.push_back(row_shape);
    plan_.fused.assign(layers_.size(), fused_act::none);
    plan_.skip.assign(layers_.size(), 0);
    shape_t shape = row_shape;
    std::size_t max_volume = shape_volume(shape);
    std::size_t scratch = 0;
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const layer& l = *layers_[i];
        const std::size_t bytes = l.infer_workspace_bytes(shape, capacity);
        scratch = std::max(scratch, (bytes + sizeof(float) - 1) / sizeof(float));
        shape = l.output_shape(shape);
        plan_.stage_shapes.push_back(shape);
        max_volume = std::max(max_volume, shape_volume(shape));
        if (fusion && i + 1 < layers_.size()) {
            const fused_act act = fusable_activation(layers_[i + 1]->kind());
            if (act != fused_act::none && l.can_fuse(act)) {
                plan_.fused[i] = act;
                plan_.skip[i + 1] = 1;
            }
        }
    }
    plan_.ping_floats = capacity * max_volume;
    plan_.scratch_floats = scratch;
    return plan_;
}

std::size_t sequential::infer_workspace_bytes(const shape_t& row_shape, std::size_t batch) {
    const infer_plan& plan = ensure_plan(row_shape, batch);
    return (2 * plan.ping_floats + plan.scratch_floats) * sizeof(float);
}

void sequential::forward_into(std::span<const float> input, const shape_t& row_shape,
                              std::size_t batch, std::span<float> workspace,
                              std::span<float> out) {
    const infer_plan& plan = ensure_plan(row_shape, batch);
    FS_ARG_CHECK(input.size() >= batch * shape_volume(row_shape),
                 "sequential forward_into: input too small");
    FS_ARG_CHECK(workspace.size() >= 2 * plan.ping_floats + plan.scratch_floats,
                 "sequential forward_into: workspace too small");
    float* const ping[2] = {workspace.data(), workspace.data() + plan.ping_floats};
    const std::span<float> scratch =
        workspace.subspan(2 * plan.ping_floats, plan.scratch_floats);

    // Walk the stack through the two activation buffers.  In-place layers
    // rewrite the buffer they are in; the caller's input span is never
    // written, so the first in-place layer still bounces into a buffer.
    const float* cur = input.data();
    int cur_buf = -1;  // -1: still the caller's input
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        if (plan.skip[i]) continue;  // activation fused into the previous layer
        layer& l = *layers_[i];
        const fused_act act = plan.fused[i];
        const shape_t& in_shape = plan.stage_shapes[i];
        const std::size_t in_count = batch * shape_volume(in_shape);
        const std::size_t out_count = batch * shape_volume(plan.stage_shapes[i + 1]);
        if (l.infer_in_place() && cur_buf >= 0) {
            l.forward_into_fused(std::span<const float>(cur, in_count), in_shape, batch,
                                 scratch, std::span<float>(ping[cur_buf], out_count), act);
        } else {
            const int next_buf = cur_buf == 0 ? 1 : 0;
            l.forward_into_fused(std::span<const float>(cur, in_count), in_shape, batch,
                                 scratch, std::span<float>(ping[next_buf], out_count), act);
            cur_buf = next_buf;
            cur = ping[next_buf];
        }
    }
    const std::size_t final_count = batch * shape_volume(plan.stage_shapes.back());
    FS_ARG_CHECK(out.size() >= final_count, "sequential forward_into: output too small");
    if (out.data() != cur) std::memcpy(out.data(), cur, final_count * sizeof(float));
}

std::unique_ptr<sequential> sequential::clone_stack() const {
    auto copy = std::make_unique<sequential>();
    for (const auto& l : layers_) copy->add(l->clone());
    return copy;
}

layer& sequential::layer_at(std::size_t i) {
    FS_ARG_CHECK(i < layers_.size(), "sequential layer index out of range");
    return *layers_[i];
}

const layer& sequential::layer_at(std::size_t i) const {
    FS_ARG_CHECK(i < layers_.size(), "sequential layer index out of range");
    return *layers_[i];
}

}  // namespace fallsense::nn
