#include "nn/sequential.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fallsense::nn {

sequential& sequential::add(layer_ptr new_layer) {
    FS_ARG_CHECK(new_layer != nullptr, "sequential::add(nullptr)");
    layers_.push_back(std::move(new_layer));
    return *this;
}

tensor sequential::forward(const tensor& input, bool training) {
    tensor current = input;
    for (const auto& l : layers_) current = l->forward(current, training);
    return current;
}

tensor sequential::backward(const tensor& grad_output) {
    tensor grad = grad_output;
    for (auto it = layers_.rbegin(); it != layers_.rend(); ++it) grad = (*it)->backward(grad);
    return grad;
}

std::vector<parameter*> sequential::parameters() {
    std::vector<parameter*> params;
    for (const auto& l : layers_) {
        for (parameter* p : l->parameters()) params.push_back(p);
    }
    return params;
}

std::string sequential::summary() const {
    std::ostringstream os;
    os << "sequential {\n";
    for (const auto& l : layers_) os << "  " << l->describe() << '\n';
    os << "}";
    return os.str();
}

shape_t sequential::output_shape(const shape_t& input_shape) const {
    shape_t shape = input_shape;
    for (const auto& l : layers_) shape = l->output_shape(shape);
    return shape;
}

std::unique_ptr<sequential> sequential::clone_stack() const {
    auto copy = std::make_unique<sequential>();
    for (const auto& l : layers_) copy->add(l->clone());
    return copy;
}

layer& sequential::layer_at(std::size_t i) {
    FS_ARG_CHECK(i < layers_.size(), "sequential layer index out of range");
    return *layers_[i];
}

const layer& sequential::layer_at(std::size_t i) const {
    FS_ARG_CHECK(i < layers_.size(), "sequential layer index out of range");
    return *layers_[i];
}

}  // namespace fallsense::nn
