#include "nn/conv_lstm2d.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

void conv2d_same_accumulate(const tensor& x, const tensor& w, tensor& y) {
    FS_ARG_CHECK(x.rank() == 4 && w.rank() == 4 && y.rank() == 4,
                 "conv2d_same_accumulate rank mismatch");
    const std::size_t batch = x.dim(0);
    const std::size_t rows = x.dim(1);
    const std::size_t cols = x.dim(2);
    const std::size_t cin = x.dim(3);
    const std::size_t k = w.dim(0);
    FS_ARG_CHECK(w.dim(1) == k && w.dim(2) == cin, "conv2d weight shape mismatch");
    const std::size_t cout = w.dim(3);
    FS_ARG_CHECK(y.dim(0) == batch && y.dim(1) == rows && y.dim(2) == cols && y.dim(3) == cout,
                 "conv2d output shape mismatch");
    conv2d_same_accumulate(x.data(), w.data(), y.data(), batch, rows, cols, cin, k, cout);
}

void conv2d_same_accumulate(const float* xd, const float* wd, float* yd, std::size_t batch,
                            std::size_t rows, std::size_t cols, std::size_t cin,
                            std::size_t k, std::size_t cout) {
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k / 2);
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                float* yo = yd + ((n * rows + r) * cols + c) * cout;
                for (std::size_t kr = 0; kr < k; ++kr) {
                    const std::ptrdiff_t ir = static_cast<std::ptrdiff_t>(r + kr) - pad;
                    if (ir < 0 || ir >= static_cast<std::ptrdiff_t>(rows)) continue;
                    for (std::size_t kc = 0; kc < k; ++kc) {
                        const std::ptrdiff_t ic = static_cast<std::ptrdiff_t>(c + kc) - pad;
                        if (ic < 0 || ic >= static_cast<std::ptrdiff_t>(cols)) continue;
                        const float* xi =
                            xd + ((n * rows + static_cast<std::size_t>(ir)) * cols +
                                  static_cast<std::size_t>(ic)) *
                                     cin;
                        const float* wk = wd + (kr * k + kc) * cin * cout;
                        for (std::size_t ci = 0; ci < cin; ++ci) {
                            const float xv = xi[ci];
                            const float* wc = wk + ci * cout;
                            for (std::size_t co = 0; co < cout; ++co) yo[co] += xv * wc[co];
                        }
                    }
                }
            }
        }
    }
}

void conv2d_same_backward(const tensor& x, const tensor& w, const tensor& grad_y,
                          tensor& grad_x, tensor& grad_w) {
    const std::size_t batch = x.dim(0);
    const std::size_t rows = x.dim(1);
    const std::size_t cols = x.dim(2);
    const std::size_t cin = x.dim(3);
    const std::size_t k = w.dim(0);
    const std::size_t cout = w.dim(3);
    FS_ARG_CHECK(same_shape(grad_x, x) && same_shape(grad_w, w), "conv2d backward shape mismatch");
    FS_ARG_CHECK(grad_y.dim(0) == batch && grad_y.dim(1) == rows && grad_y.dim(2) == cols &&
                     grad_y.dim(3) == cout,
                 "conv2d grad_y shape mismatch");
    const std::ptrdiff_t pad = static_cast<std::ptrdiff_t>(k / 2);

    const float* xd = x.data();
    const float* wd = w.data();
    const float* gyd = grad_y.data();
    float* gxd = grad_x.data();
    float* gwd = grad_w.data();
    for (std::size_t n = 0; n < batch; ++n) {
        for (std::size_t r = 0; r < rows; ++r) {
            for (std::size_t c = 0; c < cols; ++c) {
                const float* gyo = gyd + ((n * rows + r) * cols + c) * cout;
                for (std::size_t kr = 0; kr < k; ++kr) {
                    const std::ptrdiff_t ir = static_cast<std::ptrdiff_t>(r + kr) - pad;
                    if (ir < 0 || ir >= static_cast<std::ptrdiff_t>(rows)) continue;
                    for (std::size_t kc = 0; kc < k; ++kc) {
                        const std::ptrdiff_t ic = static_cast<std::ptrdiff_t>(c + kc) - pad;
                        if (ic < 0 || ic >= static_cast<std::ptrdiff_t>(cols)) continue;
                        const std::size_t in_off =
                            ((n * rows + static_cast<std::size_t>(ir)) * cols +
                             static_cast<std::size_t>(ic)) *
                            cin;
                        const float* xi = xd + in_off;
                        float* gxi = gxd + in_off;
                        const float* wk = wd + (kr * k + kc) * cin * cout;
                        float* gwk = gwd + (kr * k + kc) * cin * cout;
                        for (std::size_t ci = 0; ci < cin; ++ci) {
                            const float xv = xi[ci];
                            const float* wc = wk + ci * cout;
                            float* gwc = gwk + ci * cout;
                            float acc = 0.0f;
                            for (std::size_t co = 0; co < cout; ++co) {
                                acc += wc[co] * gyo[co];
                                gwc[co] += xv * gyo[co];
                            }
                            gxi[ci] += acc;
                        }
                    }
                }
            }
        }
    }
}

conv_lstm2d::conv_lstm2d(std::size_t in_channels, std::size_t filters, std::size_t kernel_size,
                         util::rng& gen, std::string name)
    : in_ch_(in_channels),
      filters_(filters),
      kernel_(kernel_size),
      w_input_(name + ".w_input", {kernel_size, kernel_size, in_channels, 4 * filters}),
      w_hidden_(name + ".w_hidden", {kernel_size, kernel_size, filters, 4 * filters}),
      bias_(name + ".bias", {4 * filters}) {
    FS_ARG_CHECK(in_channels > 0 && filters > 0 && kernel_size > 0,
                 "conv_lstm2d with zero-sized configuration");
    glorot_uniform(w_input_.value, kernel_ * kernel_ * in_ch_, 4 * filters_, gen);
    recurrent_normal(w_hidden_.value, kernel_ * kernel_ * filters_, gen);
    for (std::size_t h = filters_; h < 2 * filters_; ++h) bias_.value[h] = 1.0f;
}

tensor conv_lstm2d::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 5, "conv_lstm2d expects [batch, time, rows, cols, channels]");
    FS_ARG_CHECK(input.dim(4) == in_ch_, "conv_lstm2d input channel mismatch");
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    const std::size_t rows = input.dim(2);
    const std::size_t cols = input.dim(3);
    FS_ARG_CHECK(time > 0, "conv_lstm2d over empty sequence");
    input_cache_ = input;

    const shape_t state_shape{batch, rows, cols, filters_};
    hidden_states_.assign(time + 1, tensor(state_shape));
    cell_states_.assign(time + 1, tensor(state_shape));
    gate_i_.assign(time, tensor(state_shape));
    gate_f_.assign(time, tensor(state_shape));
    gate_g_.assign(time, tensor(state_shape));
    gate_o_.assign(time, tensor(state_shape));
    cell_tanh_.assign(time, tensor(state_shape));

    const std::size_t spatial = rows * cols;
    const float* b = bias_.value.data();
    for (std::size_t t = 0; t < time; ++t) {
        // Gather the time slice x_t as a [batch, rows, cols, cin] tensor.
        tensor x_t({batch, rows, cols, in_ch_});
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = input.data() + ((n * time + t) * spatial) * in_ch_;
            float* dst = x_t.data() + n * spatial * in_ch_;
            std::copy(src, src + spatial * in_ch_, dst);
        }

        tensor preact({batch, rows, cols, 4 * filters_});
        conv2d_same_accumulate(x_t, w_input_.value, preact);
        conv2d_same_accumulate(hidden_states_[t], w_hidden_.value, preact);

        const tensor& c_prev = cell_states_[t];
        tensor& h_next = hidden_states_[t + 1];
        tensor& c_next = cell_states_[t + 1];
        for (std::size_t n = 0; n < batch; ++n) {
            for (std::size_t s = 0; s < spatial; ++s) {
                const std::size_t cell = n * spatial + s;
                const float* pre = preact.data() + cell * 4 * filters_;
                const float* cp = c_prev.data() + cell * filters_;
                float* gi = gate_i_[t].data() + cell * filters_;
                float* gf = gate_f_[t].data() + cell * filters_;
                float* gg = gate_g_[t].data() + cell * filters_;
                float* go = gate_o_[t].data() + cell * filters_;
                float* cn = c_next.data() + cell * filters_;
                float* hn = h_next.data() + cell * filters_;
                float* ct = cell_tanh_[t].data() + cell * filters_;
                for (std::size_t f = 0; f < filters_; ++f) {
                    gi[f] = sigmoid_scalar(pre[f] + b[f]);
                    gf[f] = sigmoid_scalar(pre[filters_ + f] + b[filters_ + f]);
                    gg[f] = std::tanh(pre[2 * filters_ + f] + b[2 * filters_ + f]);
                    go[f] = sigmoid_scalar(pre[3 * filters_ + f] + b[3 * filters_ + f]);
                    cn[f] = gf[f] * cp[f] + gi[f] * gg[f];
                    ct[f] = std::tanh(cn[f]);
                    hn[f] = go[f] * ct[f];
                }
            }
        }
    }
    return hidden_states_[time];
}

std::size_t conv_lstm2d::infer_workspace_bytes(const shape_t& input_shape,
                                               std::size_t batch) const {
    FS_ARG_CHECK(input_shape.size() == 4 && input_shape[3] == in_ch_ && input_shape[0] > 0,
                 "conv_lstm2d infer_workspace_bytes: bad input shape");
    const std::size_t spatial = input_shape[1] * input_shape[2];
    // x_t slice + gate pre-activations + persistent h and c state.
    return batch * spatial * (in_ch_ + 4 * filters_ + 2 * filters_) * sizeof(float);
}

void conv_lstm2d::forward_into(std::span<const float> in, const shape_t& input_shape,
                               std::size_t batch, std::span<float> workspace,
                               std::span<float> out) {
    FS_ARG_CHECK(input_shape.size() == 4 && input_shape[3] == in_ch_ && input_shape[0] > 0,
                 "conv_lstm2d forward_into: bad input shape");
    const std::size_t time = input_shape[0];
    const std::size_t rows = input_shape[1];
    const std::size_t cols = input_shape[2];
    const std::size_t spatial = rows * cols;
    const std::size_t cells = batch * spatial;
    FS_ARG_CHECK(in.size() >= cells * time * in_ch_ && out.size() >= cells * filters_,
                 "conv_lstm2d forward_into: buffer too small");
    FS_ARG_CHECK(workspace.size() >= cells * (in_ch_ + 6 * filters_),
                 "conv_lstm2d forward_into: workspace too small");
    float* x_t = workspace.data();
    float* preact = x_t + cells * in_ch_;
    float* hstate = preact + cells * 4 * filters_;
    float* cstate = hstate + cells * filters_;
    std::memset(hstate, 0, 2 * cells * filters_ * sizeof(float));  // h_0 = c_0 = 0

    const float* b = bias_.value.data();
    for (std::size_t t = 0; t < time; ++t) {
        // Same step as forward: gather x_t, zero + accumulate both convs,
        // then the elementwise gate update — with h and c in place (preact
        // is complete before the state is overwritten, and each c slot is
        // read in the expression that rewrites it).
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = in.data() + ((n * time + t) * spatial) * in_ch_;
            std::copy(src, src + spatial * in_ch_, x_t + n * spatial * in_ch_);
        }
        std::memset(preact, 0, cells * 4 * filters_ * sizeof(float));
        conv2d_same_accumulate(x_t, w_input_.value.data(), preact, batch, rows, cols, in_ch_,
                               kernel_, 4 * filters_);
        conv2d_same_accumulate(hstate, w_hidden_.value.data(), preact, batch, rows, cols,
                               filters_, kernel_, 4 * filters_);
        for (std::size_t cell = 0; cell < cells; ++cell) {
            const float* pre = preact + cell * 4 * filters_;
            float* cp = cstate + cell * filters_;
            float* hp = hstate + cell * filters_;
            for (std::size_t f = 0; f < filters_; ++f) {
                const float gi = sigmoid_scalar(pre[f] + b[f]);
                const float gf = sigmoid_scalar(pre[filters_ + f] + b[filters_ + f]);
                const float gg = std::tanh(pre[2 * filters_ + f] + b[2 * filters_ + f]);
                const float go = sigmoid_scalar(pre[3 * filters_ + f] + b[3 * filters_ + f]);
                cp[f] = gf * cp[f] + gi * gg;
                hp[f] = go * std::tanh(cp[f]);
            }
        }
    }
    std::memcpy(out.data(), hstate, cells * filters_ * sizeof(float));
}

tensor conv_lstm2d::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "conv_lstm2d backward before forward");
    const std::size_t batch = input_cache_.dim(0);
    const std::size_t time = input_cache_.dim(1);
    const std::size_t rows = input_cache_.dim(2);
    const std::size_t cols = input_cache_.dim(3);
    const std::size_t spatial = rows * cols;
    FS_ARG_CHECK(grad_output.rank() == 4 && grad_output.dim(0) == batch &&
                     grad_output.dim(1) == rows && grad_output.dim(2) == cols &&
                     grad_output.dim(3) == filters_,
                 "conv_lstm2d grad_output shape mismatch");

    tensor grad_input({batch, time, rows, cols, in_ch_});
    tensor dh = grad_output;
    tensor dc({batch, rows, cols, filters_});
    float* gb = bias_.grad.data();

    for (std::size_t t = time; t-- > 0;) {
        const tensor& c_prev = cell_states_[t];
        tensor dpre({batch, rows, cols, 4 * filters_});
        tensor dc_prev({batch, rows, cols, filters_});

        for (std::size_t cell = 0; cell < batch * spatial; ++cell) {
            const float* gi = gate_i_[t].data() + cell * filters_;
            const float* gf = gate_f_[t].data() + cell * filters_;
            const float* gg = gate_g_[t].data() + cell * filters_;
            const float* go = gate_o_[t].data() + cell * filters_;
            const float* ct = cell_tanh_[t].data() + cell * filters_;
            const float* cp = c_prev.data() + cell * filters_;
            const float* dhn = dh.data() + cell * filters_;
            const float* dcn = dc.data() + cell * filters_;
            float* dcp = dc_prev.data() + cell * filters_;
            float* dp = dpre.data() + cell * 4 * filters_;
            for (std::size_t f = 0; f < filters_; ++f) {
                const float do_pre = dhn[f] * ct[f] * go[f] * (1.0f - go[f]);
                const float dc_total = dcn[f] + dhn[f] * go[f] * (1.0f - ct[f] * ct[f]);
                dp[f] = dc_total * gg[f] * gi[f] * (1.0f - gi[f]);
                dp[filters_ + f] = dc_total * cp[f] * gf[f] * (1.0f - gf[f]);
                dp[2 * filters_ + f] = dc_total * gi[f] * (1.0f - gg[f] * gg[f]);
                dp[3 * filters_ + f] = do_pre;
                dcp[f] = dc_total * gf[f];
                gb[f] += dp[f];
                gb[filters_ + f] += dp[filters_ + f];
                gb[2 * filters_ + f] += dp[2 * filters_ + f];
                gb[3 * filters_ + f] += dp[3 * filters_ + f];
            }
        }

        // Rebuild the x_t slice used in forward.
        tensor x_t({batch, rows, cols, in_ch_});
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = input_cache_.data() + ((n * time + t) * spatial) * in_ch_;
            std::copy(src, src + spatial * in_ch_, x_t.data() + n * spatial * in_ch_);
        }

        tensor dx_t({batch, rows, cols, in_ch_});
        tensor dh_prev({batch, rows, cols, filters_});
        conv2d_same_backward(x_t, w_input_.value, dpre, dx_t, w_input_.grad);
        conv2d_same_backward(hidden_states_[t], w_hidden_.value, dpre, dh_prev, w_hidden_.grad);

        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = dx_t.data() + n * spatial * in_ch_;
            float* dst = grad_input.data() + ((n * time + t) * spatial) * in_ch_;
            std::copy(src, src + spatial * in_ch_, dst);
        }
        dh = std::move(dh_prev);
        dc = std::move(dc_prev);
    }
    return grad_input;
}

std::string conv_lstm2d::describe() const {
    std::ostringstream os;
    os << "conv_lstm2d(cin=" << in_ch_ << ", filters=" << filters_ << ", k=" << kernel_
       << ", same)";
    return os.str();
}

shape_t conv_lstm2d::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 4 && input_shape[3] == in_ch_,
                 "conv_lstm2d output_shape expects [time, rows, cols, channels]");
    return {input_shape[1], input_shape[2], filters_};
}

}  // namespace fallsense::nn
