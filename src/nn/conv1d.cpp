#include "nn/conv1d.hpp"

#include <sstream>

#include "nn/init.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

conv1d::conv1d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
               util::rng& gen, std::string name)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel_size),
      weight_(name + ".weight", {kernel_size, in_channels, out_channels}),
      bias_(name + ".bias", {out_channels}) {
    FS_ARG_CHECK(in_channels > 0 && out_channels > 0 && kernel_size > 0,
                 "conv1d with zero-sized configuration");
    he_normal(weight_.value, kernel_ * in_ch_, gen);
}

tensor conv1d::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 3, "conv1d expects [batch, time, channels], got " +
                                        shape_to_string(input.shape()));
    FS_ARG_CHECK(input.dim(2) == in_ch_, "conv1d input channel mismatch");
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    FS_ARG_CHECK(time >= kernel_, "conv1d input shorter than kernel");
    const std::size_t out_time = time - kernel_ + 1;
    input_cache_ = input;

    tensor out({batch, out_time, out_ch_});
    const float* w = weight_.value.data();
    const float* b = bias_.value.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = input.data() + n * time * in_ch_;
        float* yn = out.data() + n * out_time * out_ch_;
        for (std::size_t t = 0; t < out_time; ++t) {
            float* yt = yn + t * out_ch_;
            for (std::size_t o = 0; o < out_ch_; ++o) yt[o] = b[o];
            for (std::size_t k = 0; k < kernel_; ++k) {
                const float* xt = xn + (t + k) * in_ch_;
                const float* wk = w + k * in_ch_ * out_ch_;
                for (std::size_t c = 0; c < in_ch_; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch_;
                    for (std::size_t o = 0; o < out_ch_; ++o) yt[o] += xv * wc[o];
                }
            }
        }
    }
    return out;
}

tensor conv1d::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "conv1d backward before forward");
    const std::size_t batch = input_cache_.dim(0);
    const std::size_t time = input_cache_.dim(1);
    const std::size_t out_time = time - kernel_ + 1;
    FS_ARG_CHECK(grad_output.rank() == 3 && grad_output.dim(0) == batch &&
                     grad_output.dim(1) == out_time && grad_output.dim(2) == out_ch_,
                 "conv1d grad_output shape mismatch");

    tensor grad_input({batch, time, in_ch_});
    const float* w = weight_.value.data();
    float* gw = weight_.grad.data();
    float* gb = bias_.grad.data();
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = input_cache_.data() + n * time * in_ch_;
        const float* gyn = grad_output.data() + n * out_time * out_ch_;
        float* gxn = grad_input.data() + n * time * in_ch_;
        for (std::size_t t = 0; t < out_time; ++t) {
            const float* gyt = gyn + t * out_ch_;
            for (std::size_t o = 0; o < out_ch_; ++o) gb[o] += gyt[o];
            for (std::size_t k = 0; k < kernel_; ++k) {
                const float* xt = xn + (t + k) * in_ch_;
                float* gxt = gxn + (t + k) * in_ch_;
                const float* wk = w + k * in_ch_ * out_ch_;
                float* gwk = gw + k * in_ch_ * out_ch_;
                for (std::size_t c = 0; c < in_ch_; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch_;
                    float* gwc = gwk + c * out_ch_;
                    float acc = 0.0f;
                    for (std::size_t o = 0; o < out_ch_; ++o) {
                        acc += wc[o] * gyt[o];
                        gwc[o] += xv * gyt[o];
                    }
                    gxt[c] += acc;
                }
            }
        }
    }
    return grad_input;
}

std::string conv1d::describe() const {
    std::ostringstream os;
    os << "conv1d(" << in_ch_ << " -> " << out_ch_ << ", k=" << kernel_ << ", valid)";
    return os.str();
}

shape_t conv1d::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 2, "conv1d output_shape expects [time, channels]");
    FS_ARG_CHECK(input_shape[1] == in_ch_, "conv1d output_shape channel mismatch");
    FS_ARG_CHECK(input_shape[0] >= kernel_, "conv1d output_shape: time < kernel");
    return {input_shape[0] - kernel_ + 1, out_ch_};
}

}  // namespace fallsense::nn
