#include "nn/conv1d.hpp"

#include <sstream>

#include "nn/gemm.hpp"
#include "nn/init.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

conv1d::conv1d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
               util::rng& gen, std::string name)
    : in_ch_(in_channels),
      out_ch_(out_channels),
      kernel_(kernel_size),
      weight_(name + ".weight", {kernel_size, in_channels, out_channels}),
      bias_(name + ".bias", {out_channels}) {
    FS_ARG_CHECK(in_channels > 0 && out_channels > 0 && kernel_size > 0,
                 "conv1d with zero-sized configuration");
    he_normal(weight_.value, kernel_ * in_ch_, gen);
}

tensor conv1d::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 3, "conv1d expects [batch, time, channels], got " +
                                        shape_to_string(input.shape()));
    FS_ARG_CHECK(input.dim(2) == in_ch_, "conv1d input channel mismatch");
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    FS_ARG_CHECK(time >= kernel_, "conv1d input shorter than kernel");
    const std::size_t out_time = time - kernel_ + 1;
    input_cache_ = input;

    // Lower to GEMM: col [rows x kernel·in_ch] times the weight tensor,
    // whose [kernel, in_ch, out_ch] layout flattens to exactly the matrix
    // the product needs.  The col buffer persists for backward.
    const std::size_t rows = batch * out_time;
    const std::size_t patch = kernel_ * in_ch_;
    col_cache_.resize(rows * patch);
    im2col(input.data(), batch, time, in_ch_, kernel_, col_cache_.data());

    // Bias seeding is fused into the GEMM row tasks (per element the same
    // seed-then-accumulate sequence the old separate prefill pass ran).
    tensor out({batch, out_time, out_ch_});
    gemm_nn_bias_act(rows, out_ch_, patch, col_cache_.data(), weight_.value.data(),
                     bias_.value.data(), fused_act::none, out.data());
    return out;
}

std::size_t conv1d::infer_workspace_bytes(const shape_t& input_shape,
                                          std::size_t batch) const {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[1] == in_ch_ &&
                     input_shape[0] >= kernel_,
                 "conv1d infer_workspace_bytes: bad input shape");
    const std::size_t out_time = input_shape[0] - kernel_ + 1;
    return batch * out_time * kernel_ * in_ch_ * sizeof(float);  // im2col buffer
}

void conv1d::forward_into(std::span<const float> in, const shape_t& input_shape,
                          std::size_t batch, std::span<float> workspace,
                          std::span<float> out) {
    forward_into_fused(in, input_shape, batch, workspace, out, fused_act::none);
}

void conv1d::forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                                std::size_t batch, std::span<float> workspace,
                                std::span<float> out, fused_act act) {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[1] == in_ch_ &&
                     input_shape[0] >= kernel_,
                 "conv1d forward_into: bad input shape");
    const std::size_t time = input_shape[0];
    const std::size_t out_time = time - kernel_ + 1;
    const std::size_t rows = batch * out_time;
    const std::size_t patch = kernel_ * in_ch_;
    FS_ARG_CHECK(in.size() >= batch * time * in_ch_ && out.size() >= rows * out_ch_,
                 "conv1d forward_into: buffer too small");
    FS_ARG_CHECK(workspace.size() >= rows * patch,
                 "conv1d forward_into: workspace too small");

    // Same lowering as forward, with the col buffer in the caller's arena
    // instead of col_cache_, and the bias seed plus any fused activation
    // running inside the GEMM row tasks while the tile is hot.
    im2col(in.data(), batch, time, in_ch_, kernel_, workspace.data());
    gemm_nn_bias_act(rows, out_ch_, patch, workspace.data(), weight_.value.data(),
                     bias_.value.data(), act, out.data());
}

tensor conv1d::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "conv1d backward before forward");
    const std::size_t batch = input_cache_.dim(0);
    const std::size_t time = input_cache_.dim(1);
    const std::size_t out_time = time - kernel_ + 1;
    FS_ARG_CHECK(grad_output.rank() == 3 && grad_output.dim(0) == batch &&
                     grad_output.dim(1) == out_time && grad_output.dim(2) == out_ch_,
                 "conv1d grad_output shape mismatch");
    FS_CHECK(col_cache_.size() == batch * out_time * kernel_ * in_ch_,
             "conv1d backward col cache out of date");

    const std::size_t rows = batch * out_time;
    const std::size_t patch = kernel_ * in_ch_;
    const float* gy = grad_output.data();

    // Bias gradient: serial over rows, matching the legacy accumulation order.
    float* gb = bias_.grad.data();
    for (std::size_t r = 0; r < rows; ++r) {
        const float* gyr = gy + r * out_ch_;
        for (std::size_t o = 0; o < out_ch_; ++o) gb[o] += gyr[o];
    }

    // Weight gradient: colᵀ · gy with the deterministic chunked reduction.
    gemm_tn_acc(patch, out_ch_, rows, col_cache_.data(), gy, weight_.grad.data());

    // Input gradient: gcol = gy · Wᵀ, then scatter back through col2im.
    // wt_scratch_ grows once to out_ch·patch and is reused every step.
    wt_scratch_.resize(out_ch_ * patch);
    transpose(patch, out_ch_, weight_.value.data(), wt_scratch_.data());
    gcol_scratch_.resize(rows * patch);
    gemm_nn(rows, patch, out_ch_, gy, wt_scratch_.data(), gcol_scratch_.data(),
            /*accumulate=*/false);

    tensor grad_input({batch, time, in_ch_});
    col2im_acc(gcol_scratch_.data(), batch, time, in_ch_, kernel_, grad_input.data());
    return grad_input;
}

std::string conv1d::describe() const {
    std::ostringstream os;
    os << "conv1d(" << in_ch_ << " -> " << out_ch_ << ", k=" << kernel_ << ", valid)";
    return os.str();
}

shape_t conv1d::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 2, "conv1d output_shape expects [time, channels]");
    FS_ARG_CHECK(input_shape[1] == in_ch_, "conv1d output_shape channel mismatch");
    FS_ARG_CHECK(input_shape[0] >= kernel_, "conv1d output_shape: time < kernel");
    return {input_shape[0] - kernel_ + 1, out_ch_};
}

}  // namespace fallsense::nn
