#include "nn/misc_layers.hpp"

#include <cstring>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::nn {

tensor flatten::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() >= 2, "flatten expects a batched tensor");
    input_shape_cache_ = input.shape();
    const std::size_t batch = input.dim(0);
    const std::size_t features = input.size() / batch;
    return input.reshaped({batch, features});
}

tensor flatten::backward(const tensor& grad_output) {
    FS_CHECK(!input_shape_cache_.empty(), "flatten backward before forward");
    return grad_output.reshaped(input_shape_cache_);
}

shape_t flatten::output_shape(const shape_t& input_shape) const {
    return {shape_volume(input_shape)};
}

void flatten::forward_into(std::span<const float> in, const shape_t& input_shape,
                           std::size_t batch, std::span<float> /*workspace*/,
                           std::span<float> out) {
    // Pure reshape: a no-op when the planner reuses the buffer, a copy
    // otherwise.
    const std::size_t count = batch * shape_volume(input_shape);
    FS_ARG_CHECK(in.size() >= count && out.size() >= count,
                 "flatten forward_into: buffer too small");
    if (out.data() != in.data()) std::memcpy(out.data(), in.data(), count * sizeof(float));
}

dropout::dropout(double drop_probability, util::rng& gen) : p_(drop_probability), gen_(&gen) {
    FS_ARG_CHECK(p_ >= 0.0 && p_ < 1.0, "dropout probability must be in [0, 1)");
}

tensor dropout::forward(const tensor& input, bool training) {
    last_forward_training_ = training;
    if (!training || p_ == 0.0) return input;
    mask_ = tensor(input.shape());
    tensor out(input.shape());
    const float keep_scale = static_cast<float>(1.0 / (1.0 - p_));
    const std::span<const float> x = input.values();
    const std::span<float> m = mask_.values();
    const std::span<float> y = out.values();
    for (std::size_t i = 0; i < x.size(); ++i) {
        const float scale = gen_->bernoulli(p_) ? 0.0f : keep_scale;
        m[i] = scale;
        y[i] = x[i] * scale;
    }
    return out;
}

tensor dropout::backward(const tensor& grad_output) {
    if (!last_forward_training_ || p_ == 0.0) return grad_output;
    FS_CHECK(same_shape(grad_output, mask_), "dropout backward shape mismatch");
    tensor grad_input(grad_output.shape());
    const std::span<const float> gy = grad_output.values();
    const std::span<const float> m = mask_.values();
    const std::span<float> gx = grad_input.values();
    for (std::size_t i = 0; i < gy.size(); ++i) gx[i] = gy[i] * m[i];
    return grad_input;
}

void dropout::forward_into(std::span<const float> in, const shape_t& input_shape,
                           std::size_t batch, std::span<float> /*workspace*/,
                           std::span<float> out) {
    // Inference-mode dropout is the identity.
    const std::size_t count = batch * shape_volume(input_shape);
    FS_ARG_CHECK(in.size() >= count && out.size() >= count,
                 "dropout forward_into: buffer too small");
    if (out.data() != in.data()) std::memcpy(out.data(), in.data(), count * sizeof(float));
}

std::string dropout::describe() const {
    std::ostringstream os;
    os << "dropout(p=" << p_ << ")";
    return os.str();
}

}  // namespace fallsense::nn
