#include "nn/pooling.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fallsense::nn {

maxpool1d::maxpool1d(std::size_t pool_size) : pool_(pool_size) {
    FS_ARG_CHECK(pool_size > 0, "maxpool1d pool size must be positive");
}

tensor maxpool1d::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 3, "maxpool1d expects [batch, time, channels], got " +
                                        shape_to_string(input.shape()));
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    const std::size_t channels = input.dim(2);
    FS_ARG_CHECK(time >= pool_, "maxpool1d input shorter than pool window");
    const std::size_t out_time = time / pool_;
    input_shape_cache_ = input.shape();

    tensor out({batch, out_time, channels});
    argmax_.assign(out.size(), 0);
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = input.data() + n * time * channels;
        for (std::size_t t = 0; t < out_time; ++t) {
            for (std::size_t c = 0; c < channels; ++c) {
                std::size_t best_idx = (t * pool_) * channels + c;
                float best = xn[best_idx];
                for (std::size_t k = 1; k < pool_; ++k) {
                    const std::size_t idx = (t * pool_ + k) * channels + c;
                    if (xn[idx] > best) {
                        best = xn[idx];
                        best_idx = idx;
                    }
                }
                const std::size_t out_idx = (n * out_time + t) * channels + c;
                out[out_idx] = best;
                argmax_[out_idx] = n * time * channels + best_idx;
            }
        }
    }
    return out;
}

void maxpool1d::forward_into(std::span<const float> in, const shape_t& input_shape,
                             std::size_t batch, std::span<float> /*workspace*/,
                             std::span<float> out) {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[0] >= pool_,
                 "maxpool1d forward_into: bad input shape");
    const std::size_t time = input_shape[0];
    const std::size_t channels = input_shape[1];
    const std::size_t out_time = time / pool_;
    FS_ARG_CHECK(in.size() >= batch * time * channels &&
                     out.size() >= batch * out_time * channels,
                 "maxpool1d forward_into: buffer too small");
    // Same comparison order as forward (max is exact, no argmax needed).
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = in.data() + n * time * channels;
        for (std::size_t t = 0; t < out_time; ++t) {
            for (std::size_t c = 0; c < channels; ++c) {
                float best = xn[(t * pool_) * channels + c];
                for (std::size_t k = 1; k < pool_; ++k) {
                    const float v = xn[(t * pool_ + k) * channels + c];
                    if (v > best) best = v;
                }
                out[(n * out_time + t) * channels + c] = best;
            }
        }
    }
}

tensor maxpool1d::backward(const tensor& grad_output) {
    FS_CHECK(!input_shape_cache_.empty(), "maxpool1d backward before forward");
    FS_ARG_CHECK(grad_output.size() == argmax_.size(), "maxpool1d grad_output size mismatch");
    tensor grad_input(input_shape_cache_);
    const std::span<const float> gy = grad_output.values();
    for (std::size_t i = 0; i < gy.size(); ++i) grad_input[argmax_[i]] += gy[i];
    return grad_input;
}

std::string maxpool1d::describe() const {
    std::ostringstream os;
    os << "maxpool1d(pool=" << pool_ << ")";
    return os.str();
}

shape_t maxpool1d::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 2, "maxpool1d output_shape expects [time, channels]");
    FS_ARG_CHECK(input_shape[0] >= pool_, "maxpool1d output_shape: time < pool");
    return {input_shape[0] / pool_, input_shape[1]};
}

}  // namespace fallsense::nn
