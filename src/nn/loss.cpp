#include "nn/loss.hpp"

#include <cmath>

#include "nn/activations.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

namespace {

void check_args(const tensor& logits, std::span<const float> targets, double wp, double wn) {
    const bool column = logits.rank() == 2 && logits.dim(1) == 1;
    const bool flat = logits.rank() == 1;
    FS_ARG_CHECK(column || flat, "logits must be [batch, 1] or [batch]");
    FS_ARG_CHECK(logits.size() == targets.size(), "logit/target count mismatch");
    FS_ARG_CHECK(!targets.empty(), "empty batch");
    FS_ARG_CHECK(wp > 0.0 && wn > 0.0, "class weights must be positive");
}

/// Stable BCE-with-logits for one sample:
///   loss = max(x, 0) - x*y + log(1 + exp(-|x|))
double sample_loss(float x, float y) {
    const double xd = x;
    return std::max(xd, 0.0) - xd * y + std::log1p(std::exp(-std::abs(xd)));
}

}  // namespace

bce_result weighted_bce_with_logits(const tensor& logits, std::span<const float> targets,
                                    double weight_positive, double weight_negative) {
    check_args(logits, targets, weight_positive, weight_negative);
    const std::size_t n = targets.size();
    bce_result result;
    result.grad_logits = tensor(logits.shape());
    double total = 0.0;
    const float* x = logits.data();
    float* g = result.grad_logits.data();
    const double inv_n = 1.0 / static_cast<double>(n);
    for (std::size_t i = 0; i < n; ++i) {
        const float y = targets[i];
        const double w = (y > 0.5f) ? weight_positive : weight_negative;
        total += w * sample_loss(x[i], y);
        const double p = sigmoid_scalar(x[i]);
        g[i] = static_cast<float>(w * (p - y) * inv_n);
    }
    result.loss = total * inv_n;
    return result;
}

double weighted_bce_loss_only(const tensor& logits, std::span<const float> targets,
                              double weight_positive, double weight_negative) {
    check_args(logits, targets, weight_positive, weight_negative);
    const std::size_t n = targets.size();
    double total = 0.0;
    const float* x = logits.data();
    for (std::size_t i = 0; i < n; ++i) {
        const float y = targets[i];
        const double w = (y > 0.5f) ? weight_positive : weight_negative;
        total += w * sample_loss(x[i], y);
    }
    return total / static_cast<double>(n);
}

}  // namespace fallsense::nn
