// Linear stack of layers.
#pragma once

#include <memory>
#include <vector>

#include "nn/layer.hpp"

namespace fallsense::nn {

class sequential : public model {
public:
    sequential() = default;

    /// Append a layer (takes ownership). Returns *this for chaining.
    sequential& add(layer_ptr new_layer);

    /// Construct-in-place convenience: seq.emplace<dense>(...).
    template <typename L, typename... Args>
    L& emplace(Args&&... args) {
        auto owned = std::make_unique<L>(std::forward<Args>(args)...);
        L& ref = *owned;
        add(std::move(owned));
        return ref;
    }

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::string summary() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    std::unique_ptr<model> clone() const override { return clone_stack(); }
    /// clone() with the concrete type (unique_ptr return types cannot be
    /// covariant) — multi_branch_network clones its branches through this.
    std::unique_ptr<sequential> clone_stack() const;

    std::size_t layer_count() const { return layers_.size(); }
    layer& layer_at(std::size_t i);
    const layer& layer_at(std::size_t i) const;

    std::size_t infer_workspace_bytes(const shape_t& row_shape, std::size_t batch) override;
    void forward_into(std::span<const float> input, const shape_t& row_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

private:
    /// Arena layout for the allocation-free forward path: two ping-pong
    /// activation buffers (each batch-capacity × widest stage volume) plus
    /// the widest single layer workspace, shared by every layer in turn.
    /// Cached keyed on (row_shape, batch high-water mark, fusion toggle):
    /// growing the batch re-plans once, shrinking it reuses the larger
    /// arena, and flipping epilogue fusion re-plans so fused/unfused walks
    /// never mix.
    ///
    /// When fusion is on, a Conv1D/Dense layer followed by a ReLU or
    /// sigmoid records that activation in `fused[i]` and the activation
    /// layer itself is marked `skip` — a plan-time no-op whose work happens
    /// inside the producer's kernel epilogue.  Activation shapes are
    /// identity, so stage_shapes is unaffected.
    struct infer_plan {
        shape_t row_shape;
        std::size_t batch_capacity = 0;
        bool fusion = false;                ///< epilogue_fusion_enabled() at plan time
        std::vector<shape_t> stage_shapes;  ///< per-sample shape before each layer + final
        std::vector<fused_act> fused;       ///< epilogue layer i runs fused (none: unfused)
        std::vector<char> skip;             ///< layer i absorbed into its predecessor
        std::size_t ping_floats = 0;        ///< one activation buffer
        std::size_t scratch_floats = 0;     ///< widest layer workspace
    };
    const infer_plan& ensure_plan(const shape_t& row_shape, std::size_t batch);

    std::vector<layer_ptr> layers_;
    infer_plan plan_;
};

}  // namespace fallsense::nn
