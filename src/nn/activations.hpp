// Elementwise activation layers (shape-preserving): ReLU and sigmoid.
#pragma once

#include "nn/layer.hpp"

namespace fallsense::nn {

class relu : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    layer_kind kind() const override { return layer_kind::relu; }
    layer_ptr clone() const override { return std::make_unique<relu>(); }
    std::string describe() const override { return "relu"; }
    shape_t output_shape(const shape_t& input_shape) const override { return input_shape; }
    bool infer_in_place() const override { return true; }
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

private:
    tensor mask_;  ///< 1 where input > 0
};

class sigmoid : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    layer_kind kind() const override { return layer_kind::sigmoid; }
    layer_ptr clone() const override { return std::make_unique<sigmoid>(); }
    std::string describe() const override { return "sigmoid"; }
    shape_t output_shape(const shape_t& input_shape) const override { return input_shape; }
    bool infer_in_place() const override { return true; }
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

private:
    tensor output_cache_;
};

/// Scalar sigmoid used throughout evaluation and quantization.
float sigmoid_scalar(float x);

}  // namespace fallsense::nn
