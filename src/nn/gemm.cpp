#include "nn/gemm.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <vector>

#include "nn/activations.hpp"
#include "nn/simd.hpp"
#include "util/thread_pool.hpp"

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
#define FALLSENSE_SIMD_X86 1
#include <immintrin.h>
#elif defined(__aarch64__) && defined(__ARM_NEON)
#define FALLSENSE_SIMD_NEON 1
#include <arm_neon.h>
#endif

namespace fallsense::nn {

const char* fused_act_name(fused_act act) {
    switch (act) {
        case fused_act::relu: return "relu";
        case fused_act::sigmoid: return "sigmoid";
        case fused_act::none: break;
    }
    return "none";
}

namespace {

// Row-blocking factor: C rows updated together per B-row stream.  Each
// element's reduction stays a single serial ascending-k sequence — the
// exact order of the naive loops — so blocking changes cache traffic, not
// floating-point results.
constexpr std::size_t k_mr = 4;

// Rows of C per parallel task in gemm_nn (dispatch granularity only).
constexpr std::size_t k_row_grain = 32;

// gemm_tn_acc reduction chunking: at least this many reduction rows per
// chunk, at most this many chunks.  Both are shape-only constants so chunk
// boundaries — and therefore the floating-point summation tree — never
// depend on the thread count.
constexpr std::size_t k_reduce_grain = 256;
constexpr std::size_t k_max_reduce_chunks = 16;

/// One row quad [i, i+4) of C, k-outer: each pass over kk streams one
/// contiguous row of B and feeds four C rows held hot in cache, so B is
/// read once per quad instead of once per row.  C is updated in place
/// (callers pre-fill it with bias or zero), keeping per-element additions
/// in ascending-k order.
inline void gemm_nn_row_quad(std::size_t i, std::size_t n, std::size_t k, const float* a,
                             const float* b, float* c) {
    const float* __restrict a0 = a + i * k;
    const float* __restrict a1 = a0 + k;
    const float* __restrict a2 = a1 + k;
    const float* __restrict a3 = a2 + k;
    float* __restrict c0 = c + i * n;
    float* __restrict c1 = c0 + n;
    float* __restrict c2 = c1 + n;
    float* __restrict c3 = c2 + n;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* __restrict bk = b + kk * n;
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float av2 = a2[kk];
        const float av3 = a3[kk];
        for (std::size_t j = 0; j < n; ++j) {
            const float bv = bk[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
        }
    }
}

/// One row of C, k-outer (remainder path).
inline void gemm_nn_row(std::size_t i, std::size_t n, std::size_t k, const float* a,
                        const float* b, float* c) {
    const float* __restrict ai = a + i * k;
    float* __restrict ci = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ai[kk];
        const float* __restrict bk = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
}

#if defined(FALLSENSE_SIMD_X86)

/// Mask with the low `rem` (0 < rem < 8) lanes active, for maskload /
/// maskstore column tails.
__attribute__((target("avx2"))) inline __m256i tail_mask(std::size_t rem) {
    alignas(32) static constexpr std::int32_t k_lanes[16] = {-1, -1, -1, -1, -1, -1, -1, -1,
                                                             0,  0,  0,  0,  0,  0,  0,  0};
    return _mm256_loadu_si256(reinterpret_cast<const __m256i*>(k_lanes + 8 - rem));
}

// The vector row kernels mirror the scalar ones: k-outer, columns in
// 8-lane (AVX2) or 16-lane (AVX-512) FMA strips with a masked strip for
// the column tail.  Every (row, j) update is one fmadd(broadcast(a), b, c)
// regardless of lane width and of whether the row runs in the quad or the
// single-row kernel, so a row's result is independent of its position in
// the batch, of the thread count, AND of which vector backend ran it.

__attribute__((target("avx2,fma"))) void gemm_nn_row_quad_avx2(std::size_t i, std::size_t n,
                                                               std::size_t k, const float* a,
                                                               const float* b, float* c) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    const std::size_t n8 = n - n % 8;
    const std::size_t rem = n - n8;
    const __m256i mask = rem ? tail_mask(rem) : _mm256_setzero_si256();
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const __m256 av0 = _mm256_set1_ps(a0[kk]);
        const __m256 av1 = _mm256_set1_ps(a1[kk]);
        const __m256 av2 = _mm256_set1_ps(a2[kk]);
        const __m256 av3 = _mm256_set1_ps(a3[kk]);
        for (std::size_t j = 0; j < n8; j += 8) {
            const __m256 bv = _mm256_loadu_ps(bk + j);
            _mm256_storeu_ps(c0 + j, _mm256_fmadd_ps(av0, bv, _mm256_loadu_ps(c0 + j)));
            _mm256_storeu_ps(c1 + j, _mm256_fmadd_ps(av1, bv, _mm256_loadu_ps(c1 + j)));
            _mm256_storeu_ps(c2 + j, _mm256_fmadd_ps(av2, bv, _mm256_loadu_ps(c2 + j)));
            _mm256_storeu_ps(c3 + j, _mm256_fmadd_ps(av3, bv, _mm256_loadu_ps(c3 + j)));
        }
        if (rem) {
            const __m256 bv = _mm256_maskload_ps(bk + n8, mask);
            _mm256_maskstore_ps(
                c0 + n8, mask, _mm256_fmadd_ps(av0, bv, _mm256_maskload_ps(c0 + n8, mask)));
            _mm256_maskstore_ps(
                c1 + n8, mask, _mm256_fmadd_ps(av1, bv, _mm256_maskload_ps(c1 + n8, mask)));
            _mm256_maskstore_ps(
                c2 + n8, mask, _mm256_fmadd_ps(av2, bv, _mm256_maskload_ps(c2 + n8, mask)));
            _mm256_maskstore_ps(
                c3 + n8, mask, _mm256_fmadd_ps(av3, bv, _mm256_maskload_ps(c3 + n8, mask)));
        }
    }
}

__attribute__((target("avx2,fma"))) void gemm_nn_row_avx2(std::size_t i, std::size_t n,
                                                          std::size_t k, const float* a,
                                                          const float* b, float* c) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    const std::size_t n8 = n - n % 8;
    const std::size_t rem = n - n8;
    const __m256i mask = rem ? tail_mask(rem) : _mm256_setzero_si256();
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const __m256 av = _mm256_set1_ps(ai[kk]);
        for (std::size_t j = 0; j < n8; j += 8) {
            const __m256 bv = _mm256_loadu_ps(bk + j);
            _mm256_storeu_ps(ci + j, _mm256_fmadd_ps(av, bv, _mm256_loadu_ps(ci + j)));
        }
        if (rem) {
            const __m256 bv = _mm256_maskload_ps(bk + n8, mask);
            _mm256_maskstore_ps(
                ci + n8, mask, _mm256_fmadd_ps(av, bv, _mm256_maskload_ps(ci + n8, mask)));
        }
    }
}

__attribute__((target("avx512f"))) void gemm_nn_row_quad_avx512(std::size_t i, std::size_t n,
                                                                std::size_t k, const float* a,
                                                                const float* b, float* c) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    const std::size_t n16 = n - n % 16;
    const std::size_t rem = n - n16;
    const __mmask16 mask = rem ? static_cast<__mmask16>((1u << rem) - 1u) : 0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const __m512 av0 = _mm512_set1_ps(a0[kk]);
        const __m512 av1 = _mm512_set1_ps(a1[kk]);
        const __m512 av2 = _mm512_set1_ps(a2[kk]);
        const __m512 av3 = _mm512_set1_ps(a3[kk]);
        for (std::size_t j = 0; j < n16; j += 16) {
            const __m512 bv = _mm512_loadu_ps(bk + j);
            _mm512_storeu_ps(c0 + j, _mm512_fmadd_ps(av0, bv, _mm512_loadu_ps(c0 + j)));
            _mm512_storeu_ps(c1 + j, _mm512_fmadd_ps(av1, bv, _mm512_loadu_ps(c1 + j)));
            _mm512_storeu_ps(c2 + j, _mm512_fmadd_ps(av2, bv, _mm512_loadu_ps(c2 + j)));
            _mm512_storeu_ps(c3 + j, _mm512_fmadd_ps(av3, bv, _mm512_loadu_ps(c3 + j)));
        }
        if (rem) {
            const __m512 bv = _mm512_maskz_loadu_ps(mask, bk + n16);
            _mm512_mask_storeu_ps(
                c0 + n16, mask,
                _mm512_fmadd_ps(av0, bv, _mm512_maskz_loadu_ps(mask, c0 + n16)));
            _mm512_mask_storeu_ps(
                c1 + n16, mask,
                _mm512_fmadd_ps(av1, bv, _mm512_maskz_loadu_ps(mask, c1 + n16)));
            _mm512_mask_storeu_ps(
                c2 + n16, mask,
                _mm512_fmadd_ps(av2, bv, _mm512_maskz_loadu_ps(mask, c2 + n16)));
            _mm512_mask_storeu_ps(
                c3 + n16, mask,
                _mm512_fmadd_ps(av3, bv, _mm512_maskz_loadu_ps(mask, c3 + n16)));
        }
    }
}

__attribute__((target("avx512f"))) void gemm_nn_row_avx512(std::size_t i, std::size_t n,
                                                           std::size_t k, const float* a,
                                                           const float* b, float* c) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    const std::size_t n16 = n - n % 16;
    const std::size_t rem = n - n16;
    const __mmask16 mask = rem ? static_cast<__mmask16>((1u << rem) - 1u) : 0;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const __m512 av = _mm512_set1_ps(ai[kk]);
        for (std::size_t j = 0; j < n16; j += 16) {
            const __m512 bv = _mm512_loadu_ps(bk + j);
            _mm512_storeu_ps(ci + j, _mm512_fmadd_ps(av, bv, _mm512_loadu_ps(ci + j)));
        }
        if (rem) {
            const __m512 bv = _mm512_maskz_loadu_ps(mask, bk + n16);
            _mm512_mask_storeu_ps(
                ci + n16, mask,
                _mm512_fmadd_ps(av, bv, _mm512_maskz_loadu_ps(mask, ci + n16)));
        }
    }
}

/// Vector ReLU epilogues: max(x, 0) lane-wise.  max is exact, so the
/// result matches the scalar `x > 0 ? x : 0` on every non-NaN input and
/// is identical across vector backends.
__attribute__((target("avx2"))) void relu_span_avx2(float* c, std::size_t count) {
    const __m256 zero = _mm256_setzero_ps();
    const std::size_t c8 = count - count % 8;
    std::size_t i = 0;
    for (; i < c8; i += 8) {
        _mm256_storeu_ps(c + i, _mm256_max_ps(_mm256_loadu_ps(c + i), zero));
    }
    for (; i < count; ++i) c[i] = c[i] > 0.0f ? c[i] : 0.0f;
}

__attribute__((target("avx512f"))) void relu_span_avx512(float* c, std::size_t count) {
    const __m512 zero = _mm512_setzero_ps();
    const std::size_t c16 = count - count % 16;
    std::size_t i = 0;
    for (; i < c16; i += 16) {
        _mm512_storeu_ps(c + i, _mm512_max_ps(_mm512_loadu_ps(c + i), zero));
    }
    for (; i < count; ++i) c[i] = c[i] > 0.0f ? c[i] : 0.0f;
}

#elif defined(FALLSENSE_SIMD_NEON)

// NEON mirrors of the row kernels: 4-lane FMA strips, scalar fmaf tail.
// The tail uses std::fmaf in both kernels so the per-(row, j) operation —
// fused multiply-add — matches the vector lanes and the quad/single split.

void gemm_nn_row_quad_neon(std::size_t i, std::size_t n, std::size_t k, const float* a,
                           const float* b, float* c) {
    const float* a0 = a + i * k;
    const float* a1 = a0 + k;
    const float* a2 = a1 + k;
    const float* a3 = a2 + k;
    float* c0 = c + i * n;
    float* c1 = c0 + n;
    float* c2 = c1 + n;
    float* c3 = c2 + n;
    const std::size_t n4 = n - n % 4;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const float32x4_t av0 = vdupq_n_f32(a0[kk]);
        const float32x4_t av1 = vdupq_n_f32(a1[kk]);
        const float32x4_t av2 = vdupq_n_f32(a2[kk]);
        const float32x4_t av3 = vdupq_n_f32(a3[kk]);
        for (std::size_t j = 0; j < n4; j += 4) {
            const float32x4_t bv = vld1q_f32(bk + j);
            vst1q_f32(c0 + j, vfmaq_f32(vld1q_f32(c0 + j), av0, bv));
            vst1q_f32(c1 + j, vfmaq_f32(vld1q_f32(c1 + j), av1, bv));
            vst1q_f32(c2 + j, vfmaq_f32(vld1q_f32(c2 + j), av2, bv));
            vst1q_f32(c3 + j, vfmaq_f32(vld1q_f32(c3 + j), av3, bv));
        }
        for (std::size_t j = n4; j < n; ++j) {
            const float bv = bk[j];
            c0[j] = std::fmaf(a0[kk], bv, c0[j]);
            c1[j] = std::fmaf(a1[kk], bv, c1[j]);
            c2[j] = std::fmaf(a2[kk], bv, c2[j]);
            c3[j] = std::fmaf(a3[kk], bv, c3[j]);
        }
    }
}

void gemm_nn_row_neon(std::size_t i, std::size_t n, std::size_t k, const float* a,
                      const float* b, float* c) {
    const float* ai = a + i * k;
    float* ci = c + i * n;
    const std::size_t n4 = n - n % 4;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* bk = b + kk * n;
        const float32x4_t av = vdupq_n_f32(ai[kk]);
        for (std::size_t j = 0; j < n4; j += 4) {
            const float32x4_t bv = vld1q_f32(bk + j);
            vst1q_f32(ci + j, vfmaq_f32(vld1q_f32(ci + j), av, bv));
        }
        for (std::size_t j = n4; j < n; ++j) ci[j] = std::fmaf(ai[kk], bk[j], ci[j]);
    }
}

void relu_span_neon(float* c, std::size_t count) {
    const float32x4_t zero = vdupq_n_f32(0.0f);
    const std::size_t c4 = count - count % 4;
    std::size_t i = 0;
    for (; i < c4; i += 4) vst1q_f32(c + i, vmaxq_f32(vld1q_f32(c + i), zero));
    for (; i < count; ++i) c[i] = c[i] > 0.0f ? c[i] : 0.0f;
}

#endif  // FALLSENSE_SIMD_X86 / FALLSENSE_SIMD_NEON

/// Everything one gemm call's row tasks need.  The parallel dispatch
/// lambda captures a single reference to this so the std::function stays
/// in its small-buffer store — no heap allocation on the inference path.
struct gemm_ctx {
    std::size_t n;
    std::size_t k;
    const float* a;
    const float* b;
    float* c;
    const float* bias;  ///< when set, rows seed with bias (fused path)
    bool accumulate;    ///< ignored when bias is set
    fused_act act;      ///< epilogue applied per row block while hot
    simd_backend backend;  ///< resolved once per call, shared by every row task
};

/// Seed rows [r0, r1): bias broadcast (fused path), prior contents
/// (accumulate), or zero.  The fused bias seed is the exact per-element
/// operation the layers' standalone prefill loops performed.
void gemm_nn_seed_rows(std::size_t r0, std::size_t r1, const gemm_ctx& ctx) {
    const std::size_t n = ctx.n;
    float* c = ctx.c;
    if (ctx.bias != nullptr) {
        for (std::size_t i = r0; i < r1; ++i) {
            float* ci = c + i * n;
            for (std::size_t j = 0; j < n; ++j) ci[j] = ctx.bias[j];
        }
    } else if (!ctx.accumulate) {
        std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
    }
}

/// Fused epilogue over rows [r0, r1), applied while the block is hot.
/// ReLU dispatches per backend (max is exact either way); sigmoid always
/// runs sigmoid_scalar per element so fused probabilities are identical
/// in every mode.
void gemm_nn_epilogue_rows(std::size_t r0, std::size_t r1, const gemm_ctx& ctx) {
    if (ctx.act == fused_act::none) return;
    float* const base = ctx.c + r0 * ctx.n;
    const std::size_t count = (r1 - r0) * ctx.n;
    if (ctx.act == fused_act::sigmoid) {
        for (std::size_t i = 0; i < count; ++i) base[i] = sigmoid_scalar(base[i]);
        return;
    }
#if defined(FALLSENSE_SIMD_X86)
    if (ctx.backend == simd_backend::avx512) {
        relu_span_avx512(base, count);
        return;
    }
    if (ctx.backend == simd_backend::avx2_fma) {
        relu_span_avx2(base, count);
        return;
    }
#elif defined(FALLSENSE_SIMD_NEON)
    if (ctx.backend == simd_backend::neon) {
        relu_span_neon(base, count);
        return;
    }
#endif
    for (std::size_t i = 0; i < count; ++i) base[i] = base[i] > 0.0f ? base[i] : 0.0f;
}

void gemm_nn_rows(std::size_t r0, std::size_t r1, const gemm_ctx& ctx) {
    const std::size_t n = ctx.n;
    const std::size_t k = ctx.k;
    const float* a = ctx.a;
    const float* b = ctx.b;
    float* c = ctx.c;
    gemm_nn_seed_rows(r0, r1, ctx);
    std::size_t i = r0;
#if defined(FALLSENSE_SIMD_X86)
    if (ctx.backend == simd_backend::avx512) {
        for (; i + k_mr <= r1; i += k_mr) gemm_nn_row_quad_avx512(i, n, k, a, b, c);
        for (; i < r1; ++i) gemm_nn_row_avx512(i, n, k, a, b, c);
        gemm_nn_epilogue_rows(r0, r1, ctx);
        return;
    }
    if (ctx.backend == simd_backend::avx2_fma) {
        for (; i + k_mr <= r1; i += k_mr) gemm_nn_row_quad_avx2(i, n, k, a, b, c);
        for (; i < r1; ++i) gemm_nn_row_avx2(i, n, k, a, b, c);
        gemm_nn_epilogue_rows(r0, r1, ctx);
        return;
    }
#elif defined(FALLSENSE_SIMD_NEON)
    if (ctx.backend == simd_backend::neon) {
        for (; i + k_mr <= r1; i += k_mr) gemm_nn_row_quad_neon(i, n, k, a, b, c);
        for (; i < r1; ++i) gemm_nn_row_neon(i, n, k, a, b, c);
        gemm_nn_epilogue_rows(r0, r1, ctx);
        return;
    }
#endif
    for (; i + k_mr <= r1; i += k_mr) gemm_nn_row_quad(i, n, k, a, b, c);
    for (; i < r1; ++i) gemm_nn_row(i, n, k, a, b, c);
    gemm_nn_epilogue_rows(r0, r1, ctx);
}

void gemm_nn_dispatch(std::size_t m, const gemm_ctx& ctx) {
    util::parallel_for_chunks(0, m, k_row_grain,
                              [&ctx](std::size_t, std::size_t lo, std::size_t hi) {
                                  gemm_nn_rows(lo, hi, ctx);
                              });
}

/// dst[i0..i1) rows (+)= A[k0..k1)ᵀ-slice · B[k0..k1)-slice, kk ascending
/// per element.  Row-blocked like gemm_nn so the dst tile stays hot while
/// B's slice streams through once per quad.
void rank1_accumulate(float* dst, const float* a, const float* b, std::size_t k0,
                      std::size_t k1, std::size_t i0, std::size_t i1, std::size_t m,
                      std::size_t n) {
    std::size_t i = i0;
    for (; i + k_mr <= i1; i += k_mr) {
        float* __restrict d0 = dst + i * n;
        float* __restrict d1 = d0 + n;
        float* __restrict d2 = d1 + n;
        float* __restrict d3 = d2 + n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* __restrict arow = a + kk * m + i;
            const float* __restrict brow = b + kk * n;
            const float av0 = arow[0];
            const float av1 = arow[1];
            const float av2 = arow[2];
            const float av3 = arow[3];
            for (std::size_t j = 0; j < n; ++j) {
                const float bv = brow[j];
                d0[j] += av0 * bv;
                d1[j] += av1 * bv;
                d2[j] += av2 * bv;
                d3[j] += av3 * bv;
            }
        }
    }
    for (; i < i1; ++i) {
        float* __restrict di = dst + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float av = a[kk * m + i];
            const float* __restrict brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) di[j] += av * brow[j];
        }
    }
}

#if defined(FALLSENSE_SIMD_X86)

// Vector rank-1 mirrors for the gradient reduction: identical loop
// structure and ascending-kk order, each (row, j) update one fmadd — so
// per-chunk partials are bit-identical across thread counts (chunking is
// shape-only) and across vector backends (same fmadd sequence).

__attribute__((target("avx2,fma"))) void rank1_accumulate_avx2(
    float* dst, const float* a, const float* b, std::size_t k0, std::size_t k1,
    std::size_t i0, std::size_t i1, std::size_t m, std::size_t n) {
    const std::size_t n8 = n - n % 8;
    const std::size_t rem = n - n8;
    const __m256i mask = rem ? tail_mask(rem) : _mm256_setzero_si256();
    std::size_t i = i0;
    for (; i + k_mr <= i1; i += k_mr) {
        float* d0 = dst + i * n;
        float* d1 = d0 + n;
        float* d2 = d1 + n;
        float* d3 = d2 + n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* arow = a + kk * m + i;
            const float* brow = b + kk * n;
            const __m256 av0 = _mm256_set1_ps(arow[0]);
            const __m256 av1 = _mm256_set1_ps(arow[1]);
            const __m256 av2 = _mm256_set1_ps(arow[2]);
            const __m256 av3 = _mm256_set1_ps(arow[3]);
            for (std::size_t j = 0; j < n8; j += 8) {
                const __m256 bv = _mm256_loadu_ps(brow + j);
                _mm256_storeu_ps(d0 + j, _mm256_fmadd_ps(av0, bv, _mm256_loadu_ps(d0 + j)));
                _mm256_storeu_ps(d1 + j, _mm256_fmadd_ps(av1, bv, _mm256_loadu_ps(d1 + j)));
                _mm256_storeu_ps(d2 + j, _mm256_fmadd_ps(av2, bv, _mm256_loadu_ps(d2 + j)));
                _mm256_storeu_ps(d3 + j, _mm256_fmadd_ps(av3, bv, _mm256_loadu_ps(d3 + j)));
            }
            if (rem) {
                const __m256 bv = _mm256_maskload_ps(brow + n8, mask);
                _mm256_maskstore_ps(d0 + n8, mask,
                                    _mm256_fmadd_ps(av0, bv,
                                                    _mm256_maskload_ps(d0 + n8, mask)));
                _mm256_maskstore_ps(d1 + n8, mask,
                                    _mm256_fmadd_ps(av1, bv,
                                                    _mm256_maskload_ps(d1 + n8, mask)));
                _mm256_maskstore_ps(d2 + n8, mask,
                                    _mm256_fmadd_ps(av2, bv,
                                                    _mm256_maskload_ps(d2 + n8, mask)));
                _mm256_maskstore_ps(d3 + n8, mask,
                                    _mm256_fmadd_ps(av3, bv,
                                                    _mm256_maskload_ps(d3 + n8, mask)));
            }
        }
    }
    for (; i < i1; ++i) {
        float* di = dst + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* brow = b + kk * n;
            const __m256 av = _mm256_set1_ps(a[kk * m + i]);
            for (std::size_t j = 0; j < n8; j += 8) {
                const __m256 bv = _mm256_loadu_ps(brow + j);
                _mm256_storeu_ps(di + j, _mm256_fmadd_ps(av, bv, _mm256_loadu_ps(di + j)));
            }
            if (rem) {
                const __m256 bv = _mm256_maskload_ps(brow + n8, mask);
                _mm256_maskstore_ps(di + n8, mask,
                                    _mm256_fmadd_ps(av, bv,
                                                    _mm256_maskload_ps(di + n8, mask)));
            }
        }
    }
}

__attribute__((target("avx512f"))) void rank1_accumulate_avx512(
    float* dst, const float* a, const float* b, std::size_t k0, std::size_t k1,
    std::size_t i0, std::size_t i1, std::size_t m, std::size_t n) {
    const std::size_t n16 = n - n % 16;
    const std::size_t rem = n - n16;
    const __mmask16 mask = rem ? static_cast<__mmask16>((1u << rem) - 1u) : 0;
    std::size_t i = i0;
    for (; i + k_mr <= i1; i += k_mr) {
        float* d0 = dst + i * n;
        float* d1 = d0 + n;
        float* d2 = d1 + n;
        float* d3 = d2 + n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* arow = a + kk * m + i;
            const float* brow = b + kk * n;
            const __m512 av0 = _mm512_set1_ps(arow[0]);
            const __m512 av1 = _mm512_set1_ps(arow[1]);
            const __m512 av2 = _mm512_set1_ps(arow[2]);
            const __m512 av3 = _mm512_set1_ps(arow[3]);
            for (std::size_t j = 0; j < n16; j += 16) {
                const __m512 bv = _mm512_loadu_ps(brow + j);
                _mm512_storeu_ps(d0 + j, _mm512_fmadd_ps(av0, bv, _mm512_loadu_ps(d0 + j)));
                _mm512_storeu_ps(d1 + j, _mm512_fmadd_ps(av1, bv, _mm512_loadu_ps(d1 + j)));
                _mm512_storeu_ps(d2 + j, _mm512_fmadd_ps(av2, bv, _mm512_loadu_ps(d2 + j)));
                _mm512_storeu_ps(d3 + j, _mm512_fmadd_ps(av3, bv, _mm512_loadu_ps(d3 + j)));
            }
            if (rem) {
                const __m512 bv = _mm512_maskz_loadu_ps(mask, brow + n16);
                _mm512_mask_storeu_ps(
                    d0 + n16, mask,
                    _mm512_fmadd_ps(av0, bv, _mm512_maskz_loadu_ps(mask, d0 + n16)));
                _mm512_mask_storeu_ps(
                    d1 + n16, mask,
                    _mm512_fmadd_ps(av1, bv, _mm512_maskz_loadu_ps(mask, d1 + n16)));
                _mm512_mask_storeu_ps(
                    d2 + n16, mask,
                    _mm512_fmadd_ps(av2, bv, _mm512_maskz_loadu_ps(mask, d2 + n16)));
                _mm512_mask_storeu_ps(
                    d3 + n16, mask,
                    _mm512_fmadd_ps(av3, bv, _mm512_maskz_loadu_ps(mask, d3 + n16)));
            }
        }
    }
    for (; i < i1; ++i) {
        float* di = dst + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* brow = b + kk * n;
            const __m512 av = _mm512_set1_ps(a[kk * m + i]);
            for (std::size_t j = 0; j < n16; j += 16) {
                const __m512 bv = _mm512_loadu_ps(brow + j);
                _mm512_storeu_ps(di + j, _mm512_fmadd_ps(av, bv, _mm512_loadu_ps(di + j)));
            }
            if (rem) {
                const __m512 bv = _mm512_maskz_loadu_ps(mask, brow + n16);
                _mm512_mask_storeu_ps(
                    di + n16, mask,
                    _mm512_fmadd_ps(av, bv, _mm512_maskz_loadu_ps(mask, di + n16)));
            }
        }
    }
}

#elif defined(FALLSENSE_SIMD_NEON)

void rank1_accumulate_neon(float* dst, const float* a, const float* b, std::size_t k0,
                           std::size_t k1, std::size_t i0, std::size_t i1, std::size_t m,
                           std::size_t n) {
    const std::size_t n4 = n - n % 4;
    std::size_t i = i0;
    for (; i + k_mr <= i1; i += k_mr) {
        float* d0 = dst + i * n;
        float* d1 = d0 + n;
        float* d2 = d1 + n;
        float* d3 = d2 + n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* arow = a + kk * m + i;
            const float* brow = b + kk * n;
            const float32x4_t av0 = vdupq_n_f32(arow[0]);
            const float32x4_t av1 = vdupq_n_f32(arow[1]);
            const float32x4_t av2 = vdupq_n_f32(arow[2]);
            const float32x4_t av3 = vdupq_n_f32(arow[3]);
            for (std::size_t j = 0; j < n4; j += 4) {
                const float32x4_t bv = vld1q_f32(brow + j);
                vst1q_f32(d0 + j, vfmaq_f32(vld1q_f32(d0 + j), av0, bv));
                vst1q_f32(d1 + j, vfmaq_f32(vld1q_f32(d1 + j), av1, bv));
                vst1q_f32(d2 + j, vfmaq_f32(vld1q_f32(d2 + j), av2, bv));
                vst1q_f32(d3 + j, vfmaq_f32(vld1q_f32(d3 + j), av3, bv));
            }
            for (std::size_t j = n4; j < n; ++j) {
                const float bv = brow[j];
                d0[j] = std::fmaf(arow[0], bv, d0[j]);
                d1[j] = std::fmaf(arow[1], bv, d1[j]);
                d2[j] = std::fmaf(arow[2], bv, d2[j]);
                d3[j] = std::fmaf(arow[3], bv, d3[j]);
            }
        }
    }
    for (; i < i1; ++i) {
        float* di = dst + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float av = a[kk * m + i];
            const float* brow = b + kk * n;
            const float32x4_t avv = vdupq_n_f32(av);
            for (std::size_t j = 0; j < n4; j += 4) {
                const float32x4_t bv = vld1q_f32(brow + j);
                vst1q_f32(di + j, vfmaq_f32(vld1q_f32(di + j), avv, bv));
            }
            for (std::size_t j = n4; j < n; ++j) di[j] = std::fmaf(av, brow[j], di[j]);
        }
    }
}

#endif  // FALLSENSE_SIMD_X86 / FALLSENSE_SIMD_NEON

using rank1_fn = void (*)(float*, const float*, const float*, std::size_t, std::size_t,
                          std::size_t, std::size_t, std::size_t, std::size_t);

rank1_fn rank1_kernel(simd_backend backend) {
#if defined(FALLSENSE_SIMD_X86)
    if (backend == simd_backend::avx512) return &rank1_accumulate_avx512;
    if (backend == simd_backend::avx2_fma) return &rank1_accumulate_avx2;
#elif defined(FALLSENSE_SIMD_NEON)
    if (backend == simd_backend::neon) return &rank1_accumulate_neon;
#else
    (void)backend;
#endif
    return &rank1_accumulate;
}

/// Per-thread partial buffer for gemm_tn_acc, grown to its high-water
/// mark once: steady-state training steps allocate nothing here.
std::vector<float>& tn_acc_scratch() {
    static thread_local std::vector<float> scratch;
    return scratch;
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
             float* c, bool accumulate) {
    if (m == 0 || n == 0) return;
    const gemm_ctx ctx{n,          k, a, b, c, /*bias=*/nullptr,
                       accumulate, fused_act::none, active_simd_backend()};
    gemm_nn_dispatch(m, ctx);
}

void gemm_nn_bias_act(std::size_t m, std::size_t n, std::size_t k, const float* a,
                      const float* b, const float* bias, fused_act act, float* c) {
    if (m == 0 || n == 0) return;
    const gemm_ctx ctx{n,     k, a, b, c, bias,
                       false, act, active_simd_backend()};
    gemm_nn_dispatch(m, ctx);
}

void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
                 float* c) {
    if (m == 0 || n == 0 || k == 0) return;
    const rank1_fn rank1 = rank1_kernel(active_simd_backend());
    const std::size_t min_chunk = (k + k_max_reduce_chunks - 1) / k_max_reduce_chunks;
    const std::size_t chunk = std::max(k_reduce_grain, min_chunk);
    const std::size_t chunks = (k + chunk - 1) / chunk;
    if (chunks == 1) {
        rank1(c, a, b, 0, k, 0, m, m, n);
        return;
    }
    std::vector<float>& scratch = tn_acc_scratch();
    scratch.assign(chunks * m * n, 0.0f);
    // Single-reference capture keeps the dispatch closure inside the
    // std::function small-buffer store — steady-state training steps must
    // not heap-allocate here (tests/serve/alloc_test.cpp).
    struct tn_ctx {
        float* scratch;
        const float* a;
        const float* b;
        rank1_fn rank1;
        std::size_t m, n;
    };
    const tn_ctx ctx{scratch.data(), a, b, rank1, m, n};
    util::parallel_for_chunks(0, k, chunk,
                              [&ctx](std::size_t ci, std::size_t lo, std::size_t hi) {
                                  ctx.rank1(ctx.scratch + ci * ctx.m * ctx.n, ctx.a, ctx.b,
                                            lo, hi, 0, ctx.m, ctx.m, ctx.n);
                              });
    // Fixed chunk-index reduction order: bit-identical for any thread count.
    for (std::size_t ci = 0; ci < chunks; ++ci) {
        const float* part = scratch.data() + ci * m * n;
        for (std::size_t idx = 0; idx < m * n; ++idx) c[idx] += part[idx];
    }
}

void transpose(std::size_t rows, std::size_t cols, const float* src, float* dst) {
    for (std::size_t i = 0; i < rows; ++i) {
        const float* s = src + i * cols;
        for (std::size_t j = 0; j < cols; ++j) dst[j * rows + i] = s[j];
    }
}

void im2col(const float* x, std::size_t batch, std::size_t time, std::size_t ch,
            std::size_t kernel, float* col) {
    // A valid stride-1 patch over [time, ch] is contiguous in memory, so
    // each col row is one memcpy.  Single-reference capture keeps the
    // dispatch std::function in its small-buffer store (inference path).
    struct im2col_ctx {
        const float* x;
        float* col;
        std::size_t time, ch, out_time, patch;
    };
    const im2col_ctx ctx{x, col, time, ch, time - kernel + 1, kernel * ch};
    util::parallel_for(0, batch * ctx.out_time, 512, [&ctx](std::size_t r) {
        const std::size_t n = r / ctx.out_time;
        const std::size_t t = r % ctx.out_time;
        std::memcpy(ctx.col + r * ctx.patch, ctx.x + (n * ctx.time + t) * ctx.ch,
                    ctx.patch * sizeof(float));
    });
}

void col2im_acc(const float* gcol, std::size_t batch, std::size_t time, std::size_t ch,
                std::size_t kernel, float* gx) {
    const std::size_t out_time = time - kernel + 1;
    const std::size_t patch = kernel * ch;
    // Patches overlap along time, so accumulation is serial per batch entry
    // (ascending t, matching the legacy loop order) and parallel across the
    // batch, whose slices are disjoint.  Single-reference capture keeps the
    // closure in the std::function small-buffer store (training hot path).
    struct col2im_ctx {
        const float* gcol;
        float* gx;
        std::size_t time, ch, out_time, patch;
    };
    const col2im_ctx ctx{gcol, gx, time, ch, out_time, patch};
    util::parallel_for(0, batch, 1, [&ctx](std::size_t n) {
        float* gxn = ctx.gx + n * ctx.time * ctx.ch;
        const float* gcn = ctx.gcol + n * ctx.out_time * ctx.patch;
        for (std::size_t t = 0; t < ctx.out_time; ++t) {
            const float* row = gcn + t * ctx.patch;
            float* dst = gxn + t * ctx.ch;
            for (std::size_t i = 0; i < ctx.patch; ++i) dst[i] += row[i];
        }
    });
}

namespace {

/// Scalar int8 axpy: the legacy quantized inner loop, verbatim.
void q8_axpy_scalar(std::size_t n, std::int32_t xv, const std::int8_t* w,
                    std::int32_t* acc) {
    for (std::size_t j = 0; j < n; ++j) acc[j] += xv * static_cast<std::int32_t>(w[j]);
}

#if defined(FALLSENSE_SIMD_X86)

__attribute__((target("avx2"))) void q8_axpy_avx2(std::size_t n, std::int32_t xv,
                                                  const std::int8_t* w, std::int32_t* acc) {
    const __m256i xvv = _mm256_set1_epi32(xv);
    const std::size_t n8 = n - n % 8;
    for (std::size_t j = 0; j < n8; j += 8) {
        const __m128i w8 = _mm_loadl_epi64(reinterpret_cast<const __m128i*>(w + j));
        const __m256i w32 = _mm256_cvtepi8_epi32(w8);
        __m256i accv = _mm256_loadu_si256(reinterpret_cast<const __m256i*>(acc + j));
        accv = _mm256_add_epi32(accv, _mm256_mullo_epi32(xvv, w32));
        _mm256_storeu_si256(reinterpret_cast<__m256i*>(acc + j), accv);
    }
    for (std::size_t j = n8; j < n; ++j) acc[j] += xv * static_cast<std::int32_t>(w[j]);
}

__attribute__((target("avx512f"))) void q8_axpy_avx512(std::size_t n, std::int32_t xv,
                                                       const std::int8_t* w,
                                                       std::int32_t* acc) {
    const __m512i xvv = _mm512_set1_epi32(xv);
    const std::size_t n16 = n - n % 16;
    for (std::size_t j = 0; j < n16; j += 16) {
        const __m128i w8 = _mm_loadu_si128(reinterpret_cast<const __m128i*>(w + j));
        const __m512i w32 = _mm512_cvtepi8_epi32(w8);
        __m512i accv = _mm512_loadu_si512(reinterpret_cast<const void*>(acc + j));
        accv = _mm512_add_epi32(accv, _mm512_mullo_epi32(xvv, w32));
        _mm512_storeu_si512(reinterpret_cast<void*>(acc + j), accv);
    }
    for (std::size_t j = n16; j < n; ++j) acc[j] += xv * static_cast<std::int32_t>(w[j]);
}

#elif defined(FALLSENSE_SIMD_NEON)

void q8_axpy_neon(std::size_t n, std::int32_t xv, const std::int8_t* w, std::int32_t* acc) {
    const std::size_t n8 = n - n % 8;
    for (std::size_t j = 0; j < n8; j += 8) {
        const int16x8_t w16 = vmovl_s8(vld1_s8(w + j));
        const int32x4_t lo = vmovl_s16(vget_low_s16(w16));
        const int32x4_t hi = vmovl_s16(vget_high_s16(w16));
        vst1q_s32(acc + j, vmlaq_n_s32(vld1q_s32(acc + j), lo, xv));
        vst1q_s32(acc + j + 4, vmlaq_n_s32(vld1q_s32(acc + j + 4), hi, xv));
    }
    for (std::size_t j = n8; j < n; ++j) acc[j] += xv * static_cast<std::int32_t>(w[j]);
}

#endif

}  // namespace

q8_axpy_fn q8_axpy_kernel() {
#if defined(FALLSENSE_SIMD_X86)
    const simd_backend backend = active_simd_backend();
    if (backend == simd_backend::avx512) return &q8_axpy_avx512;
    if (backend == simd_backend::avx2_fma) return &q8_axpy_avx2;
#elif defined(FALLSENSE_SIMD_NEON)
    if (active_simd_backend() == simd_backend::neon) return &q8_axpy_neon;
#endif
    return &q8_axpy_scalar;
}

namespace reference {

void conv1d_forward(const float* x, const float* w, const float* b, std::size_t batch,
                    std::size_t time, std::size_t in_ch, std::size_t out_ch,
                    std::size_t kernel, float* y) {
    const std::size_t out_time = time - kernel + 1;
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * time * in_ch;
        float* yn = y + n * out_time * out_ch;
        for (std::size_t t = 0; t < out_time; ++t) {
            float* yt = yn + t * out_ch;
            for (std::size_t o = 0; o < out_ch; ++o) yt[o] = b[o];
            for (std::size_t k = 0; k < kernel; ++k) {
                const float* xt = xn + (t + k) * in_ch;
                const float* wk = w + k * in_ch * out_ch;
                for (std::size_t c = 0; c < in_ch; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch;
                    for (std::size_t o = 0; o < out_ch; ++o) yt[o] += xv * wc[o];
                }
            }
        }
    }
}

void conv1d_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                     std::size_t time, std::size_t in_ch, std::size_t out_ch,
                     std::size_t kernel, float* gx, float* gw, float* gb) {
    const std::size_t out_time = time - kernel + 1;
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * time * in_ch;
        const float* gyn = gy + n * out_time * out_ch;
        float* gxn = gx + n * time * in_ch;
        for (std::size_t t = 0; t < out_time; ++t) {
            const float* gyt = gyn + t * out_ch;
            for (std::size_t o = 0; o < out_ch; ++o) gb[o] += gyt[o];
            for (std::size_t k = 0; k < kernel; ++k) {
                const float* xt = xn + (t + k) * in_ch;
                float* gxt = gxn + (t + k) * in_ch;
                const float* wk = w + k * in_ch * out_ch;
                float* gwk = gw + k * in_ch * out_ch;
                for (std::size_t c = 0; c < in_ch; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch;
                    float* gwc = gwk + c * out_ch;
                    float acc = 0.0f;
                    for (std::size_t o = 0; o < out_ch; ++o) {
                        acc += wc[o] * gyt[o];
                        gwc[o] += xv * gyt[o];
                    }
                    gxt[c] += acc;
                }
            }
        }
    }
}

void dense_forward(const float* x, const float* w, const float* b, std::size_t batch,
                   std::size_t in, std::size_t out, float* y) {
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * in;
        float* yn = y + n * out;
        for (std::size_t o = 0; o < out; ++o) yn[o] = b[o];
        for (std::size_t i = 0; i < in; ++i) {
            const float xi = xn[i];
            if (xi == 0.0f) continue;
            const float* wrow = w + i * out;
            for (std::size_t o = 0; o < out; ++o) yn[o] += xi * wrow[o];
        }
    }
}

void dense_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                    std::size_t in, std::size_t out, float* gx, float* gw, float* gb) {
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * in;
        const float* gyn = gy + n * out;
        float* gxn = gx + n * in;
        for (std::size_t o = 0; o < out; ++o) gb[o] += gyn[o];
        for (std::size_t i = 0; i < in; ++i) {
            const float* wrow = w + i * out;
            float* gwrow = gw + i * out;
            const float xi = xn[i];
            float acc = 0.0f;
            for (std::size_t o = 0; o < out; ++o) {
                acc += wrow[o] * gyn[o];
                gwrow[o] += xi * gyn[o];
            }
            gxn[i] = acc;
        }
    }
}

}  // namespace reference

}  // namespace fallsense::nn
