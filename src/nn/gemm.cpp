#include "nn/gemm.hpp"

#include <algorithm>
#include <cstring>
#include <vector>

#include "util/thread_pool.hpp"

namespace fallsense::nn {

namespace {

// Row-blocking factor: C rows updated together per B-row stream.  Each
// element's reduction stays a single serial ascending-k sequence — the
// exact order of the naive loops — so blocking changes cache traffic, not
// floating-point results.
constexpr std::size_t k_mr = 4;

// Rows of C per parallel task in gemm_nn (dispatch granularity only).
constexpr std::size_t k_row_grain = 32;

// gemm_tn_acc reduction chunking: at least this many reduction rows per
// chunk, at most this many chunks.  Both are shape-only constants so chunk
// boundaries — and therefore the floating-point summation tree — never
// depend on the thread count.
constexpr std::size_t k_reduce_grain = 256;
constexpr std::size_t k_max_reduce_chunks = 16;

/// One row quad [i, i+4) of C, k-outer: each pass over kk streams one
/// contiguous row of B and feeds four C rows held hot in cache, so B is
/// read once per quad instead of once per row.  C is updated in place
/// (callers pre-fill it with bias or zero), keeping per-element additions
/// in ascending-k order.
inline void gemm_nn_row_quad(std::size_t i, std::size_t n, std::size_t k, const float* a,
                             const float* b, float* c) {
    const float* __restrict a0 = a + i * k;
    const float* __restrict a1 = a0 + k;
    const float* __restrict a2 = a1 + k;
    const float* __restrict a3 = a2 + k;
    float* __restrict c0 = c + i * n;
    float* __restrict c1 = c0 + n;
    float* __restrict c2 = c1 + n;
    float* __restrict c3 = c2 + n;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float* __restrict bk = b + kk * n;
        const float av0 = a0[kk];
        const float av1 = a1[kk];
        const float av2 = a2[kk];
        const float av3 = a3[kk];
        for (std::size_t j = 0; j < n; ++j) {
            const float bv = bk[j];
            c0[j] += av0 * bv;
            c1[j] += av1 * bv;
            c2[j] += av2 * bv;
            c3[j] += av3 * bv;
        }
    }
}

/// One row of C, k-outer (remainder path).
inline void gemm_nn_row(std::size_t i, std::size_t n, std::size_t k, const float* a,
                        const float* b, float* c) {
    const float* __restrict ai = a + i * k;
    float* __restrict ci = c + i * n;
    for (std::size_t kk = 0; kk < k; ++kk) {
        const float av = ai[kk];
        const float* __restrict bk = b + kk * n;
        for (std::size_t j = 0; j < n; ++j) ci[j] += av * bk[j];
    }
}

void gemm_nn_rows(std::size_t r0, std::size_t r1, std::size_t n, std::size_t k,
                  const float* a, const float* b, float* c, bool accumulate) {
    if (!accumulate) std::memset(c + r0 * n, 0, (r1 - r0) * n * sizeof(float));
    std::size_t i = r0;
    for (; i + k_mr <= r1; i += k_mr) gemm_nn_row_quad(i, n, k, a, b, c);
    for (; i < r1; ++i) gemm_nn_row(i, n, k, a, b, c);
}

/// dst[i0..i1) rows (+)= A[k0..k1)ᵀ-slice · B[k0..k1)-slice, kk ascending
/// per element.  Row-blocked like gemm_nn so the dst tile stays hot while
/// B's slice streams through once per quad.
void rank1_accumulate(float* dst, const float* a, const float* b, std::size_t k0,
                      std::size_t k1, std::size_t i0, std::size_t i1, std::size_t m,
                      std::size_t n) {
    std::size_t i = i0;
    for (; i + k_mr <= i1; i += k_mr) {
        float* __restrict d0 = dst + i * n;
        float* __restrict d1 = d0 + n;
        float* __restrict d2 = d1 + n;
        float* __restrict d3 = d2 + n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float* __restrict arow = a + kk * m + i;
            const float* __restrict brow = b + kk * n;
            const float av0 = arow[0];
            const float av1 = arow[1];
            const float av2 = arow[2];
            const float av3 = arow[3];
            for (std::size_t j = 0; j < n; ++j) {
                const float bv = brow[j];
                d0[j] += av0 * bv;
                d1[j] += av1 * bv;
                d2[j] += av2 * bv;
                d3[j] += av3 * bv;
            }
        }
    }
    for (; i < i1; ++i) {
        float* __restrict di = dst + i * n;
        for (std::size_t kk = k0; kk < k1; ++kk) {
            const float av = a[kk * m + i];
            const float* __restrict brow = b + kk * n;
            for (std::size_t j = 0; j < n; ++j) di[j] += av * brow[j];
        }
    }
}

}  // namespace

void gemm_nn(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
             float* c, bool accumulate) {
    if (m == 0 || n == 0) return;
    util::parallel_for_chunks(0, m, k_row_grain,
                              [&](std::size_t, std::size_t lo, std::size_t hi) {
                                  gemm_nn_rows(lo, hi, n, k, a, b, c, accumulate);
                              });
}

void gemm_tn_acc(std::size_t m, std::size_t n, std::size_t k, const float* a, const float* b,
                 float* c) {
    if (m == 0 || n == 0 || k == 0) return;
    const std::size_t min_chunk = (k + k_max_reduce_chunks - 1) / k_max_reduce_chunks;
    const std::size_t chunk = std::max(k_reduce_grain, min_chunk);
    const std::size_t chunks = (k + chunk - 1) / chunk;
    if (chunks == 1) {
        rank1_accumulate(c, a, b, 0, k, 0, m, m, n);
        return;
    }
    std::vector<float> scratch(chunks * m * n, 0.0f);
    util::parallel_for_chunks(0, k, chunk,
                              [&](std::size_t ci, std::size_t lo, std::size_t hi) {
                                  rank1_accumulate(scratch.data() + ci * m * n, a, b, lo, hi,
                                                   0, m, m, n);
                              });
    // Fixed chunk-index reduction order: bit-identical for any thread count.
    for (std::size_t ci = 0; ci < chunks; ++ci) {
        const float* part = scratch.data() + ci * m * n;
        for (std::size_t idx = 0; idx < m * n; ++idx) c[idx] += part[idx];
    }
}

void transpose(std::size_t rows, std::size_t cols, const float* src, float* dst) {
    for (std::size_t i = 0; i < rows; ++i) {
        const float* s = src + i * cols;
        for (std::size_t j = 0; j < cols; ++j) dst[j * rows + i] = s[j];
    }
}

void im2col(const float* x, std::size_t batch, std::size_t time, std::size_t ch,
            std::size_t kernel, float* col) {
    const std::size_t out_time = time - kernel + 1;
    const std::size_t patch = kernel * ch;
    // A valid stride-1 patch over [time, ch] is contiguous in memory, so
    // each col row is one memcpy.
    util::parallel_for(0, batch * out_time, 512, [&](std::size_t r) {
        const std::size_t n = r / out_time;
        const std::size_t t = r % out_time;
        std::memcpy(col + r * patch, x + (n * time + t) * ch, patch * sizeof(float));
    });
}

void col2im_acc(const float* gcol, std::size_t batch, std::size_t time, std::size_t ch,
                std::size_t kernel, float* gx) {
    const std::size_t out_time = time - kernel + 1;
    const std::size_t patch = kernel * ch;
    // Patches overlap along time, so accumulation is serial per batch entry
    // (ascending t, matching the legacy loop order) and parallel across the
    // batch, whose slices are disjoint.
    util::parallel_for(0, batch, 1, [&](std::size_t n) {
        float* gxn = gx + n * time * ch;
        const float* gcn = gcol + n * out_time * patch;
        for (std::size_t t = 0; t < out_time; ++t) {
            const float* row = gcn + t * patch;
            float* dst = gxn + t * ch;
            for (std::size_t i = 0; i < patch; ++i) dst[i] += row[i];
        }
    });
}

namespace reference {

void conv1d_forward(const float* x, const float* w, const float* b, std::size_t batch,
                    std::size_t time, std::size_t in_ch, std::size_t out_ch,
                    std::size_t kernel, float* y) {
    const std::size_t out_time = time - kernel + 1;
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * time * in_ch;
        float* yn = y + n * out_time * out_ch;
        for (std::size_t t = 0; t < out_time; ++t) {
            float* yt = yn + t * out_ch;
            for (std::size_t o = 0; o < out_ch; ++o) yt[o] = b[o];
            for (std::size_t k = 0; k < kernel; ++k) {
                const float* xt = xn + (t + k) * in_ch;
                const float* wk = w + k * in_ch * out_ch;
                for (std::size_t c = 0; c < in_ch; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch;
                    for (std::size_t o = 0; o < out_ch; ++o) yt[o] += xv * wc[o];
                }
            }
        }
    }
}

void conv1d_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                     std::size_t time, std::size_t in_ch, std::size_t out_ch,
                     std::size_t kernel, float* gx, float* gw, float* gb) {
    const std::size_t out_time = time - kernel + 1;
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * time * in_ch;
        const float* gyn = gy + n * out_time * out_ch;
        float* gxn = gx + n * time * in_ch;
        for (std::size_t t = 0; t < out_time; ++t) {
            const float* gyt = gyn + t * out_ch;
            for (std::size_t o = 0; o < out_ch; ++o) gb[o] += gyt[o];
            for (std::size_t k = 0; k < kernel; ++k) {
                const float* xt = xn + (t + k) * in_ch;
                float* gxt = gxn + (t + k) * in_ch;
                const float* wk = w + k * in_ch * out_ch;
                float* gwk = gw + k * in_ch * out_ch;
                for (std::size_t c = 0; c < in_ch; ++c) {
                    const float xv = xt[c];
                    const float* wc = wk + c * out_ch;
                    float* gwc = gwk + c * out_ch;
                    float acc = 0.0f;
                    for (std::size_t o = 0; o < out_ch; ++o) {
                        acc += wc[o] * gyt[o];
                        gwc[o] += xv * gyt[o];
                    }
                    gxt[c] += acc;
                }
            }
        }
    }
}

void dense_forward(const float* x, const float* w, const float* b, std::size_t batch,
                   std::size_t in, std::size_t out, float* y) {
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * in;
        float* yn = y + n * out;
        for (std::size_t o = 0; o < out; ++o) yn[o] = b[o];
        for (std::size_t i = 0; i < in; ++i) {
            const float xi = xn[i];
            if (xi == 0.0f) continue;
            const float* wrow = w + i * out;
            for (std::size_t o = 0; o < out; ++o) yn[o] += xi * wrow[o];
        }
    }
}

void dense_backward(const float* x, const float* w, const float* gy, std::size_t batch,
                    std::size_t in, std::size_t out, float* gx, float* gw, float* gb) {
    for (std::size_t n = 0; n < batch; ++n) {
        const float* xn = x + n * in;
        const float* gyn = gy + n * out;
        float* gxn = gx + n * in;
        for (std::size_t o = 0; o < out; ++o) gb[o] += gyn[o];
        for (std::size_t i = 0; i < in; ++i) {
            const float* wrow = w + i * out;
            float* gwrow = gw + i * out;
            const float xi = xn[i];
            float acc = 0.0f;
            for (std::size_t o = 0; o < out; ++o) {
                acc += wrow[o] * gyn[o];
                gwrow[o] += xi * gyn[o];
            }
            gxn[i] = acc;
        }
    }
}

}  // namespace reference

}  // namespace fallsense::nn
