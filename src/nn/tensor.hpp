// Dense row-major float tensor.
//
// fallsense trains small models (tens of thousands of parameters) on CPU,
// so the tensor type favors clarity and safety over BLAS-grade performance:
// contiguous std::vector<float> storage, explicit shape, bounds-checked
// element access in debug-style accessors, and unchecked spans for kernels
// that have already validated shapes.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <span>
#include <string>
#include <vector>

namespace fallsense::nn {

/// Shape of a tensor: sizes per dimension, outermost first.
using shape_t = std::vector<std::size_t>;

/// Number of elements a shape addresses (1 for the empty/scalar shape).
std::size_t shape_volume(const shape_t& shape);

/// "[2 x 20 x 9]" — used in error messages and model dumps.
std::string shape_to_string(const shape_t& shape);

class tensor {
public:
    /// Empty (rank-0, volume-1 is NOT implied — size() == 0).
    tensor() = default;

    /// Zero-filled tensor of the given shape.
    explicit tensor(shape_t shape);

    /// Tensor of the given shape with explicit contents (size must match).
    tensor(shape_t shape, std::vector<float> values);

    static tensor zeros(shape_t shape) { return tensor(std::move(shape)); }
    static tensor full(shape_t shape, float value);
    /// 1-D tensor from an initializer list.
    static tensor from_values(std::initializer_list<float> values);

    const shape_t& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /// Size of dimension `dim`; throws if out of range.
    std::size_t dim(std::size_t d) const;

    std::span<float> values() { return data_; }
    std::span<const float> values() const { return data_; }
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /// Flat element access (bounds-checked).
    float& operator[](std::size_t i);
    float operator[](std::size_t i) const;

    /// Multi-index access (bounds-checked); index count must equal rank.
    float& at(std::initializer_list<std::size_t> idx);
    float at(std::initializer_list<std::size_t> idx) const;

    /// Flat offset of a multi-index (bounds-checked).
    std::size_t offset(std::initializer_list<std::size_t> idx) const;

    void fill(float value);
    /// Replace shape and contents in place, reusing existing capacity —
    /// once a tensor has grown to its high-water mark, repeated assigns
    /// perform no heap allocation (the serving hot path relies on this).
    /// `values.size()` must equal the volume of `new_shape`.
    void assign(const shape_t& new_shape, std::span<const float> values);
    /// Reinterpret the same data with a different shape (volume must match).
    tensor reshaped(shape_t new_shape) const;

    /// Elementwise in-place ops (shapes must match exactly).
    tensor& operator+=(const tensor& other);
    tensor& operator-=(const tensor& other);
    tensor& operator*=(float scale);

    /// Sum of all elements / sum of squares (used by loss and grad-norm code).
    double sum() const;
    double squared_norm() const;

private:
    shape_t shape_;
    std::vector<float> data_;
};

/// Elementwise binary ops returning new tensors (shapes must match).
tensor operator+(const tensor& a, const tensor& b);
tensor operator-(const tensor& a, const tensor& b);
tensor operator*(const tensor& a, float scale);

/// True when shapes are identical.
bool same_shape(const tensor& a, const tensor& b);

}  // namespace fallsense::nn
