// Dense row-major float tensor.
//
// fallsense trains small models (tens of thousands of parameters) on CPU,
// so the tensor type favors clarity and safety over BLAS-grade performance:
// contiguous std::vector<float> storage, explicit shape, bounds-checked
// element access in debug-style accessors, and unchecked spans for kernels
// that have already validated shapes.
//
// Two allocation properties matter for the hot paths:
//
//   * Shapes never heap-allocate for real models: shape_t stores up to six
//     dimensions inline (the deepest layer in the repo is rank 4) and only
//     falls back to the heap beyond that.
//   * Tensor storage is recycled through a thread-local buffer pool: a
//     destroyed tensor donates its capacity, a constructed one reuses it.
//     Steady-state training steps — which create and drop activation and
//     gradient tensors every batch — therefore allocate nothing once warm.
//     FALLSENSE_TENSOR_POOL=off disables recycling (every tensor mallocs),
//     for allocator debugging.
#pragma once

#include <cstddef>
#include <initializer_list>
#include <iosfwd>
#include <span>
#include <string>
#include <vector>

namespace fallsense::nn {

/// Shape of a tensor: sizes per dimension, outermost first.  A small-size-
/// optimized sequence with the slice of std::vector's interface the layers
/// use; up to k_inline_rank dimensions live inline, so copying shapes on
/// the training path performs no heap allocation.
class shape_t {
public:
    using value_type = std::size_t;
    using iterator = std::size_t*;
    using const_iterator = const std::size_t*;

    shape_t() = default;

    /// Rank-`count` shape, zero-filled (deserialization fills it in).
    explicit shape_t(std::size_t count) {
        reserve_at_least(count);
        size_ = count;
        for (std::size_t i = 0; i < count; ++i) ptr_[i] = 0;
    }

    shape_t(std::initializer_list<std::size_t> dims) {
        reserve_at_least(dims.size());
        for (const std::size_t d : dims) ptr_[size_++] = d;
    }

    shape_t(const shape_t& other) { assign_from(other); }

    shape_t(shape_t&& other) noexcept { steal_from(other); }

    shape_t& operator=(const shape_t& other) {
        if (this != &other) {
            size_ = 0;
            assign_from(other);
        }
        return *this;
    }

    shape_t& operator=(shape_t&& other) noexcept {
        if (this != &other) {
            release_heap();
            steal_from(other);
        }
        return *this;
    }

    ~shape_t() { release_heap(); }

    std::size_t size() const { return size_; }
    bool empty() const { return size_ == 0; }

    std::size_t* data() { return ptr_; }
    const std::size_t* data() const { return ptr_; }

    std::size_t& operator[](std::size_t i) { return ptr_[i]; }
    std::size_t operator[](std::size_t i) const { return ptr_[i]; }

    std::size_t front() const { return ptr_[0]; }
    std::size_t back() const { return ptr_[size_ - 1]; }

    iterator begin() { return ptr_; }
    iterator end() { return ptr_ + size_; }
    const_iterator begin() const { return ptr_; }
    const_iterator end() const { return ptr_ + size_; }

    void clear() { size_ = 0; }

    void push_back(std::size_t d) {
        reserve_at_least(size_ + 1);
        ptr_[size_++] = d;
    }

    friend bool operator==(const shape_t& a, const shape_t& b) {
        if (a.size_ != b.size_) return false;
        for (std::size_t i = 0; i < a.size_; ++i) {
            if (a.ptr_[i] != b.ptr_[i]) return false;
        }
        return true;
    }
    friend bool operator!=(const shape_t& a, const shape_t& b) { return !(a == b); }

private:
    static constexpr std::size_t k_inline_rank = 6;

    void reserve_at_least(std::size_t count);
    void assign_from(const shape_t& other);
    void steal_from(shape_t& other) noexcept;
    void release_heap() {
        if (ptr_ != inline_) delete[] ptr_;
        ptr_ = inline_;
        capacity_ = k_inline_rank;
        size_ = 0;
    }

    std::size_t size_ = 0;
    std::size_t capacity_ = k_inline_rank;
    std::size_t* ptr_ = inline_;
    std::size_t inline_[k_inline_rank] = {};
};

/// "[2 x 20 x 9]" when streamed (gtest failure messages, model dumps).
std::ostream& operator<<(std::ostream& os, const shape_t& shape);

/// Number of elements a shape addresses (1 for the empty/scalar shape).
std::size_t shape_volume(const shape_t& shape);

/// "[2 x 20 x 9]" — used in error messages and model dumps.
std::string shape_to_string(const shape_t& shape);

class tensor {
public:
    /// Empty (rank-0, volume-1 is NOT implied — size() == 0).
    tensor() = default;

    /// Zero-filled tensor of the given shape.
    explicit tensor(shape_t shape);

    /// Tensor of the given shape with explicit contents (size must match).
    tensor(shape_t shape, std::vector<float> values);

    /// Copies recycle pooled capacity; moves transfer storage.  The
    /// destructor donates the buffer back to the thread-local pool, so
    /// temporaries on the training path cost no malloc once warm.
    tensor(const tensor& other);
    tensor(tensor&& other) noexcept = default;
    tensor& operator=(const tensor& other);
    tensor& operator=(tensor&& other) noexcept;
    ~tensor();

    static tensor zeros(shape_t shape) { return tensor(std::move(shape)); }
    static tensor full(shape_t shape, float value);
    /// 1-D tensor from an initializer list.
    static tensor from_values(std::initializer_list<float> values);

    const shape_t& shape() const { return shape_; }
    std::size_t rank() const { return shape_.size(); }
    std::size_t size() const { return data_.size(); }
    bool empty() const { return data_.empty(); }

    /// Size of dimension `dim`; throws if out of range.
    std::size_t dim(std::size_t d) const;

    std::span<float> values() { return data_; }
    std::span<const float> values() const { return data_; }
    float* data() { return data_.data(); }
    const float* data() const { return data_.data(); }

    /// Flat element access (bounds-checked).
    float& operator[](std::size_t i);
    float operator[](std::size_t i) const;

    /// Multi-index access (bounds-checked); index count must equal rank.
    float& at(std::initializer_list<std::size_t> idx);
    float at(std::initializer_list<std::size_t> idx) const;

    /// Flat offset of a multi-index (bounds-checked).
    std::size_t offset(std::initializer_list<std::size_t> idx) const;

    void fill(float value);
    /// Replace shape and contents in place, reusing existing capacity —
    /// once a tensor has grown to its high-water mark, repeated assigns
    /// perform no heap allocation (the serving hot path relies on this).
    /// `values.size()` must equal the volume of `new_shape`.
    void assign(const shape_t& new_shape, std::span<const float> values);
    /// Reinterpret the same data with a different shape (volume must match).
    tensor reshaped(shape_t new_shape) const;

    /// Elementwise in-place ops (shapes must match exactly).
    tensor& operator+=(const tensor& other);
    tensor& operator-=(const tensor& other);
    tensor& operator*=(float scale);

    /// Sum of all elements / sum of squares (used by loss and grad-norm code).
    double sum() const;
    double squared_norm() const;

private:
    shape_t shape_;
    std::vector<float> data_;
};

/// Elementwise binary ops returning new tensors (shapes must match).
tensor operator+(const tensor& a, const tensor& b);
tensor operator-(const tensor& a, const tensor& b);
tensor operator*(const tensor& a, float scale);

/// True when shapes are identical.
bool same_shape(const tensor& a, const tensor& b);

}  // namespace fallsense::nn
