#include "nn/layer.hpp"

#include "util/check.hpp"

namespace fallsense::nn {

const char* layer_kind_name(layer_kind kind) {
    switch (kind) {
        case layer_kind::dense: return "dense";
        case layer_kind::relu: return "relu";
        case layer_kind::sigmoid: return "sigmoid";
        case layer_kind::conv1d: return "conv1d";
        case layer_kind::maxpool1d: return "maxpool1d";
        case layer_kind::flatten: return "flatten";
        case layer_kind::dropout: return "dropout";
        case layer_kind::lstm: return "lstm";
        case layer_kind::conv_lstm2d: return "conv_lstm2d";
    }
    return "?";
}

std::size_t layer::infer_workspace_bytes(const shape_t&, std::size_t) const { return 0; }

bool layer::infer_in_place() const { return false; }

void layer::forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                               std::size_t batch, std::span<float> workspace,
                               std::span<float> out, fused_act act) {
    FS_CHECK(act == fused_act::none,
             std::string("layer cannot fuse epilogue ") + fused_act_name(act));
    forward_into(in, input_shape, batch, workspace, out);
}

std::size_t model::parameter_count() {
    std::size_t count = 0;
    for (const parameter* p : parameters()) count += p->value.size();
    return count;
}

}  // namespace fallsense::nn
