// Runtime SIMD dispatch for the nn/quant GEMM microkernels.
//
// The hot kernels (gemm_nn row updates, the int8 accumulator axpy) exist
// in two flavors: the scalar reference loops — the bit-exact determinism
// baseline every golden manifest is pinned to — and vectorized variants
// (AVX2+FMA on x86-64, NEON on AArch64) compiled behind target attributes
// and selected at runtime from a one-time CPU-feature probe.
//
// Mode resolution, in priority order:
//   1. set_simd_mode() — tools expose it as `--simd scalar|native`.
//   2. The FALLSENSE_SIMD env var ("scalar" or "native").
//   3. Default: scalar.  Vector kernels are opt-in because float FMA
//      rounds differently from separate mul+add; scalar mode stays
//      byte-identical to the pre-dispatch kernels.  (Int8 kernels are
//      bit-identical in either mode — integer sums are exact.)
//
// Requesting `native` on a host whose CPU (or compiler) lacks the vector
// ISA silently degrades to the scalar kernels: `active_simd_mode()`
// reports what will actually execute.
#pragma once

#include <optional>
#include <string>

namespace fallsense::nn {

enum class simd_mode {
    scalar,  ///< reference loops, bit-exact across builds of the same flags
    native,  ///< vectorized kernels for the probed host ISA
};

const char* simd_mode_name(simd_mode mode);

/// Parse "scalar" / "native"; anything else returns nullopt.
std::optional<simd_mode> parse_simd_mode(const std::string& text);

/// True when a vector backend is compiled in AND the running CPU supports
/// it (probed once, cached).
bool simd_native_available();

/// Name of the vector backend `native` mode would run: "avx2-fma",
/// "neon", or "scalar" when no vector backend is available.
const char* simd_backend_name();

/// The mode the kernels will actually execute: the requested mode,
/// degraded to scalar when no vector backend is available.
simd_mode active_simd_mode();

/// Override the requested mode for this process (tools' --simd flag).
void set_simd_mode(simd_mode mode);

}  // namespace fallsense::nn
