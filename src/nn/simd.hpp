// Runtime SIMD dispatch for the nn/quant GEMM microkernels.
//
// The hot kernels (gemm_nn row updates, the fused bias+activation GEMM,
// the gradient reduction rank-1 updates, the int8 accumulator axpy) exist
// in several flavors: the scalar reference loops — the bit-exact
// determinism baseline every golden manifest is pinned to — and vectorized
// variants compiled behind target attributes and selected at runtime from
// a one-time CPU-feature probe.
//
// Backends, best-first per architecture:
//   x86-64:  avx512 (AVX-512F) -> avx2-fma (AVX2+FMA) -> scalar
//   aarch64: neon -> scalar
//
// Mode resolution, in priority order:
//   1. set_simd_mode() — tools expose it as `--simd scalar|native`.
//   2. The FALLSENSE_SIMD env var ("scalar" or "native").
//   3. Default: scalar.  Vector kernels are opt-in because float FMA
//      rounds differently from separate mul+add; scalar mode stays
//      byte-identical to the pre-dispatch kernels.  (Int8 kernels are
//      bit-identical in either mode — integer sums are exact.)
//
// Backend resolution inside native mode: the best probed backend, capped
// by set_simd_backend_cap() / the FALLSENSE_SIMD_BACKEND env var (benches
// use the cap to measure every backend the host supports, CI uses it to
// pin a leg to one tier).  Requesting `native` on a host whose CPU (or
// compiler) lacks any vector ISA silently degrades to the scalar kernels:
// `active_simd_mode()` / `active_simd_backend()` report what will
// actually execute.
//
// Every vector backend issues the identical per-element fused
// multiply-add sequence (one fmadd per reduction step, ascending k), so
// float results are bit-identical ACROSS vector backends — "native" is a
// single golden surface per problem, distinct from scalar only.
#pragma once

#include <optional>
#include <string>
#include <vector>

namespace fallsense::nn {

enum class simd_mode {
    scalar,  ///< reference loops, bit-exact across builds of the same flags
    native,  ///< vectorized kernels for the probed host ISA
};

/// Vector kernel tiers, ordered worst-to-best within an architecture.
enum class simd_backend {
    scalar = 0,
    neon = 1,      ///< aarch64 baseline
    avx2_fma = 2,  ///< x86-64 AVX2+FMA
    avx512 = 3,    ///< x86-64 AVX-512F
};

const char* simd_mode_name(simd_mode mode);

/// Canonical backend label: "scalar" / "neon" / "avx2-fma" / "avx512".
const char* simd_backend_label(simd_backend backend);

/// Parse "scalar" / "native"; anything else returns nullopt.
std::optional<simd_mode> parse_simd_mode(const std::string& text);

/// Parse a backend label; anything else returns nullopt.
std::optional<simd_backend> parse_simd_backend(const std::string& text);

/// True when a vector backend is compiled in AND the running CPU supports
/// it (probed once, cached).
bool simd_native_available();

/// Name of the best vector backend `native` mode could run: "avx512",
/// "avx2-fma", "neon", or "scalar" when no vector backend is available.
/// Ignores the cap — this is the hardware probe, not the resolution.
const char* simd_backend_name();

/// The mode the kernels will actually execute: the requested mode,
/// degraded to scalar when no vector backend is available.
simd_mode active_simd_mode();

/// The backend the kernels will actually execute right now: scalar when
/// the active mode is scalar, otherwise the best probed backend capped by
/// set_simd_backend_cap() / FALLSENSE_SIMD_BACKEND.
simd_backend active_simd_backend();

/// Label of active_simd_backend() — what bench/obs manifests record as
/// the *resolved* `simd` field.
const char* active_simd_backend_name();

/// Every backend the host can execute, worst-first, starting with scalar
/// (always present).  Benches iterate this to emit one row per backend.
std::vector<simd_backend> available_simd_backends();

/// Override the requested mode for this process (tools' --simd flag).
void set_simd_mode(simd_mode mode);

/// Cap native-mode resolution at `cap` (degrading further if the host
/// lacks it).  Benches pin one backend per row with this; pass the best
/// probed backend (or simd_backend::avx512) to restore the default.
void set_simd_backend_cap(simd_backend cap);

/// True when the workspace planners may collapse Conv->ReLU / Dense->ReLU
/// (and ->sigmoid) pairs into one fused bias+activation kernel call.
/// Defaults to on; FALLSENSE_FUSE_EPILOGUE=0 (or off/false) disables it,
/// and set_epilogue_fusion() overrides either way.  Scalar-mode fused
/// results are bit-identical to unfused, so this is a debugging and
/// benchmarking switch, not a numerics switch.
bool epilogue_fusion_enabled();
void set_epilogue_fusion(bool enabled);

}  // namespace fallsense::nn
