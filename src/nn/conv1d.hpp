// Temporal convolution over [batch, time, channels] with valid padding and
// stride 1 — the convolution each branch of the paper's CNN applies to its
// [n x 3] motion-feature matrix.  Forward and backward run through the
// im2col + GEMM kernels in nn/gemm.hpp (see docs/performance.md for the
// layout and determinism contract).
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

class conv1d : public layer {
public:
    conv1d(std::size_t in_channels, std::size_t out_channels, std::size_t kernel_size,
           util::rng& gen, std::string name = "conv1d");

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&weight_, &bias_}; }
    layer_kind kind() const override { return layer_kind::conv1d; }
    layer_ptr clone() const override {
        util::rng gen(0);  // init values are overwritten below
        auto copy = std::make_unique<conv1d>(in_ch_, out_ch_, kernel_, gen);
        copy->weight_ = weight_;
        copy->bias_ = bias_;
        return copy;
    }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    std::size_t infer_workspace_bytes(const shape_t& input_shape,
                                      std::size_t batch) const override;
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;
    bool can_fuse(fused_act) const override { return true; }
    void forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                            std::size_t batch, std::span<float> workspace,
                            std::span<float> out, fused_act act) override;

    std::size_t in_channels() const { return in_ch_; }
    std::size_t out_channels() const { return out_ch_; }
    std::size_t kernel_size() const { return kernel_; }
    parameter& weight() { return weight_; }
    parameter& bias() { return bias_; }
    const parameter& weight() const { return weight_; }
    const parameter& bias() const { return bias_; }

private:
    std::size_t in_ch_;
    std::size_t out_ch_;
    std::size_t kernel_;
    parameter weight_;  ///< [kernel, in_channels, out_channels]
    parameter bias_;    ///< [out_channels]
    tensor input_cache_;
    std::vector<float> col_cache_;    ///< im2col of the last forward input
    std::vector<float> gcol_scratch_; ///< column-space gradient scratch
    std::vector<float> wt_scratch_;   ///< transposed weights for backward
};

}  // namespace fallsense::nn
