#include "nn/tensor.hpp"

#include <algorithm>
#include <ostream>
#include <sstream>
#include <utility>

#include "util/check.hpp"
#include "util/env.hpp"

namespace fallsense::nn {

void shape_t::reserve_at_least(std::size_t count) {
    if (count <= capacity_) return;
    std::size_t cap = capacity_;
    while (cap < count) cap *= 2;
    std::size_t* heap = new std::size_t[cap];
    for (std::size_t i = 0; i < size_; ++i) heap[i] = ptr_[i];
    if (ptr_ != inline_) delete[] ptr_;
    ptr_ = heap;
    capacity_ = cap;
}

void shape_t::assign_from(const shape_t& other) {
    reserve_at_least(other.size_);
    for (std::size_t i = 0; i < other.size_; ++i) ptr_[i] = other.ptr_[i];
    size_ = other.size_;
}

void shape_t::steal_from(shape_t& other) noexcept {
    if (other.ptr_ != other.inline_) {
        ptr_ = other.ptr_;
        capacity_ = other.capacity_;
        size_ = other.size_;
        other.ptr_ = other.inline_;
        other.capacity_ = k_inline_rank;
        other.size_ = 0;
        return;
    }
    ptr_ = inline_;
    capacity_ = k_inline_rank;
    size_ = other.size_;
    for (std::size_t i = 0; i < size_; ++i) inline_[i] = other.inline_[i];
    other.size_ = 0;
}

std::ostream& operator<<(std::ostream& os, const shape_t& shape) {
    return os << shape_to_string(shape);
}

std::size_t shape_volume(const shape_t& shape) {
    std::size_t volume = 1;
    for (const std::size_t d : shape) volume *= d;
    return volume;
}

std::string shape_to_string(const shape_t& shape) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) os << " x ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

namespace {

/// Thread-local recycler for tensor storage.  Destroyed tensors donate
/// their std::vector (capacity intact); constructions take the smallest
/// donated vector that fits and refill it with vector::assign, which
/// never reallocates when capacity suffices.  Bounded so a burst of huge
/// tensors cannot pin memory: at most k_pool_entries vectors, each at
/// most k_pool_max_floats.
class buffer_pool;

/// Trivially-destructible handle: null before the pool's first use and
/// again after its thread-exit destruction, so tensors destroyed during
/// thread teardown degrade to plain deallocation instead of touching a
/// dead pool.
thread_local buffer_pool* g_pool_ptr = nullptr;
thread_local bool g_pool_dead = false;

constexpr std::size_t k_pool_entries = 64;
constexpr std::size_t k_pool_max_floats = std::size_t{1} << 24;  // 64 MiB of floats

class buffer_pool {
public:
    buffer_pool() {
        free_.reserve(k_pool_entries);  // release() never reallocates below
        g_pool_ptr = this;
    }
    ~buffer_pool() {
        g_pool_ptr = nullptr;
        g_pool_dead = true;
    }

    std::vector<float> acquire(std::size_t n) {
        std::size_t best = free_.size();
        for (std::size_t i = 0; i < free_.size(); ++i) {
            const std::size_t cap = free_[i].capacity();
            if (cap < n) continue;
            if (best == free_.size() || cap < free_[best].capacity()) best = i;
        }
        if (best == free_.size()) return {};
        std::vector<float> out = std::move(free_[best]);
        free_[best] = std::move(free_.back());
        free_.pop_back();
        return out;
    }

    void release(std::vector<float>&& v) noexcept {
        if (v.capacity() == 0 || v.capacity() > k_pool_max_floats) return;
        if (free_.size() >= k_pool_entries) return;
        free_.push_back(std::move(v));
    }

private:
    std::vector<std::vector<float>> free_;
};

bool pool_enabled() {
    static const bool enabled = [] {
        const std::string text = util::env_string("FALLSENSE_TENSOR_POOL");
        return !(text == "off" || text == "0" || text == "false");
    }();
    return enabled;
}

buffer_pool* pool_for_acquire() {
    if (g_pool_ptr == nullptr) {
        if (g_pool_dead || !pool_enabled()) return nullptr;
        static thread_local buffer_pool pool;  // ctor publishes g_pool_ptr
        (void)pool;
    }
    return g_pool_ptr;
}

/// A vector with capacity >= n from the pool, or an empty vector when the
/// pool is off, exhausted, or has nothing big enough.  Contents are stale;
/// callers must assign/fill every element.
std::vector<float> pool_acquire(std::size_t n) {
    if (n == 0) return {};
    if (buffer_pool* pool = pool_for_acquire()) return pool->acquire(n);
    return {};
}

void pool_release(std::vector<float>&& v) noexcept {
    if (buffer_pool* pool = g_pool_ptr) pool->release(std::move(v));
}

}  // namespace

tensor::tensor(shape_t shape) : shape_(std::move(shape)) {
    const std::size_t n = shape_volume(shape_);
    data_ = pool_acquire(n);
    data_.assign(n, 0.0f);
}

tensor::tensor(shape_t shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
    FS_ARG_CHECK(data_.size() == shape_volume(shape_),
                 "tensor value count does not match shape " + shape_to_string(shape_));
}

tensor::tensor(const tensor& other) : shape_(other.shape_) {
    data_ = pool_acquire(other.data_.size());
    data_.assign(other.data_.begin(), other.data_.end());
}

tensor& tensor::operator=(const tensor& other) {
    if (this != &other) {
        shape_ = other.shape_;
        data_.assign(other.data_.begin(), other.data_.end());
    }
    return *this;
}

tensor& tensor::operator=(tensor&& other) noexcept {
    if (this != &other) {
        shape_ = std::move(other.shape_);
        // Swap instead of move-assign so this tensor's old buffer survives
        // inside `other` and reaches the pool via other's destructor.
        data_.swap(other.data_);
    }
    return *this;
}

tensor::~tensor() { pool_release(std::move(data_)); }

void tensor::assign(const shape_t& new_shape, std::span<const float> values) {
    FS_ARG_CHECK(values.size() == shape_volume(new_shape),
                 "tensor::assign value count does not match shape " +
                     shape_to_string(new_shape));
    shape_ = new_shape;
    data_.assign(values.begin(), values.end());
}

tensor tensor::full(shape_t shape, float value) {
    tensor t(std::move(shape));
    t.fill(value);
    return t;
}

tensor tensor::from_values(std::initializer_list<float> values) {
    return tensor({values.size()}, std::vector<float>(values));
}

std::size_t tensor::dim(std::size_t d) const {
    FS_ARG_CHECK(d < shape_.size(), "tensor dimension index out of range");
    return shape_[d];
}

float& tensor::operator[](std::size_t i) {
    FS_ARG_CHECK(i < data_.size(), "tensor flat index out of range");
    return data_[i];
}

float tensor::operator[](std::size_t i) const {
    FS_ARG_CHECK(i < data_.size(), "tensor flat index out of range");
    return data_[i];
}

std::size_t tensor::offset(std::initializer_list<std::size_t> idx) const {
    FS_ARG_CHECK(idx.size() == shape_.size(), "tensor index rank mismatch");
    std::size_t flat = 0;
    std::size_t d = 0;
    for (const std::size_t i : idx) {
        FS_ARG_CHECK(i < shape_[d], "tensor index out of range in dim " + std::to_string(d));
        flat = flat * shape_[d] + i;
        ++d;
    }
    return flat;
}

float& tensor::at(std::initializer_list<std::size_t> idx) { return data_[offset(idx)]; }

float tensor::at(std::initializer_list<std::size_t> idx) const { return data_[offset(idx)]; }

void tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

tensor tensor::reshaped(shape_t new_shape) const {
    FS_ARG_CHECK(shape_volume(new_shape) == data_.size(),
                 "reshape volume mismatch: " + shape_to_string(shape_) + " -> " +
                     shape_to_string(new_shape));
    tensor out = *this;  // pooled copy
    out.shape_ = std::move(new_shape);
    return out;
}

tensor& tensor::operator+=(const tensor& other) {
    FS_ARG_CHECK(same_shape(*this, other), "tensor += shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

tensor& tensor::operator-=(const tensor& other) {
    FS_ARG_CHECK(same_shape(*this, other), "tensor -= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

tensor& tensor::operator*=(float scale) {
    for (float& v : data_) v *= scale;
    return *this;
}

double tensor::sum() const {
    double acc = 0.0;
    for (const float v : data_) acc += v;
    return acc;
}

double tensor::squared_norm() const {
    double acc = 0.0;
    for (const float v : data_) acc += static_cast<double>(v) * v;
    return acc;
}

tensor operator+(const tensor& a, const tensor& b) {
    tensor out = a;
    out += b;
    return out;
}

tensor operator-(const tensor& a, const tensor& b) {
    tensor out = a;
    out -= b;
    return out;
}

tensor operator*(const tensor& a, float scale) {
    tensor out = a;
    out *= scale;
    return out;
}

bool same_shape(const tensor& a, const tensor& b) { return a.shape() == b.shape(); }

}  // namespace fallsense::nn
