#include "nn/tensor.hpp"

#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::nn {

std::size_t shape_volume(const shape_t& shape) {
    std::size_t volume = 1;
    for (const std::size_t d : shape) volume *= d;
    return volume;
}

std::string shape_to_string(const shape_t& shape) {
    std::ostringstream os;
    os << '[';
    for (std::size_t i = 0; i < shape.size(); ++i) {
        if (i) os << " x ";
        os << shape[i];
    }
    os << ']';
    return os.str();
}

tensor::tensor(shape_t shape) : shape_(std::move(shape)), data_(shape_volume(shape_), 0.0f) {}

tensor::tensor(shape_t shape, std::vector<float> values)
    : shape_(std::move(shape)), data_(std::move(values)) {
    FS_ARG_CHECK(data_.size() == shape_volume(shape_),
                 "tensor value count does not match shape " + shape_to_string(shape_));
}

void tensor::assign(const shape_t& new_shape, std::span<const float> values) {
    FS_ARG_CHECK(values.size() == shape_volume(new_shape),
                 "tensor::assign value count does not match shape " +
                     shape_to_string(new_shape));
    shape_ = new_shape;
    data_.assign(values.begin(), values.end());
}

tensor tensor::full(shape_t shape, float value) {
    tensor t(std::move(shape));
    t.fill(value);
    return t;
}

tensor tensor::from_values(std::initializer_list<float> values) {
    return tensor({values.size()}, std::vector<float>(values));
}

std::size_t tensor::dim(std::size_t d) const {
    FS_ARG_CHECK(d < shape_.size(), "tensor dimension index out of range");
    return shape_[d];
}

float& tensor::operator[](std::size_t i) {
    FS_ARG_CHECK(i < data_.size(), "tensor flat index out of range");
    return data_[i];
}

float tensor::operator[](std::size_t i) const {
    FS_ARG_CHECK(i < data_.size(), "tensor flat index out of range");
    return data_[i];
}

std::size_t tensor::offset(std::initializer_list<std::size_t> idx) const {
    FS_ARG_CHECK(idx.size() == shape_.size(), "tensor index rank mismatch");
    std::size_t flat = 0;
    std::size_t d = 0;
    for (const std::size_t i : idx) {
        FS_ARG_CHECK(i < shape_[d], "tensor index out of range in dim " + std::to_string(d));
        flat = flat * shape_[d] + i;
        ++d;
    }
    return flat;
}

float& tensor::at(std::initializer_list<std::size_t> idx) { return data_[offset(idx)]; }

float tensor::at(std::initializer_list<std::size_t> idx) const { return data_[offset(idx)]; }

void tensor::fill(float value) { std::fill(data_.begin(), data_.end(), value); }

tensor tensor::reshaped(shape_t new_shape) const {
    FS_ARG_CHECK(shape_volume(new_shape) == data_.size(),
                 "reshape volume mismatch: " + shape_to_string(shape_) + " -> " +
                     shape_to_string(new_shape));
    return tensor(std::move(new_shape), data_);
}

tensor& tensor::operator+=(const tensor& other) {
    FS_ARG_CHECK(same_shape(*this, other), "tensor += shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] += other.data_[i];
    return *this;
}

tensor& tensor::operator-=(const tensor& other) {
    FS_ARG_CHECK(same_shape(*this, other), "tensor -= shape mismatch");
    for (std::size_t i = 0; i < data_.size(); ++i) data_[i] -= other.data_[i];
    return *this;
}

tensor& tensor::operator*=(float scale) {
    for (float& v : data_) v *= scale;
    return *this;
}

double tensor::sum() const {
    double acc = 0.0;
    for (const float v : data_) acc += v;
    return acc;
}

double tensor::squared_norm() const {
    double acc = 0.0;
    for (const float v : data_) acc += static_cast<double>(v) * v;
    return acc;
}

tensor operator+(const tensor& a, const tensor& b) {
    tensor out = a;
    out += b;
    return out;
}

tensor operator-(const tensor& a, const tensor& b) {
    tensor out = a;
    out -= b;
    return out;
}

tensor operator*(const tensor& a, float scale) {
    tensor out = a;
    out *= scale;
    return out;
}

bool same_shape(const tensor& a, const tensor& b) { return a.shape() == b.shape(); }

}  // namespace fallsense::nn
