#include "nn/activations.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::nn {

float sigmoid_scalar(float x) {
    // Split by sign for numerical stability at large |x|.
    if (x >= 0.0f) {
        const float z = std::exp(-x);
        return 1.0f / (1.0f + z);
    }
    const float z = std::exp(x);
    return z / (1.0f + z);
}

tensor relu::forward(const tensor& input, bool /*training*/) {
    mask_ = tensor(input.shape());
    tensor out(input.shape());
    const std::span<const float> x = input.values();
    const std::span<float> m = mask_.values();
    const std::span<float> y = out.values();
    for (std::size_t i = 0; i < x.size(); ++i) {
        const bool positive = x[i] > 0.0f;
        m[i] = positive ? 1.0f : 0.0f;
        y[i] = positive ? x[i] : 0.0f;
    }
    return out;
}

void relu::forward_into(std::span<const float> in, const shape_t& input_shape,
                        std::size_t batch, std::span<float> /*workspace*/,
                        std::span<float> out) {
    const std::size_t count = batch * shape_volume(input_shape);
    FS_ARG_CHECK(in.size() >= count && out.size() >= count,
                 "relu forward_into: buffer too small");
    // Safe when out aliases in: each slot is read before it is written.
    for (std::size_t i = 0; i < count; ++i) out[i] = in[i] > 0.0f ? in[i] : 0.0f;
}

tensor relu::backward(const tensor& grad_output) {
    FS_CHECK(same_shape(grad_output, mask_), "relu backward shape mismatch");
    tensor grad_input(grad_output.shape());
    const std::span<const float> gy = grad_output.values();
    const std::span<const float> m = mask_.values();
    const std::span<float> gx = grad_input.values();
    for (std::size_t i = 0; i < gy.size(); ++i) gx[i] = gy[i] * m[i];
    return grad_input;
}

tensor sigmoid::forward(const tensor& input, bool /*training*/) {
    tensor out(input.shape());
    const std::span<const float> x = input.values();
    const std::span<float> y = out.values();
    for (std::size_t i = 0; i < x.size(); ++i) y[i] = sigmoid_scalar(x[i]);
    output_cache_ = out;
    return out;
}

void sigmoid::forward_into(std::span<const float> in, const shape_t& input_shape,
                           std::size_t batch, std::span<float> /*workspace*/,
                           std::span<float> out) {
    const std::size_t count = batch * shape_volume(input_shape);
    FS_ARG_CHECK(in.size() >= count && out.size() >= count,
                 "sigmoid forward_into: buffer too small");
    for (std::size_t i = 0; i < count; ++i) out[i] = sigmoid_scalar(in[i]);
}

tensor sigmoid::backward(const tensor& grad_output) {
    FS_CHECK(same_shape(grad_output, output_cache_), "sigmoid backward shape mismatch");
    tensor grad_input(grad_output.shape());
    const std::span<const float> gy = grad_output.values();
    const std::span<const float> y = output_cache_.values();
    const std::span<float> gx = grad_input.values();
    for (std::size_t i = 0; i < gy.size(); ++i) gx[i] = gy[i] * y[i] * (1.0f - y[i]);
    return grad_input;
}

}  // namespace fallsense::nn
