// Model weight serialization.
//
// Format (little-endian, versioned):
//   magic "FSNN" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u32 rank | u64 dims[rank] |
//              f32 data[volume]
//
// Architecture is NOT stored: weights are loaded back into a model built by
// the same builder (model_zoo in src/core).  Name + shape of every parameter
// are checked on load, so loading into a mismatched architecture fails
// loudly instead of silently corrupting weights.
//
// Failures throw `serialize_error`, typed by what went wrong (a future
// version, a truncated stream, a model mismatch, plain I/O) so callers
// can distinguish "wrong file" from "wrong build" without string-matching.
// Loading still accepts the historical version-0 layout — the same stream
// without the magic/version header (it started directly at param_count);
// files that predate the header keep loading.  Saving always writes the
// current versioned header.
#pragma once

#include <filesystem>
#include <iosfwd>
#include <stdexcept>
#include <string>

#include "nn/layer.hpp"

namespace fallsense::nn {

enum class serialize_error_kind {
    bad_version,  ///< versioned header with a version this build doesn't speak
    truncated,    ///< stream ended inside a header, name, shape, or data block
    mismatch,     ///< parameter count/name/shape differs from the model's
    io,           ///< open/write failure
};

class serialize_error : public std::runtime_error {
public:
    serialize_error(serialize_error_kind kind, const std::string& what)
        : std::runtime_error(what), kind_(kind) {}
    serialize_error_kind kind() const { return kind_; }

private:
    serialize_error_kind kind_;
};

void save_weights(model& m, std::ostream& out);
void load_weights(model& m, std::istream& in);

void save_weights_file(model& m, const std::filesystem::path& path);
void load_weights_file(model& m, const std::filesystem::path& path);

}  // namespace fallsense::nn
