// Model weight serialization.
//
// Format (little-endian, versioned):
//   magic "FSNN" | u32 version | u64 param_count |
//   per param: u32 name_len | name bytes | u32 rank | u64 dims[rank] |
//              f32 data[volume]
//
// Architecture is NOT stored: weights are loaded back into a model built by
// the same builder (model_zoo in src/core).  Name + shape of every parameter
// are checked on load, so loading into a mismatched architecture fails
// loudly instead of silently corrupting weights.
#pragma once

#include <filesystem>
#include <iosfwd>

#include "nn/layer.hpp"

namespace fallsense::nn {

void save_weights(model& m, std::ostream& out);
void load_weights(model& m, std::istream& in);

void save_weights_file(model& m, const std::filesystem::path& path);
void load_weights_file(model& m, const std::filesystem::path& path);

}  // namespace fallsense::nn
