// LSTM over [batch, time, features], returning the last hidden state
// [batch, hidden] (Keras `return_sequences=False`).  Used by the paper's
// LSTM baseline and shared by the ConvLSTM2D implementation notes.
//
// Gate layout in the packed weight matrices is [i | f | g | o], Keras order,
// with forget-gate bias initialized to 1 (`unit_forget_bias`).
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

class lstm : public layer {
public:
    lstm(std::size_t in_features, std::size_t hidden_size, util::rng& gen,
         std::string name = "lstm");

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&w_input_, &w_hidden_, &bias_}; }
    layer_kind kind() const override { return layer_kind::lstm; }
    layer_ptr clone() const override {
        util::rng gen(0);  // init values are overwritten below
        auto copy = std::make_unique<lstm>(in_, hidden_, gen);
        copy->w_input_ = w_input_;
        copy->w_hidden_ = w_hidden_;
        copy->bias_ = bias_;
        return copy;
    }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    std::size_t infer_workspace_bytes(const shape_t& input_shape,
                                      std::size_t batch) const override;
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

    std::size_t in_features() const { return in_; }
    std::size_t hidden_size() const { return hidden_; }

private:
    std::size_t in_;
    std::size_t hidden_;
    parameter w_input_;   ///< [in, 4*hidden]
    parameter w_hidden_;  ///< [hidden, 4*hidden]
    parameter bias_;      ///< [4*hidden]

    // Forward caches for BPTT.
    tensor input_cache_;                ///< [batch, time, in]
    std::vector<tensor> hidden_states_; ///< T+1 tensors [batch, hidden] (h_0 .. h_T)
    std::vector<tensor> cell_states_;   ///< T+1 tensors [batch, hidden]
    std::vector<tensor> gate_i_;        ///< per step, post-sigmoid
    std::vector<tensor> gate_f_;
    std::vector<tensor> gate_g_;        ///< post-tanh candidate
    std::vector<tensor> gate_o_;
    std::vector<tensor> cell_tanh_;     ///< tanh(c_t) per step
};

}  // namespace fallsense::nn
