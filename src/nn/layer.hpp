// Layer abstraction for the fallsense training framework.
//
// Layers implement explicit forward/backward passes over mini-batches.
// `forward` caches whatever the matching `backward` needs; a layer instance
// is therefore stateful between the two calls and must not be shared across
// concurrent batches.  Parameters are exposed as (value, gradient) pairs so
// optimizers and weight snapshots stay layer-agnostic.
#pragma once

#include <memory>
#include <span>
#include <string>
#include <vector>

#include "nn/gemm.hpp"
#include "nn/tensor.hpp"

namespace fallsense::nn {

/// A trainable tensor with its accumulated gradient.
struct parameter {
    std::string name;  ///< diagnostic label, e.g. "dense0.weight"
    tensor value;
    tensor grad;

    explicit parameter(std::string param_name, shape_t shape)
        : name(std::move(param_name)), value(shape), grad(std::move(shape)) {}

    void zero_grad() { grad.fill(0.0f); }
};

/// Discriminator for structural introspection (serialization, quantization,
/// MCU cost modeling) without RTTI scattered through client code.
enum class layer_kind {
    dense,
    relu,
    sigmoid,
    conv1d,
    maxpool1d,
    flatten,
    dropout,
    lstm,
    conv_lstm2d,
};

const char* layer_kind_name(layer_kind kind);

class layer {
public:
    virtual ~layer() = default;

    /// Compute the layer output for a batch. `training` enables behaviors
    /// like dropout that differ between fit and predict.
    virtual tensor forward(const tensor& input, bool training) = 0;

    /// Backpropagate: given dLoss/dOutput for the batch from the most recent
    /// forward call, accumulate parameter gradients and return dLoss/dInput.
    virtual tensor backward(const tensor& grad_output) = 0;

    /// Trainable parameters (empty for activations and pooling).
    virtual std::vector<parameter*> parameters() { return {}; }

    virtual layer_kind kind() const = 0;

    /// Deep copy: same architecture and parameter values, fresh caches and
    /// gradients.  Because a layer's forward caches make it stateful, the
    /// clone is how callers get an independent instance for concurrent
    /// inference (the serving layer's per-shard scorer replicas).
    virtual std::unique_ptr<layer> clone() const = 0;

    /// Short human-readable description for model summaries.
    virtual std::string describe() const = 0;

    /// Output shape for a given input shape (both exclude the batch dim).
    virtual shape_t output_shape(const shape_t& input_shape) const = 0;

    // --- allocation-free inference path (workspace plan) -----------------
    //
    // `forward_into` is the serving-side forward: same math as
    // forward(input, false) — bit-identical under the same simd mode — but
    // reads and writes caller-owned buffers, touches no training caches,
    // and performs zero heap allocations.  The planner (sequential /
    // multi_branch_network) sizes one arena up front from
    // infer_workspace_bytes and hands each layer its slice.

    /// Bytes of scratch `forward_into` needs beyond its input and output
    /// spans, for `batch` samples of per-sample shape `input_shape`.
    /// Default: zero (element-wise and register-blocked layers).
    virtual std::size_t infer_workspace_bytes(const shape_t& input_shape,
                                              std::size_t batch) const;

    /// True when `forward_into` tolerates `out` aliasing `in` exactly
    /// (element-wise and reshape layers); the planner then reuses one
    /// activation buffer instead of ping-ponging.
    virtual bool infer_in_place() const;

    /// Inference forward into caller buffers: reads batch·volume(input_shape)
    /// floats from `in`, writes batch·volume(output_shape(input_shape))
    /// floats to `out`; `workspace` must hold at least
    /// infer_workspace_bytes(input_shape, batch).  `out` may alias `in`
    /// only when infer_in_place() is true.
    virtual void forward_into(std::span<const float> in, const shape_t& input_shape,
                              std::size_t batch, std::span<float> workspace,
                              std::span<float> out) = 0;

    // --- fused bias+activation epilogue ----------------------------------
    //
    // GEMM-backed layers (conv1d, dense) can absorb a following relu or
    // sigmoid layer into their kernel call: the activation runs while each
    // output tile is still hot instead of in a second pass over the batch.
    // The workspace planners consult can_fuse when building a plan and
    // mark fused activation layers as plan-time no-ops.  Fusion never
    // changes results: the fused kernel executes the exact per-element
    // operation sequence of the unfused pair (see nn/gemm.hpp).

    /// True when this layer's forward_into_fused supports `act` as a fused
    /// epilogue.  Every layer trivially supports fused_act::none.
    virtual bool can_fuse(fused_act act) const { return act == fused_act::none; }

    /// forward_into with a fused activation epilogue.  Layers that return
    /// true from can_fuse(act) override this; the default rejects anything
    /// but fused_act::none and delegates to forward_into.
    virtual void forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                                    std::size_t batch, std::span<float> workspace,
                                    std::span<float> out, fused_act act);

    layer() = default;
    layer(const layer&) = delete;
    layer& operator=(const layer&) = delete;
};

using layer_ptr = std::unique_ptr<layer>;

/// Abstract model: a differentiable function from one input batch to one
/// output batch, plus parameter access.  `sequential` and
/// `multi_branch_network` implement it.
class model {
public:
    virtual ~model() = default;

    virtual tensor forward(const tensor& input, bool training) = 0;
    virtual tensor backward(const tensor& grad_output) = 0;
    virtual std::vector<parameter*> parameters() = 0;
    virtual std::string summary() const = 0;
    /// Output shape per sample for the given per-sample input shape.
    virtual shape_t output_shape(const shape_t& input_shape) const = 0;

    /// Bytes of arena one forward_into call needs for `batch` rows of
    /// per-sample shape `row_shape`: activation ping-pong buffers plus the
    /// widest layer workspace.  Implementations compute the layout once
    /// and cache it keyed on (row_shape, batch high-water mark), so
    /// steady-state inference re-plans — and allocates — nothing.
    virtual std::size_t infer_workspace_bytes(const shape_t& row_shape,
                                              std::size_t batch) = 0;

    /// Allocation-free inference over caller buffers: scores `batch` rows
    /// from `input` (batch·volume(row_shape) floats) into `out`
    /// (batch·volume(output_shape(row_shape)) floats) using `workspace`
    /// (at least infer_workspace_bytes(row_shape, batch)).  Bit-identical
    /// to forward(…, false) under the same simd mode.
    virtual void forward_into(std::span<const float> input, const shape_t& row_shape,
                              std::size_t batch, std::span<float> workspace,
                              std::span<float> out) = 0;

    /// Deep copy of the whole network: bit-identical parameter values,
    /// fresh caches — an independent instance that scores the same inputs
    /// to the same outputs without sharing any mutable state.
    virtual std::unique_ptr<model> clone() const = 0;

    /// Total trainable scalar count.
    std::size_t parameter_count();

    model() = default;
    model(const model&) = delete;
    model& operator=(const model&) = delete;
};

}  // namespace fallsense::nn
