#include "nn/trainer.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/activations.hpp"
#include "nn/loss.hpp"
#include "nn/optimizer.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace fallsense::nn {

double labeled_data::positive_fraction() const {
    if (labels.empty()) return 0.0;
    double positives = 0.0;
    for (const float y : labels) positives += (y > 0.5f) ? 1.0 : 0.0;
    return positives / static_cast<double>(labels.size());
}

void labeled_data::validate() const {
    FS_ARG_CHECK(features.rank() >= 1, "labeled_data features must be batched");
    FS_ARG_CHECK(features.dim(0) == labels.size(),
                 "labeled_data row/label count mismatch");
}

void gather_rows_into(const tensor& batched, std::span<const std::size_t> row_indices,
                      tensor& out) {
    FS_ARG_CHECK(batched.rank() >= 1, "gather_rows needs a batched tensor");
    const std::size_t rows = batched.dim(0);
    const std::size_t row_size = batched.size() / std::max<std::size_t>(rows, 1);
    shape_t out_shape = batched.shape();
    out_shape[0] = row_indices.size();
    if (out.shape() != out_shape) out = tensor(std::move(out_shape));
    for (std::size_t i = 0; i < row_indices.size(); ++i) {
        const std::size_t r = row_indices[i];
        FS_ARG_CHECK(r < rows, "gather_rows index out of range");
        std::copy(batched.data() + r * row_size, batched.data() + (r + 1) * row_size,
                  out.data() + i * row_size);
    }
}

tensor gather_rows(const tensor& batched, std::span<const std::size_t> row_indices) {
    tensor out;
    gather_rows_into(batched, row_indices, out);
    return out;
}

std::pair<double, double> balanced_class_weights(std::span<const float> labels) {
    std::size_t positives = 0;
    for (const float y : labels) positives += (y > 0.5f) ? 1 : 0;
    const std::size_t negatives = labels.size() - positives;
    if (positives == 0 || negatives == 0) return {1.0, 1.0};
    const double n = static_cast<double>(labels.size());
    return {n / (2.0 * static_cast<double>(positives)),
            n / (2.0 * static_cast<double>(negatives))};
}

std::vector<tensor> snapshot_parameters(model& m) {
    std::vector<tensor> snapshot;
    for (const parameter* p : m.parameters()) snapshot.push_back(p->value);
    return snapshot;
}

void restore_parameters(model& m, const std::vector<tensor>& snapshot) {
    const std::vector<parameter*> params = m.parameters();
    FS_ARG_CHECK(params.size() == snapshot.size(), "parameter snapshot size mismatch");
    for (std::size_t i = 0; i < params.size(); ++i) {
        FS_ARG_CHECK(same_shape(params[i]->value, snapshot[i]),
                     "parameter snapshot shape mismatch");
        params[i]->value = snapshot[i];
    }
}

namespace {

/// The output-layer bias is the final single-element "*.bias" parameter —
/// every fallsense model ends in Dense(1).  Returns nullptr if absent.
parameter* find_output_bias(model& m) {
    parameter* found = nullptr;
    for (parameter* p : m.parameters()) {
        if (p->value.size() == 1 && p->name.ends_with(".bias")) found = p;
    }
    return found;
}

double validation_loss(model& m, const labeled_data& data, double wp, double wn,
                       std::size_t batch_size) {
    double total = 0.0;
    std::size_t counted = 0;
    std::vector<std::size_t> idx(batch_size);
    for (std::size_t start = 0; start < data.size(); start += batch_size) {
        const std::size_t count = std::min(batch_size, data.size() - start);
        idx.resize(count);
        std::iota(idx.begin(), idx.end(), start);
        const tensor x = gather_rows(data.features, idx);
        const tensor logits = m.forward(x, /*training=*/false);
        const std::span<const float> y(data.labels.data() + start, count);
        total += weighted_bce_loss_only(logits, y, wp, wn) * static_cast<double>(count);
        counted += count;
    }
    return counted ? total / static_cast<double>(counted) : 0.0;
}

}  // namespace

double train_step(model& m, const labeled_data& data,
                  std::span<const std::size_t> row_indices, double weight_positive,
                  double weight_negative, optimizer& optim, train_step_scratch& scratch) {
    gather_rows_into(data.features, row_indices, scratch.batch);
    scratch.labels.resize(row_indices.size());
    for (std::size_t i = 0; i < row_indices.size(); ++i) {
        scratch.labels[i] = data.labels[row_indices[i]];
    }
    const tensor logits = m.forward(scratch.batch, /*training=*/true);
    const bce_result loss =
        weighted_bce_with_logits(logits, scratch.labels, weight_positive, weight_negative);
    m.backward(loss.grad_logits);
    optim.step();
    return loss.loss;
}

train_history fit(model& m, const labeled_data& train, const labeled_data& validation,
                  const train_config& config) {
    train.validate();
    if (validation.size() > 0) validation.validate();
    FS_ARG_CHECK(config.batch_size > 0, "batch_size must be positive");
    FS_ARG_CHECK(config.max_epochs > 0, "max_epochs must be positive");

    OBS_SCOPE(config.metrics_prefix + "/fit");

    train_history history;
    if (config.use_class_weights) {
        std::tie(history.weight_positive, history.weight_negative) =
            balanced_class_weights(train.labels);
    }

    if (config.init_output_bias) {
        // Eq. (1)-(2): bias = log(p / (1 - p)) with p the positive prior.
        const double p = train.positive_fraction();
        if (p > 0.0 && p < 1.0) {
            if (parameter* bias = find_output_bias(m)) {
                bias->value[0] = static_cast<float>(std::log(p / (1.0 - p)));
            }
        }
    }

    adam optim(m.parameters(), config.learning_rate);
    util::rng shuffler(config.shuffle_seed);
    train_step_scratch step_scratch;

    const bool monitor_validation = validation.size() > 0;
    double best_monitored = std::numeric_limits<double>::infinity();
    std::vector<tensor> best_weights = snapshot_parameters(m);
    std::size_t epochs_since_best = 0;

    std::vector<std::size_t> order(train.size());
    std::iota(order.begin(), order.end(), 0);

    for (std::size_t epoch = 0; epoch < config.max_epochs; ++epoch) {
        OBS_SCOPE(config.metrics_prefix + "/epoch");
        shuffler.shuffle(order);
        double epoch_loss = 0.0;
        std::size_t counted = 0;
        for (std::size_t start = 0; start < order.size(); start += config.batch_size) {
            const std::size_t count = std::min(config.batch_size, order.size() - start);
            const std::span<const std::size_t> idx(order.data() + start, count);
            const double loss = train_step(m, train, idx, history.weight_positive,
                                           history.weight_negative, optim, step_scratch);
            epoch_loss += loss * static_cast<double>(count);
            counted += count;
        }
        epoch_loss /= static_cast<double>(std::max<std::size_t>(counted, 1));
        history.train_loss.push_back(epoch_loss);

        const double monitored =
            monitor_validation
                ? validation_loss(m, validation, history.weight_positive,
                                  history.weight_negative, config.batch_size)
                : epoch_loss;
        if (monitor_validation) history.val_loss.push_back(monitored);

        if (config.verbose) {
            FS_LOG_INFO("nn.trainer") << "epoch " << epoch << " train_loss=" << epoch_loss
                                      << (monitor_validation ? " val_loss=" : "")
                                      << (monitor_validation ? std::to_string(monitored) : "");
        }

        if (monitored < best_monitored) {
            best_monitored = monitored;
            best_weights = snapshot_parameters(m);
            history.best_epoch = epoch;
            epochs_since_best = 0;
        } else {
            ++epochs_since_best;
            if (config.early_stop_patience > 0 &&
                epochs_since_best >= config.early_stop_patience) {
                history.stopped_early = true;
                break;
            }
        }
    }

    restore_parameters(m, best_weights);

    if (obs::enabled()) {
        const std::string& p = config.metrics_prefix;
        obs::add_counter(p + "/epochs", history.train_loss.size());
        obs::set_gauge(p + "/learning_rate", config.learning_rate);
        obs::set_gauge(p + "/best_epoch", static_cast<double>(history.best_epoch));
        obs::set_gauge(p + "/final_train_loss", history.train_loss.back());
        if (!history.val_loss.empty()) {
            obs::set_gauge(p + "/best_val_loss", history.val_loss[history.best_epoch]);
        }
        obs::set_gauge(p + "/weight_positive", history.weight_positive);
        obs::set_gauge(p + "/weight_negative", history.weight_negative);
    }
    return history;
}

std::vector<float> predict_proba(model& m, const tensor& features, std::size_t batch_size) {
    FS_ARG_CHECK(features.rank() >= 1, "predict_proba needs a batched tensor");
    FS_ARG_CHECK(batch_size > 0, "batch_size must be positive");
    const std::size_t rows = features.dim(0);
    std::vector<float> probs;
    probs.reserve(rows);
    std::vector<std::size_t> idx;
    for (std::size_t start = 0; start < rows; start += batch_size) {
        const std::size_t count = std::min(batch_size, rows - start);
        idx.resize(count);
        std::iota(idx.begin(), idx.end(), start);
        const tensor x = gather_rows(features, idx);
        const tensor logits = m.forward(x, /*training=*/false);
        FS_CHECK(logits.size() == count, "model must emit one logit per sample");
        for (std::size_t i = 0; i < count; ++i) probs.push_back(sigmoid_scalar(logits[i]));
    }
    return probs;
}

void predict_proba_rows(model& m, std::span<const float> rows, std::size_t count,
                        const shape_t& row_shape, std::span<float> out,
                        std::size_t batch_size) {
    predict_scratch scratch;
    predict_proba_rows(m, rows, count, row_shape, out, scratch, batch_size);
}

void predict_proba_rows(model& m, std::span<const float> rows, std::size_t count,
                        const shape_t& row_shape, std::span<float> out,
                        predict_scratch& scratch, std::size_t batch_size) {
    FS_ARG_CHECK(batch_size > 0, "batch_size must be positive");
    const std::size_t row_elems = shape_volume(row_shape);
    FS_ARG_CHECK(rows.size() == count * row_elems, "predict_proba_rows buffer size mismatch");
    FS_ARG_CHECK(out.size() == count, "predict_proba_rows output size mismatch");
    for (std::size_t start = 0; start < count; start += batch_size) {
        const std::size_t chunk = std::min(batch_size, count - start);
        // Plan lookup is cached in the model; the arena and logit buffers
        // grow to their high-water marks once and are then reused.
        const std::size_t ws_bytes = m.infer_workspace_bytes(row_shape, chunk);
        const std::size_t ws_floats = (ws_bytes + sizeof(float) - 1) / sizeof(float);
        if (scratch.arena.size() < ws_floats) scratch.arena.resize(ws_floats);
        if (scratch.logits.size() < chunk) scratch.logits.resize(chunk);
        // The chunk-sized logit span doubles as the one-logit-per-sample
        // check: forward_into rejects a model emitting more per row.
        m.forward_into(rows.subspan(start * row_elems, chunk * row_elems), row_shape, chunk,
                       std::span<float>(scratch.arena.data(), ws_floats),
                       std::span<float>(scratch.logits.data(), chunk));
        for (std::size_t i = 0; i < chunk; ++i) {
            out[start + i] = sigmoid_scalar(scratch.logits[i]);
        }
    }
}

}  // namespace fallsense::nn
