#include "nn/lstm.hpp"

#include <cmath>
#include <cstring>
#include <sstream>

#include "nn/activations.hpp"
#include "nn/init.hpp"
#include "util/check.hpp"

namespace fallsense::nn {

lstm::lstm(std::size_t in_features, std::size_t hidden_size, util::rng& gen, std::string name)
    : in_(in_features),
      hidden_(hidden_size),
      w_input_(name + ".w_input", {in_features, 4 * hidden_size}),
      w_hidden_(name + ".w_hidden", {hidden_size, 4 * hidden_size}),
      bias_(name + ".bias", {4 * hidden_size}) {
    FS_ARG_CHECK(in_features > 0 && hidden_size > 0, "lstm with zero-sized configuration");
    glorot_uniform(w_input_.value, in_, 4 * hidden_, gen);
    recurrent_normal(w_hidden_.value, hidden_, gen);
    // unit_forget_bias: forget-gate slice [hidden, 2*hidden) starts at 1.
    for (std::size_t h = hidden_; h < 2 * hidden_; ++h) bias_.value[h] = 1.0f;
}

tensor lstm::forward(const tensor& input, bool /*training*/) {
    FS_ARG_CHECK(input.rank() == 3, "lstm expects [batch, time, features], got " +
                                        shape_to_string(input.shape()));
    FS_ARG_CHECK(input.dim(2) == in_, "lstm input feature mismatch");
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    FS_ARG_CHECK(time > 0, "lstm over empty sequence");
    input_cache_ = input;

    hidden_states_.assign(time + 1, tensor({batch, hidden_}));
    cell_states_.assign(time + 1, tensor({batch, hidden_}));
    gate_i_.assign(time, tensor({batch, hidden_}));
    gate_f_.assign(time, tensor({batch, hidden_}));
    gate_g_.assign(time, tensor({batch, hidden_}));
    gate_o_.assign(time, tensor({batch, hidden_}));
    cell_tanh_.assign(time, tensor({batch, hidden_}));

    const float* wx = w_input_.value.data();
    const float* wh = w_hidden_.value.data();
    const float* b = bias_.value.data();
    const std::size_t gates = 4 * hidden_;
    std::vector<float> preact(gates);

    for (std::size_t t = 0; t < time; ++t) {
        const tensor& h_prev = hidden_states_[t];
        const tensor& c_prev = cell_states_[t];
        tensor& h_next = hidden_states_[t + 1];
        tensor& c_next = cell_states_[t + 1];
        for (std::size_t n = 0; n < batch; ++n) {
            const float* x = input.data() + (n * time + t) * in_;
            const float* hp = h_prev.data() + n * hidden_;
            const float* cp = c_prev.data() + n * hidden_;
            for (std::size_t g = 0; g < gates; ++g) preact[g] = b[g];
            for (std::size_t i = 0; i < in_; ++i) {
                const float xv = x[i];
                const float* row = wx + i * gates;
                for (std::size_t g = 0; g < gates; ++g) preact[g] += xv * row[g];
            }
            for (std::size_t h = 0; h < hidden_; ++h) {
                const float hv = hp[h];
                if (hv == 0.0f) continue;
                const float* row = wh + h * gates;
                for (std::size_t g = 0; g < gates; ++g) preact[g] += hv * row[g];
            }
            float* gi = gate_i_[t].data() + n * hidden_;
            float* gf = gate_f_[t].data() + n * hidden_;
            float* gg = gate_g_[t].data() + n * hidden_;
            float* go = gate_o_[t].data() + n * hidden_;
            float* cn = c_next.data() + n * hidden_;
            float* hn = h_next.data() + n * hidden_;
            float* ct = cell_tanh_[t].data() + n * hidden_;
            for (std::size_t h = 0; h < hidden_; ++h) {
                gi[h] = sigmoid_scalar(preact[h]);
                gf[h] = sigmoid_scalar(preact[hidden_ + h]);
                gg[h] = std::tanh(preact[2 * hidden_ + h]);
                go[h] = sigmoid_scalar(preact[3 * hidden_ + h]);
                cn[h] = gf[h] * cp[h] + gi[h] * gg[h];
                ct[h] = std::tanh(cn[h]);
                hn[h] = go[h] * ct[h];
            }
        }
    }
    return hidden_states_[time];
}

std::size_t lstm::infer_workspace_bytes(const shape_t& input_shape,
                                        std::size_t batch) const {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[1] == in_ && input_shape[0] > 0,
                 "lstm infer_workspace_bytes: bad input shape");
    // Gate pre-activations plus persistent h and c state (updated in place
    // per step — no per-step state tensors at inference).
    return (4 * hidden_ + 2 * batch * hidden_) * sizeof(float);
}

void lstm::forward_into(std::span<const float> in, const shape_t& input_shape,
                        std::size_t batch, std::span<float> workspace,
                        std::span<float> out) {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[1] == in_ && input_shape[0] > 0,
                 "lstm forward_into: bad input shape");
    const std::size_t time = input_shape[0];
    const std::size_t gates = 4 * hidden_;
    FS_ARG_CHECK(in.size() >= batch * time * in_ && out.size() >= batch * hidden_,
                 "lstm forward_into: buffer too small");
    FS_ARG_CHECK(workspace.size() >= gates + 2 * batch * hidden_,
                 "lstm forward_into: workspace too small");
    float* preact = workspace.data();
    float* hstate = preact + gates;
    float* cstate = hstate + batch * hidden_;
    std::memset(hstate, 0, 2 * batch * hidden_ * sizeof(float));  // h_0 = c_0 = 0

    const float* wx = w_input_.value.data();
    const float* wh = w_hidden_.value.data();
    const float* b = bias_.value.data();
    // Same per-(t, n) arithmetic as forward — including the hv == 0 skip —
    // with h and c updated in place: preact is fully formed from h_prev
    // before the state slots are overwritten, and each c slot is read in
    // the same expression that rewrites it.
    for (std::size_t t = 0; t < time; ++t) {
        for (std::size_t n = 0; n < batch; ++n) {
            const float* x = in.data() + (n * time + t) * in_;
            float* hp = hstate + n * hidden_;
            float* cp = cstate + n * hidden_;
            for (std::size_t g = 0; g < gates; ++g) preact[g] = b[g];
            for (std::size_t i = 0; i < in_; ++i) {
                const float xv = x[i];
                const float* row = wx + i * gates;
                for (std::size_t g = 0; g < gates; ++g) preact[g] += xv * row[g];
            }
            for (std::size_t h = 0; h < hidden_; ++h) {
                const float hv = hp[h];
                if (hv == 0.0f) continue;
                const float* row = wh + h * gates;
                for (std::size_t g = 0; g < gates; ++g) preact[g] += hv * row[g];
            }
            for (std::size_t h = 0; h < hidden_; ++h) {
                const float gi = sigmoid_scalar(preact[h]);
                const float gf = sigmoid_scalar(preact[hidden_ + h]);
                const float gg = std::tanh(preact[2 * hidden_ + h]);
                const float go = sigmoid_scalar(preact[3 * hidden_ + h]);
                cp[h] = gf * cp[h] + gi * gg;
                hp[h] = go * std::tanh(cp[h]);
            }
        }
    }
    std::memcpy(out.data(), hstate, batch * hidden_ * sizeof(float));
}

tensor lstm::backward(const tensor& grad_output) {
    FS_CHECK(!input_cache_.empty(), "lstm backward before forward");
    const std::size_t batch = input_cache_.dim(0);
    const std::size_t time = input_cache_.dim(1);
    FS_ARG_CHECK(grad_output.rank() == 2 && grad_output.dim(0) == batch &&
                     grad_output.dim(1) == hidden_,
                 "lstm grad_output shape mismatch");

    tensor grad_input({batch, time, in_});
    tensor dh = grad_output;            // dL/dh_t flowing backwards
    tensor dc({batch, hidden_});        // dL/dc_t flowing backwards

    const float* wx = w_input_.value.data();
    const float* wh = w_hidden_.value.data();
    float* gwx = w_input_.grad.data();
    float* gwh = w_hidden_.grad.data();
    float* gb = bias_.grad.data();
    const std::size_t gates = 4 * hidden_;
    std::vector<float> dpre(gates);

    for (std::size_t t = time; t-- > 0;) {
        const tensor& h_prev = hidden_states_[t];
        const tensor& c_prev = cell_states_[t];
        tensor dh_prev({batch, hidden_});
        tensor dc_prev({batch, hidden_});
        for (std::size_t n = 0; n < batch; ++n) {
            const float* gi = gate_i_[t].data() + n * hidden_;
            const float* gf = gate_f_[t].data() + n * hidden_;
            const float* gg = gate_g_[t].data() + n * hidden_;
            const float* go = gate_o_[t].data() + n * hidden_;
            const float* ct = cell_tanh_[t].data() + n * hidden_;
            const float* cp = c_prev.data() + n * hidden_;
            const float* hp = h_prev.data() + n * hidden_;
            const float* dhn = dh.data() + n * hidden_;
            const float* dcn = dc.data() + n * hidden_;
            float* dcp = dc_prev.data() + n * hidden_;

            for (std::size_t h = 0; h < hidden_; ++h) {
                const float do_pre = dhn[h] * ct[h] * go[h] * (1.0f - go[h]);
                const float dc_total = dcn[h] + dhn[h] * go[h] * (1.0f - ct[h] * ct[h]);
                const float di_pre = dc_total * gg[h] * gi[h] * (1.0f - gi[h]);
                const float df_pre = dc_total * cp[h] * gf[h] * (1.0f - gf[h]);
                const float dg_pre = dc_total * gi[h] * (1.0f - gg[h] * gg[h]);
                dcp[h] = dc_total * gf[h];
                dpre[h] = di_pre;
                dpre[hidden_ + h] = df_pre;
                dpre[2 * hidden_ + h] = dg_pre;
                dpre[3 * hidden_ + h] = do_pre;
            }
            for (std::size_t g = 0; g < gates; ++g) gb[g] += dpre[g];

            const float* x = input_cache_.data() + (n * time + t) * in_;
            float* gx = grad_input.data() + (n * time + t) * in_;
            for (std::size_t i = 0; i < in_; ++i) {
                const float xv = x[i];
                const float* row = wx + i * gates;
                float* grow = gwx + i * gates;
                float acc = 0.0f;
                for (std::size_t g = 0; g < gates; ++g) {
                    acc += row[g] * dpre[g];
                    grow[g] += xv * dpre[g];
                }
                gx[i] = acc;
            }
            float* dhp = dh_prev.data() + n * hidden_;
            for (std::size_t h = 0; h < hidden_; ++h) {
                const float hv = hp[h];
                const float* row = wh + h * gates;
                float* grow = gwh + h * gates;
                float acc = 0.0f;
                for (std::size_t g = 0; g < gates; ++g) {
                    acc += row[g] * dpre[g];
                    grow[g] += hv * dpre[g];
                }
                dhp[h] = acc;
            }
        }
        dh = std::move(dh_prev);
        dc = std::move(dc_prev);
    }
    return grad_input;
}

std::string lstm::describe() const {
    std::ostringstream os;
    os << "lstm(" << in_ << " -> " << hidden_ << ")";
    return os.str();
}

shape_t lstm::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 2 && input_shape[1] == in_,
                 "lstm output_shape expects [time, features]");
    return {hidden_};
}

}  // namespace fallsense::nn
