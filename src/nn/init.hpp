// Weight initialization schemes.
//
// Glorot (Xavier) uniform for sigmoid/linear outputs, He normal for
// ReLU-activated layers — the defaults Keras would have applied to the
// paper's model.
#pragma once

#include "nn/tensor.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

/// Uniform in ±sqrt(6 / (fan_in + fan_out)).
void glorot_uniform(tensor& weights, std::size_t fan_in, std::size_t fan_out,
                    util::rng& gen);

/// Normal with stddev sqrt(2 / fan_in), truncated at ±2 stddev.
void he_normal(tensor& weights, std::size_t fan_in, util::rng& gen);

/// Orthogonal-ish recurrent init: scaled normal (adequate at these sizes).
void recurrent_normal(tensor& weights, std::size_t fan_in, util::rng& gen);

}  // namespace fallsense::nn
