#include "nn/simd.hpp"

#include <atomic>

#include "util/env.hpp"

namespace fallsense::nn {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
simd_backend probe_best_backend() {
    if (__builtin_cpu_supports("avx512f")) return simd_backend::avx512;
    if (__builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma")) {
        return simd_backend::avx2_fma;
    }
    return simd_backend::scalar;
}
#elif defined(__aarch64__) && defined(__ARM_NEON)
simd_backend probe_best_backend() { return simd_backend::neon; }  // NEON is baseline.
#else
simd_backend probe_best_backend() { return simd_backend::scalar; }
#endif

simd_backend best_backend() {
    static const simd_backend best = probe_best_backend();
    return best;
}

/// Requested mode, resolved lazily: -1 = uninitialized, else simd_mode.
/// An unset or unrecognized FALLSENSE_SIMD value means scalar — the
/// deterministic default; tools reject bad --simd values loudly instead.
std::atomic<int> g_requested{-1};

/// Backend cap, resolved lazily: -1 = uninitialized, else simd_backend.
/// Defaults to the best probed backend; FALLSENSE_SIMD_BACKEND or
/// set_simd_backend_cap() lowers it (CI pins per-tier legs, benches pin
/// per-backend rows).  An unrecognized env value is ignored.
std::atomic<int> g_backend_cap{-1};

/// Epilogue fusion: -1 = uninitialized, else 0/1.
std::atomic<int> g_fuse{-1};

simd_mode requested_mode() {
    int cached = g_requested.load(std::memory_order_relaxed);
    if (cached < 0) {
        simd_mode mode = simd_mode::scalar;
        const std::string text = util::env_string("FALLSENSE_SIMD");
        if (!text.empty()) {
            if (const auto parsed = parse_simd_mode(text)) mode = *parsed;
        }
        cached = static_cast<int>(mode);
        g_requested.store(cached, std::memory_order_relaxed);
    }
    return static_cast<simd_mode>(cached);
}

simd_backend backend_cap() {
    int cached = g_backend_cap.load(std::memory_order_relaxed);
    if (cached < 0) {
        simd_backend cap = best_backend();
        const std::string text = util::env_string("FALLSENSE_SIMD_BACKEND");
        if (!text.empty()) {
            if (const auto parsed = parse_simd_backend(text)) cap = *parsed;
        }
        cached = static_cast<int>(cap);
        g_backend_cap.store(cached, std::memory_order_relaxed);
    }
    return static_cast<simd_backend>(cached);
}

}  // namespace

const char* simd_mode_name(simd_mode mode) {
    return mode == simd_mode::native ? "native" : "scalar";
}

const char* simd_backend_label(simd_backend backend) {
    switch (backend) {
        case simd_backend::neon: return "neon";
        case simd_backend::avx2_fma: return "avx2-fma";
        case simd_backend::avx512: return "avx512";
        case simd_backend::scalar: break;
    }
    return "scalar";
}

std::optional<simd_mode> parse_simd_mode(const std::string& text) {
    if (text == "scalar") return simd_mode::scalar;
    if (text == "native") return simd_mode::native;
    return std::nullopt;
}

std::optional<simd_backend> parse_simd_backend(const std::string& text) {
    if (text == "scalar") return simd_backend::scalar;
    if (text == "neon") return simd_backend::neon;
    if (text == "avx2-fma") return simd_backend::avx2_fma;
    if (text == "avx512") return simd_backend::avx512;
    return std::nullopt;
}

bool simd_native_available() { return best_backend() != simd_backend::scalar; }

const char* simd_backend_name() { return simd_backend_label(best_backend()); }

simd_mode active_simd_mode() {
    const simd_mode mode = requested_mode();
    if (mode == simd_mode::native && active_simd_backend() == simd_backend::scalar) {
        return simd_mode::scalar;
    }
    return mode;
}

simd_backend active_simd_backend() {
    if (requested_mode() != simd_mode::native) return simd_backend::scalar;
    const simd_backend best = best_backend();
    const simd_backend cap = backend_cap();
    // The cap can only select a tier the host supports: every tier below
    // the probed best is executable (avx512 hosts run avx2-fma; any host
    // runs scalar), and a cap above it degrades to the probed best.
    return cap < best ? cap : best;
}

const char* active_simd_backend_name() {
    return simd_backend_label(active_simd_backend());
}

std::vector<simd_backend> available_simd_backends() {
    std::vector<simd_backend> backends{simd_backend::scalar};
    const simd_backend best = best_backend();
    if (best == simd_backend::neon) backends.push_back(simd_backend::neon);
    if (best >= simd_backend::avx2_fma && best != simd_backend::neon) {
        backends.push_back(simd_backend::avx2_fma);
    }
    if (best == simd_backend::avx512) backends.push_back(simd_backend::avx512);
    return backends;
}

void set_simd_mode(simd_mode mode) {
    g_requested.store(static_cast<int>(mode), std::memory_order_relaxed);
}

void set_simd_backend_cap(simd_backend cap) {
    g_backend_cap.store(static_cast<int>(cap), std::memory_order_relaxed);
}

bool epilogue_fusion_enabled() {
    int cached = g_fuse.load(std::memory_order_relaxed);
    if (cached < 0) {
        const std::string text = util::env_string("FALLSENSE_FUSE_EPILOGUE");
        cached = (text == "0" || text == "off" || text == "false") ? 0 : 1;
        g_fuse.store(cached, std::memory_order_relaxed);
    }
    return cached != 0;
}

void set_epilogue_fusion(bool enabled) {
    g_fuse.store(enabled ? 1 : 0, std::memory_order_relaxed);
}

}  // namespace fallsense::nn
