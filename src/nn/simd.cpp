#include "nn/simd.hpp"

#include <atomic>

#include "util/env.hpp"

namespace fallsense::nn {

namespace {

#if defined(__x86_64__) && (defined(__GNUC__) || defined(__clang__))
bool probe_native() {
    return __builtin_cpu_supports("avx2") && __builtin_cpu_supports("fma");
}
constexpr const char* k_backend = "avx2-fma";
#elif defined(__aarch64__) && defined(__ARM_NEON)
bool probe_native() { return true; }  // NEON is baseline on AArch64.
constexpr const char* k_backend = "neon";
#else
bool probe_native() { return false; }
constexpr const char* k_backend = "scalar";
#endif

/// Requested mode, resolved lazily: -1 = uninitialized, else simd_mode.
/// An unset or unrecognized FALLSENSE_SIMD value means scalar — the
/// deterministic default; tools reject bad --simd values loudly instead.
std::atomic<int> g_requested{-1};

simd_mode requested_mode() {
    int cached = g_requested.load(std::memory_order_relaxed);
    if (cached < 0) {
        simd_mode mode = simd_mode::scalar;
        const std::string text = util::env_string("FALLSENSE_SIMD");
        if (!text.empty()) {
            if (const auto parsed = parse_simd_mode(text)) mode = *parsed;
        }
        cached = static_cast<int>(mode);
        g_requested.store(cached, std::memory_order_relaxed);
    }
    return static_cast<simd_mode>(cached);
}

}  // namespace

const char* simd_mode_name(simd_mode mode) {
    return mode == simd_mode::native ? "native" : "scalar";
}

std::optional<simd_mode> parse_simd_mode(const std::string& text) {
    if (text == "scalar") return simd_mode::scalar;
    if (text == "native") return simd_mode::native;
    return std::nullopt;
}

bool simd_native_available() {
    static const bool available = probe_native();
    return available;
}

const char* simd_backend_name() {
    return simd_native_available() ? k_backend : "scalar";
}

simd_mode active_simd_mode() {
    const simd_mode mode = requested_mode();
    if (mode == simd_mode::native && !simd_native_available()) return simd_mode::scalar;
    return mode;
}

void set_simd_mode(simd_mode mode) {
    g_requested.store(static_cast<int>(mode), std::memory_order_relaxed);
}

}  // namespace fallsense::nn
