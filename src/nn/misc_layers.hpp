// Structural layers: flatten and dropout.
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

/// Collapse all per-sample dimensions: [batch, ...] -> [batch, features].
class flatten : public layer {
public:
    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    layer_kind kind() const override { return layer_kind::flatten; }
    layer_ptr clone() const override { return std::make_unique<flatten>(); }
    std::string describe() const override { return "flatten"; }
    shape_t output_shape(const shape_t& input_shape) const override;
    bool infer_in_place() const override { return true; }
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

private:
    shape_t input_shape_cache_;
};

/// Inverted dropout: active only when training; scales kept units by 1/(1-p).
class dropout : public layer {
public:
    dropout(double drop_probability, util::rng& gen);

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    layer_kind kind() const override { return layer_kind::dropout; }
    /// The clone shares this layer's rng (dropout only draws during
    /// training forwards; inference-only clones never touch it).
    layer_ptr clone() const override { return std::make_unique<dropout>(p_, *gen_); }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override { return input_shape; }
    bool infer_in_place() const override { return true; }
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

    double drop_probability() const { return p_; }

private:
    double p_;
    util::rng* gen_;
    tensor mask_;  ///< scale factors applied in the last training forward
    bool last_forward_training_ = false;
};

}  // namespace fallsense::nn
