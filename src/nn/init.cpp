#include "nn/init.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::nn {

void glorot_uniform(tensor& weights, std::size_t fan_in, std::size_t fan_out, util::rng& gen) {
    FS_ARG_CHECK(fan_in + fan_out > 0, "glorot fan sizes are zero");
    const double limit = std::sqrt(6.0 / static_cast<double>(fan_in + fan_out));
    for (float& w : weights.values()) w = static_cast<float>(gen.uniform(-limit, limit));
}

void he_normal(tensor& weights, std::size_t fan_in, util::rng& gen) {
    FS_ARG_CHECK(fan_in > 0, "he fan_in is zero");
    const double stddev = std::sqrt(2.0 / static_cast<double>(fan_in));
    for (float& w : weights.values()) {
        double v = gen.normal(0.0, stddev);
        // Truncate at two standard deviations, matching Keras' he_normal.
        while (std::abs(v) > 2.0 * stddev) v = gen.normal(0.0, stddev);
        w = static_cast<float>(v);
    }
}

void recurrent_normal(tensor& weights, std::size_t fan_in, util::rng& gen) {
    FS_ARG_CHECK(fan_in > 0, "recurrent fan_in is zero");
    const double stddev = 1.0 / std::sqrt(static_cast<double>(fan_in));
    for (float& w : weights.values()) w = static_cast<float>(gen.normal(0.0, stddev));
}

}  // namespace fallsense::nn
