#include "nn/serialize.hpp"

#include <cstring>
#include <fstream>
#include <istream>
#include <ostream>

#include "util/check.hpp"

namespace fallsense::nn {

namespace {

constexpr char k_magic[4] = {'F', 'S', 'N', 'N'};
constexpr std::uint32_t k_version = 1;

template <typename T>
void write_pod(std::ostream& out, const T& value) {
    out.write(reinterpret_cast<const char*>(&value), sizeof(T));
}

template <typename T>
T read_pod(std::istream& in) {
    T value{};
    in.read(reinterpret_cast<char*>(&value), sizeof(T));
    if (!in) {
        throw serialize_error(serialize_error_kind::truncated, "weight stream truncated");
    }
    return value;
}

}  // namespace

void save_weights(model& m, std::ostream& out) {
    out.write(k_magic, sizeof(k_magic));
    write_pod(out, k_version);
    const std::vector<parameter*> params = m.parameters();
    write_pod(out, static_cast<std::uint64_t>(params.size()));
    for (const parameter* p : params) {
        write_pod(out, static_cast<std::uint32_t>(p->name.size()));
        out.write(p->name.data(), static_cast<std::streamsize>(p->name.size()));
        write_pod(out, static_cast<std::uint32_t>(p->value.rank()));
        for (const std::size_t d : p->value.shape()) {
            write_pod(out, static_cast<std::uint64_t>(d));
        }
        out.write(reinterpret_cast<const char*>(p->value.data()),
                  static_cast<std::streamsize>(p->value.size() * sizeof(float)));
    }
    if (!out) {
        throw serialize_error(serialize_error_kind::io, "weight stream write failure");
    }
}

void load_weights(model& m, std::istream& in) {
    // The magic + version header is exactly as wide as the version-0
    // layout's leading u64 param_count, so one 8-byte read disambiguates:
    // "FSNN" means a versioned stream, anything else is read as the
    // historical headerless layout's count.
    char header[8];
    in.read(header, sizeof(header));
    if (!in) {
        throw serialize_error(serialize_error_kind::truncated,
                              "weight stream shorter than its header");
    }
    std::uint64_t count = 0;
    if (std::memcmp(header, k_magic, sizeof(k_magic)) == 0) {
        std::uint32_t version = 0;
        std::memcpy(&version, header + sizeof(k_magic), sizeof(version));
        if (version != k_version) {
            throw serialize_error(serialize_error_kind::bad_version,
                                  "unsupported weight stream version " +
                                      std::to_string(version));
        }
        count = read_pod<std::uint64_t>(in);
    } else {
        std::memcpy(&count, header, sizeof(count));
    }
    const std::vector<parameter*> params = m.parameters();
    if (count != params.size()) {
        throw serialize_error(serialize_error_kind::mismatch,
                              "weight stream parameter count mismatch: stream has " +
                                  std::to_string(count) + ", model has " +
                                  std::to_string(params.size()));
    }
    for (parameter* p : params) {
        const auto name_len = read_pod<std::uint32_t>(in);
        std::string name(name_len, '\0');
        in.read(name.data(), name_len);
        if (!in) {
            throw serialize_error(serialize_error_kind::truncated,
                                  "weight stream truncated in name");
        }
        if (name != p->name) {
            throw serialize_error(serialize_error_kind::mismatch,
                                  "weight stream parameter mismatch: expected '" + p->name +
                                      "', found '" + name + "'");
        }
        const auto rank = read_pod<std::uint32_t>(in);
        shape_t shape(rank);
        for (auto& d : shape) d = static_cast<std::size_t>(read_pod<std::uint64_t>(in));
        if (shape != p->value.shape()) {
            throw serialize_error(serialize_error_kind::mismatch,
                                  "weight stream shape mismatch for '" + name + "': stream " +
                                      shape_to_string(shape) + ", model " +
                                      shape_to_string(p->value.shape()));
        }
        in.read(reinterpret_cast<char*>(p->value.data()),
                static_cast<std::streamsize>(p->value.size() * sizeof(float)));
        if (!in) {
            throw serialize_error(serialize_error_kind::truncated,
                                  "weight stream truncated in data for '" + name + "'");
        }
    }
}

void save_weights_file(model& m, const std::filesystem::path& path) {
    std::ofstream out(path, std::ios::binary);
    if (!out) {
        throw serialize_error(serialize_error_kind::io,
                              "cannot open for write: " + path.string());
    }
    save_weights(m, out);
}

void load_weights_file(model& m, const std::filesystem::path& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) {
        throw serialize_error(serialize_error_kind::io,
                              "cannot open for read: " + path.string());
    }
    load_weights(m, in);
}

}  // namespace fallsense::nn
