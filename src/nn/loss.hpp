// Weighted binary cross-entropy on logits.
//
// Models in fallsense end with a Dense(1) producing a logit; `predict`
// applies the sigmoid.  Fusing sigmoid + BCE keeps the loss numerically
// stable at large |logit| (log1p(exp(-|x|)) form) and makes the gradient the
// familiar (sigmoid(x) - y) scaled by the per-class weight.
//
// Class weights implement the paper's imbalance handling (Section III-C):
// weight_positive multiplies fall samples' loss, weight_negative the ADLs'.
#pragma once

#include "nn/tensor.hpp"

namespace fallsense::nn {

struct bce_result {
    double loss = 0.0;   ///< mean weighted loss over the batch
    tensor grad_logits;  ///< dLoss/dLogits, same shape as the logits
};

/// logits: [batch, 1] (or [batch]); targets: one 0/1 value per sample.
/// Weights must be positive.
bce_result weighted_bce_with_logits(const tensor& logits, std::span<const float> targets,
                                    double weight_positive, double weight_negative);

/// Loss only, for validation scoring (no gradient allocation).
double weighted_bce_loss_only(const tensor& logits, std::span<const float> targets,
                              double weight_positive, double weight_negative);

}  // namespace fallsense::nn
