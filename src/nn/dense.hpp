// Fully-connected layer: y = x · W + b, input [batch, in], output [batch, out].
#pragma once

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

class dense : public layer {
public:
    /// `relu_fan` selects He init (true) vs Glorot init (false).
    dense(std::size_t in_features, std::size_t out_features, util::rng& gen,
          bool relu_fan = true, std::string name = "dense");

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&weight_, &bias_}; }
    layer_kind kind() const override { return layer_kind::dense; }
    layer_ptr clone() const override {
        util::rng gen(0);  // init values are overwritten below
        auto copy = std::make_unique<dense>(in_, out_, gen);
        copy->weight_ = weight_;
        copy->bias_ = bias_;
        return copy;
    }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;
    bool can_fuse(fused_act) const override { return true; }
    void forward_into_fused(std::span<const float> in, const shape_t& input_shape,
                            std::size_t batch, std::span<float> workspace,
                            std::span<float> out, fused_act act) override;

    std::size_t in_features() const { return in_; }
    std::size_t out_features() const { return out_; }
    parameter& weight() { return weight_; }
    parameter& bias() { return bias_; }
    const parameter& weight() const { return weight_; }
    const parameter& bias() const { return bias_; }

private:
    std::size_t in_;
    std::size_t out_;
    parameter weight_;  ///< [in, out]
    parameter bias_;    ///< [out]
    tensor input_cache_;
    std::vector<float> wt_scratch_;  ///< transposed weights for backward
};

}  // namespace fallsense::nn
