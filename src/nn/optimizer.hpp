// Gradient-descent optimizers over a fixed parameter set.
#pragma once

#include <vector>

#include "nn/layer.hpp"

namespace fallsense::nn {

class optimizer {
public:
    explicit optimizer(std::vector<parameter*> params);
    virtual ~optimizer() = default;
    optimizer(const optimizer&) = delete;
    optimizer& operator=(const optimizer&) = delete;

    /// Apply one update from the accumulated gradients, then clear them.
    virtual void step() = 0;

    void zero_grad();

protected:
    std::vector<parameter*> params_;
};

/// SGD with classical momentum.
class sgd : public optimizer {
public:
    sgd(std::vector<parameter*> params, double learning_rate, double momentum = 0.0);
    void step() override;

private:
    double lr_;
    double momentum_;
    std::vector<tensor> velocity_;
};

/// Adam (Kingma & Ba) with bias correction — the Keras default the paper's
/// training would have used.
class adam : public optimizer {
public:
    adam(std::vector<parameter*> params, double learning_rate = 1e-3, double beta1 = 0.9,
         double beta2 = 0.999, double epsilon = 1e-7);
    void step() override;

private:
    double lr_;
    double beta1_;
    double beta2_;
    double epsilon_;
    std::size_t t_ = 0;
    std::vector<tensor> m_;
    std::vector<tensor> v_;
};

}  // namespace fallsense::nn
