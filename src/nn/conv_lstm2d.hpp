// ConvLSTM2D over [batch, time, rows, cols, channels], matching the Keras
// layer the ConvLSTM2D baseline of the paper (and of KFall's benchmark)
// uses: every LSTM gate's linear map is a 2-D convolution with 'same'
// padding, gate order [i | f | g | o], and the layer returns the last hidden
// state [batch, rows, cols, filters].
//
// fallsense feeds it IMU windows reshaped to a [3 x 3] grid per timestep
// (rows = sensor modality, cols = axis), mirroring how IMU segments are
// commonly gridded for this layer.
#pragma once

#include <vector>

#include "nn/layer.hpp"
#include "util/rng.hpp"

namespace fallsense::nn {

class conv_lstm2d : public layer {
public:
    conv_lstm2d(std::size_t in_channels, std::size_t filters, std::size_t kernel_size,
                util::rng& gen, std::string name = "conv_lstm2d");

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override { return {&w_input_, &w_hidden_, &bias_}; }
    layer_kind kind() const override { return layer_kind::conv_lstm2d; }
    layer_ptr clone() const override {
        util::rng gen(0);  // init values are overwritten below
        auto copy = std::make_unique<conv_lstm2d>(in_ch_, filters_, kernel_, gen);
        copy->w_input_ = w_input_;
        copy->w_hidden_ = w_hidden_;
        copy->bias_ = bias_;
        return copy;
    }
    std::string describe() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    std::size_t infer_workspace_bytes(const shape_t& input_shape,
                                      std::size_t batch) const override;
    void forward_into(std::span<const float> in, const shape_t& input_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

    std::size_t in_channels() const { return in_ch_; }
    std::size_t filters() const { return filters_; }
    std::size_t kernel_size() const { return kernel_; }

private:
    std::size_t in_ch_;
    std::size_t filters_;
    std::size_t kernel_;
    parameter w_input_;   ///< [k, k, in_channels, 4*filters]
    parameter w_hidden_;  ///< [k, k, filters, 4*filters]
    parameter bias_;      ///< [4*filters]

    tensor input_cache_;
    std::vector<tensor> hidden_states_;  ///< T+1 tensors [batch, rows, cols, filters]
    std::vector<tensor> cell_states_;
    std::vector<tensor> gate_i_;
    std::vector<tensor> gate_f_;
    std::vector<tensor> gate_g_;
    std::vector<tensor> gate_o_;
    std::vector<tensor> cell_tanh_;
};

/// y += conv2d_same(x, w): x [batch, rows, cols, cin], w [k, k, cin, cout],
/// y [batch, rows, cols, cout].  Exposed for testing.
void conv2d_same_accumulate(const tensor& x, const tensor& w, tensor& y);

/// Raw-buffer form of the same accumulation, for the allocation-free
/// inference path (buffers live in the caller's workspace arena).
void conv2d_same_accumulate(const float* x, const float* w, float* y, std::size_t batch,
                            std::size_t rows, std::size_t cols, std::size_t cin,
                            std::size_t k, std::size_t cout);

/// Given dL/dy, accumulate dL/dx into `grad_x` and dL/dw into `grad_w`.
void conv2d_same_backward(const tensor& x, const tensor& w, const tensor& grad_y,
                          tensor& grad_x, tensor& grad_w);

}  // namespace fallsense::nn
