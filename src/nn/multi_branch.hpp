// The paper's multi-branch topology: split the [batch, time, channels] input
// into per-modality channel groups, run each group through its own branch,
// concatenate the flattened branch outputs, and feed a shared trunk.
//
// For the fallsense CNN: channels = 9, three groups of 3 (accelerometer,
// gyroscope, Euler angles); each branch is Conv1D -> ReLU -> MaxPool1D ->
// Flatten; the trunk is Dense(64) -> ReLU -> Dense(32) -> ReLU -> Dense(1).
#pragma once

#include <memory>
#include <vector>

#include "nn/sequential.hpp"

namespace fallsense::nn {

class multi_branch_network : public model {
public:
    /// `group_channels` — channel count handled by each branch, in input
    /// channel order; the sum must equal the input's channel dimension.
    multi_branch_network(std::vector<std::size_t> group_channels,
                         std::vector<std::unique_ptr<sequential>> branches,
                         std::unique_ptr<sequential> trunk);

    tensor forward(const tensor& input, bool training) override;
    tensor backward(const tensor& grad_output) override;
    std::vector<parameter*> parameters() override;
    std::string summary() const override;
    shape_t output_shape(const shape_t& input_shape) const override;
    std::unique_ptr<model> clone() const override;

    std::size_t branch_count() const { return branches_.size(); }
    sequential& branch(std::size_t i);
    const sequential& branch(std::size_t i) const;
    sequential& trunk() { return *trunk_; }
    const sequential& trunk() const { return *trunk_; }
    const std::vector<std::size_t>& group_channels() const { return group_channels_; }

    std::size_t infer_workspace_bytes(const shape_t& row_shape, std::size_t batch) override;
    void forward_into(std::span<const float> input, const shape_t& row_shape,
                      std::size_t batch, std::span<float> workspace,
                      std::span<float> out) override;

private:
    /// Arena layout for the allocation-free forward path:
    ///   [ concat | slice | branch_out | branch workspace ]
    /// with the trunk workspace overlapping the slice/branch region (the
    /// branches are done before the trunk runs).  Cached keyed on
    /// (row_shape, batch high-water mark) like sequential's plan.
    struct infer_plan {
        shape_t row_shape;
        std::size_t batch_capacity = 0;
        std::vector<std::size_t> widths;     ///< flattened width per branch
        std::vector<shape_t> branch_shapes;  ///< {time, group} per branch (no per-call temporaries)
        shape_t trunk_shape;                 ///< {concat_width}
        std::size_t concat_width = 0;
        std::size_t concat_floats = 0;       ///< capacity × concat_width
        std::size_t slice_floats = 0;        ///< capacity × time × widest group
        std::size_t branch_out_floats = 0;   ///< capacity × widest branch width
        std::size_t branch_ws_floats = 0;    ///< widest branch arena
        std::size_t region_floats = 0;       ///< max(slice+out+branch_ws, trunk arena)
    };
    const infer_plan& ensure_plan(const shape_t& row_shape, std::size_t batch);

    std::vector<std::size_t> group_channels_;
    std::vector<std::unique_ptr<sequential>> branches_;
    std::unique_ptr<sequential> trunk_;
    infer_plan plan_;

    // Forward caches for backward.
    shape_t input_shape_cache_;
    std::vector<std::size_t> branch_widths_;  ///< flattened width of each branch output
    std::vector<tensor> branch_outputs_;      ///< reused across training steps
};

}  // namespace fallsense::nn
