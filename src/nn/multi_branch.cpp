#include "nn/multi_branch.hpp"

#include <algorithm>
#include <numeric>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::nn {

multi_branch_network::multi_branch_network(std::vector<std::size_t> group_channels,
                                           std::vector<std::unique_ptr<sequential>> branches,
                                           std::unique_ptr<sequential> trunk)
    : group_channels_(std::move(group_channels)),
      branches_(std::move(branches)),
      trunk_(std::move(trunk)) {
    FS_ARG_CHECK(!branches_.empty(), "multi_branch_network needs at least one branch");
    FS_ARG_CHECK(branches_.size() == group_channels_.size(),
                 "multi_branch_network branch/group count mismatch");
    FS_ARG_CHECK(trunk_ != nullptr, "multi_branch_network needs a trunk");
    for (const auto& b : branches_) FS_ARG_CHECK(b != nullptr, "null branch");
    for (const std::size_t g : group_channels_) FS_ARG_CHECK(g > 0, "empty channel group");
}

tensor multi_branch_network::forward(const tensor& input, bool training) {
    FS_ARG_CHECK(input.rank() == 3, "multi_branch expects [batch, time, channels], got " +
                                        shape_to_string(input.shape()));
    const std::size_t batch = input.dim(0);
    const std::size_t time = input.dim(1);
    const std::size_t channels = input.dim(2);
    const std::size_t total_group =
        std::accumulate(group_channels_.begin(), group_channels_.end(), std::size_t{0});
    FS_ARG_CHECK(channels == total_group, "multi_branch channel-group sum mismatch");
    input_shape_cache_ = input.shape();

    // Split channels, run branches, record flattened widths.  The output
    // list is a member so steady-state training steps reuse its capacity
    // (the tensors inside recycle through the buffer pool).
    std::vector<tensor>& branch_outputs = branch_outputs_;
    branch_outputs.clear();
    branch_outputs.reserve(branches_.size());
    branch_widths_.clear();
    std::size_t channel_base = 0;
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        const std::size_t group = group_channels_[bi];
        tensor slice({batch, time, group});
        for (std::size_t n = 0; n < batch; ++n) {
            for (std::size_t t = 0; t < time; ++t) {
                const float* src = input.data() + (n * time + t) * channels + channel_base;
                float* dst = slice.data() + (n * time + t) * group;
                std::copy(src, src + group, dst);
            }
        }
        channel_base += group;
        tensor out = branches_[bi]->forward(slice, training);
        FS_ARG_CHECK(out.rank() == 2 && out.dim(0) == batch,
                     "branch output must be [batch, features] — add a flatten layer");
        branch_widths_.push_back(out.dim(1));
        branch_outputs.push_back(std::move(out));
    }

    // Concatenate along the feature axis.
    const std::size_t concat_width =
        std::accumulate(branch_widths_.begin(), branch_widths_.end(), std::size_t{0});
    tensor concat({batch, concat_width});
    std::size_t feature_base = 0;
    for (std::size_t bi = 0; bi < branch_outputs.size(); ++bi) {
        const std::size_t width = branch_widths_[bi];
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = branch_outputs[bi].data() + n * width;
            float* dst = concat.data() + n * concat_width + feature_base;
            std::copy(src, src + width, dst);
        }
        feature_base += width;
    }
    return trunk_->forward(concat, training);
}

tensor multi_branch_network::backward(const tensor& grad_output) {
    FS_CHECK(!input_shape_cache_.empty(), "multi_branch backward before forward");
    const std::size_t batch = input_shape_cache_[0];
    const std::size_t time = input_shape_cache_[1];
    const std::size_t channels = input_shape_cache_[2];

    const tensor grad_concat = trunk_->backward(grad_output);
    const std::size_t concat_width = grad_concat.dim(1);

    tensor grad_input({batch, time, channels});
    std::size_t feature_base = 0;
    std::size_t channel_base = 0;
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        const std::size_t width = branch_widths_[bi];
        tensor grad_branch({batch, width});
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = grad_concat.data() + n * concat_width + feature_base;
            std::copy(src, src + width, grad_branch.data() + n * width);
        }
        const tensor grad_slice = branches_[bi]->backward(grad_branch);
        const std::size_t group = group_channels_[bi];
        for (std::size_t n = 0; n < batch; ++n) {
            for (std::size_t t = 0; t < time; ++t) {
                const float* src = grad_slice.data() + (n * time + t) * group;
                float* dst = grad_input.data() + (n * time + t) * channels + channel_base;
                std::copy(src, src + group, dst);
            }
        }
        feature_base += width;
        channel_base += group;
    }
    return grad_input;
}

const multi_branch_network::infer_plan& multi_branch_network::ensure_plan(
    const shape_t& row_shape, std::size_t batch) {
    if (batch <= plan_.batch_capacity && row_shape == plan_.row_shape &&
        plan_.widths.size() == branches_.size()) {
        return plan_;
    }
    FS_ARG_CHECK(row_shape.size() == 2, "multi_branch forward_into expects [time, channels]");
    const std::size_t time = row_shape[0];
    const std::size_t total_group =
        std::accumulate(group_channels_.begin(), group_channels_.end(), std::size_t{0});
    FS_ARG_CHECK(row_shape[1] == total_group, "multi_branch channel-group sum mismatch");

    const std::size_t capacity = std::max(batch, plan_.batch_capacity);
    plan_.row_shape = row_shape;
    plan_.batch_capacity = capacity;
    plan_.widths.clear();
    plan_.branch_shapes.clear();
    std::size_t max_group = 0;
    std::size_t max_width = 0;
    std::size_t branch_ws = 0;
    std::size_t concat_width = 0;
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        const std::size_t group = group_channels_[bi];
        const shape_t branch_shape{time, group};
        const std::size_t width = shape_volume(branches_[bi]->output_shape(branch_shape));
        plan_.widths.push_back(width);
        plan_.branch_shapes.push_back(branch_shape);
        concat_width += width;
        max_group = std::max(max_group, group);
        max_width = std::max(max_width, width);
        const std::size_t bytes = branches_[bi]->infer_workspace_bytes(branch_shape, capacity);
        branch_ws = std::max(branch_ws, (bytes + sizeof(float) - 1) / sizeof(float));
    }
    plan_.concat_width = concat_width;
    plan_.trunk_shape = {concat_width};
    plan_.concat_floats = capacity * concat_width;
    plan_.slice_floats = capacity * time * max_group;
    plan_.branch_out_floats = capacity * max_width;
    plan_.branch_ws_floats = branch_ws;
    const std::size_t trunk_bytes = trunk_->infer_workspace_bytes({concat_width}, capacity);
    const std::size_t trunk_floats = (trunk_bytes + sizeof(float) - 1) / sizeof(float);
    plan_.region_floats = std::max(
        plan_.slice_floats + plan_.branch_out_floats + plan_.branch_ws_floats, trunk_floats);
    return plan_;
}

std::size_t multi_branch_network::infer_workspace_bytes(const shape_t& row_shape,
                                                        std::size_t batch) {
    const infer_plan& plan = ensure_plan(row_shape, batch);
    return (plan.concat_floats + plan.region_floats) * sizeof(float);
}

void multi_branch_network::forward_into(std::span<const float> input,
                                        const shape_t& row_shape, std::size_t batch,
                                        std::span<float> workspace, std::span<float> out) {
    const infer_plan& plan = ensure_plan(row_shape, batch);
    const std::size_t time = row_shape[0];
    const std::size_t channels = row_shape[1];
    FS_ARG_CHECK(input.size() >= batch * time * channels,
                 "multi_branch forward_into: input too small");
    FS_ARG_CHECK(workspace.size() >= plan.concat_floats + plan.region_floats,
                 "multi_branch forward_into: workspace too small");
    float* const concat = workspace.data();
    float* const slice = concat + plan.concat_floats;
    float* const branch_out = slice + plan.slice_floats;
    const std::span<float> branch_ws(branch_out + plan.branch_out_floats,
                                     plan.branch_ws_floats);

    // Same data flow as forward — slice channels, run branches, scatter
    // into the concat rows — out of fixed arena regions.
    std::size_t channel_base = 0;
    std::size_t feature_base = 0;
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        const std::size_t group = group_channels_[bi];
        const std::size_t width = plan.widths[bi];
        for (std::size_t n = 0; n < batch; ++n) {
            for (std::size_t t = 0; t < time; ++t) {
                const float* src = input.data() + (n * time + t) * channels + channel_base;
                std::copy(src, src + group, slice + (n * time + t) * group);
            }
        }
        branches_[bi]->forward_into(std::span<const float>(slice, batch * time * group),
                                    plan.branch_shapes[bi], batch, branch_ws,
                                    std::span<float>(branch_out, batch * width));
        for (std::size_t n = 0; n < batch; ++n) {
            const float* src = branch_out + n * width;
            std::copy(src, src + width, concat + n * plan.concat_width + feature_base);
        }
        channel_base += group;
        feature_base += width;
    }
    // The branches are done: the trunk may reuse their arena region.
    trunk_->forward_into(std::span<const float>(concat, batch * plan.concat_width),
                         plan.trunk_shape, batch,
                         std::span<float>(slice, plan.region_floats), out);
}

std::unique_ptr<model> multi_branch_network::clone() const {
    std::vector<std::unique_ptr<sequential>> branches;
    branches.reserve(branches_.size());
    for (const auto& b : branches_) branches.push_back(b->clone_stack());
    return std::make_unique<multi_branch_network>(group_channels_, std::move(branches),
                                                  trunk_->clone_stack());
}

sequential& multi_branch_network::branch(std::size_t i) {
    FS_ARG_CHECK(i < branches_.size(), "branch index out of range");
    return *branches_[i];
}

const sequential& multi_branch_network::branch(std::size_t i) const {
    FS_ARG_CHECK(i < branches_.size(), "branch index out of range");
    return *branches_[i];
}

std::vector<parameter*> multi_branch_network::parameters() {
    std::vector<parameter*> params;
    for (const auto& b : branches_) {
        for (parameter* p : b->parameters()) params.push_back(p);
    }
    for (parameter* p : trunk_->parameters()) params.push_back(p);
    return params;
}

std::string multi_branch_network::summary() const {
    std::ostringstream os;
    os << "multi_branch {\n";
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        os << "  branch[" << bi << "] (" << group_channels_[bi] << " ch): "
           << branches_[bi]->summary() << '\n';
    }
    os << "  trunk: " << trunk_->summary() << "\n}";
    return os.str();
}

shape_t multi_branch_network::output_shape(const shape_t& input_shape) const {
    FS_ARG_CHECK(input_shape.size() == 2, "multi_branch output_shape expects [time, channels]");
    std::size_t concat_width = 0;
    for (std::size_t bi = 0; bi < branches_.size(); ++bi) {
        const shape_t branch_out =
            branches_[bi]->output_shape({input_shape[0], group_channels_[bi]});
        concat_width += shape_volume(branch_out);
    }
    return trunk_->output_shape({concat_width});
}

}  // namespace fallsense::nn
