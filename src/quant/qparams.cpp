#include "quant/qparams.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fallsense::quant {

qparams choose_activation_qparams(float min_value, float max_value) {
    FS_ARG_CHECK(min_value <= max_value, "inverted activation range");
    // Widen to include zero so padding/ReLU zeros are exact.
    min_value = std::min(min_value, 0.0f);
    max_value = std::max(max_value, 0.0f);
    if (max_value == min_value) max_value = min_value + 1e-6f;
    qparams qp;
    qp.scale = (max_value - min_value) / 255.0f;
    const double zp = -128.0 - static_cast<double>(min_value) / qp.scale;
    qp.zero_point = static_cast<std::int32_t>(
        std::clamp(std::lround(zp), long{-128}, long{127}));
    return qp;
}

qparams choose_weight_qparams(float max_abs) {
    FS_ARG_CHECK(max_abs >= 0.0f, "negative weight magnitude");
    if (max_abs == 0.0f) max_abs = 1e-6f;
    qparams qp;
    qp.scale = max_abs / 127.0f;
    qp.zero_point = 0;
    return qp;
}

std::int8_t quantize_value(float real, const qparams& qp) {
    const long q = std::lround(static_cast<double>(real) / qp.scale) + qp.zero_point;
    return static_cast<std::int8_t>(std::clamp(q, long{-128}, long{127}));
}

float dequantize_value(std::int8_t q, const qparams& qp) {
    return qp.scale * static_cast<float>(static_cast<std::int32_t>(q) - qp.zero_point);
}

quantized_multiplier encode_multiplier(double real_multiplier) {
    FS_ARG_CHECK(real_multiplier > 0.0, "multiplier must be positive");
    FS_ARG_CHECK(real_multiplier < 1.0, "multiplier must be below 1 for these layers");
    quantized_multiplier out;
    int exponent = 0;
    const double mantissa = std::frexp(real_multiplier, &exponent);  // in [0.5, 1)
    auto fixed = static_cast<std::int64_t>(std::llround(mantissa * (1LL << 31)));
    if (fixed == (1LL << 31)) {  // rounding overflow: 1.0 * 2^exponent
        fixed /= 2;
        ++exponent;
    }
    out.mantissa = static_cast<std::int32_t>(fixed);
    out.right_shift = -exponent;  // exponent <= 0 since multiplier < 1
    FS_CHECK(out.right_shift >= 0, "unexpected left shift for sub-unit multiplier");
    return out;
}

std::int32_t multiply_by_quantized_multiplier(std::int32_t acc,
                                              const quantized_multiplier& mult) {
    // Saturating doubling high multiply (TFLite SaturatingRoundingDoublingHighMul)
    // followed by rounding right shift.
    const std::int64_t product = static_cast<std::int64_t>(acc) * mult.mantissa;
    const std::int64_t nudge = (product >= 0) ? (1LL << 30) : (1 - (1LL << 30));
    std::int32_t high = static_cast<std::int32_t>((product + nudge) >> 31);
    const int shift = mult.right_shift;
    if (shift == 0) return high;
    const std::int32_t mask = static_cast<std::int32_t>((1LL << shift) - 1);
    const std::int32_t remainder = high & mask;
    std::int32_t result = high >> shift;
    // Round half away from zero.
    std::int32_t threshold = (mask >> 1) + ((high < 0) ? 1 : 0);
    if (remainder > threshold) ++result;
    return result;
}

std::int8_t requantize(std::int32_t acc, const quantized_multiplier& mult,
                       std::int32_t output_zero_point, std::int32_t clamp_min,
                       std::int32_t clamp_max) {
    std::int32_t scaled = multiply_by_quantized_multiplier(acc, mult);
    scaled += output_zero_point;
    scaled = std::clamp(scaled, clamp_min, clamp_max);
    return static_cast<std::int8_t>(scaled);
}

}  // namespace fallsense::quant
