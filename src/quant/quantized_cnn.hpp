// Int8 deployment graph of the fallsense CNN.
//
// Built from a `cnn_spec` plus calibration data (post-training
// quantization, Section III-D): weights symmetric int8, activations
// asymmetric int8, biases int32, requantization via 64-bit fixed-point
// multipliers — the arithmetic STM32Cube.AI / TFLite-Micro execute on the
// paper's STM32F722.  The executor also counts multiply-accumulates and
// tracks its activation arena so the MCU cost model (src/mcu) can derive
// latency and RAM numbers from the same object that computes predictions.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "quant/cnn_spec.hpp"
#include "quant/qparams.hpp"

namespace fallsense::quant {

/// Reusable activation buffers for one int8 inference.  Each vector grows
/// once to its high-water mark (a pure function of the model shape) and is
/// reused, so steady-state inference performs zero heap allocations — the
/// serving tick's contract.  A scratch must not be shared by concurrent
/// inferences.
struct inference_scratch {
    std::vector<std::int8_t> qinput;
    std::vector<std::int8_t> conv_out;
    std::vector<std::int8_t> concat;
    std::vector<std::int8_t> act_a;  ///< dense ping-pong buffers
    std::vector<std::int8_t> act_b;
    std::vector<std::int32_t> acc;   ///< int32 accumulator row (axpy kernels)
};

/// Per-chunk scratch for predict_proba_batch: chunk c of the fixed-grain
/// dispatch owns chunks[c], so concurrent chunks never share a buffer.
struct batch_inference_scratch {
    std::vector<inference_scratch> chunks;
};

struct q_conv_branch {
    std::vector<std::int8_t> weight;  ///< [kernel, cin, cout], symmetric
    std::vector<std::int32_t> bias;   ///< scale = s_in * s_w
    qparams weight_q;
    quantized_multiplier requant;     ///< s_in * s_w / s_out
    std::size_t kernel = 0;
    std::size_t in_channels = 0;
    std::size_t out_channels = 0;
    std::size_t pool = 2;
};

struct q_dense {
    std::vector<std::int8_t> weight;  ///< [in, out], symmetric
    std::vector<std::int32_t> bias;
    qparams weight_q;
    qparams output_q;
    quantized_multiplier requant;
    std::size_t in_features = 0;
    std::size_t out_features = 0;
    bool relu = false;
};

/// Operation counts of one inference — consumed by the MCU latency model.
struct op_counts {
    std::uint64_t macs = 0;          ///< int8 multiply-accumulates
    std::uint64_t requants = 0;      ///< fixed-point requantize ops
    std::uint64_t pool_compares = 0; ///< int8 max-pool comparisons
};

/// Pre-assembled int8 graph — the firmware loader path (mcu::deserialize_
/// deployment_blob) builds one of these from a flashed blob.
struct quantized_cnn_parts {
    std::size_t time_steps = 0;
    qparams input_q;
    qparams concat_q;
    std::vector<q_conv_branch> branches;
    std::vector<q_dense> trunk;
};

class quantized_cnn {
public:
    /// Quantize `spec` using activation ranges from `calibration_segments`.
    quantized_cnn(const cnn_spec& spec, const nn::tensor& calibration_segments);

    /// Assemble from already-quantized parts (firmware loading).  Validates
    /// structural consistency (shapes, trunk chaining, final logit).
    explicit quantized_cnn(quantized_cnn_parts parts);

    /// Inference for one float segment (row-major [time x channels]):
    /// quantize input, run the int8 graph, dequantize the logit, sigmoid.
    float predict_proba(std::span<const float> segment) const;
    /// The dequantized logit (pre-sigmoid).
    float predict_logit(std::span<const float> segment) const;
    /// predict_logit with caller-owned activation buffers — bit-identical,
    /// but allocation-free once `scratch` has reached its high-water mark.
    float predict_logit(std::span<const float> segment, inference_scratch& scratch) const;

    /// Batch-scoring entry point for serving (src/serve): `count` segments
    /// laid out back to back in `segments`; writes one probability per
    /// segment into `out`.  Segments are independent int8 inferences run in
    /// fixed-grain chunks (util::parallel_for_chunks) with index-addressed
    /// outputs — bit-identical to per-segment predict_proba for any
    /// FALLSENSE_THREADS.
    void predict_proba_batch(std::span<const float> segments, std::size_t count,
                             std::span<float> out) const;
    /// Batch scoring with caller-owned per-chunk scratch (the serving
    /// scorers keep one across ticks so steady-state batches allocate
    /// nothing).  Chunk boundaries depend only on the fixed grain, so
    /// chunk c always reuses scratch.chunks[c].
    void predict_proba_batch(std::span<const float> segments, std::size_t count,
                             std::span<float> out, batch_inference_scratch& scratch) const;

    std::size_t time_steps() const { return time_steps_; }
    std::size_t input_channels() const { return input_channels_; }
    const qparams& input_q() const { return input_q_; }
    const qparams& concat_q() const { return concat_q_; }
    std::span<const q_conv_branch> branches() const { return branches_; }
    std::span<const q_dense> trunk() const { return trunk_; }

    /// Bytes of constant data (weights + biases + quantization records) —
    /// the flash footprint contribution of the model.
    std::size_t weight_bytes() const;
    std::size_t bias_bytes() const;
    /// Peak bytes of live int8 activations during one inference (the
    /// scratch arena a static planner would allocate).
    std::size_t activation_arena_bytes() const;
    /// MAC/requant counts of one inference.
    op_counts count_ops() const;

private:
    std::size_t time_steps_ = 0;
    std::size_t input_channels_ = 0;
    std::vector<std::size_t> group_channels_;
    qparams input_q_;
    qparams concat_q_;
    std::vector<q_conv_branch> branches_;
    std::vector<q_dense> trunk_;
};

}  // namespace fallsense::quant
