// Deployment-oriented description of the paper's CNN.
//
// `cnn_spec` is the architecture + float weights extracted from a trained
// nn::multi_branch_network with the expected topology
//   branch  = Conv1D -> ReLU -> MaxPool1D -> Flatten   (one per modality)
//   trunk   = Dense+ReLU ... Dense(1 logit)
// It is the common source for the float reference executor (calibration,
// parity checks), the int8 converter, and the MCU cost model — mirroring
// how a Keras model becomes a deployment graph in the paper's toolchain.
#pragma once

#include <vector>

#include "nn/multi_branch.hpp"
#include "nn/tensor.hpp"

namespace fallsense::quant {

struct conv_branch_spec {
    nn::tensor conv_weight;  ///< [kernel, in_channels, out_channels]
    nn::tensor conv_bias;    ///< [out_channels]
    std::size_t pool = 2;

    std::size_t kernel() const { return conv_weight.dim(0); }
    std::size_t in_channels() const { return conv_weight.dim(1); }
    std::size_t out_channels() const { return conv_weight.dim(2); }
};

struct dense_spec {
    nn::tensor weight;  ///< [in, out]
    nn::tensor bias;    ///< [out]
    bool relu_after = false;

    std::size_t in_features() const { return weight.dim(0); }
    std::size_t out_features() const { return weight.dim(1); }
};

struct cnn_spec {
    std::size_t time_steps = 0;                 ///< segment rows n
    std::vector<std::size_t> group_channels;    ///< per-branch channel counts
    std::vector<conv_branch_spec> branches;
    std::vector<dense_spec> trunk;              ///< last layer emits the logit

    std::size_t input_channels() const;
    std::size_t concat_width() const;  ///< trunk input features
    std::size_t parameter_count() const;

    /// Float reference forward for one segment (row-major [time x channels]).
    /// Returns the logit.  Optionally records per-stage activation extrema
    /// into `ranges` (see activation_ranges).
    float forward_logit(std::span<const float> segment) const;

    void validate() const;
};

/// Per-stage activation extrema gathered during calibration: input, the
/// concatenated post-pool branch output, and each trunk layer's output.
struct activation_ranges {
    float input_min = 0.0f, input_max = 0.0f;
    float concat_min = 0.0f, concat_max = 0.0f;
    std::vector<float> trunk_min;  ///< one per trunk layer
    std::vector<float> trunk_max;
};

/// Run `segments` ([count, time, channels] tensor) through the float
/// reference and collect activation ranges for quantization.
activation_ranges calibrate(const cnn_spec& spec, const nn::tensor& segments);

/// Extract spec + weights from a trained network.  Throws if the topology
/// differs from the expected branch/trunk layout.
cnn_spec extract_cnn_spec(nn::multi_branch_network& network, std::size_t time_steps);

}  // namespace fallsense::quant
