// Affine quantization parameters and scalar quantize/dequantize helpers.
//
// Scheme (matching TFLite's reference int8 kernels, which is what
// STM32Cube.AI / TFLite-Micro run on the paper's STM32F722):
//   real = scale * (q - zero_point)
// Activations: asymmetric int8 calibrated from observed min/max.
// Weights: symmetric int8 (zero_point = 0).
// Accumulators: int32; bias stored as int32 with scale = s_in * s_w.
// Requantization: 64-bit fixed-point multiply (quantized multiplier +
// right shift) with round-to-nearest, exactly TFLite's
// MultiplyByQuantizedMultiplier.
#pragma once

#include <cstdint>

namespace fallsense::quant {

struct qparams {
    float scale = 1.0f;
    std::int32_t zero_point = 0;
};

/// Asymmetric int8 params covering [min_value, max_value] (range is widened
/// to include 0 so zero is exactly representable).
qparams choose_activation_qparams(float min_value, float max_value);

/// Symmetric int8 params for weights with |w| <= max_abs.
qparams choose_weight_qparams(float max_abs);

std::int8_t quantize_value(float real, const qparams& qp);
float dequantize_value(std::int8_t q, const qparams& qp);

/// Fixed-point representation of a positive real multiplier < 1:
/// multiplier ~= m_fixed * 2^-31 * 2^-shift with m_fixed in [2^30, 2^31).
struct quantized_multiplier {
    std::int32_t mantissa = 0;
    int right_shift = 0;  ///< total right shift applied after the fixed mul
};

/// Encode `real_multiplier` (must be in (0, 1)).
quantized_multiplier encode_multiplier(double real_multiplier);

/// acc * multiplier with round-to-nearest — TFLite semantics.
std::int32_t multiply_by_quantized_multiplier(std::int32_t acc,
                                              const quantized_multiplier& mult);

/// Requantize an int32 accumulator to int8: apply the multiplier, add the
/// output zero point, clamp to [clamp_min, clamp_max] (fused ReLU raises
/// clamp_min to the zero point).
std::int8_t requantize(std::int32_t acc, const quantized_multiplier& mult,
                       std::int32_t output_zero_point, std::int32_t clamp_min = -128,
                       std::int32_t clamp_max = 127);

}  // namespace fallsense::quant
