#include "quant/cnn_spec.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <numeric>

#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/pooling.hpp"
#include "util/check.hpp"

namespace fallsense::quant {

std::size_t cnn_spec::input_channels() const {
    return std::accumulate(group_channels.begin(), group_channels.end(), std::size_t{0});
}

std::size_t cnn_spec::concat_width() const {
    std::size_t width = 0;
    for (const conv_branch_spec& b : branches) {
        const std::size_t conv_time = time_steps - b.kernel() + 1;
        width += (conv_time / b.pool) * b.out_channels();
    }
    return width;
}

std::size_t cnn_spec::parameter_count() const {
    std::size_t count = 0;
    for (const conv_branch_spec& b : branches) {
        count += b.conv_weight.size() + b.conv_bias.size();
    }
    for (const dense_spec& d : trunk) count += d.weight.size() + d.bias.size();
    return count;
}

void cnn_spec::validate() const {
    FS_CHECK(time_steps > 0, "cnn_spec without time steps");
    FS_CHECK(!branches.empty() && branches.size() == group_channels.size(),
             "cnn_spec branch/group mismatch");
    FS_CHECK(!trunk.empty(), "cnn_spec without trunk");
    for (std::size_t i = 0; i < branches.size(); ++i) {
        FS_CHECK(branches[i].in_channels() == group_channels[i],
                 "cnn_spec branch channel mismatch");
        FS_CHECK(time_steps >= branches[i].kernel(), "cnn_spec kernel longer than window");
    }
    FS_CHECK(trunk.front().in_features() == concat_width(), "cnn_spec trunk width mismatch");
    FS_CHECK(trunk.back().out_features() == 1, "cnn_spec must end in a single logit");
    FS_CHECK(!trunk.back().relu_after, "logit layer must not be ReLU-activated");
}

namespace {

/// Branch forward: conv (valid) + relu + maxpool, appending the flattened
/// [time x filters] result to `out`.
void branch_forward(const conv_branch_spec& b, std::span<const float> segment,
                    std::size_t channels, std::size_t channel_base, std::size_t time_steps,
                    std::vector<float>& out) {
    const std::size_t conv_time = time_steps - b.kernel() + 1;
    const std::size_t cout = b.out_channels();
    const std::size_t cin = b.in_channels();
    std::vector<float> conv_out(conv_time * cout);
    const float* w = b.conv_weight.data();
    for (std::size_t t = 0; t < conv_time; ++t) {
        float* y = conv_out.data() + t * cout;
        for (std::size_t o = 0; o < cout; ++o) y[o] = b.conv_bias[o];
        for (std::size_t k = 0; k < b.kernel(); ++k) {
            const float* x = segment.data() + (t + k) * channels + channel_base;
            const float* wk = w + k * cin * cout;
            for (std::size_t c = 0; c < cin; ++c) {
                const float xv = x[c];
                const float* wc = wk + c * cout;
                for (std::size_t o = 0; o < cout; ++o) y[o] += xv * wc[o];
            }
        }
        for (std::size_t o = 0; o < cout; ++o) y[o] = std::max(y[o], 0.0f);  // ReLU
    }
    const std::size_t pooled_time = conv_time / b.pool;
    for (std::size_t t = 0; t < pooled_time; ++t) {
        for (std::size_t o = 0; o < cout; ++o) {
            float best = conv_out[(t * b.pool) * cout + o];
            for (std::size_t p = 1; p < b.pool; ++p) {
                best = std::max(best, conv_out[(t * b.pool + p) * cout + o]);
            }
            out.push_back(best);
        }
    }
}

std::vector<float> dense_forward(const dense_spec& d, const std::vector<float>& in) {
    std::vector<float> out(d.out_features());
    const float* w = d.weight.data();
    for (std::size_t o = 0; o < out.size(); ++o) out[o] = d.bias[o];
    for (std::size_t i = 0; i < in.size(); ++i) {
        const float xv = in[i];
        if (xv == 0.0f) continue;
        const float* row = w + i * out.size();
        for (std::size_t o = 0; o < out.size(); ++o) out[o] += xv * row[o];
    }
    if (d.relu_after) {
        for (float& v : out) v = std::max(v, 0.0f);
    }
    return out;
}

}  // namespace

float cnn_spec::forward_logit(std::span<const float> segment) const {
    const std::size_t channels = input_channels();
    FS_ARG_CHECK(segment.size() == time_steps * channels, "segment size mismatch");

    std::vector<float> concat;
    concat.reserve(concat_width());
    std::size_t channel_base = 0;
    for (const conv_branch_spec& b : branches) {
        branch_forward(b, segment, channels, channel_base, time_steps, concat);
        channel_base += b.in_channels();
    }
    std::vector<float> act = concat;
    for (const dense_spec& d : trunk) act = dense_forward(d, act);
    FS_CHECK(act.size() == 1, "trunk must end in one logit");
    return act[0];
}

activation_ranges calibrate(const cnn_spec& spec, const nn::tensor& segments) {
    FS_ARG_CHECK(segments.rank() == 3, "calibration tensor must be [count, time, channels]");
    FS_ARG_CHECK(segments.dim(0) > 0, "empty calibration set");
    spec.validate();
    const std::size_t count = segments.dim(0);
    const std::size_t channels = spec.input_channels();
    FS_ARG_CHECK(segments.dim(1) == spec.time_steps && segments.dim(2) == channels,
                 "calibration segment shape mismatch");

    activation_ranges ranges;
    ranges.input_min = ranges.input_max = segments[0];
    ranges.trunk_min.assign(spec.trunk.size(), std::numeric_limits<float>::infinity());
    ranges.trunk_max.assign(spec.trunk.size(), -std::numeric_limits<float>::infinity());
    ranges.concat_min = std::numeric_limits<float>::infinity();
    ranges.concat_max = -std::numeric_limits<float>::infinity();

    const std::size_t seg_size = spec.time_steps * channels;
    for (std::size_t n = 0; n < count; ++n) {
        const std::span<const float> segment(segments.data() + n * seg_size, seg_size);
        for (const float v : segment) {
            ranges.input_min = std::min(ranges.input_min, v);
            ranges.input_max = std::max(ranges.input_max, v);
        }
        std::vector<float> concat;
        concat.reserve(spec.concat_width());
        std::size_t channel_base = 0;
        for (const conv_branch_spec& b : spec.branches) {
            branch_forward(b, segment, channels, channel_base, spec.time_steps, concat);
            channel_base += b.in_channels();
        }
        for (const float v : concat) {
            ranges.concat_min = std::min(ranges.concat_min, v);
            ranges.concat_max = std::max(ranges.concat_max, v);
        }
        std::vector<float> act = concat;
        for (std::size_t li = 0; li < spec.trunk.size(); ++li) {
            act = dense_forward(spec.trunk[li], act);
            for (const float v : act) {
                ranges.trunk_min[li] = std::min(ranges.trunk_min[li], v);
                ranges.trunk_max[li] = std::max(ranges.trunk_max[li], v);
            }
        }
    }
    return ranges;
}

cnn_spec extract_cnn_spec(nn::multi_branch_network& network, std::size_t time_steps) {
    cnn_spec spec;
    spec.time_steps = time_steps;
    spec.group_channels = network.group_channels();

    for (std::size_t bi = 0; bi < network.branch_count(); ++bi) {
        nn::sequential& branch = network.branch(bi);
        FS_ARG_CHECK(branch.layer_count() == 4,
                     "expected branch topology conv1d/relu/maxpool1d/flatten");
        FS_ARG_CHECK(branch.layer_at(0).kind() == nn::layer_kind::conv1d &&
                         branch.layer_at(1).kind() == nn::layer_kind::relu &&
                         branch.layer_at(2).kind() == nn::layer_kind::maxpool1d &&
                         branch.layer_at(3).kind() == nn::layer_kind::flatten,
                     "unexpected branch layer kinds");
        auto& conv = static_cast<nn::conv1d&>(branch.layer_at(0));
        auto& pool = static_cast<nn::maxpool1d&>(branch.layer_at(2));
        conv_branch_spec b;
        b.conv_weight = conv.weight().value;
        b.conv_bias = conv.bias().value;
        b.pool = pool.pool_size();
        spec.branches.push_back(std::move(b));
    }

    nn::sequential& trunk = network.trunk();
    std::size_t li = 0;
    while (li < trunk.layer_count()) {
        FS_ARG_CHECK(trunk.layer_at(li).kind() == nn::layer_kind::dense,
                     "expected dense layer in trunk");
        auto& d = static_cast<nn::dense&>(trunk.layer_at(li));
        dense_spec ds;
        ds.weight = d.weight().value;
        ds.bias = d.bias().value;
        ds.relu_after = (li + 1 < trunk.layer_count()) &&
                        trunk.layer_at(li + 1).kind() == nn::layer_kind::relu;
        li += ds.relu_after ? 2 : 1;
        spec.trunk.push_back(std::move(ds));
    }
    spec.validate();
    return spec;
}

}  // namespace fallsense::quant
