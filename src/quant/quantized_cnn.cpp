#include "quant/quantized_cnn.hpp"

#include <algorithm>
#include <cmath>
#include <cstring>

#include "nn/activations.hpp"
#include "nn/gemm.hpp"
#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::quant {

namespace {

float max_abs(std::span<const float> values) {
    float m = 0.0f;
    for (const float v : values) m = std::max(m, std::abs(v));
    return m;
}

std::vector<std::int8_t> quantize_weights(const nn::tensor& w, const qparams& qp) {
    std::vector<std::int8_t> out(w.size());
    for (std::size_t i = 0; i < w.size(); ++i) out[i] = quantize_value(w[i], qp);
    return out;
}

std::vector<std::int32_t> quantize_bias(const nn::tensor& b, float input_scale,
                                        float weight_scale) {
    const double scale = static_cast<double>(input_scale) * weight_scale;
    std::vector<std::int32_t> out(b.size());
    for (std::size_t i = 0; i < b.size(); ++i) {
        out[i] = static_cast<std::int32_t>(std::llround(static_cast<double>(b[i]) / scale));
    }
    return out;
}

}  // namespace

quantized_cnn::quantized_cnn(const cnn_spec& spec, const nn::tensor& calibration_segments) {
    spec.validate();
    const activation_ranges ranges = calibrate(spec, calibration_segments);

    time_steps_ = spec.time_steps;
    group_channels_ = spec.group_channels;
    input_channels_ = spec.input_channels();
    input_q_ = choose_activation_qparams(ranges.input_min, ranges.input_max);
    // All branch outputs are concatenated, so they share one quantization.
    concat_q_ = choose_activation_qparams(ranges.concat_min, ranges.concat_max);

    for (const conv_branch_spec& b : spec.branches) {
        q_conv_branch qb;
        qb.weight_q = choose_weight_qparams(max_abs(b.conv_weight.values()));
        qb.weight = quantize_weights(b.conv_weight, qb.weight_q);
        qb.bias = quantize_bias(b.conv_bias, input_q_.scale, qb.weight_q.scale);
        qb.requant = encode_multiplier(static_cast<double>(input_q_.scale) *
                                       qb.weight_q.scale / concat_q_.scale);
        qb.kernel = b.kernel();
        qb.in_channels = b.in_channels();
        qb.out_channels = b.out_channels();
        qb.pool = b.pool;
        branches_.push_back(std::move(qb));
    }

    qparams prev_q = concat_q_;
    for (std::size_t li = 0; li < spec.trunk.size(); ++li) {
        const dense_spec& d = spec.trunk[li];
        q_dense qd;
        qd.weight_q = choose_weight_qparams(max_abs(d.weight.values()));
        qd.weight = quantize_weights(d.weight, qd.weight_q);
        qd.bias = quantize_bias(d.bias, prev_q.scale, qd.weight_q.scale);
        qd.output_q =
            choose_activation_qparams(ranges.trunk_min[li], ranges.trunk_max[li]);
        qd.requant = encode_multiplier(static_cast<double>(prev_q.scale) * qd.weight_q.scale /
                                       qd.output_q.scale);
        qd.in_features = d.in_features();
        qd.out_features = d.out_features();
        qd.relu = d.relu_after;
        prev_q = qd.output_q;
        trunk_.push_back(std::move(qd));
    }
}

quantized_cnn::quantized_cnn(quantized_cnn_parts parts)
    : time_steps_(parts.time_steps),
      input_q_(parts.input_q),
      concat_q_(parts.concat_q),
      branches_(std::move(parts.branches)),
      trunk_(std::move(parts.trunk)) {
    FS_ARG_CHECK(time_steps_ > 0, "quantized model without time steps");
    FS_ARG_CHECK(!branches_.empty(), "quantized model without branches");
    FS_ARG_CHECK(!trunk_.empty(), "quantized model without trunk");
    std::size_t concat_width = 0;
    for (const q_conv_branch& b : branches_) {
        FS_ARG_CHECK(b.kernel > 0 && b.in_channels > 0 && b.out_channels > 0 && b.pool > 0,
                     "degenerate branch dimensions");
        FS_ARG_CHECK(time_steps_ >= b.kernel, "kernel longer than window");
        FS_ARG_CHECK(b.weight.size() == b.kernel * b.in_channels * b.out_channels,
                     "branch weight size mismatch");
        FS_ARG_CHECK(b.bias.size() == b.out_channels, "branch bias size mismatch");
        group_channels_.push_back(b.in_channels);
        input_channels_ += b.in_channels;
        const std::size_t conv_time = time_steps_ - b.kernel + 1;
        concat_width += (conv_time / b.pool) * b.out_channels;
    }
    std::size_t prev = concat_width;
    for (const q_dense& d : trunk_) {
        FS_ARG_CHECK(d.in_features == prev, "trunk width chain mismatch");
        FS_ARG_CHECK(d.weight.size() == d.in_features * d.out_features,
                     "dense weight size mismatch");
        FS_ARG_CHECK(d.bias.size() == d.out_features, "dense bias size mismatch");
        prev = d.out_features;
    }
    FS_ARG_CHECK(prev == 1, "quantized trunk must end in one logit");
}

float quantized_cnn::predict_logit(std::span<const float> segment) const {
    inference_scratch scratch;
    return predict_logit(segment, scratch);
}

float quantized_cnn::predict_logit(std::span<const float> segment,
                                   inference_scratch& scratch) const {
    FS_ARG_CHECK(segment.size() == time_steps_ * input_channels_,
                 "segment size mismatch");
    obs::add_counter("quant/inferences");

    // Quantize the input once.
    scratch.qinput.resize(segment.size());
    std::int8_t* const qinput = scratch.qinput.data();
    for (std::size_t i = 0; i < segment.size(); ++i) {
        qinput[i] = quantize_value(segment[i], input_q_);
    }

    // Branches: int8 conv (+fused ReLU via clamp) then int8 max-pool.  The
    // conv is structured as axpy updates along the contiguous out-channel
    // axis of the [kernel, cin, cout] weights: one int32 accumulator row
    // per output step, updated with xv * w for every (k, c) input sample.
    // Each accumulator still sums the same int32 products (exact, so order
    // is irrelevant), which keeps results bit-identical to the scalar
    // reference under either dispatch mode (nn::q8_axpy_kernel).
    const nn::q8_axpy_fn axpy = nn::q8_axpy_kernel();
    scratch.concat.clear();
    std::size_t channel_base = 0;
    for (const q_conv_branch& b : branches_) {
        const std::size_t conv_time = time_steps_ - b.kernel + 1;
        scratch.conv_out.resize(conv_time * b.out_channels);
        std::int8_t* const conv_out = scratch.conv_out.data();
        if (scratch.acc.size() < b.out_channels) scratch.acc.resize(b.out_channels);
        std::int32_t* const acc = scratch.acc.data();
        for (std::size_t t = 0; t < conv_time; ++t) {
            std::memcpy(acc, b.bias.data(), b.out_channels * sizeof(std::int32_t));
            for (std::size_t k = 0; k < b.kernel; ++k) {
                const std::int8_t* x =
                    qinput + (t + k) * input_channels_ + channel_base;
                const std::int8_t* wk =
                    b.weight.data() + (k * b.in_channels) * b.out_channels;
                for (std::size_t c = 0; c < b.in_channels; ++c) {
                    const std::int32_t xv =
                        static_cast<std::int32_t>(x[c]) - input_q_.zero_point;
                    axpy(b.out_channels, xv, wk + c * b.out_channels, acc);
                }
            }
            for (std::size_t o = 0; o < b.out_channels; ++o) {
                // Fused ReLU: clamp_min at the output zero point.
                conv_out[t * b.out_channels + o] =
                    requantize(acc[o], b.requant, concat_q_.zero_point,
                               concat_q_.zero_point, 127);
            }
        }
        const std::size_t pooled_time = conv_time / b.pool;
        for (std::size_t t = 0; t < pooled_time; ++t) {
            for (std::size_t o = 0; o < b.out_channels; ++o) {
                std::int8_t best = conv_out[(t * b.pool) * b.out_channels + o];
                for (std::size_t p = 1; p < b.pool; ++p) {
                    best = std::max(best,
                                    conv_out[(t * b.pool + p) * b.out_channels + o]);
                }
                scratch.concat.push_back(best);
            }
        }
        channel_base += b.in_channels;
    }

    // Trunk: int8 dense chain, ping-ponging between the two act buffers so
    // no step allocates.
    const std::vector<std::int8_t>* act = &scratch.concat;
    std::vector<std::int8_t>* next = &scratch.act_a;
    qparams act_q = concat_q_;
    for (const q_dense& d : trunk_) {
        FS_CHECK(act->size() == d.in_features, "quantized trunk width mismatch");
        next->resize(d.out_features);
        if (scratch.acc.size() < d.out_features) scratch.acc.resize(d.out_features);
        std::int32_t* const acc = scratch.acc.data();
        std::memcpy(acc, d.bias.data(), d.out_features * sizeof(std::int32_t));
        for (std::size_t i = 0; i < d.in_features; ++i) {
            const std::int32_t xv =
                static_cast<std::int32_t>((*act)[i]) - act_q.zero_point;
            axpy(d.out_features, xv, d.weight.data() + i * d.out_features, acc);
        }
        for (std::size_t o = 0; o < d.out_features; ++o) {
            const std::int32_t clamp_min = d.relu ? d.output_q.zero_point : -128;
            (*next)[o] = requantize(acc[o], d.requant, d.output_q.zero_point, clamp_min, 127);
        }
        act = next;
        next = (next == &scratch.act_a) ? &scratch.act_b : &scratch.act_a;
        act_q = d.output_q;
    }
    FS_CHECK(act->size() == 1, "quantized trunk must end in one logit");
    return dequantize_value((*act)[0], act_q);
}

float quantized_cnn::predict_proba(std::span<const float> segment) const {
    return nn::sigmoid_scalar(predict_logit(segment));
}

namespace {

/// Fixed batch-dispatch grain: chunk boundaries (and therefore which
/// scratch slot a segment uses) are a pure function of the segment index.
constexpr std::size_t k_batch_grain = 4;

}  // namespace

void quantized_cnn::predict_proba_batch(std::span<const float> segments, std::size_t count,
                                        std::span<float> out) const {
    batch_inference_scratch scratch;
    predict_proba_batch(segments, count, out, scratch);
}

void quantized_cnn::predict_proba_batch(std::span<const float> segments, std::size_t count,
                                        std::span<float> out,
                                        batch_inference_scratch& scratch) const {
    const std::size_t elems = time_steps_ * input_channels_;
    FS_ARG_CHECK(segments.size() == count * elems, "batch segment buffer size mismatch");
    FS_ARG_CHECK(out.size() == count, "batch output size mismatch");
    if (count == 0) return;
    const std::size_t chunk_count = (count + k_batch_grain - 1) / k_batch_grain;
    if (scratch.chunks.size() < chunk_count) scratch.chunks.resize(chunk_count);
    // Single-reference capture keeps the dispatch closure inside the
    // std::function small-buffer store — no per-batch heap allocation.
    struct dispatch_ctx {
        const quantized_cnn* self;
        const float* segments;
        float* out;
        std::size_t elems;
        inference_scratch* chunks;
    } ctx{this, segments.data(), out.data(), elems, scratch.chunks.data()};
    util::parallel_for_chunks(0, count, k_batch_grain,
                              [&ctx](std::size_t c, std::size_t lo, std::size_t hi) {
                                  inference_scratch& sc = ctx.chunks[c];
                                  for (std::size_t i = lo; i < hi; ++i) {
                                      ctx.out[i] = nn::sigmoid_scalar(ctx.self->predict_logit(
                                          {ctx.segments + i * ctx.elems, ctx.elems}, sc));
                                  }
                              });
}

std::size_t quantized_cnn::weight_bytes() const {
    std::size_t bytes = 0;
    for (const q_conv_branch& b : branches_) bytes += b.weight.size();
    for (const q_dense& d : trunk_) bytes += d.weight.size();
    return bytes;
}

std::size_t quantized_cnn::bias_bytes() const {
    std::size_t bytes = 0;
    for (const q_conv_branch& b : branches_) bytes += b.bias.size() * sizeof(std::int32_t);
    for (const q_dense& d : trunk_) bytes += d.bias.size() * sizeof(std::int32_t);
    return bytes;
}

std::size_t quantized_cnn::activation_arena_bytes() const {
    // Live at once: the quantized input, the widest branch conv output, and
    // the growing concat buffer; later the dense ping-pong buffers.
    const std::size_t input_bytes = time_steps_ * input_channels_;
    std::size_t max_conv = 0;
    std::size_t concat_width = 0;
    for (const q_conv_branch& b : branches_) {
        const std::size_t conv_time = time_steps_ - b.kernel + 1;
        max_conv = std::max(max_conv, conv_time * b.out_channels);
        concat_width += (conv_time / b.pool) * b.out_channels;
    }
    const std::size_t branch_stage = input_bytes + max_conv + concat_width;
    std::size_t dense_stage = 0;
    std::size_t prev = concat_width;
    for (const q_dense& d : trunk_) {
        dense_stage = std::max(dense_stage, prev + d.out_features);
        prev = d.out_features;
    }
    return std::max(branch_stage, dense_stage);
}

op_counts quantized_cnn::count_ops() const {
    op_counts counts;
    for (const q_conv_branch& b : branches_) {
        const std::size_t conv_time = time_steps_ - b.kernel + 1;
        counts.macs += static_cast<std::uint64_t>(conv_time) * b.out_channels * b.kernel *
                       b.in_channels;
        counts.requants += static_cast<std::uint64_t>(conv_time) * b.out_channels;
        const std::size_t pooled_time = conv_time / b.pool;
        counts.pool_compares +=
            static_cast<std::uint64_t>(pooled_time) * b.out_channels * (b.pool - 1);
    }
    for (const q_dense& d : trunk_) {
        counts.macs += static_cast<std::uint64_t>(d.in_features) * d.out_features;
        counts.requants += d.out_features;
    }
    return counts;
}

}  // namespace fallsense::quant
