// Model zoo: the proposed CNN and the paper's three baselines
// (Section IV-B: MLP, LSTM, ConvLSTM2D) built for a given window length.
//
// Proposed CNN (Section III-B): the [n x 9] input splits into three
// [n x 3] modality matrices (accelerometer / gyroscope / Euler angles);
// each branch runs Conv1D(16, k=3) -> ReLU -> MaxPool1D(2) -> Flatten;
// the concatenation feeds Dense(64) -> ReLU -> Dense(32) -> ReLU ->
// Dense(1) whose sigmoid output is the falling confidence.
#pragma once

#include <functional>
#include <memory>
#include <string>

#include "nn/multi_branch.hpp"
#include "nn/sequential.hpp"

namespace fallsense::core {

enum class model_kind { mlp, lstm, conv_lstm2d, cnn };

const char* model_kind_name(model_kind kind);

struct built_model {
    std::unique_ptr<nn::model> network;
    /// Reshape a [N, window, 9] feature tensor into this model's input
    /// layout (identity for MLP/LSTM/CNN; [N, window, 3, 3, 1] for
    /// ConvLSTM2D's spatial grid).
    std::function<nn::tensor(const nn::tensor&)> adapt_features;
};

struct model_hyperparams {
    std::size_t cnn_filters = 16;
    std::size_t cnn_kernel = 3;
    std::size_t cnn_pool = 2;
    std::size_t mlp_hidden1 = 64;
    std::size_t mlp_hidden2 = 32;
    std::size_t lstm_hidden = 28;
    std::size_t conv_lstm_filters = 6;
    std::size_t conv_lstm_kernel = 3;
    std::size_t dense_head = 32;  ///< head width for the recurrent baselines
};

/// Build a model for `window_samples`-row segments.
built_model build_model(model_kind kind, std::size_t window_samples, std::uint64_t seed,
                        const model_hyperparams& hp = {});

/// The proposed CNN with direct access to the multi-branch network type
/// (needed by quantization).  Equivalent to build_model(model_kind::cnn, ...).
std::unique_ptr<nn::multi_branch_network> build_fallsense_cnn(std::size_t window_samples,
                                                              std::uint64_t seed,
                                                              const model_hyperparams& hp = {});

}  // namespace fallsense::core
