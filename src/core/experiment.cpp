#include "core/experiment.hpp"

#include <algorithm>

#include "data/alignment.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/logging.hpp"

namespace fallsense::core {

experiment_scale scale_preset(util::run_scale scale) {
    experiment_scale s;
    switch (scale) {
        case util::run_scale::tiny:
            s.kfall_subjects = 2;
            s.protechto_subjects = 2;
            s.folds = 2;
            s.folds_to_run = 1;
            s.validation_subjects = 1;
            s.max_epochs = 4;
            s.early_stop_patience = 2;
            s.augmentation_copies = 1;
            s.tuning.static_hold_s = 1.5;
            s.tuning.locomotion_s = 2.0;
            s.tuning.post_fall_hold_s = 1.0;
            break;
        case util::run_scale::quick:
            s.kfall_subjects = 6;
            s.protechto_subjects = 6;
            s.folds = 3;
            s.folds_to_run = 2;
            s.validation_subjects = 2;
            s.max_epochs = 24;
            s.early_stop_patience = 6;
            s.augmentation_copies = 2;
            s.tuning.static_hold_s = 3.0;
            s.tuning.locomotion_s = 3.5;
            s.tuning.post_fall_hold_s = 1.5;
            break;
        case util::run_scale::full:
            s.kfall_subjects = 32;
            s.protechto_subjects = 29;
            s.folds = 5;
            s.folds_to_run = 5;
            s.validation_subjects = 4;
            s.max_epochs = 200;
            s.early_stop_patience = 20;
            s.augmentation_copies = 3;
            s.tuning.static_hold_s = 8.0;
            s.tuning.locomotion_s = 5.0;
            s.tuning.post_fall_hold_s = 2.0;
            break;
    }
    return s;
}

data::dataset make_merged_dataset(const experiment_scale& scale, std::uint64_t seed) {
    data::dataset_profile kfall = data::kfall_profile();
    kfall.n_subjects = scale.kfall_subjects;
    kfall.tuning = scale.tuning;
    data::dataset_profile protechto = data::protechto_profile();
    protechto.n_subjects = scale.protechto_subjects;
    protechto.tuning = scale.tuning;

    const data::dataset raw_kfall = data::generate_dataset(kfall, seed);
    const data::dataset raw_protechto = data::generate_dataset(protechto, seed);
    return data::merge_datasets(
        {data::align_dataset(raw_kfall), data::align_dataset(raw_protechto)},
        "kfall+protechto");
}

windowing_config standard_windowing(double window_ms, double overlap,
                                    double sample_rate_hz) {
    windowing_config config;
    config.segmentation = dsp::make_segmentation(window_ms, overlap, sample_rate_hz);
    config.truncation_ms = 150.0;
    return config;
}

namespace {

std::vector<data::trial> trials_for_subjects(const data::dataset& merged,
                                             const std::vector<int>& subjects) {
    std::vector<data::trial> out;
    for (const data::trial& t : merged.trials) {
        if (std::find(subjects.begin(), subjects.end(), t.subject_id) != subjects.end()) {
            out.push_back(t);
        }
    }
    return out;
}

}  // namespace

fold_result run_fold(model_kind kind, const data::dataset& merged,
                     const eval::fold_split& split, const windowing_config& windows,
                     const experiment_scale& scale, std::uint64_t seed,
                     const train_options& options) {
    const std::size_t window_samples = windows.segmentation.window_samples;

    // Training trials, with trial-level augmentation of the fall minority.
    std::vector<data::trial> train_trials = trials_for_subjects(merged, split.train_subjects);
    if (options.augment && scale.augmentation_copies > 0) {
        util::rng aug_gen(util::derive_seed(seed, "augment"));
        augment::trial_augment_config aug_cfg;
        augment::augment_fall_trials(train_trials, scale.augmentation_copies, aug_cfg,
                                     aug_gen);
    }

    const std::vector<window_example> train_w = extract_windows(train_trials, windows);
    const std::vector<window_example> val_w =
        extract_windows(merged.trials, windows, &split.validation_subjects);
    const std::vector<window_example> test_w =
        extract_windows(merged.trials, windows, &split.test_subjects);
    FS_CHECK(!train_w.empty() && !test_w.empty(), "fold produced no windows");

    nn::labeled_data train = to_labeled_data(train_w, window_samples);
    nn::labeled_data val = to_labeled_data(val_w, window_samples);
    nn::labeled_data test = to_labeled_data(test_w, window_samples);

    built_model bm = build_model(kind, window_samples, util::derive_seed(seed, "model"));
    train.features = bm.adapt_features(train.features);
    if (val.size() > 0) val.features = bm.adapt_features(val.features);
    test.features = bm.adapt_features(test.features);

    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.batch_size = scale.batch_size;
    tc.learning_rate = scale.learning_rate;
    tc.early_stop_patience = scale.early_stop_patience;
    tc.use_class_weights = options.class_weights;
    tc.init_output_bias = options.output_bias_init;
    tc.shuffle_seed = util::derive_seed(seed, "shuffle");
    tc.metrics_prefix = options.metrics_prefix;

    fold_result result;
    result.history = nn::fit(*bm.network, train, val, tc);

    const std::vector<float> probs = nn::predict_proba(*bm.network, test.features);
    result.report = eval::evaluate(probs, test.labels);
    result.test_records = to_segment_records(test_w, probs);
    return result;
}

cross_validation_result run_cross_validation(model_kind kind, const data::dataset& merged,
                                             const windowing_config& windows,
                                             const experiment_scale& scale,
                                             std::uint64_t seed,
                                             const train_options& options) {
    OBS_SCOPE("eval/cross_validation");
    eval::kfold_config kf;
    kf.folds = scale.folds;
    kf.validation_subjects = scale.validation_subjects;
    kf.shuffle_seed = util::derive_seed(seed, "kfold");
    const std::vector<eval::fold_split> splits =
        eval::make_subject_folds(merged.subject_ids(), kf);

    cross_validation_result cv;
    const std::size_t folds_to_run = std::min(scale.folds_to_run, splits.size());
    FS_ARG_CHECK(folds_to_run > 0, "no folds to run");

    // Folds are independent given the merged dataset and their derived
    // seeds, so they run concurrently on the global pool; each writes only
    // its own slot and the pooling below walks the slots in fold order, so
    // the result is bit-identical for any FALLSENSE_THREADS.
    std::vector<fold_result> fold_results(folds_to_run);
    eval::for_each_fold(folds_to_run, [&](std::size_t f) {
        FS_LOG_INFO("experiment") << model_kind_name(kind) << ": fold " << (f + 1) << '/'
                                  << folds_to_run;
        train_options fold_options = options;
        fold_options.metrics_prefix = "eval/fold" + std::to_string(f) + "/train";
        fold_results[f] = run_fold(kind, merged, splits[f], windows, scale,
                                   util::derive_seed(seed, {0xf01dULL, f}), fold_options);
    });

    std::vector<float> all_probs;
    std::vector<float> all_labels;
    for (fold_result& fr : fold_results) {
        for (const eval::segment_record& r : fr.test_records) {
            all_probs.push_back(r.probability);
            all_labels.push_back(r.label);
            cv.all_records.push_back(r);
        }
        cv.folds.push_back(std::move(fr));
    }
    cv.pooled = eval::evaluate(all_probs, all_labels);

    // Per-fold and pooled quality metrics, recorded from the pooling walk
    // above (main thread, fold order) so gauge values are deterministic.
    if (obs::enabled()) {
        const auto record_report = [](const std::string& prefix,
                                      const eval::classification_report& report) {
            obs::add_counter(prefix + "/true_positive", report.cm.true_positive);
            obs::add_counter(prefix + "/false_positive", report.cm.false_positive);
            obs::add_counter(prefix + "/true_negative", report.cm.true_negative);
            obs::add_counter(prefix + "/false_negative", report.cm.false_negative);
            obs::set_gauge(prefix + "/accuracy", report.accuracy);
            obs::set_gauge(prefix + "/precision", report.precision);
            obs::set_gauge(prefix + "/recall", report.recall);
            obs::set_gauge(prefix + "/f1", report.f1);
        };
        for (std::size_t f = 0; f < cv.folds.size(); ++f) {
            record_report("eval/fold" + std::to_string(f), cv.folds[f].report);
        }
        record_report("eval/pooled", cv.pooled);
        obs::add_counter("eval/segments", cv.all_records.size());
    }
    return cv;
}

}  // namespace fallsense::core
