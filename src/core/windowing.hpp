// Labeled-segment extraction with pre-impact truncation (Sections III-A,
// III-C): slide a window over the preprocessed 9-channel stream; a segment
// is a positive ("falling") example when it overlaps the truncated falling
// window [onset, impact - 150 ms] by at least `min_overlap_ms`.  Segments
// that reach into the withheld final 150 ms or beyond the impact are
// dropped entirely — the airbag must already be triggered by then, and the
// paper removes exactly this data from training.
#pragma once

#include <vector>

#include "core/preprocess.hpp"
#include "dsp/segmentation.hpp"
#include "eval/eval.hpp"
#include "nn/trainer.hpp"

namespace fallsense::core {

struct windowing_config {
    dsp::segmentation_config segmentation{};  ///< window length + overlap
    double truncation_ms = 150.0;             ///< withheld pre-impact slice
    /// A segment is labeled "falling" when at least this fraction of the
    /// window lies inside the usable falling interval (and never less than
    /// `min_overlap_ms`).  Fraction-based labeling keeps the positive-class
    /// definition consistent across window sizes.
    double min_overlap_fraction = 0.35;
    double min_overlap_ms = 50.0;
    preprocess_config preprocess{};
};

/// One extracted segment: features plus the identifiers used for
/// event-level evaluation.
struct window_example {
    std::vector<float> features;  ///< row-major [window_samples x 9]
    float label = 0.0f;           ///< 1 = falling segment
    int subject_id = 0;
    int task_id = 0;
    int trial_index = 0;
    bool trial_is_fall = false;
};

/// Extract segments from one (aligned) trial.
std::vector<window_example> extract_windows(const data::trial& t,
                                            const windowing_config& config);

/// Extract from many trials, optionally restricted to given subject ids.
std::vector<window_example> extract_windows(const std::vector<data::trial>& trials,
                                            const windowing_config& config,
                                            const std::vector<int>* subject_filter = nullptr);

/// Pack examples into the nn training format [N, window, 9] (+ labels).
nn::labeled_data to_labeled_data(const std::vector<window_example>& examples,
                                 std::size_t window_samples);

/// Pair each example with a probability for event-level analysis.
std::vector<eval::segment_record> to_segment_records(
    const std::vector<window_example>& examples, std::span<const float> probabilities);

}  // namespace fallsense::core
