#include "core/threshold_detector.hpp"

#include <cmath>

#include "dsp/units.hpp"
#include "util/check.hpp"

namespace fallsense::core {

threshold_detector::threshold_detector(const threshold_config& config) : config_(config) {
    FS_ARG_CHECK(config_.sample_rate_hz > 0.0, "sample rate must be positive");
    FS_ARG_CHECK(config_.freefall_threshold_g > 0.0 && config_.freefall_threshold_g < 1.0,
                 "free-fall threshold must be inside (0, 1) g");
    FS_ARG_CHECK(config_.sustain_ms >= 0.0, "sustain time must be non-negative");
    FS_ARG_CHECK(config_.velocity_threshold_ms < 0.0,
                 "velocity threshold must be downward (negative)");
    FS_ARG_CHECK(config_.velocity_leak_per_tick > 0.0 && config_.velocity_leak_per_tick <= 1.0,
                 "velocity leak must be in (0, 1]");
}

std::optional<detection> threshold_detector::push(const data::raw_sample& sample) {
    const double dt = 1.0 / config_.sample_rate_hz;
    const double mag_g = std::sqrt(static_cast<double>(sample.accel[0]) * sample.accel[0] +
                                   sample.accel[1] * sample.accel[1] +
                                   sample.accel[2] * sample.accel[2]);

    // Leaky integration of the acceleration deficit: in free fall the body
    // gains downward speed at (1 - |a|) g.
    velocity_ms_ = velocity_ms_ * config_.velocity_leak_per_tick -
                   (1.0 - mag_g) * dsp::k_standard_gravity_ms2 * dt;

    if (mag_g < config_.freefall_threshold_g) {
        ++freefall_run_;
    } else {
        freefall_run_ = 0;
    }

    const std::size_t current = tick_++;
    if (current < refractory_until_) return std::nullopt;

    const auto sustain_ticks = static_cast<std::size_t>(
        std::lround(config_.sustain_ms * config_.sample_rate_hz / 1000.0));
    const bool freefall_ok = freefall_run_ >= std::max<std::size_t>(sustain_ticks, 1);
    const bool velocity_ok = velocity_ms_ <= config_.velocity_threshold_ms;
    if (freefall_ok && velocity_ok) {
        refractory_until_ = current + static_cast<std::size_t>(std::lround(
                                          config_.refractory_ms * config_.sample_rate_hz /
                                          1000.0));
        // Confidence proxy: how far past the velocity threshold we are.
        const float confidence = static_cast<float>(
            std::min(1.0, velocity_ms_ / (2.0 * config_.velocity_threshold_ms) + 0.5));
        return detection{current, confidence};
    }
    return std::nullopt;
}

void threshold_detector::reset() {
    tick_ = 0;
    freefall_run_ = 0;
    velocity_ms_ = 0.0;
    refractory_until_ = 0;
}

threshold_event_counts evaluate_threshold_baseline(const std::vector<data::trial>& trials,
                                                   const threshold_config& config) {
    threshold_event_counts counts;
    double lead_sum = 0.0;
    for (const data::trial& t : trials) {
        t.validate();
        threshold_config cfg = config;
        cfg.sample_rate_hz = t.sample_rate_hz;
        threshold_detector det(cfg);
        bool fired_in_window = false;
        bool fired_at_all = false;
        std::size_t fire_tick = 0;
        const std::size_t limit =
            t.fall ? t.fall->impact_index + 1 : t.sample_count();
        for (std::size_t i = 0; i < limit; ++i) {
            if (const auto d = det.push(t.samples[i])) {
                fired_at_all = true;
                if (t.fall && d->sample_index >= t.fall->onset_index &&
                    d->sample_index <= t.fall->impact_index && !fired_in_window) {
                    fired_in_window = true;
                    fire_tick = d->sample_index;
                }
            }
        }
        if (t.fall) {
            ++counts.falls_total;
            if (fired_in_window) {
                ++counts.falls_detected;
                lead_sum += static_cast<double>(t.fall->impact_index - fire_tick) * 1000.0 /
                            t.sample_rate_hz;
            }
        } else {
            ++counts.adl_total;
            if (fired_at_all) ++counts.adl_false_alarms;
        }
    }
    if (counts.falls_detected > 0) {
        counts.mean_lead_time_ms = lead_sum / static_cast<double>(counts.falls_detected);
    }
    return counts;
}

}  // namespace fallsense::core
