#include "core/preprocess.hpp"

#include "dsp/biquad.hpp"
#include "util/check.hpp"

namespace fallsense::core {

std::vector<float> preprocess_trial(const data::trial& t, const preprocess_config& config) {
    t.validate();
    FS_ARG_CHECK(t.accel_units == data::accel_unit::g &&
                     t.gyro_units == data::gyro_unit::rad_per_s,
                 "trial must be aligned to g / rad/s before preprocessing");
    const std::size_t n = t.samples.size();

    // Filter the six raw channels with independent streaming filters, as the
    // firmware does on each 10 ms tick.
    std::vector<float> raw(n * 6);
    for (std::size_t i = 0; i < n; ++i) {
        const data::raw_sample& s = t.samples[i];
        float* row = raw.data() + i * 6;
        row[0] = s.accel[0];
        row[1] = s.accel[1];
        row[2] = s.accel[2];
        row[3] = s.gyro[0];
        row[4] = s.gyro[1];
        row[5] = s.gyro[2];
    }
    dsp::filter_channels_inplace(raw, 6, config.filter_order, config.cutoff_hz,
                                 t.sample_rate_hz);

    // Fuse Euler angles from the filtered stream.
    dsp::fusion_config fusion_cfg = config.fusion;
    fusion_cfg.sample_rate_hz = t.sample_rate_hz;
    dsp::complementary_filter fusion(fusion_cfg);

    std::vector<float> out(n * k_feature_channels);
    for (std::size_t i = 0; i < n; ++i) {
        const float* row = raw.data() + i * 6;
        const dsp::euler_angles angles =
            fusion.update({row[0], row[1], row[2]}, {row[3], row[4], row[5]});
        float* dst = out.data() + i * k_feature_channels;
        dst[0] = row[0];
        dst[1] = row[1];
        dst[2] = row[2];
        dst[3] = row[3];
        dst[4] = row[4];
        dst[5] = row[5];
        dst[6] = static_cast<float>(angles.pitch);
        dst[7] = static_cast<float>(angles.roll);
        dst[8] = static_cast<float>(angles.yaw);
    }
    return out;
}

}  // namespace fallsense::core
