// Experiment harness shared by the benchmark binaries: dataset generation
// at a run scale, subject-based cross-validation, per-fold training and
// evaluation — the full protocol of Sections III-C and IV.
#pragma once

#include <cstdint>
#include <vector>

#include "augment/trial_augment.hpp"
#include "core/models.hpp"
#include "core/windowing.hpp"
#include "data/generator.hpp"
#include "eval/eval.hpp"
#include "nn/trainer.hpp"
#include "util/env.hpp"

namespace fallsense::core {

/// Everything that scales with FALLSENSE_SCALE (DESIGN.md §5).
struct experiment_scale {
    int kfall_subjects = 5;
    int protechto_subjects = 5;
    std::size_t folds = 2;
    std::size_t folds_to_run = 1;  ///< benches may evaluate a prefix
    std::size_t validation_subjects = 2;
    std::size_t max_epochs = 12;
    std::size_t early_stop_patience = 4;
    std::size_t batch_size = 64;
    double learning_rate = 1e-3;
    int augmentation_copies = 2;
    data::motion_tuning tuning;
};

/// Scale presets: tiny (CI), quick (default), full (paper scale: 61
/// subjects, 5 folds, 200 epochs / patience 20).
experiment_scale scale_preset(util::run_scale scale);

/// Generate both datasets, align them (rotation + unit standardization),
/// and merge — the Section IV-A procedure.
data::dataset make_merged_dataset(const experiment_scale& scale, std::uint64_t seed);

struct fold_result {
    eval::classification_report report;                ///< segment level
    std::vector<eval::segment_record> test_records;    ///< for event analysis
    nn::train_history history;
};

struct train_options {
    bool augment = true;
    bool class_weights = true;
    bool output_bias_init = true;
    /// Metrics prefix handed to nn::fit (see train_config::metrics_prefix);
    /// run_cross_validation overrides it per fold.
    std::string metrics_prefix = "train";
};

/// Train `kind` on one fold and score its test subjects.
fold_result run_fold(model_kind kind, const data::dataset& merged,
                     const eval::fold_split& split, const windowing_config& windows,
                     const experiment_scale& scale, std::uint64_t seed,
                     const train_options& options = {});

struct cross_validation_result {
    eval::classification_report pooled;              ///< all folds' segments
    std::vector<eval::segment_record> all_records;
    std::vector<fold_result> folds;
};

/// Run `scale.folds_to_run` folds and pool the results.
cross_validation_result run_cross_validation(model_kind kind, const data::dataset& merged,
                                             const windowing_config& windows,
                                             const experiment_scale& scale,
                                             std::uint64_t seed,
                                             const train_options& options = {});

/// The paper's standard windowing for a given window length in ms
/// (50 % overlap, 150 ms truncation, 5 Hz Butterworth).
windowing_config standard_windowing(double window_ms, double overlap = 0.5,
                                    double sample_rate_hz = 100.0);

}  // namespace fallsense::core
