#include "core/airbag.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::core {

airbag_controller::airbag_controller(double inflation_ms, double sample_rate_hz)
    : inflation_ms_(inflation_ms), sample_rate_hz_(sample_rate_hz) {
    FS_ARG_CHECK(inflation_ms_ > 0.0, "inflation time must be positive");
    FS_ARG_CHECK(sample_rate_hz_ > 0.0, "sample rate must be positive");
}

void airbag_controller::trigger(std::size_t sample_index) {
    if (state_ != airbag_state::idle) return;
    state_ = airbag_state::inflating;
    trigger_index_ = sample_index;
}

std::optional<std::size_t> airbag_controller::inflated_index() const {
    if (!trigger_index_) return std::nullopt;
    const auto inflation_samples = static_cast<std::size_t>(
        std::lround(inflation_ms_ * sample_rate_hz_ / 1000.0));
    return *trigger_index_ + inflation_samples;
}

void airbag_controller::tick(std::size_t sample_index) {
    if (state_ == airbag_state::inflating && sample_index >= *inflated_index()) {
        state_ = airbag_state::inflated;
    }
}

void airbag_controller::reset() {
    state_ = airbag_state::idle;
    trigger_index_.reset();
}

protection_outcome evaluate_protection(const data::trial& fall_trial,
                                       const detector_config& config,
                                       const segment_scorer& scorer, double inflation_ms) {
    FS_ARG_CHECK(fall_trial.is_fall_trial(), "evaluate_protection needs a fall trial");
    fall_trial.validate();

    streaming_detector detector(config, scorer);
    airbag_controller airbag(inflation_ms, config.sample_rate_hz);
    const std::size_t onset = fall_trial.fall->onset_index;
    const std::size_t impact = fall_trial.fall->impact_index;

    protection_outcome outcome;
    for (std::size_t i = 0; i < fall_trial.samples.size() && i <= impact; ++i) {
        const std::optional<detection> d = detector.push(fall_trial.samples[i]);
        airbag.tick(i);
        if (d && !airbag.fired()) {
            if (d->sample_index < onset) {
                continue;  // pre-fall false alarm: re-arm (counted elsewhere)
            }
            airbag.trigger(d->sample_index);
            outcome.detected = true;
            outcome.trigger_sample = d->sample_index;
        }
    }
    if (outcome.detected) {
        const double ms_per_sample = 1000.0 / config.sample_rate_hz;
        outcome.trigger_to_impact_ms =
            static_cast<double>(impact - outcome.trigger_sample) * ms_per_sample;
        outcome.margin_ms = outcome.trigger_to_impact_ms - inflation_ms;
        outcome.protected_in_time = outcome.margin_ms >= 0.0;
    }
    return outcome;
}

}  // namespace fallsense::core
