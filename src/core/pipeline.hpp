// Real-time pre-impact fall detection pipeline (Figure 2).
//
// `detector_state` is the per-stream half of the pipeline: every 10 ms tick
// it filters the raw sample (streaming Butterworth), updates the
// sensor-fusion attitude, appends the 9-feature row to a ring buffer, and
// reports when a full window is due for scoring; once a score is available
// it applies the decision threshold and debouncing.  Scoring itself is kept
// outside the state so a serving engine (src/serve) can host thousands of
// these states and score all due windows as one batch.
//
// `streaming_detector` binds one state to one `segment_scorer` callback —
// the single-stream firmware structure: filter, fuse, buffer, score every
// hop (window * (1 - overlap)).  A score above the decision threshold
// raises the trigger — the signal that would fire the airbag squib.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "core/preprocess.hpp"
#include "core/windowing.hpp"
#include "data/types.hpp"
#include "dsp/biquad.hpp"
#include "dsp/fusion.hpp"

namespace fallsense::core {

/// Scores one preprocessed segment (row-major [window x 9]) -> probability.
using segment_scorer = std::function<float(std::span<const float>)>;

struct detector_config {
    std::size_t window_samples = 40;
    double overlap_fraction = 0.5;
    double threshold = 0.5;
    /// Debouncing (extension beyond the paper): require this many
    /// CONSECUTIVE windows above threshold before raising the trigger.
    /// 1 reproduces the paper's single-window trigger; 2 suppresses
    /// one-off false alarms at the cost of one hop (~window/2) of latency.
    std::size_t consecutive_required = 1;
    preprocess_config preprocess{};
    double sample_rate_hz = 100.0;
};

/// One positive window during streaming.
struct detection {
    std::size_t sample_index = 0;  ///< tick at which the window was scored
    float probability = 0.0f;
};

/// Value-type image of a `detector_state` mid-stream: everything a restore
/// needs beyond the (re-derivable) config — tick position, debounce run,
/// filter delay lines, fused attitude, and the raw ring contents.  The
/// checkpoint codec in src/ckpt serializes exactly these fields
/// (docs/checkpoint.md); capture/restore are only meaningful between ticks.
struct detector_state_image {
    std::uint64_t tick = 0;
    std::uint64_t positive_run = 0;
    float last_score = 0.0f;  ///< NaN before the first scored window
    bool fusion_initialized = false;
    dsp::euler_angles attitude{};
    /// 6 channels x (order/2) sections x {s1, s2}, channel-major.
    std::vector<double> filter_state;
    /// Raw ring slots, [window x 9] in ring (not chronological) order.
    std::vector<float> ring;
};

/// Per-stream filter/fusion/window/debounce state with scoring factored
/// out.  The lifecycle per tick is
///
///     if (state.ingest(sample)) {
///         float p = score(state.assemble_window());
///         auto trigger = state.apply_score(p);
///     }
///
/// and a caller may interleave the three steps across many states (ingest
/// them all, score all due windows as one batch, then apply the scores in
/// order) — exactly what serve::session_engine does.  `reset()` returns
/// the state to the freshly constructed condition, so evicted serving
/// slots can be reused without reallocating.
class detector_state {
public:
    explicit detector_state(const detector_config& config);

    /// Advance one tick: filter, fuse, append the feature row.  Returns
    /// true when a full window is due for scoring at this tick.
    bool ingest(const data::raw_sample& sample);

    /// Chronological [window x 9] view of the window due at this tick.
    /// Valid after `ingest` returned true, until the next `ingest` call.
    std::span<const float> assemble_window();

    /// Record the score of the window due at this tick and apply the
    /// threshold + consecutive-window debouncing.  Returns the detection
    /// when the trigger fires.
    std::optional<detection> apply_score(float score);

    /// Score recorded at the last scoring tick (NaN before the first one).
    float last_score() const { return last_score_; }
    std::size_t samples_seen() const { return tick_; }
    const detector_config& config() const { return config_; }
    void reset();

    /// Capture the full streaming state into `out` (reusing its buffers).
    void capture(detector_state_image& out) const;
    /// Install a previously captured image.  The image must come from a
    /// state with the same config (sizes are validated); afterwards this
    /// state continues the stream bit-identically to the captured one.
    void restore(const detector_state_image& image);

private:
    detector_config config_;
    std::vector<dsp::butterworth_lowpass> filters_;  ///< 6 raw channels
    dsp::complementary_filter fusion_;
    std::vector<float> ring_;            ///< [window x 9] circular feature buffer
    std::vector<float> window_scratch_;  ///< chronological window handed to the scorer
    std::size_t tick_ = 0;
    std::size_t hop_ = 1;
    float last_score_ = 0.0f;
    std::size_t positive_run_ = 0;  ///< consecutive above-threshold windows
};

class streaming_detector {
public:
    streaming_detector(const detector_config& config, segment_scorer scorer);

    /// Process one tick; returns a detection when a window was scored at
    /// this tick and crossed the threshold.
    std::optional<detection> push(const data::raw_sample& sample);

    /// Score emitted at the last scoring tick (NaN before the first one).
    float last_score() const { return state_.last_score(); }
    std::size_t samples_seen() const { return state_.samples_seen(); }
    void reset() { state_.reset(); }

private:
    detector_state state_;
    segment_scorer scorer_;
};

}  // namespace fallsense::core
