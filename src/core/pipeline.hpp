// Real-time pre-impact fall detection pipeline (Figure 2).
//
// `streaming_detector` mirrors the firmware structure: every 10 ms tick it
// filters the raw sample (streaming Butterworth), updates the sensor-fusion
// attitude, appends the 9-feature row to a ring buffer, and every hop
// (window * (1 - overlap)) scores the current window with the deployed
// classifier.  A score above the decision threshold raises the trigger —
// the signal that would fire the airbag squib.
#pragma once

#include <cstddef>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "core/preprocess.hpp"
#include "core/windowing.hpp"
#include "data/types.hpp"
#include "dsp/biquad.hpp"
#include "dsp/fusion.hpp"

namespace fallsense::core {

/// Scores one preprocessed segment (row-major [window x 9]) -> probability.
using segment_scorer = std::function<float(std::span<const float>)>;

struct detector_config {
    std::size_t window_samples = 40;
    double overlap_fraction = 0.5;
    double threshold = 0.5;
    /// Debouncing (extension beyond the paper): require this many
    /// CONSECUTIVE windows above threshold before raising the trigger.
    /// 1 reproduces the paper's single-window trigger; 2 suppresses
    /// one-off false alarms at the cost of one hop (~window/2) of latency.
    std::size_t consecutive_required = 1;
    preprocess_config preprocess{};
    double sample_rate_hz = 100.0;
};

/// One positive window during streaming.
struct detection {
    std::size_t sample_index = 0;  ///< tick at which the window was scored
    float probability = 0.0f;
};

class streaming_detector {
public:
    streaming_detector(const detector_config& config, segment_scorer scorer);

    /// Process one tick; returns a detection when a window was scored at
    /// this tick and crossed the threshold.
    std::optional<detection> push(const data::raw_sample& sample);

    /// Score emitted at the last scoring tick (NaN before the first one).
    float last_score() const { return last_score_; }
    std::size_t samples_seen() const { return tick_; }
    void reset();

private:
    detector_config config_;
    segment_scorer scorer_;
    std::vector<dsp::butterworth_lowpass> filters_;  ///< 6 raw channels
    dsp::complementary_filter fusion_;
    std::vector<float> ring_;            ///< [window x 9] circular feature buffer
    std::vector<float> window_scratch_;  ///< chronological window handed to the scorer
    std::size_t tick_ = 0;
    std::size_t hop_ = 1;
    float last_score_ = 0.0f;
    std::size_t positive_run_ = 0;  ///< consecutive above-threshold windows
};

}  // namespace fallsense::core
