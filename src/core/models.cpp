#include "core/models.hpp"

#include "core/preprocess.hpp"
#include "nn/activations.hpp"
#include "nn/conv1d.hpp"
#include "nn/conv_lstm2d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "nn/misc_layers.hpp"
#include "nn/pooling.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"

namespace fallsense::core {

namespace {

nn::tensor identity_adapt(const nn::tensor& features) { return features; }

/// [N, window, 9] -> [N, window, 3, 3, 1]: rows = modality, cols = axis.
nn::tensor grid_adapt(const nn::tensor& features) {
    FS_ARG_CHECK(features.rank() == 3 && features.dim(2) == k_feature_channels,
                 "grid adapter expects [N, window, 9]");
    return features.reshaped({features.dim(0), features.dim(1), 3, 3, 1});
}

std::unique_ptr<nn::sequential> make_cnn_branch(std::size_t filters, std::size_t kernel,
                                                std::size_t pool, util::rng& gen,
                                                const std::string& name) {
    auto branch = std::make_unique<nn::sequential>();
    branch->emplace<nn::conv1d>(3, filters, kernel, gen, name + ".conv");
    branch->emplace<nn::relu>();
    branch->emplace<nn::maxpool1d>(pool);
    branch->emplace<nn::flatten>();
    return branch;
}

std::unique_ptr<nn::sequential> make_cnn_trunk(std::size_t concat_width, util::rng& gen) {
    auto trunk = std::make_unique<nn::sequential>();
    trunk->emplace<nn::dense>(concat_width, 64, gen, /*relu_fan=*/true, "trunk.dense0");
    trunk->emplace<nn::relu>();
    trunk->emplace<nn::dense>(64, 32, gen, /*relu_fan=*/true, "trunk.dense1");
    trunk->emplace<nn::relu>();
    trunk->emplace<nn::dense>(32, 1, gen, /*relu_fan=*/false, "trunk.logit");
    return trunk;
}

}  // namespace

const char* model_kind_name(model_kind kind) {
    switch (kind) {
        case model_kind::mlp: return "MLP";
        case model_kind::lstm: return "LSTM";
        case model_kind::conv_lstm2d: return "ConvLSTM2D";
        case model_kind::cnn: return "CNN (Proposed)";
    }
    return "?";
}

std::unique_ptr<nn::multi_branch_network> build_fallsense_cnn(std::size_t window_samples,
                                                              std::uint64_t seed,
                                                              const model_hyperparams& hp) {
    FS_ARG_CHECK(window_samples >= hp.cnn_kernel, "window shorter than conv kernel");
    util::rng gen(util::derive_seed(seed, "cnn"));
    std::vector<std::unique_ptr<nn::sequential>> branches;
    const char* names[3] = {"accel", "gyro", "euler"};
    for (const char* name : names) {
        branches.push_back(make_cnn_branch(hp.cnn_filters, hp.cnn_kernel, hp.cnn_pool, gen,
                                           name));
    }
    const std::size_t conv_time = window_samples - hp.cnn_kernel + 1;
    const std::size_t concat_width = 3 * (conv_time / hp.cnn_pool) * hp.cnn_filters;
    return std::make_unique<nn::multi_branch_network>(
        std::vector<std::size_t>{3, 3, 3}, std::move(branches),
        make_cnn_trunk(concat_width, gen));
}

built_model build_model(model_kind kind, std::size_t window_samples, std::uint64_t seed,
                        const model_hyperparams& hp) {
    FS_ARG_CHECK(window_samples > 0, "empty window");
    built_model out;
    out.adapt_features = identity_adapt;

    switch (kind) {
        case model_kind::cnn:
            out.network = build_fallsense_cnn(window_samples, seed, hp);
            break;
        case model_kind::mlp: {
            util::rng gen(util::derive_seed(seed, "mlp"));
            auto net = std::make_unique<nn::sequential>();
            net->emplace<nn::flatten>();
            net->emplace<nn::dense>(window_samples * k_feature_channels, hp.mlp_hidden1, gen,
                                    true, "mlp.dense0");
            net->emplace<nn::relu>();
            net->emplace<nn::dense>(hp.mlp_hidden1, hp.mlp_hidden2, gen, true, "mlp.dense1");
            net->emplace<nn::relu>();
            net->emplace<nn::dense>(hp.mlp_hidden2, 1, gen, false, "mlp.logit");
            out.network = std::move(net);
            break;
        }
        case model_kind::lstm: {
            util::rng gen(util::derive_seed(seed, "lstm"));
            auto net = std::make_unique<nn::sequential>();
            net->emplace<nn::lstm>(k_feature_channels, hp.lstm_hidden, gen, "lstm.cell");
            net->emplace<nn::dense>(hp.lstm_hidden, hp.dense_head, gen, true, "lstm.dense0");
            net->emplace<nn::relu>();
            net->emplace<nn::dense>(hp.dense_head, 1, gen, false, "lstm.logit");
            out.network = std::move(net);
            break;
        }
        case model_kind::conv_lstm2d: {
            util::rng gen(util::derive_seed(seed, "conv_lstm2d"));
            auto net = std::make_unique<nn::sequential>();
            net->emplace<nn::conv_lstm2d>(1, hp.conv_lstm_filters, hp.conv_lstm_kernel, gen,
                                          "clstm.cell");
            net->emplace<nn::flatten>();
            net->emplace<nn::dense>(3 * 3 * hp.conv_lstm_filters, hp.dense_head, gen, true,
                                    "clstm.dense0");
            net->emplace<nn::relu>();
            net->emplace<nn::dense>(hp.dense_head, 1, gen, false, "clstm.logit");
            out.network = std::move(net);
            out.adapt_features = grid_adapt;
            break;
        }
    }
    return out;
}

}  // namespace fallsense::core
