#include "core/pipeline.hpp"

#include <chrono>
#include <cmath>
#include <limits>

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace fallsense::core {

detector_state::detector_state(const detector_config& config)
    : config_(config), fusion_([&] {
          dsp::fusion_config fc = config.preprocess.fusion;
          fc.sample_rate_hz = config.sample_rate_hz;
          return fc;
      }()) {
    FS_ARG_CHECK(config_.window_samples > 0, "detector window must be positive");
    FS_ARG_CHECK(config_.overlap_fraction >= 0.0 && config_.overlap_fraction < 1.0,
                 "detector overlap must be in [0, 1)");
    FS_ARG_CHECK(config_.threshold >= 0.0 && config_.threshold <= 1.0,
                 "detector threshold must be in [0, 1]");
    for (std::size_t c = 0; c < 6; ++c) {
        filters_.emplace_back(config_.preprocess.filter_order, config_.preprocess.cutoff_hz,
                              config_.sample_rate_hz);
    }
    ring_.assign(config_.window_samples * k_feature_channels, 0.0f);
    window_scratch_.assign(config_.window_samples * k_feature_channels, 0.0f);
    const double hop =
        static_cast<double>(config_.window_samples) * (1.0 - config_.overlap_fraction);
    hop_ = std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(hop)));
    last_score_ = std::numeric_limits<float>::quiet_NaN();
}

bool detector_state::ingest(const data::raw_sample& sample) {
    // Prime the filters on the very first tick: the wearable streams
    // continuously, so a cold filter transient is an artifact of starting
    // mid-signal, not something the deployed firmware sees.
    if (tick_ == 0) {
        for (std::size_t c = 0; c < 3; ++c) filters_[c].prime(sample.accel[c]);
        for (std::size_t c = 0; c < 3; ++c) filters_[3 + c].prime(sample.gyro[c]);
    }
    // Streaming filter + fusion (the firmware's 10 ms tick).
    float filtered[6];
    for (std::size_t c = 0; c < 3; ++c) filtered[c] = filters_[c].process(sample.accel[c]);
    for (std::size_t c = 0; c < 3; ++c) {
        filtered[3 + c] = filters_[3 + c].process(sample.gyro[c]);
    }
    const dsp::euler_angles angles = fusion_.update(
        {filtered[0], filtered[1], filtered[2]}, {filtered[3], filtered[4], filtered[5]});

    const std::size_t slot = tick_ % config_.window_samples;
    float* row = ring_.data() + slot * k_feature_channels;
    row[0] = filtered[0];
    row[1] = filtered[1];
    row[2] = filtered[2];
    row[3] = filtered[3];
    row[4] = filtered[4];
    row[5] = filtered[5];
    row[6] = static_cast<float>(angles.pitch);
    row[7] = static_cast<float>(angles.roll);
    row[8] = static_cast<float>(angles.yaw);
    ++tick_;
    obs::add_counter("stream/samples");

    // A window is due once the buffer is full, every hop ticks thereafter.
    return tick_ >= config_.window_samples &&
           (tick_ - config_.window_samples) % hop_ == 0;
}

std::span<const float> detector_state::assemble_window() {
    // Unroll the ring into chronological order.  The scratch buffer is a
    // member so the per-tick scoring path allocates nothing — this runs
    // once per hop for every streamed sample in replay benches.
    for (std::size_t i = 0; i < config_.window_samples; ++i) {
        const std::size_t src = (tick_ + i) % config_.window_samples;
        std::copy(ring_.begin() + static_cast<std::ptrdiff_t>(src * k_feature_channels),
                  ring_.begin() + static_cast<std::ptrdiff_t>((src + 1) * k_feature_channels),
                  window_scratch_.begin() + static_cast<std::ptrdiff_t>(i * k_feature_channels));
    }
    return window_scratch_;
}

std::optional<detection> detector_state::apply_score(float score) {
    last_score_ = score;
    if (score >= config_.threshold) {
        ++positive_run_;
        if (positive_run_ >= std::max<std::size_t>(config_.consecutive_required, 1)) {
            obs::add_counter("stream/triggers");
            return detection{tick_ - 1, score};
        }
    } else {
        positive_run_ = 0;
    }
    return std::nullopt;
}

void detector_state::capture(detector_state_image& out) const {
    out.tick = tick_;
    out.positive_run = positive_run_;
    out.last_score = last_score_;
    out.fusion_initialized = fusion_.initialized();
    out.attitude = fusion_.current();
    out.filter_state.clear();
    out.filter_state.reserve(filters_.size() * filters_.front().sections().size() * 2);
    for (const dsp::butterworth_lowpass& f : filters_) {
        for (const dsp::biquad& s : f.sections()) {
            out.filter_state.push_back(s.state_s1());
            out.filter_state.push_back(s.state_s2());
        }
    }
    out.ring.assign(ring_.begin(), ring_.end());
}

void detector_state::restore(const detector_state_image& image) {
    const std::size_t sections = filters_.front().sections().size();
    FS_ARG_CHECK(image.filter_state.size() == filters_.size() * sections * 2,
                 "detector image filter-state size does not match the config");
    FS_ARG_CHECK(image.ring.size() == ring_.size(),
                 "detector image ring size does not match the config");
    tick_ = image.tick;
    positive_run_ = image.positive_run;
    last_score_ = image.last_score;
    fusion_.restore(image.attitude, image.fusion_initialized);
    std::size_t cursor = 0;
    for (dsp::butterworth_lowpass& f : filters_) {
        for (std::size_t s = 0; s < sections; ++s) {
            f.set_section_state(s, image.filter_state[cursor], image.filter_state[cursor + 1]);
            cursor += 2;
        }
    }
    std::copy(image.ring.begin(), image.ring.end(), ring_.begin());
}

void detector_state::reset() {
    for (auto& f : filters_) f.reset();
    fusion_.reset();
    std::fill(ring_.begin(), ring_.end(), 0.0f);
    tick_ = 0;
    positive_run_ = 0;
    last_score_ = std::numeric_limits<float>::quiet_NaN();
}

streaming_detector::streaming_detector(const detector_config& config, segment_scorer scorer)
    : state_(config), scorer_(std::move(scorer)) {
    FS_ARG_CHECK(scorer_ != nullptr, "detector needs a scorer");
}

std::optional<detection> streaming_detector::push(const data::raw_sample& sample) {
    if (!state_.ingest(sample)) return std::nullopt;
    const std::span<const float> window = state_.assemble_window();
    float score = 0.0f;
    if (obs::enabled()) {
        const auto score_start = std::chrono::steady_clock::now();
        score = scorer_(window);
        const std::chrono::duration<double, std::micro> elapsed =
            std::chrono::steady_clock::now() - score_start;
        obs::observe_latency_us("stream/score_us", elapsed.count());
        obs::add_counter("stream/windows_scored");
    } else {
        score = scorer_(window);
    }
    return state_.apply_score(score);
}

}  // namespace fallsense::core
