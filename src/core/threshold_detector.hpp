// Threshold-based pre-impact fall detection baseline.
//
// The paper's related work (Table I) includes threshold algorithms
// [de Sousa et al. 2021; Jung et al. 2020] that fire on simple kinematic
// conditions instead of a learned model: a sustained free-fall signature
// (acceleration magnitude well below 1 g) combined with a downward
// vertical-velocity estimate obtained by integrating the acceleration
// deficit.  They are cheap and fast but markedly less accurate — the
// trade-off the paper's CNN is designed to beat.  This implementation
// reproduces that baseline so the comparison can be run on the same data.
#pragma once

#include <cstddef>
#include <optional>

#include "core/pipeline.hpp"
#include "data/types.hpp"

namespace fallsense::core {

struct threshold_config {
    double sample_rate_hz = 100.0;
    /// Free-fall condition: |a| below this (g)...
    double freefall_threshold_g = 0.65;
    /// ...sustained for at least this long.
    double sustain_ms = 60.0;
    /// Vertical-velocity trigger (m/s, negative = downward).  The velocity
    /// estimate integrates (|a| - 1 g) over a sliding horizon, leaking to
    /// zero so standing still does not accumulate drift.
    double velocity_threshold_ms = -1.0;
    double velocity_leak_per_tick = 0.98;
    /// Refractory period after a trigger before the detector re-arms.
    double refractory_ms = 1000.0;
};

class threshold_detector {
public:
    explicit threshold_detector(const threshold_config& config = {});

    /// Process one raw sample (g / rad/s); returns a detection when the
    /// trigger condition is met at this tick.
    std::optional<detection> push(const data::raw_sample& sample);

    /// Current vertical-velocity estimate (m/s, negative downward).
    double velocity_estimate() const { return velocity_ms_; }
    std::size_t samples_seen() const { return tick_; }
    void reset();

private:
    threshold_config config_;
    std::size_t tick_ = 0;
    std::size_t freefall_run_ = 0;  ///< consecutive ticks below threshold
    double velocity_ms_ = 0.0;
    std::size_t refractory_until_ = 0;
};

/// Event-level evaluation of the threshold baseline over a set of trials:
/// fall detected = trigger inside [onset, impact]; ADL false alarm = any
/// trigger during a non-fall trial.  Mirrors eval::count_events semantics.
struct threshold_event_counts {
    std::size_t falls_detected = 0;
    std::size_t falls_total = 0;
    std::size_t adl_false_alarms = 0;
    std::size_t adl_total = 0;
    double mean_lead_time_ms = 0.0;  ///< trigger-to-impact over detected falls
};

threshold_event_counts evaluate_threshold_baseline(const std::vector<data::trial>& trials,
                                                   const threshold_config& config = {});

}  // namespace fallsense::core
