// Trial preprocessing (Section III-A + on-edge fusion of Section II-A):
// 4th-order Butterworth low-pass (5 Hz) on the six raw channels, then
// complementary-filter sensor fusion appending Euler pitch/roll/yaw —
// producing the 9-feature stream the models consume.
#pragma once

#include <vector>

#include "data/types.hpp"
#include "dsp/fusion.hpp"

namespace fallsense::core {

inline constexpr std::size_t k_feature_channels = 9;

struct preprocess_config {
    std::size_t filter_order = 4;
    double cutoff_hz = 5.0;
    dsp::fusion_config fusion;
};

/// Returns an interleaved row-major [samples x 9] buffer:
/// ax, ay, az (g), gx, gy, gz (rad/s), pitch, roll, yaw (rad).
/// The trial must already be aligned (g / rad/s units).
std::vector<float> preprocess_trial(const data::trial& t, const preprocess_config& config);

}  // namespace fallsense::core
