// Airbag actuation logic and pre-impact timing analysis.
//
// The Protechto jacket needs 150 ms from the trigger event to full
// extension (paper footnote 1).  `airbag_controller` is the small state
// machine the detector drives; `evaluate_protection` replays an annotated
// fall trial through a streaming detector and reports whether the airbag
// was fully inflated before ground contact and with how much margin.
#pragma once

#include <optional>

#include "core/pipeline.hpp"
#include "data/types.hpp"

namespace fallsense::core {

enum class airbag_state { idle, inflating, inflated };

class airbag_controller {
public:
    explicit airbag_controller(double inflation_ms = 150.0, double sample_rate_hz = 100.0);

    /// Called on the trigger signal (idempotent once fired).
    void trigger(std::size_t sample_index);
    /// Advance to a tick; updates inflating -> inflated.
    void tick(std::size_t sample_index);

    airbag_state state() const { return state_; }
    bool fired() const { return state_ != airbag_state::idle; }
    std::optional<std::size_t> trigger_index() const { return trigger_index_; }
    /// First tick at which the bag is fully extended (trigger + 150 ms).
    std::optional<std::size_t> inflated_index() const;
    void reset();

private:
    double inflation_ms_;
    double sample_rate_hz_;
    airbag_state state_ = airbag_state::idle;
    std::optional<std::size_t> trigger_index_;
};

struct protection_outcome {
    bool detected = false;        ///< trigger fired inside the falling phase
    bool protected_in_time = false;  ///< fully inflated at/before impact
    double trigger_to_impact_ms = 0.0;  ///< lead time (when detected)
    double margin_ms = 0.0;       ///< lead time minus inflation time
    std::size_t trigger_sample = 0;
};

/// Replay an annotated fall trial through the detector + airbag controller.
/// Triggers before the fall onset are counted as false alarms and ignored
/// for timing (the controller is re-armed), matching how the event-level
/// analysis treats pre-fall activity.
protection_outcome evaluate_protection(const data::trial& fall_trial,
                                       const detector_config& config,
                                       const segment_scorer& scorer,
                                       double inflation_ms = 150.0);

}  // namespace fallsense::core
