#include "core/windowing.hpp"

#include <algorithm>
#include <cmath>
#include <set>

#include "obs/metrics.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::core {

std::vector<window_example> extract_windows(const data::trial& t,
                                            const windowing_config& config) {
    config.segmentation.validate();
    const std::vector<float> stream = preprocess_trial(t, config.preprocess);
    const std::size_t n = t.samples.size();
    const std::size_t window = config.segmentation.window_samples;
    const auto to_samples = [&](double ms) {
        return static_cast<std::size_t>(std::lround(ms * t.sample_rate_hz / 1000.0));
    };
    const std::size_t truncation = to_samples(config.truncation_ms);
    FS_ARG_CHECK(config.min_overlap_fraction > 0.0 && config.min_overlap_fraction <= 1.0,
                 "min_overlap_fraction must be in (0, 1]");
    const std::size_t min_overlap = std::max<std::size_t>(
        {std::size_t{1}, to_samples(config.min_overlap_ms),
         static_cast<std::size_t>(std::lround(config.min_overlap_fraction *
                                              static_cast<double>(window)))});

    // Usable falling window [onset, usable_end): the last `truncation`
    // samples before impact are withheld.
    std::size_t usable_begin = 0, usable_end = 0, drop_from = n;
    if (t.fall) {
        usable_begin = t.fall->onset_index;
        usable_end = (t.fall->impact_index > truncation)
                         ? t.fall->impact_index - truncation
                         : t.fall->onset_index;
        // Segments reaching into the withheld slice or past impact carry
        // data the classifier will never see in time — drop them.
        drop_from = usable_end;
    }

    std::vector<window_example> out;
    for (const std::size_t start : dsp::segment_starts(n, config.segmentation)) {
        const std::size_t end = start + window;  // exclusive
        if (t.fall && end > drop_from) continue;
        window_example ex;
        ex.features.assign(stream.begin() + static_cast<std::ptrdiff_t>(start * k_feature_channels),
                           stream.begin() + static_cast<std::ptrdiff_t>(end * k_feature_channels));
        ex.subject_id = t.subject_id;
        ex.task_id = t.task_id;
        ex.trial_index = t.trial_index;
        ex.trial_is_fall = t.is_fall_trial();
        if (t.fall && usable_end > usable_begin) {
            const std::size_t ov_begin = std::max(start, usable_begin);
            const std::size_t ov_end = std::min(end, usable_end);
            const std::size_t overlap = (ov_end > ov_begin) ? ov_end - ov_begin : 0;
            ex.label = (overlap >= min_overlap) ? 1.0f : 0.0f;
        }
        out.push_back(std::move(ex));
    }
    return out;
}

std::vector<window_example> extract_windows(const std::vector<data::trial>& trials,
                                            const windowing_config& config,
                                            const std::vector<int>* subject_filter) {
    std::set<int> allowed;
    if (subject_filter) allowed.insert(subject_filter->begin(), subject_filter->end());
    std::vector<const data::trial*> selected;
    selected.reserve(trials.size());
    for (const data::trial& t : trials) {
        if (subject_filter && !allowed.contains(t.subject_id)) continue;
        selected.push_back(&t);
    }

    // Preprocessing + segmentation dominate the harness outside training, so
    // trials extract in parallel into per-trial slots; concatenating in
    // trial order reproduces the sequential output exactly.
    std::vector<std::vector<window_example>> per_trial(selected.size());
    util::parallel_for(0, selected.size(), 1, [&](std::size_t i) {
        per_trial[i] = extract_windows(*selected[i], config);
    });

    std::vector<window_example> out;
    std::size_t total = 0;
    for (const std::vector<window_example>& w : per_trial) total += w.size();
    out.reserve(total);
    for (std::vector<window_example>& w : per_trial) {
        out.insert(out.end(), std::make_move_iterator(w.begin()),
                   std::make_move_iterator(w.end()));
    }
    if (obs::enabled()) {
        std::size_t positives = 0;
        for (const window_example& w : out) positives += (w.label > 0.5f) ? 1 : 0;
        obs::add_counter("core/windows_extracted", out.size());
        obs::add_counter("core/windows_positive", positives);
    }
    return out;
}

nn::labeled_data to_labeled_data(const std::vector<window_example>& examples,
                                 std::size_t window_samples) {
    nn::labeled_data data;
    data.features = nn::tensor({examples.size(), window_samples, k_feature_channels});
    data.labels.reserve(examples.size());
    const std::size_t row_size = window_samples * k_feature_channels;
    for (std::size_t i = 0; i < examples.size(); ++i) {
        FS_ARG_CHECK(examples[i].features.size() == row_size,
                     "window example size mismatch");
        data.labels.push_back(examples[i].label);
    }
    util::parallel_for(0, examples.size(), 256, [&](std::size_t i) {
        std::copy(examples[i].features.begin(), examples[i].features.end(),
                  data.features.data() + i * row_size);
    });
    return data;
}

std::vector<eval::segment_record> to_segment_records(
    const std::vector<window_example>& examples, std::span<const float> probabilities) {
    FS_ARG_CHECK(examples.size() == probabilities.size(),
                 "example/probability count mismatch");
    std::vector<eval::segment_record> records;
    records.reserve(examples.size());
    for (std::size_t i = 0; i < examples.size(); ++i) {
        eval::segment_record r;
        r.subject_id = examples[i].subject_id;
        r.task_id = examples[i].task_id;
        r.trial_index = examples[i].trial_index;
        r.trial_is_fall = examples[i].trial_is_fall;
        r.label = examples[i].label;
        r.probability = probabilities[i];
        records.push_back(r);
    }
    return records;
}

}  // namespace fallsense::core
