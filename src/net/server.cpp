#include "net/server.hpp"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "util/args.hpp"

namespace fallsense::net {

namespace {

constexpr std::size_t k_read_chunk = 64 * 1024;

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

void set_nonblocking(int fd) {
    const int flags = ::fcntl(fd, F_GETFL, 0);
    if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
        throw_errno("fcntl(O_NONBLOCK)");
    }
}

}  // namespace

std::optional<endpoint> parse_endpoint(const std::string& text) {
    if (text.empty()) return std::nullopt;
    endpoint ep;
    std::string port_text = text;
    const std::size_t colon = text.rfind(':');
    if (colon != std::string::npos) {
        // Exactly one separator: a second colon means the host part is
        // not a v4 literal or hostname this parser speaks.
        if (text.find(':') != colon) return std::nullopt;
        if (colon > 0) ep.host = text.substr(0, colon);
        port_text = text.substr(colon + 1);
    }
    const auto port = util::parse_long(port_text);
    if (!port || *port < 0 || *port > 65535) return std::nullopt;
    ep.port = static_cast<std::uint16_t>(*port);
    return ep;
}

ingest_server::ingest_server(const endpoint& where, serve::fleet_router& router,
                             session_gateway::tick_handler on_tick)
    : gateway_(router, std::move(on_tick)), readbuf_(k_read_chunk) {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    if (listen_fd_ < 0) throw_errno("socket");
    const int one = 1;
    ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof one);

    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(where.port);
    if (::inet_pton(AF_INET, where.host.c_str(), &addr.sin_addr) != 1) {
        ::close(listen_fd_);
        listen_fd_ = -1;
        throw std::runtime_error("ingest_server: not an IPv4 address: " + where.host);
    }
    if (::bind(listen_fd_, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) < 0 ||
        ::listen(listen_fd_, 16) < 0) {
        const int saved = errno;
        ::close(listen_fd_);
        listen_fd_ = -1;
        errno = saved;
        throw_errno("ingest_server bind/listen " + where.host);
    }
    socklen_t len = sizeof addr;
    if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) < 0) {
        throw_errno("getsockname");
    }
    port_ = ntohs(addr.sin_port);
    set_nonblocking(listen_fd_);
}

ingest_server::~ingest_server() {
    for (const connection& c : conns_) {
        if (c.fd >= 0) ::close(c.fd);
    }
    if (listen_fd_ >= 0) ::close(listen_fd_);
}

void ingest_server::accept_ready() {
    for (;;) {
        const int fd = ::accept(listen_fd_, nullptr, nullptr);
        if (fd < 0) {
            if (errno == EAGAIN || errno == EWOULDBLOCK) return;
            if (errno == EINTR) continue;
            return;  // transient accept failures are not fatal to the loop
        }
        set_nonblocking(fd);
        const int one = 1;
        ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
        connection c;
        c.fd = fd;
        c.id = gateway_.open_connection();
        conns_.push_back(std::move(c));
    }
}

bool ingest_server::service_read(connection& c) {
    for (;;) {
        const ssize_t n = ::recv(c.fd, readbuf_.data(), readbuf_.size(), 0);
        if (n > 0) {
            if (!gateway_.on_bytes(c.id, {readbuf_.data(), static_cast<std::size_t>(n)},
                                   c.outbuf)) {
                return false;  // framing error: flush the status frame, then drop
            }
            if (static_cast<std::size_t>(n) < readbuf_.size()) return true;
            continue;  // kernel buffer may hold more
        }
        if (n == 0) return false;  // peer closed
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;  // connection error
    }
}

bool ingest_server::flush_writes(connection& c) {
    while (c.out_off < c.outbuf.size()) {
        const ssize_t n = ::send(c.fd, c.outbuf.data() + c.out_off,
                                 c.outbuf.size() - c.out_off, MSG_NOSIGNAL);
        if (n > 0) {
            c.out_off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
        if (errno == EINTR) continue;
        return false;  // peer gone; pending replies are moot
    }
    c.outbuf.clear();
    c.out_off = 0;
    return true;
}

void ingest_server::drop_connection(std::size_t index) {
    connection& c = conns_[index];
    ::close(c.fd);
    gateway_.close_connection(c.id);
    conns_.erase(conns_.begin() + static_cast<std::ptrdiff_t>(index));
}

bool ingest_server::replies_pending() const {
    for (const connection& c : conns_) {
        if (c.out_off < c.outbuf.size()) return true;
    }
    return false;
}

bool ingest_server::pump(int timeout_ms) {
    std::vector<pollfd> fds;
    fds.reserve(conns_.size() + 1);
    fds.push_back({listen_fd_, POLLIN, 0});
    for (const connection& c : conns_) {
        short events = c.draining ? 0 : POLLIN;
        if (c.out_off < c.outbuf.size()) events |= POLLOUT;
        fds.push_back({c.fd, events, 0});
    }

    const int ready = ::poll(fds.data(), fds.size(), timeout_ms);
    if (ready < 0 && errno != EINTR) throw_errno("poll");

    if (ready > 0) {
        if (fds[0].revents & POLLIN) accept_ready();
        // Walk backwards so drop_connection's erase cannot shift an
        // index we have yet to visit.  fds[i + 1] belongs to conns_[i]
        // as polled; connections accepted above were not polled.
        const std::size_t polled = fds.size() - 1;
        for (std::size_t i = polled; i-- > 0;) {
            connection& c = conns_[i];
            const short re = fds[i + 1].revents;
            bool keep = true;
            if (re & (POLLERR | POLLNVAL)) keep = false;
            if (keep && (re & POLLIN)) keep = service_read(c);
            if (keep && (re & POLLHUP) && !(re & POLLIN)) keep = false;
            if (keep || !c.outbuf.empty()) {
                if (!flush_writes(c)) {
                    drop_connection(i);
                    continue;
                }
            }
            if (!keep) {
                if (c.out_off < c.outbuf.size()) {
                    c.draining = true;  // deliver the last status frames first
                } else {
                    drop_connection(i);
                }
            } else if (c.draining && c.outbuf.empty()) {
                drop_connection(i);
            }
        }
    }

    // Collection pass: one connection's bytes (or departure) can release
    // the gateway's tick barrier and generate replies — or surface a
    // framing error — on OTHER connections whose frames were buffered
    // behind a vote.  Sweep those out of the gateway before the
    // completion check; a drop here can itself release the barrier
    // again, hence the fixpoint.
    for (bool changed = true; changed;) {
        changed = false;
        for (std::size_t i = conns_.size(); i-- > 0;) {
            connection& c = conns_[i];
            if (gateway_.take_replies(c.id, c.outbuf)) changed = true;
            if (!gateway_.connection_alive(c.id) && !c.draining) {
                c.draining = true;
                changed = true;
            }
            if (!flush_writes(c)) {
                drop_connection(i);
                changed = true;
                continue;
            }
            if (c.draining && c.outbuf.empty()) {
                drop_connection(i);
                changed = true;
            }
        }
    }
    return !(gateway_.bye_received() && !replies_pending());
}

void ingest_server::run() {
    while (pump(1000)) {
    }
    if (!published_) {
        gateway_.publish_metrics();
        published_ = true;
    }
}

}  // namespace fallsense::net
