// Session gateway: the transport-agnostic half of the ingestion edge.
//
// A `session_gateway` sits between a byte transport (the poll-based
// socket server, or the in-memory pipe the tests use) and a
// serve::fleet_router.  It owns, per transport connection, an
// incremental `frame_decoder` plus the mapping from sender-chosen wire
// session ids to router-global session ids, and turns the connection's
// byte stream — however the transport chunked it — into the exact
// `feed` / `tick` call sequence the frames describe:
//
//   sample frame  → one router `feed` per carried sample, in frame
//                   order; a wire session id seen for the first time is
//                   admitted via `create_session` on the spot;
//   tick frame    → one router `tick()`; the result is handed to the
//                   optional tick handler;
//   close frame   → `evict_session` for the named wire session (a
//                   status frame with `unknown_session` answers a close
//                   for a session this connection never opened);
//   bye frame     → marks the run complete (`bye_received()`); the
//                   transport drains its reply buffers and shuts down.
//
// Backpressure surfaces at the wire: when the router refuses a sample —
// a saturated queue under drop_policy::reject_newest — the gateway
// answers with a `status_code::queue_full` frame naming the refused
// sample's (wire session, sequence), so the sender knows exactly which
// admitted-data guarantee it lost.  Under drop_oldest the engine admits
// every offer (evicting stale data instead), so no reject frames exist
// — the wire mirrors the engine's admission semantics rather than
// inventing its own.
//
// Determinism: everything the gateway does is a pure function of the
// per-connection byte stream content — never of how the transport
// chunked it into reads (the frame_decoder reassembles torn frames).
// With a single connection the whole networked run is therefore
// bit-identical to direct in-process `feed`/`tick` calls, the property
// tests/net/gateway_test.cpp pins across scripted chunkings and thread
// counts.  The gateway keeps its own plain `gateway_stats` counters and
// publishes them to the obs registry only on an explicit
// `publish_metrics()` call (the socket server does this once at
// shutdown), so a transport-double run leaves the metrics registry —
// and hence the run manifest — byte-identical to a direct-feed run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "net/wire.hpp"
#include "serve/fleet.hpp"

namespace fallsense::net {

/// Gateway lifetime counters (plain values; see publish_metrics()).
struct gateway_stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;          ///< reply bytes the gateway emitted
    std::uint64_t frames_in = 0;          ///< well-formed frames decoded
    std::uint64_t samples_in = 0;         ///< samples offered to the router
    std::uint64_t samples_rejected = 0;   ///< feed refusals answered at the wire
    std::uint64_t reject_frames_out = 0;  ///< queue_full status frames sent
    std::uint64_t status_frames_out = 0;  ///< all status frames sent
    std::uint64_t ticks = 0;              ///< router ticks driven by tick frames
    std::uint64_t sessions_opened = 0;    ///< wire sessions admitted
    std::uint64_t sessions_closed = 0;    ///< wire sessions evicted via close
    std::uint64_t seq_gaps = 0;           ///< sample frames whose sequence != expected
    std::uint64_t decode_errors = 0;      ///< connections killed by framing errors
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_closed = 0;
};

class session_gateway {
public:
    using conn_id = std::uint32_t;
    /// Called after every tick-frame-driven router tick.
    using tick_handler = std::function<void(const serve::tick_result&)>;

    /// The router is borrowed and must outlive the gateway.
    explicit session_gateway(serve::fleet_router& router, tick_handler on_tick = {});

    /// Register a new transport connection (ids are never reused).
    conn_id open_connection();

    /// Process `bytes` arriving on connection `conn`: decode complete
    /// frames (buffering any torn tail), feed/tick the router, and
    /// append reply frames to `replies` for the transport to send.
    /// Returns false when the stream is unrecoverably malformed — a
    /// `malformed_frame` status has been appended and the transport
    /// must flush it and close the connection.
    bool on_bytes(conn_id conn, std::span<const std::uint8_t> bytes,
                  std::vector<std::uint8_t>& replies);

    /// Drop a connection's decoder and wire-session map.  Router
    /// sessions opened by the connection stay live (an uplink reconnect
    /// must not lose detector state mid-fall); an explicit close frame
    /// is how a sender ends a session.
    void close_connection(conn_id conn);

    /// True once any connection delivered a bye frame.
    bool bye_received() const { return bye_; }

    const gateway_stats& stats() const { return stats_; }

    /// Record the stats as `net/*` obs counters (docs/observability.md).
    /// Deliberately not called from the hot path: transports publish
    /// once at shutdown so transport-double runs keep the registry
    /// untouched.
    void publish_metrics() const;

private:
    struct wire_session {
        serve::session_id router_id = 0;
        std::uint32_t expected_seq = 0;  ///< sequence the next sample should carry
        bool seq_seen = false;           ///< first frame initializes expected_seq
    };
    struct connection {
        frame_decoder decoder;
        frame scratch;  ///< decode target, capacity reused across frames
        std::map<std::uint32_t, wire_session> sessions;  ///< wire id → router session
        bool alive = true;
    };

    void handle_samples(connection& c, const frame& f, std::vector<std::uint8_t>& replies);

    serve::fleet_router& router_;
    tick_handler on_tick_;
    std::map<conn_id, connection> connections_;
    conn_id next_conn_ = 0;
    gateway_stats stats_;
    bool bye_ = false;
};

}  // namespace fallsense::net
