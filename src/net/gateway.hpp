// Session gateway: the transport-agnostic half of the ingestion edge.
//
// A `session_gateway` sits between a byte transport (the poll-based
// socket server, or the in-memory pipe the tests use) and a
// serve::fleet_router.  It owns, per transport connection, an
// incremental `frame_decoder` plus the mapping from sender-chosen wire
// session ids to router-global session ids, and turns the connection's
// byte stream — however the transport chunked it — into the exact
// `feed` / `tick` call sequence the frames describe:
//
//   sample frame  → one router `feed` per carried sample, in frame
//                   order; a wire session id seen for the first time is
//                   admitted via `create_session` on the spot (or, after
//                   a checkpoint restore, rebound to its pre-restart
//                   router session via `restore_wire_sessions`);
//   tick frame    → one vote toward a router `tick()`: the router ticks
//                   once per ROUND, when every connection still running
//                   has a tick pending — so K senders splitting a fleet
//                   across K sockets drive the same tick sequence one
//                   sender would.  A tick frame is a round DELIMITER:
//                   the connection's later frames stay buffered until
//                   the round's tick has run, so a sender that runs
//                   ahead can never leak next-round samples into the
//                   current round's queues.  (With one connection this
//                   degenerates to tick-frame = router-tick, the v1
//                   behaviour.)
//   close frame   → `evict_session` for the named wire session (a
//                   status frame with `unknown_session` answers a close
//                   for a session this connection never opened);
//   bye frame     → marks the connection finished; the run is complete
//                   (`bye_received()`) once every open connection has
//                   finished, and the transport then drains its reply
//                   buffers and shuts down.
//
// Backpressure surfaces at the wire: when the router refuses a sample —
// a saturated queue under drop_policy::reject_newest — the gateway
// answers with a `status_code::queue_full` frame naming the refused
// sample's (wire session, sequence), so the sender knows exactly which
// admitted-data guarantee it lost.  Under drop_oldest the engine admits
// every offer (evicting stale data instead), so no reject frames exist
// — the wire mirrors the engine's admission semantics rather than
// inventing its own.
//
// Determinism: everything the gateway does is a pure function of the
// per-connection byte stream content — never of how the transport
// chunked it into reads (the frame_decoder reassembles torn frames).
// With a single connection the whole networked run is therefore
// bit-identical to direct in-process `feed`/`tick` calls, the property
// tests/net/gateway_test.cpp pins across scripted chunkings and thread
// counts.  With several connections the tick barrier extends the same
// guarantee: because each wire session lives on exactly one connection,
// a session's samples arrive in order regardless of how the transport
// interleaves sockets, and per-session queues are independent — so the
// router sees the same per-session feed/tick sequence for any
// interleaving, and a K-connection run is bit-identical to a
// 1-connection run of the same traffic.  The gateway keeps its own plain `gateway_stats` counters and
// publishes them to the obs registry only on an explicit
// `publish_metrics()` call (the socket server does this once at
// shutdown), so a transport-double run leaves the metrics registry —
// and hence the run manifest — byte-identical to a direct-feed run.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <span>
#include <vector>

#include "net/wire.hpp"
#include "serve/fleet.hpp"

namespace fallsense::net {

/// Gateway lifetime counters (plain values; see publish_metrics()).
struct gateway_stats {
    std::uint64_t bytes_in = 0;
    std::uint64_t bytes_out = 0;          ///< reply bytes the gateway emitted
    std::uint64_t frames_in = 0;          ///< well-formed frames decoded
    std::uint64_t samples_in = 0;         ///< samples offered to the router
    std::uint64_t samples_rejected = 0;   ///< feed refusals answered at the wire
    std::uint64_t reject_frames_out = 0;  ///< queue_full status frames sent
    std::uint64_t status_frames_out = 0;  ///< all status frames sent
    std::uint64_t ticks = 0;              ///< router ticks driven by tick frames
    std::uint64_t sessions_opened = 0;    ///< wire sessions admitted
    std::uint64_t sessions_rebound = 0;   ///< wire sessions re-adopted after a restore
    std::uint64_t sessions_closed = 0;    ///< wire sessions evicted via close
    std::uint64_t seq_gaps = 0;           ///< sample frames whose sequence != expected
    std::uint64_t decode_errors = 0;      ///< connections killed by framing errors
    std::uint64_t connections_opened = 0;
    std::uint64_t connections_closed = 0;
};

/// One live session's identity handed over from a checkpoint restore:
/// the next sample frame naming `wire_session` is adopted onto the
/// already-restored router session instead of admitting a new one, and
/// is expected to resume at `next_sequence` (ckpt::session_handoffs
/// computes these from a snapshot; the wire id convention is the
/// router-global id, which is what the loadgen client sends).
struct restored_session {
    std::uint32_t wire_session = 0;
    serve::session_id router_session = 0;
    std::uint32_t next_sequence = 0;
};

class session_gateway {
public:
    using conn_id = std::uint32_t;
    /// Called after every tick-frame-driven router tick.
    using tick_handler = std::function<void(const serve::tick_result&)>;

    /// The router is borrowed and must outlive the gateway.
    explicit session_gateway(serve::fleet_router& router, tick_handler on_tick = {});

    /// Register a new transport connection (ids are never reused).
    conn_id open_connection();

    /// Process `bytes` arriving on connection `conn`: decode complete
    /// frames (buffering any torn tail), feed/tick the router, and
    /// append `conn`'s reply frames to `replies` for the transport to
    /// send.  Returns false when the stream is unrecoverably malformed —
    /// a `malformed_frame` status has been appended and the transport
    /// must flush it and close the connection.  A tick barrier released
    /// here may also unblock OTHER connections' buffered frames; their
    /// replies accumulate internally — collect them with take_replies
    /// (and check connection_alive) after any call that may have moved
    /// the barrier.
    bool on_bytes(conn_id conn, std::span<const std::uint8_t> bytes,
                  std::vector<std::uint8_t>& replies);

    /// Append reply bytes generated for `conn` since the last take (by
    /// another connection's bytes releasing the tick barrier, or by a
    /// close_connection) to `out`.  Returns true if any bytes moved.
    bool take_replies(conn_id conn, std::vector<std::uint8_t>& out);

    /// False once `conn`'s stream turned out malformed — possibly while
    /// its buffered frames were decoded on another connection's barrier
    /// release.  The transport should flush its replies and close it.
    bool connection_alive(conn_id conn) const;

    /// Drop a connection's decoder and wire-session map.  Router
    /// sessions opened by the connection stay live (an uplink reconnect
    /// must not lose detector state mid-fall); an explicit close frame
    /// is how a sender ends a session.  Dropping a connection releases
    /// its barrier vote: pending ticks from the remaining connections
    /// may run, and the run may complete.
    void close_connection(conn_id conn);

    /// Arm wire-id → router-session rebinds after a checkpoint restore.
    /// Each entry is consumed by the FIRST sample frame (on any
    /// connection) naming its wire session: the gateway adopts the
    /// restored router session — no `create_session` — and treats
    /// `next_sequence` as the expected sequence, so a correctly resumed
    /// sender registers zero seq gaps.  Entries never expire; a wire id
    /// that is never re-sent simply leaves its router session idle.
    void restore_wire_sessions(std::span<const restored_session> sessions);

    /// True once every open connection (at least one) delivered a bye
    /// frame; sticky thereafter.  With a single connection this is the
    /// old any-bye rule.
    bool bye_received() const { return bye_; }

    const gateway_stats& stats() const { return stats_; }

    /// Record the stats as `net/*` obs counters (docs/observability.md).
    /// Deliberately not called from the hot path: transports publish
    /// once at shutdown so transport-double runs keep the registry
    /// untouched.
    void publish_metrics() const;

private:
    struct wire_session {
        serve::session_id router_id = 0;
        std::uint32_t expected_seq = 0;  ///< sequence the next sample should carry
        bool seq_seen = false;           ///< first frame initializes expected_seq
    };
    struct connection {
        frame_decoder decoder;
        frame scratch;  ///< decode target, capacity reused across frames
        std::map<std::uint32_t, wire_session> sessions;  ///< wire id → router session
        std::vector<std::uint8_t> replies;  ///< generated, not yet taken
        std::uint64_t pending_ticks = 0;    ///< tick votes awaiting the barrier
        bool finished = false;              ///< bye frame received
        bool alive = true;
    };

    void handle_samples(connection& c, const frame& f);
    /// Decode c's buffered frames into router calls + c.replies, pausing
    /// at an unconsumed tick vote (the barrier decides when the round
    /// runs).  Returns true if any frame was consumed.
    bool decode_frames(connection& c);
    /// True when at least one vote is pending and no live, unfinished
    /// connection is missing its vote.
    bool barrier_ready() const;
    /// Consume one vote from every voting connection and tick the router.
    void run_tick();
    /// Fixpoint: run ready rounds and resume unblocked connections until
    /// nothing moves, then re-derive bye_ (sticky).
    void drain();
    void update_bye();

    serve::fleet_router& router_;
    tick_handler on_tick_;
    std::map<conn_id, connection> connections_;
    /// Armed by restore_wire_sessions, consumed by first sample frames.
    std::map<std::uint32_t, restored_session> rebinds_;
    conn_id next_conn_ = 0;
    gateway_stats stats_;
    bool bye_ = false;
};

}  // namespace fallsense::net
