// Loadgen client mode: the in-process fleet-traffic generator pushed
// out over real sockets.
//
// `run_loadgen_client` replays exactly the byte-for-byte feed pattern
// of `serve::run_loadgen` — the same synthesized wearers
// (serve::synthesize_fleet_streams), the same per-tick session order,
// the same samples-per-tick — but instead of calling
// `fleet_router::feed` in process, it encodes each session's samples as
// wire sample frames, paces the server with one tick frame per loadgen
// tick, and finishes with a bye.  Against a `fallsense serve --listen`
// endpoint configured with the same engine knobs and seed, the server's
// deterministic serve/* counters, triggers, and manifest therefore
// match the in-process run exactly — the socket loopback smoke in CI
// diffs the two manifests.
//
// Server-side concerns stay server-side: scorer choice, queue capacity,
// drop policy, shards, and hot-swap all belong to the `--listen`
// process; the client rejects configs that ask for them (churn, swap)
// because the wire has no frames for them yet.
#pragma once

#include <string>
#include <vector>

#include "net/client.hpp"
#include "serve/loadgen.hpp"

namespace fallsense::net {

/// Transport-shaping knobs for the client run (everything here changes
/// only HOW the traffic reaches the server, never what traffic it is).
struct client_options {
    /// Sockets to split the fleet across: session i rides connection
    /// i % connections (round-robin by session id).  Every connection
    /// sends one tick frame per round — the server's tick barrier runs
    /// one router tick per round — and its own bye, so the client's
    /// deterministic summary and the server's serve/* counters are
    /// bit-identical to a single-connection run.
    std::size_t connections = 1;
    /// Resume support (a restored server, docs/checkpoint.md): skip the
    /// first `start_tick` rounds — the pre-restart process already sent
    /// them — and seed each session's sequence counter (and hence its
    /// stream cursor, offered-so-far mod stream length) from
    /// `start_sequences` (one per session, from ckpt::session_handoffs;
    /// empty = fresh run, all sequences start at 0).
    std::size_t start_tick = 0;
    std::vector<std::uint32_t> start_sequences;
};

struct loadgen_client_report {
    std::size_t sessions = 0;
    std::uint64_t ticks = 0;
    std::uint64_t samples_offered = 0;   ///< samples encoded onto the wire
    std::uint64_t reject_frames = 0;     ///< queue_full statuses received
    std::uint64_t status_frames = 0;     ///< all statuses received
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    double wall_seconds = 0.0;  ///< measured; everything above is deterministic

    /// The deterministic fields, one `key: value` per line (the
    /// client-side analogue of loadgen_report::deterministic_summary).
    std::string deterministic_summary() const;
};

/// Encode `config.sessions` synthesized wearers onto `options.connections`
/// sockets against `where` for `config.ticks` ticks.  Only the
/// traffic-shaping fields of the config apply (sessions, ticks, seed,
/// feed_rate); churn and swap are server-side and rejected with
/// std::invalid_argument.
loadgen_client_report run_loadgen_client(const serve::loadgen_config& config,
                                         const endpoint& where,
                                         const client_options& options = {});

}  // namespace fallsense::net
