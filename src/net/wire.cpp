#include "net/wire.hpp"

#include <bit>
#include <cstring>

#include "util/check.hpp"

namespace fallsense::net {

namespace {

// Explicit little-endian byte stores/loads: the wire layout must not
// depend on the host's endianness or on aligned access being legal.

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xffu));
    out.push_back(static_cast<std::uint8_t>(v >> 8));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xffu));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xffu));
    out.push_back(static_cast<std::uint8_t>((v >> 16) & 0xffu));
    out.push_back(static_cast<std::uint8_t>(v >> 24));
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
    put_u32(out, std::bit_cast<std::uint32_t>(v));
}

std::uint16_t get_u16(const std::uint8_t* p) {
    return static_cast<std::uint16_t>(static_cast<std::uint16_t>(p[0]) |
                                      (static_cast<std::uint16_t>(p[1]) << 8));
}

std::uint32_t get_u32(const std::uint8_t* p) {
    return static_cast<std::uint32_t>(p[0]) | (static_cast<std::uint32_t>(p[1]) << 8) |
           (static_cast<std::uint32_t>(p[2]) << 16) |
           (static_cast<std::uint32_t>(p[3]) << 24);
}

float get_f32(const std::uint8_t* p) { return std::bit_cast<float>(get_u32(p)); }

std::size_t encode_header(std::vector<std::uint8_t>& out, frame_type type,
                          std::uint32_t session, std::uint32_t sequence,
                          std::uint16_t count) {
    const std::size_t start = out.size();
    out.push_back(k_wire_magic[0]);
    out.push_back(k_wire_magic[1]);
    out.push_back(k_wire_version);
    out.push_back(static_cast<std::uint8_t>(type));
    put_u32(out, session);
    put_u32(out, sequence);
    put_u16(out, count);
    return out.size() - start;
}

}  // namespace

const char* frame_type_name(frame_type type) {
    switch (type) {
        case frame_type::sample: return "sample";
        case frame_type::status: return "status";
        case frame_type::tick: return "tick";
        case frame_type::close: return "close";
        case frame_type::bye: return "bye";
    }
    return "?";
}

const char* status_code_name(status_code code) {
    switch (code) {
        case status_code::queue_full: return "queue-full";
        case status_code::unknown_session: return "unknown-session";
        case status_code::malformed_frame: return "malformed-frame";
    }
    return "?";
}

const char* decode_status_name(decode_status status) {
    switch (status) {
        case decode_status::ok: return "ok";
        case decode_status::need_more: return "need-more";
        case decode_status::bad_magic: return "bad-magic";
        case decode_status::bad_version: return "bad-version";
        case decode_status::bad_type: return "bad-type";
        case decode_status::bad_count: return "bad-count";
        case decode_status::oversized_batch: return "oversized-batch";
    }
    return "?";
}

decode_status decode_frame(std::span<const std::uint8_t> bytes, frame& out,
                           std::size_t* bytes_consumed) {
    FS_ARG_CHECK(bytes_consumed != nullptr, "decode_frame needs a consumed-bytes out param");
    *bytes_consumed = 0;
    if (bytes.size() < k_header_bytes) return decode_status::need_more;
    // Validate in a fixed order so every malformed header maps to ONE
    // typed error regardless of what else is wrong after the first bad
    // field — tests pin this table.
    if (bytes[0] != k_wire_magic[0] || bytes[1] != k_wire_magic[1]) {
        return decode_status::bad_magic;
    }
    if (bytes[2] != k_wire_version) return decode_status::bad_version;
    const std::uint8_t raw_type = bytes[3];
    if (raw_type < static_cast<std::uint8_t>(frame_type::sample) ||
        raw_type > static_cast<std::uint8_t>(frame_type::bye)) {
        return decode_status::bad_type;
    }
    const auto type = static_cast<frame_type>(raw_type);
    const std::uint32_t session = get_u32(bytes.data() + 4);
    const std::uint32_t sequence = get_u32(bytes.data() + 8);
    const std::uint16_t count = get_u16(bytes.data() + 12);

    std::size_t payload = 0;
    switch (type) {
        case frame_type::sample:
            if (count == 0) return decode_status::bad_count;
            if (count > k_max_frame_samples) return decode_status::oversized_batch;
            payload = static_cast<std::size_t>(count) * k_sample_bytes;
            break;
        case frame_type::status:
            // The count field carries the status code; any non-zero code
            // decodes (unknown codes are the receiver's problem — forward
            // compatibility for new codes without a version bump).
            if (count == 0) return decode_status::bad_count;
            break;
        case frame_type::tick:
        case frame_type::close:
        case frame_type::bye:
            if (count != 0) return decode_status::bad_count;
            break;
    }
    if (bytes.size() < k_header_bytes + payload) return decode_status::need_more;

    out.type = type;
    out.session = session;
    out.sequence = sequence;
    out.status = type == frame_type::status ? count : 0;
    out.samples.clear();
    if (type == frame_type::sample) {
        const std::uint8_t* p = bytes.data() + k_header_bytes;
        out.samples.reserve(count);
        for (std::uint16_t i = 0; i < count; ++i, p += k_sample_bytes) {
            data::raw_sample s;
            s.accel = {get_f32(p), get_f32(p + 4), get_f32(p + 8)};
            s.gyro = {get_f32(p + 12), get_f32(p + 16), get_f32(p + 20)};
            out.samples.push_back(s);
        }
    }
    *bytes_consumed = k_header_bytes + payload;
    return decode_status::ok;
}

std::size_t encode_samples(std::vector<std::uint8_t>& out, std::uint32_t session,
                           std::uint32_t sequence,
                           std::span<const data::raw_sample> samples) {
    FS_ARG_CHECK(!samples.empty(), "a sample frame carries at least one sample");
    FS_ARG_CHECK(samples.size() <= k_max_frame_samples,
                 "sample frame exceeds k_max_frame_samples");
    std::size_t n = encode_header(out, frame_type::sample, session, sequence,
                                  static_cast<std::uint16_t>(samples.size()));
    for (const data::raw_sample& s : samples) {
        put_f32(out, s.accel[0]);
        put_f32(out, s.accel[1]);
        put_f32(out, s.accel[2]);
        put_f32(out, s.gyro[0]);
        put_f32(out, s.gyro[1]);
        put_f32(out, s.gyro[2]);
        n += k_sample_bytes;
    }
    return n;
}

std::size_t encode_status(std::vector<std::uint8_t>& out, std::uint32_t session,
                          std::uint32_t sequence, status_code code) {
    return encode_header(out, frame_type::status, session, sequence,
                         static_cast<std::uint16_t>(code));
}

std::size_t encode_tick(std::vector<std::uint8_t>& out) {
    return encode_header(out, frame_type::tick, 0, 0, 0);
}

std::size_t encode_close(std::vector<std::uint8_t>& out, std::uint32_t session) {
    return encode_header(out, frame_type::close, session, 0, 0);
}

std::size_t encode_bye(std::vector<std::uint8_t>& out) {
    return encode_header(out, frame_type::bye, 0, 0, 0);
}

void frame_decoder::push(std::span<const std::uint8_t> bytes) {
    // Compact before growing once the decoded prefix dominates the
    // buffer; amortized O(1) per byte and keeps the high-water mark near
    // one frame for well-behaved streams.
    if (consumed_ > 0 && consumed_ * 2 >= buffer_.size()) {
        buffer_.erase(buffer_.begin(), buffer_.begin() + static_cast<std::ptrdiff_t>(consumed_));
        consumed_ = 0;
    }
    buffer_.insert(buffer_.end(), bytes.begin(), bytes.end());
}

decode_status frame_decoder::next(frame& out) {
    if (dead_) return *dead_;
    std::size_t used = 0;
    const decode_status status = decode_frame(
        {buffer_.data() + consumed_, buffer_.size() - consumed_}, out, &used);
    if (status == decode_status::ok) {
        consumed_ += used;
        return status;
    }
    if (status != decode_status::need_more) dead_ = status;  // unrecoverable
    return status;
}

}  // namespace fallsense::net
