#include "net/client.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstring>
#include <stdexcept>
#include <thread>

#include "util/check.hpp"

namespace fallsense::net {

namespace {

[[noreturn]] void throw_errno(const std::string& what) {
    throw std::runtime_error(what + ": " + std::strerror(errno));
}

}  // namespace

wire_client wire_client::connect_to(const endpoint& where, int timeout_ms) {
    sockaddr_in addr{};
    addr.sin_family = AF_INET;
    addr.sin_port = htons(where.port);
    if (::inet_pton(AF_INET, where.host.c_str(), &addr.sin_addr) != 1) {
        throw std::runtime_error("wire_client: not an IPv4 address: " + where.host);
    }
    const auto deadline =
        std::chrono::steady_clock::now() + std::chrono::milliseconds(timeout_ms);
    for (;;) {
        const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
        if (fd < 0) throw_errno("socket");
        if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof addr) == 0) {
            const int one = 1;
            ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof one);
            return wire_client(fd);
        }
        const int saved = errno;
        ::close(fd);
        // The server may not have bound yet (CI launches both sides
        // together); everything else is a hard failure.
        if ((saved != ECONNREFUSED && saved != ETIMEDOUT) ||
            std::chrono::steady_clock::now() >= deadline) {
            errno = saved;
            throw_errno("wire_client connect " + where.host);
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
}

wire_client::~wire_client() {
    if (fd_ >= 0) ::close(fd_);
}

wire_client::wire_client(wire_client&& other) noexcept
    : fd_(other.fd_),
      sendbuf_(std::move(other.sendbuf_)),
      decoder_(std::move(other.decoder_)),
      scratch_(std::move(other.scratch_)),
      stats_(other.stats_) {
    other.fd_ = -1;
}

void wire_client::queue_samples(std::uint32_t session, std::uint32_t sequence,
                                std::span<const data::raw_sample> samples) {
    while (!samples.empty()) {
        const std::size_t n = std::min(samples.size(), k_max_frame_samples);
        encode_samples(sendbuf_, session, sequence, samples.first(n));
        samples = samples.subspan(n);
        sequence += static_cast<std::uint32_t>(n);
    }
}

void wire_client::queue_tick() { encode_tick(sendbuf_); }

void wire_client::queue_close(std::uint32_t session) { encode_close(sendbuf_, session); }

void wire_client::queue_bye() { encode_bye(sendbuf_); }

void wire_client::flush() {
    FS_CHECK(fd_ >= 0, "flush on a moved-from client");
    std::size_t off = 0;
    while (off < sendbuf_.size()) {
        const ssize_t n =
            ::send(fd_, sendbuf_.data() + off, sendbuf_.size() - off, MSG_NOSIGNAL);
        if (n > 0) {
            off += static_cast<std::size_t>(n);
            continue;
        }
        if (errno == EINTR) continue;
        throw_errno("wire_client send");
    }
    stats_.bytes_sent += sendbuf_.size();
    sendbuf_.clear();
}

void wire_client::consume(std::span<const std::uint8_t> bytes) {
    stats_.bytes_received += bytes.size();
    decoder_.push(bytes);
    while (decoder_.next(scratch_) == decode_status::ok) {
        if (scratch_.type != frame_type::status) continue;  // server sends only status
        ++stats_.status_frames_in;
        switch (static_cast<status_code>(scratch_.status)) {
            case status_code::queue_full: ++stats_.reject_frames_in; break;
            case status_code::unknown_session: ++stats_.unknown_session_in; break;
            case status_code::malformed_frame: ++stats_.malformed_frames_in; break;
        }
    }
}

void wire_client::poll_statuses() {
    std::uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof buf, MSG_DONTWAIT);
        if (n > 0) {
            consume({buf, static_cast<std::size_t>(n)});
            continue;
        }
        if (n == 0) return;  // EOF; drain_to_eof reports it to the caller
        if (errno == EAGAIN || errno == EWOULDBLOCK) return;
        if (errno == EINTR) continue;
        throw_errno("wire_client recv");
    }
}

void wire_client::drain_to_eof() {
    std::uint8_t buf[4096];
    for (;;) {
        const ssize_t n = ::recv(fd_, buf, sizeof buf, 0);
        if (n > 0) {
            consume({buf, static_cast<std::size_t>(n)});
            continue;
        }
        if (n == 0) return;
        if (errno == EINTR) continue;
        throw_errno("wire_client recv");
    }
}

}  // namespace fallsense::net
