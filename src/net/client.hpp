// Wire-protocol client: the sender half of the ingestion edge.
//
// `wire_client` is what a device uplink (or the loadgen's --client
// mode) uses to speak the docs/wire_protocol.md framing to a
// `fallsense serve --listen` endpoint: it buffers encoded frames,
// flushes them over a blocking TCP socket, and decodes whatever status
// frames the server answered — the reject-newest backpressure signal —
// through the same `frame_decoder` the server uses, so torn status
// frames across reads are reassembled identically on both ends.
//
// The client is intentionally simple and synchronous (it models an
// MCU-class sender, not another reactor): writes block, status reads
// are opportunistic (`poll_statuses`, MSG_DONTWAIT) until the final
// `drain_to_eof` after bye.  Deadlock is structurally impossible
// against the non-blocking server: the server never stops reading, so
// a blocking flush always completes.
#pragma once

#include <cstdint>

#include "net/server.hpp"  // endpoint
#include "net/wire.hpp"

namespace fallsense::net {

/// Client-side receive counters (everything the server answered).
struct client_stats {
    std::uint64_t bytes_sent = 0;
    std::uint64_t bytes_received = 0;
    std::uint64_t status_frames_in = 0;
    std::uint64_t reject_frames_in = 0;     ///< status_code::queue_full
    std::uint64_t unknown_session_in = 0;   ///< status_code::unknown_session
    std::uint64_t malformed_frames_in = 0;  ///< status_code::malformed_frame
};

class wire_client {
public:
    /// Connect to `where`, retrying connection-refused for up to
    /// `timeout_ms` (the server may still be binding — CI starts both
    /// sides concurrently).  Throws std::runtime_error on timeout.
    static wire_client connect_to(const endpoint& where, int timeout_ms = 5000);
    ~wire_client();

    wire_client(wire_client&& other) noexcept;
    wire_client& operator=(wire_client&&) = delete;
    wire_client(const wire_client&) = delete;
    wire_client& operator=(const wire_client&) = delete;

    /// Buffer one frame (split into k_max_frame_samples-sized sample
    /// frames as needed, consecutive sequence numbers preserved).
    void queue_samples(std::uint32_t session, std::uint32_t sequence,
                       std::span<const data::raw_sample> samples);
    void queue_tick();
    void queue_close(std::uint32_t session);
    void queue_bye();

    /// Blocking send of every buffered byte.
    void flush();

    /// Non-blocking drain of server status frames into the stats.
    void poll_statuses();

    /// Blocking drain until the server closes (call after bye+flush).
    void drain_to_eof();

    const client_stats& stats() const { return stats_; }

private:
    explicit wire_client(int fd) : fd_(fd) {}
    void consume(std::span<const std::uint8_t> bytes);

    int fd_ = -1;
    std::vector<std::uint8_t> sendbuf_;
    frame_decoder decoder_;
    frame scratch_;
    client_stats stats_;
};

}  // namespace fallsense::net
