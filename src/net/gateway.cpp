#include "net/gateway.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace fallsense::net {

session_gateway::session_gateway(serve::fleet_router& router, tick_handler on_tick)
    : router_(router), on_tick_(std::move(on_tick)) {}

session_gateway::conn_id session_gateway::open_connection() {
    const conn_id id = next_conn_++;
    connections_.emplace(id, connection{});
    ++stats_.connections_opened;
    return id;
}

void session_gateway::close_connection(conn_id conn) {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    connections_.erase(it);
    ++stats_.connections_closed;
    // The departed connection no longer votes: the survivors may now hold
    // a full barrier, and the run may have completed.
    drain();
}

void session_gateway::restore_wire_sessions(std::span<const restored_session> sessions) {
    for (const restored_session& rs : sessions) rebinds_[rs.wire_session] = rs;
}

bool session_gateway::take_replies(conn_id conn, std::vector<std::uint8_t>& out) {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    std::vector<std::uint8_t>& replies = it->second.replies;
    if (replies.empty()) return false;
    out.insert(out.end(), replies.begin(), replies.end());
    replies.clear();
    return true;
}

bool session_gateway::connection_alive(conn_id conn) const {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    return it->second.alive;
}

bool session_gateway::barrier_ready() const {
    bool any_vote = false;
    for (const auto& [id, c] : connections_) {
        if (c.pending_ticks > 0) any_vote = true;
        // A finished (or errored-out) connection neither blocks the
        // barrier nor is required to vote — its run is over.
        else if (!c.finished && c.alive) return false;
    }
    return any_vote;
}

void session_gateway::run_tick() {
    for (auto& [id, c] : connections_) {
        if (c.pending_ticks > 0) --c.pending_ticks;
    }
    ++stats_.ticks;
    const serve::tick_result result = router_.tick();
    if (on_tick_) on_tick_(result);
}

void session_gateway::drain() {
    for (bool progress = true; progress;) {
        progress = false;
        while (barrier_ready()) {
            run_tick();
            progress = true;
        }
        // The tick consumed the votes, so paused connections resume —
        // possibly voting for the next round, hence the outer fixpoint.
        for (auto& [id, c] : connections_) {
            if (decode_frames(c)) progress = true;
        }
    }
    update_bye();
}

void session_gateway::update_bye() {
    if (bye_ || connections_.empty()) return;
    bool any = false;
    bool all = true;
    for (const auto& [id, c] : connections_) {
        if (c.finished) any = true;
        else all = false;
    }
    if (any && all) bye_ = true;
}

void session_gateway::handle_samples(connection& c, const frame& f) {
    auto [it, inserted] = c.sessions.try_emplace(f.session);
    wire_session& ws = it->second;
    if (inserted) {
        const auto rit = rebinds_.find(f.session);
        if (rit != rebinds_.end()) {
            // A restored sender resuming its stream: adopt the router
            // session the checkpoint rebuilt instead of admitting a new
            // one, and expect the handed-over sequence number.
            ws.router_id = rit->second.router_session;
            ws.expected_seq = rit->second.next_sequence;
            ws.seq_seen = true;
            rebinds_.erase(rit);
            ++stats_.sessions_rebound;
        } else {
            // First sample frame for this wire id admits the session —
            // the protocol has no separate open handshake (an MCU sender
            // that rebooted just keeps transmitting).
            ws.router_id = router_.create_session();
            ++stats_.sessions_opened;
        }
    }
    if (ws.seq_seen && f.sequence != ws.expected_seq) ++stats_.seq_gaps;
    // u32 arithmetic wraps, so sequence tracking survives rollover: the
    // frame after seq 0xffffffff is expected at seq (count - 1).
    ws.expected_seq = f.sequence + static_cast<std::uint32_t>(f.samples.size());
    ws.seq_seen = true;

    std::uint32_t seq = f.sequence;
    for (const data::raw_sample& s : f.samples) {
        ++stats_.samples_in;
        if (!router_.feed(ws.router_id, s)) {
            // The engine refused the sample (reject_newest on a full
            // queue): answer at the wire instead of dropping silently.
            ++stats_.samples_rejected;
            ++stats_.reject_frames_out;
            ++stats_.status_frames_out;
            stats_.bytes_out +=
                encode_status(c.replies, f.session, seq, status_code::queue_full);
        }
        ++seq;
    }
}

bool session_gateway::decode_frames(connection& c) {
    bool progress = false;
    // An unconsumed tick vote pauses the stream: frames after a tick
    // frame belong to the NEXT round and must not touch the router until
    // the barrier has run this one.
    while (c.alive && c.pending_ticks == 0) {
        const decode_status status = c.decoder.next(c.scratch);
        if (status == decode_status::need_more) break;
        if (status != decode_status::ok) {
            // Framing is unrecoverable (no resync markers by design —
            // a length-prefixed stream that lost sync is garbage): tell
            // the sender and have the transport close.
            ++stats_.decode_errors;
            ++stats_.status_frames_out;
            stats_.bytes_out +=
                encode_status(c.replies, 0, 0, status_code::malformed_frame);
            c.alive = false;
            progress = true;
            break;
        }
        ++stats_.frames_in;
        progress = true;
        const frame& f = c.scratch;
        switch (f.type) {
            case frame_type::sample:
                handle_samples(c, f);
                break;
            case frame_type::tick:
                // One barrier vote; drain() runs the round once every
                // unfinished connection has voted.
                ++c.pending_ticks;
                break;
            case frame_type::close: {
                const auto sit = c.sessions.find(f.session);
                if (sit == c.sessions.end()) {
                    ++stats_.status_frames_out;
                    stats_.bytes_out += encode_status(c.replies, f.session, 0,
                                                      status_code::unknown_session);
                    break;
                }
                router_.evict_session(sit->second.router_id);
                c.sessions.erase(sit);
                ++stats_.sessions_closed;
                break;
            }
            case frame_type::bye:
                // Stops blocking the barrier; the run completes (drain's
                // update_bye) once everyone has said bye.
                c.finished = true;
                break;
            case frame_type::status:
                // Status frames are server → client; one arriving at the
                // ingestion edge is a peer bug but not a framing error —
                // count it and carry on (it parsed cleanly).
                break;
        }
    }
    return progress;
}

bool session_gateway::on_bytes(conn_id conn, std::span<const std::uint8_t> bytes,
                               std::vector<std::uint8_t>& replies) {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    connection& c = it->second;
    // The stream may have turned out malformed while its buffered frames
    // were decoded on another connection's barrier release: not a caller
    // bug, just report it (the transport flushes replies and closes).
    if (!c.alive) {
        take_replies(conn, replies);
        return false;
    }

    stats_.bytes_in += bytes.size();
    c.decoder.push(bytes);
    drain();
    take_replies(conn, replies);
    return c.alive;
}

void session_gateway::publish_metrics() const {
    // The full counter set is always published (zeros included) so the
    // manifest's net/* section has a stable shape across runs.
    obs::add_counter("net/bytes_in", stats_.bytes_in);
    obs::add_counter("net/bytes_out", stats_.bytes_out);
    obs::add_counter("net/frames_in", stats_.frames_in);
    obs::add_counter("net/samples_in", stats_.samples_in);
    obs::add_counter("net/samples_rejected", stats_.samples_rejected);
    obs::add_counter("net/reject_frames_out", stats_.reject_frames_out);
    obs::add_counter("net/status_frames_out", stats_.status_frames_out);
    obs::add_counter("net/ticks", stats_.ticks);
    obs::add_counter("net/sessions_opened", stats_.sessions_opened);
    obs::add_counter("net/sessions_rebound", stats_.sessions_rebound);
    obs::add_counter("net/sessions_closed", stats_.sessions_closed);
    obs::add_counter("net/seq_gaps", stats_.seq_gaps);
    obs::add_counter("net/decode_errors", stats_.decode_errors);
    obs::add_counter("net/connections_opened", stats_.connections_opened);
    obs::add_counter("net/connections_closed", stats_.connections_closed);
}

}  // namespace fallsense::net
