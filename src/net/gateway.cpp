#include "net/gateway.hpp"

#include "obs/metrics.hpp"
#include "util/check.hpp"

namespace fallsense::net {

session_gateway::session_gateway(serve::fleet_router& router, tick_handler on_tick)
    : router_(router), on_tick_(std::move(on_tick)) {}

session_gateway::conn_id session_gateway::open_connection() {
    const conn_id id = next_conn_++;
    connections_.emplace(id, connection{});
    ++stats_.connections_opened;
    return id;
}

void session_gateway::close_connection(conn_id conn) {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    connections_.erase(it);
    ++stats_.connections_closed;
}

void session_gateway::handle_samples(connection& c, const frame& f,
                                     std::vector<std::uint8_t>& replies) {
    auto [it, inserted] = c.sessions.try_emplace(f.session);
    wire_session& ws = it->second;
    if (inserted) {
        // First sample frame for this wire id admits the session — the
        // protocol has no separate open handshake (an MCU sender that
        // rebooted just keeps transmitting).
        ws.router_id = router_.create_session();
        ++stats_.sessions_opened;
    }
    if (ws.seq_seen && f.sequence != ws.expected_seq) ++stats_.seq_gaps;
    // u32 arithmetic wraps, so sequence tracking survives rollover: the
    // frame after seq 0xffffffff is expected at seq (count - 1).
    ws.expected_seq = f.sequence + static_cast<std::uint32_t>(f.samples.size());
    ws.seq_seen = true;

    std::uint32_t seq = f.sequence;
    for (const data::raw_sample& s : f.samples) {
        ++stats_.samples_in;
        if (!router_.feed(ws.router_id, s)) {
            // The engine refused the sample (reject_newest on a full
            // queue): answer at the wire instead of dropping silently.
            ++stats_.samples_rejected;
            ++stats_.reject_frames_out;
            ++stats_.status_frames_out;
            stats_.bytes_out +=
                encode_status(replies, f.session, seq, status_code::queue_full);
        }
        ++seq;
    }
}

bool session_gateway::on_bytes(conn_id conn, std::span<const std::uint8_t> bytes,
                               std::vector<std::uint8_t>& replies) {
    const auto it = connections_.find(conn);
    FS_ARG_CHECK(it != connections_.end(), "unknown gateway connection id");
    connection& c = it->second;
    FS_CHECK(c.alive, "on_bytes after a framing error; close the connection");

    stats_.bytes_in += bytes.size();
    c.decoder.push(bytes);
    for (;;) {
        const decode_status status = c.decoder.next(c.scratch);
        if (status == decode_status::need_more) return true;
        if (status != decode_status::ok) {
            // Framing is unrecoverable (no resync markers by design —
            // a length-prefixed stream that lost sync is garbage): tell
            // the sender and have the transport close.
            ++stats_.decode_errors;
            ++stats_.status_frames_out;
            stats_.bytes_out +=
                encode_status(replies, 0, 0, status_code::malformed_frame);
            c.alive = false;
            return false;
        }
        ++stats_.frames_in;
        const frame& f = c.scratch;
        switch (f.type) {
            case frame_type::sample:
                handle_samples(c, f, replies);
                break;
            case frame_type::tick: {
                ++stats_.ticks;
                const serve::tick_result result = router_.tick();
                if (on_tick_) on_tick_(result);
                break;
            }
            case frame_type::close: {
                const auto sit = c.sessions.find(f.session);
                if (sit == c.sessions.end()) {
                    ++stats_.status_frames_out;
                    stats_.bytes_out += encode_status(replies, f.session, 0,
                                                      status_code::unknown_session);
                    break;
                }
                router_.evict_session(sit->second.router_id);
                c.sessions.erase(sit);
                ++stats_.sessions_closed;
                break;
            }
            case frame_type::bye:
                bye_ = true;
                break;
            case frame_type::status:
                // Status frames are server → client; one arriving at the
                // ingestion edge is a peer bug but not a framing error —
                // count it and carry on (it parsed cleanly).
                break;
        }
    }
}

void session_gateway::publish_metrics() const {
    // The full counter set is always published (zeros included) so the
    // manifest's net/* section has a stable shape across runs.
    obs::add_counter("net/bytes_in", stats_.bytes_in);
    obs::add_counter("net/bytes_out", stats_.bytes_out);
    obs::add_counter("net/frames_in", stats_.frames_in);
    obs::add_counter("net/samples_in", stats_.samples_in);
    obs::add_counter("net/samples_rejected", stats_.samples_rejected);
    obs::add_counter("net/reject_frames_out", stats_.reject_frames_out);
    obs::add_counter("net/status_frames_out", stats_.status_frames_out);
    obs::add_counter("net/ticks", stats_.ticks);
    obs::add_counter("net/sessions_opened", stats_.sessions_opened);
    obs::add_counter("net/sessions_closed", stats_.sessions_closed);
    obs::add_counter("net/seq_gaps", stats_.seq_gaps);
    obs::add_counter("net/decode_errors", stats_.decode_errors);
    obs::add_counter("net/connections_opened", stats_.connections_opened);
    obs::add_counter("net/connections_closed", stats_.connections_closed);
}

}  // namespace fallsense::net
