// Poll-based socket ingestion server — the network edge of the fleet.
//
// `ingest_server` binds a TCP listener, accepts any number of client
// connections, and pumps their byte streams through a `session_gateway`
// into the fleet_router — all on the calling thread.  The event loop is
// a classic non-blocking poll(2) reactor: no thread is spawned (the
// engine's own thread pool parallelism happens inside `tick`, exactly
// as in-process callers get it), reads and writes never block, and
// decoding/feeding runs between poll wakeups — which, because ticks are
// driven by client tick frames processed in stream order, means frames
// always land in `feed` between ticks, never during one.
//
// Reply bytes (reject/status frames) are buffered per connection and
// flushed as POLLOUT allows; a connection that dies mid-flush is simply
// closed.  The loop runs until a client sends a `bye` frame and every
// pending reply byte has been flushed (`run()`), or indefinitely under
// manual `pump()` calls — the test harness drives it that way.
//
// The server publishes the gateway's `net/*` counters to the obs
// registry exactly once, when the loop finishes, so a `--metrics-json`
// manifest from a networked run carries the transport section
// (docs/observability.md) while per-read hot paths stay registry-free.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "net/gateway.hpp"

namespace fallsense::net {

/// A listen/connect address.  `parse_endpoint` accepts "PORT", ":PORT",
/// and "HOST:PORT" (host defaults to 127.0.0.1 — the ingestion edge
/// binds loopback unless told otherwise); returns nullopt on malformed
/// input, including ports outside 0..65535.
struct endpoint {
    std::string host = "127.0.0.1";
    std::uint16_t port = 0;  ///< 0 = ephemeral (bind decides; see port())
};

std::optional<endpoint> parse_endpoint(const std::string& text);

class ingest_server {
public:
    /// Bind + listen on `where` (throws std::runtime_error on failure,
    /// e.g. the port is taken).  The router is borrowed and must
    /// outlive the server.
    ingest_server(const endpoint& where, serve::fleet_router& router,
                  session_gateway::tick_handler on_tick = {});
    ~ingest_server();

    ingest_server(const ingest_server&) = delete;
    ingest_server& operator=(const ingest_server&) = delete;

    /// The bound port (resolves an ephemeral request to the real port).
    std::uint16_t port() const { return port_; }

    /// One reactor iteration: wait up to `timeout_ms` for socket events
    /// (-1 = forever), then accept/read/decode/feed/write whatever is
    /// ready.  Returns false once a bye frame has been processed and
    /// all reply bytes are flushed — the run is complete.
    bool pump(int timeout_ms);

    /// pump() until complete, then publish the gateway's net/* metrics.
    void run();

    session_gateway& gateway() { return gateway_; }
    const session_gateway& gateway() const { return gateway_; }

private:
    struct connection {
        int fd = -1;
        session_gateway::conn_id id = 0;
        std::vector<std::uint8_t> outbuf;  ///< un-flushed reply bytes
        std::size_t out_off = 0;
        bool draining = false;  ///< gateway said close; flush outbuf then drop
    };

    void accept_ready();
    /// Read + decode + reply for one connection; returns false when the
    /// connection should be dropped once its outbuf has drained.
    bool service_read(connection& c);
    bool flush_writes(connection& c);  ///< false on a dead socket
    void drop_connection(std::size_t index);
    bool replies_pending() const;

    int listen_fd_ = -1;
    std::uint16_t port_ = 0;
    session_gateway gateway_;
    std::vector<connection> conns_;
    std::vector<std::uint8_t> readbuf_;  ///< shared read scratch
    bool published_ = false;
};

}  // namespace fallsense::net
