#include "net/loadgen_client.hpp"

#include <chrono>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::net {

std::string loadgen_client_report::deterministic_summary() const {
    std::ostringstream os;
    os << "mode: client\n"
       << "sessions: " << sessions << '\n'
       << "ticks: " << ticks << '\n'
       << "samples_offered: " << samples_offered << '\n'
       << "reject_frames: " << reject_frames << '\n'
       << "status_frames: " << status_frames << '\n';
    return os.str();
}

loadgen_client_report run_loadgen_client(const serve::loadgen_config& config,
                                         const endpoint& where) {
    FS_ARG_CHECK(config.sessions > 0, "client mode needs at least one session");
    FS_ARG_CHECK(config.ticks > 0, "client mode needs at least one tick");
    FS_ARG_CHECK(config.feed_rate > 0, "client feed rate must be positive");
    FS_ARG_CHECK(config.churn_every_ticks == 0,
                 "churn is not supported in client mode (server-side lifecycle)");
    FS_ARG_CHECK(config.swap_after_ticks == 0,
                 "hot-swap is server-side; run it on the serve --listen process");

    std::vector<serve::session_stream> streams =
        serve::synthesize_fleet_streams(config.sessions, config.seed);
    wire_client client = wire_client::connect_to(where);

    loadgen_client_report report;
    report.sessions = config.sessions;
    report.ticks = config.ticks;

    // Wire session ids mirror the in-process loadgen's router ids
    // (0..N-1 in admission order) and sequence numbers count each
    // session's offered samples from 0 — replay can key on them.
    std::vector<std::uint32_t> seq(config.sessions, 0);
    std::vector<data::raw_sample> batch;
    batch.reserve(config.feed_rate);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = 0; t < config.ticks; ++t) {
        for (std::size_t i = 0; i < config.sessions; ++i) {
            batch.clear();
            for (std::size_t k = 0; k < config.feed_rate; ++k) {
                batch.push_back(streams[i].next());
            }
            client.queue_samples(static_cast<std::uint32_t>(i), seq[i], batch);
            seq[i] += static_cast<std::uint32_t>(batch.size());
            report.samples_offered += batch.size();
        }
        client.queue_tick();
        // Flush every tick (the server ticks only on arrival of the tick
        // frame) and opportunistically drain reject statuses so neither
        // side buffers unboundedly on a saturated fleet.
        client.flush();
        client.poll_statuses();
    }
    client.queue_bye();
    client.flush();
    client.drain_to_eof();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    const client_stats& cs = client.stats();
    report.reject_frames = cs.reject_frames_in;
    report.status_frames = cs.status_frames_in;
    report.bytes_sent = cs.bytes_sent;
    report.bytes_received = cs.bytes_received;
    report.wall_seconds = elapsed.count();
    return report;
}

}  // namespace fallsense::net
