#include "net/loadgen_client.hpp"

#include <chrono>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::net {

std::string loadgen_client_report::deterministic_summary() const {
    std::ostringstream os;
    os << "mode: client\n"
       << "sessions: " << sessions << '\n'
       << "ticks: " << ticks << '\n'
       << "samples_offered: " << samples_offered << '\n'
       << "reject_frames: " << reject_frames << '\n'
       << "status_frames: " << status_frames << '\n';
    return os.str();
}

loadgen_client_report run_loadgen_client(const serve::loadgen_config& config,
                                         const endpoint& where,
                                         const client_options& options) {
    FS_ARG_CHECK(config.sessions > 0, "client mode needs at least one session");
    FS_ARG_CHECK(config.ticks > 0, "client mode needs at least one tick");
    FS_ARG_CHECK(config.feed_rate > 0, "client feed rate must be positive");
    FS_ARG_CHECK(config.churn_every_ticks == 0,
                 "churn is not supported in client mode (server-side lifecycle)");
    FS_ARG_CHECK(config.swap_after_ticks == 0,
                 "hot-swap is server-side; run it on the serve --listen process");
    FS_ARG_CHECK(options.connections >= 1, "client mode needs at least one connection");
    FS_ARG_CHECK(options.connections <= config.sessions,
                 "more connections than sessions would leave idle sockets");
    FS_ARG_CHECK(options.start_tick <= config.ticks,
                 "resume tick is already past the requested tick count");
    FS_ARG_CHECK(options.start_sequences.empty() ||
                     options.start_sequences.size() == config.sessions,
                 "resume needs one start sequence per session");

    std::vector<serve::session_stream> streams =
        serve::synthesize_fleet_streams(config.sessions, config.seed);
    std::vector<wire_client> clients;
    clients.reserve(options.connections);
    for (std::size_t k = 0; k < options.connections; ++k) {
        clients.push_back(wire_client::connect_to(where));
    }

    loadgen_client_report report;
    report.sessions = config.sessions;
    report.ticks = config.ticks;

    // Wire session ids mirror the in-process loadgen's router ids
    // (0..N-1 in admission order) and sequence numbers count each
    // session's offered samples from 0 — replay can key on them.  On a
    // resume the handed-over sequence IS the offered count, so it also
    // locates the stream cursor (streams loop, hence the modulo).
    std::vector<std::uint32_t> seq(config.sessions, 0);
    if (!options.start_sequences.empty()) {
        for (std::size_t i = 0; i < config.sessions; ++i) {
            seq[i] = options.start_sequences[i];
            streams[i].cursor = static_cast<std::size_t>(seq[i]) % streams[i].samples.size();
        }
    }
    // The manifest counts the whole logical run: skipped rounds were
    // offered by the pre-restart process at the fixed per-round rate.
    report.samples_offered = static_cast<std::uint64_t>(options.start_tick) *
                             config.sessions * config.feed_rate;
    std::vector<data::raw_sample> batch;
    batch.reserve(config.feed_rate);

    const auto start = std::chrono::steady_clock::now();
    for (std::size_t t = options.start_tick; t < config.ticks; ++t) {
        for (std::size_t i = 0; i < config.sessions; ++i) {
            // Round-robin by session id: session i always rides the same
            // socket, so its samples stay ordered end to end.
            wire_client& client = clients[i % options.connections];
            batch.clear();
            for (std::size_t k = 0; k < config.feed_rate; ++k) {
                batch.push_back(streams[i].next());
            }
            client.queue_samples(static_cast<std::uint32_t>(i), seq[i], batch);
            seq[i] += static_cast<std::uint32_t>(batch.size());
            report.samples_offered += batch.size();
        }
        // Every connection votes one tick per round (the server's barrier
        // runs one router tick per full set of votes).  Flush every tick
        // (the server ticks only once the votes arrive) and
        // opportunistically drain reject statuses so neither side buffers
        // unboundedly on a saturated fleet.
        for (wire_client& client : clients) {
            client.queue_tick();
            client.flush();
            client.poll_statuses();
        }
    }
    for (wire_client& client : clients) {
        client.queue_bye();
        client.flush();
    }
    // The server shuts down once every connection has said bye, then
    // closes them all; drain each socket to its EOF.
    for (wire_client& client : clients) client.drain_to_eof();
    const std::chrono::duration<double> elapsed = std::chrono::steady_clock::now() - start;

    for (const wire_client& client : clients) {
        const client_stats& cs = client.stats();
        report.reject_frames += cs.reject_frames_in;
        report.status_frames += cs.status_frames_in;
        report.bytes_sent += cs.bytes_sent;
        report.bytes_received += cs.bytes_received;
    }
    report.wall_seconds = elapsed.count();
    return report;
}

}  // namespace fallsense::net
