// Binary sample-frame wire codec — the fallsense ingestion protocol v1.
//
// The frame format is the one documented normatively in
// docs/wire_protocol.md (byte-layout table, field semantics, reject
// codes, worked hex example); this header is its implementation.  The
// layout is fixed little-endian so an MCU-class sender (the fallsafe
// device loop: fixed-rate IMU sampling queue + uplink) can emit frames
// with plain struct stores on every common core, and cheap enough that
// encoding is a handful of byte writes per sample.
//
// Every frame starts with a 14-byte header:
//
//   offset size field
//   0      2    magic 0x46 0x53 ("FS")
//   2      1    protocol version (k_wire_version == 1)
//   3      1    frame type (sample / status / tick / close / bye)
//   4      4    session id   (u32 LE, sender-chosen wire session)
//   8      4    sequence nr  (u32 LE, first sample in this frame; wraps)
//   12     2    count        (u16 LE, meaning depends on the type)
//
// A `sample` frame carries `count` (1..k_max_frame_samples) sensor
// triplet pairs of 24 bytes each — ax ay az gx gy gz as float32 LE — so
// per-event evaluation and replay can key on (session, sequence) end to
// end.  A `status` frame is the server's reject/diagnostic answer: the
// count field carries a `status_code` and the sequence field names the
// sample the status refers to.  `tick`, `close`, and `bye` are control
// frames with an empty payload and count == 0.
//
// Decoding is strict and bounds-checked: a decoder never reads past the
// supplied buffer, never trusts the count field before validating it,
// and reports malformed input through `decode_status` typed errors
// rather than asserts — a hostile or corrupt byte stream must be
// rejectable without UB (the malformed-input table tests run under
// ASan/UBSan).  `need_more` is not an error: it tells a streaming
// caller the buffer holds a torn frame; `frame_decoder` builds the
// chunk-reassembly loop on top of it.
#pragma once

#include <array>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "data/types.hpp"

namespace fallsense::net {

inline constexpr std::array<std::uint8_t, 2> k_wire_magic{0x46, 0x53};  // "FS"
inline constexpr std::uint8_t k_wire_version = 1;
inline constexpr std::size_t k_header_bytes = 14;
/// Bytes per encoded sample: 6 float32 (accel xyz, gyro xyz).
inline constexpr std::size_t k_sample_bytes = 24;
/// Hard cap on samples per frame; keeps the largest frame (1550 bytes)
/// within a single MTU-and-change and bounds decoder memory.
inline constexpr std::size_t k_max_frame_samples = 64;
inline constexpr std::size_t k_max_frame_bytes =
    k_header_bytes + k_max_frame_samples * k_sample_bytes;

enum class frame_type : std::uint8_t {
    sample = 1,  ///< client → server: `count` IMU samples
    status = 2,  ///< server → client: reject/diagnostic, code in `count`
    tick = 3,    ///< client → server: run one fleet tick now
    close = 4,   ///< client → server: evict the named wire session
    bye = 5,     ///< client → server: end of run, server may shut down
};

/// Codes carried in a status frame's count field.
enum class status_code : std::uint16_t {
    queue_full = 1,       ///< sample refused: session queue saturated under reject-newest
    unknown_session = 2,  ///< close named a wire session that was never opened
    malformed_frame = 3,  ///< framing error; the connection will be closed
};

const char* frame_type_name(frame_type type);
const char* status_code_name(status_code code);

/// One decoded frame.  `samples` is populated for sample frames only and
/// reuses its capacity when the same `frame` object is decoded into
/// repeatedly (the event loop's steady state).
struct frame {
    frame_type type = frame_type::sample;
    std::uint32_t session = 0;
    std::uint32_t sequence = 0;
    std::uint16_t status = 0;  ///< status frames: the status_code value
    std::vector<data::raw_sample> samples;
};

/// Typed decode outcomes.  `ok` and `need_more` are the two
/// non-error results; everything else means the stream is malformed at
/// the current position and cannot be resynchronized (the transport
/// should answer `malformed_frame` and close).
enum class decode_status : std::uint8_t {
    ok = 0,
    need_more,        ///< buffer ends inside a frame — not an error
    bad_magic,        ///< first two bytes are not "FS"
    bad_version,      ///< version byte != k_wire_version
    bad_type,         ///< type byte names no known frame type
    bad_count,        ///< count inconsistent with the type (e.g. empty sample frame, non-zero control count)
    oversized_batch,  ///< sample count exceeds k_max_frame_samples
};

const char* decode_status_name(decode_status status);

/// Decode one frame from the front of `bytes` into `out`.
/// On `ok`, `*bytes_consumed` is the frame's full wire size; on any
/// other status nothing is consumed and `out` is unspecified.
decode_status decode_frame(std::span<const std::uint8_t> bytes, frame& out,
                           std::size_t* bytes_consumed);

/// Encoders append one frame to `out` (never clear it) and return the
/// encoded size.  encode_samples checks 1 <= samples.size() <=
/// k_max_frame_samples (FS_ARG_CHECK).
std::size_t encode_samples(std::vector<std::uint8_t>& out, std::uint32_t session,
                           std::uint32_t sequence,
                           std::span<const data::raw_sample> samples);
std::size_t encode_status(std::vector<std::uint8_t>& out, std::uint32_t session,
                          std::uint32_t sequence, status_code code);
std::size_t encode_tick(std::vector<std::uint8_t>& out);
std::size_t encode_close(std::vector<std::uint8_t>& out, std::uint32_t session);
std::size_t encode_bye(std::vector<std::uint8_t>& out);

/// Incremental decoder over an arbitrarily chunked byte stream: push()
/// whatever the transport delivered (a torn frame, three frames and a
/// half, one byte), then drain complete frames with next().  Bytes are
/// buffered internally and compacted lazily, so steady-state operation
/// stops allocating once the buffer reaches its high-water mark.
class frame_decoder {
public:
    /// Append transport bytes to the reassembly buffer.
    void push(std::span<const std::uint8_t> bytes);

    /// Decode the next complete frame into `out`.  Returns `ok` (frame
    /// filled, bytes consumed), `need_more` (buffer holds no complete
    /// frame), or a framing error — after which the stream is dead and
    /// next() keeps returning the same error.
    decode_status next(frame& out);

    /// Bytes buffered but not yet decoded.
    std::size_t buffered_bytes() const { return buffer_.size() - consumed_; }

private:
    std::vector<std::uint8_t> buffer_;
    std::size_t consumed_ = 0;  ///< prefix of buffer_ already decoded
    std::optional<decode_status> dead_;  ///< sticky framing error
};

}  // namespace fallsense::net
