#include "util/logging.hpp"

#include <atomic>
#include <iostream>
#include <mutex>

namespace fallsense::util {

namespace {

std::atomic<log_level> g_level{log_level::info};
std::mutex g_io_mutex;

constexpr const char* level_name(log_level level) {
    switch (level) {
        case log_level::debug: return "debug";
        case log_level::info: return "info";
        case log_level::warn: return "warn";
        case log_level::error: return "error";
        case log_level::off: return "off";
    }
    return "?";
}

}  // namespace

void set_log_level(log_level level) { g_level.store(level, std::memory_order_relaxed); }

log_level get_log_level() { return g_level.load(std::memory_order_relaxed); }

log_level parse_log_level(std::string_view text) {
    if (text == "debug") return log_level::debug;
    if (text == "info") return log_level::info;
    if (text == "warn") return log_level::warn;
    if (text == "error") return log_level::error;
    if (text == "off") return log_level::off;
    return log_level::info;
}

void log_record(log_level level, std::string_view module, std::string_view message) {
    if (level < get_log_level()) return;
    const std::scoped_lock lock(g_io_mutex);
    auto& out = (level >= log_level::warn) ? std::cerr : std::clog;
    out << '[' << level_name(level) << ' ' << module << "] " << message << '\n';
}

}  // namespace fallsense::util
