#include "util/args.hpp"

#include <charconv>
#include <stdexcept>

namespace fallsense::util {

namespace {

template <typename T>
std::optional<T> parse_whole(const std::string& text) {
    T out{};
    const char* begin = text.data();
    const char* end = begin + text.size();
    const auto [ptr, ec] = std::from_chars(begin, end, out);
    if (ec != std::errc{} || ptr != end || text.empty()) return std::nullopt;
    return out;
}

}  // namespace

std::optional<long> parse_long(const std::string& text) { return parse_whole<long>(text); }

std::optional<double> parse_double(const std::string& text) {
    return parse_whole<double>(text);
}

void arg_parser::add_flag(const std::string& name) { declared_flags_.insert(name); }

void arg_parser::add_option(const std::string& name) { declared_options_.insert(name); }

void arg_parser::parse(int argc, const char* const* argv, int start_index) {
    std::vector<std::string> args;
    for (int i = start_index; i < argc; ++i) args.emplace_back(argv[i]);
    parse(args);
}

void arg_parser::parse(const std::vector<std::string>& args) {
    for (std::size_t i = 0; i < args.size(); ++i) {
        const std::string& arg = args[i];
        if (arg.rfind("--", 0) != 0) {
            positionals_.push_back(arg);
            continue;
        }
        std::string name = arg.substr(2);
        std::optional<std::string> inline_value;
        if (const auto eq = name.find('='); eq != std::string::npos) {
            inline_value = name.substr(eq + 1);
            name = name.substr(0, eq);
        }
        if (declared_flags_.contains(name)) {
            if (inline_value) {
                throw std::invalid_argument("flag --" + name + " does not take a value");
            }
            flags_.insert(name);
        } else if (declared_options_.contains(name)) {
            if (inline_value) {
                options_[name] = *inline_value;
            } else {
                if (i + 1 >= args.size()) {
                    throw std::invalid_argument("option --" + name + " needs a value");
                }
                options_[name] = args[++i];
            }
        } else {
            throw std::invalid_argument("unknown argument --" + name);
        }
    }
}

bool arg_parser::has_flag(const std::string& name) const { return flags_.contains(name); }

std::optional<std::string> arg_parser::option(const std::string& name) const {
    const auto it = options_.find(name);
    if (it == options_.end()) return std::nullopt;
    return it->second;
}

std::string arg_parser::option_or(const std::string& name, const std::string& fallback) const {
    return option(name).value_or(fallback);
}

double arg_parser::number_or(const std::string& name, double fallback) const {
    const auto value = option(name);
    if (!value) return fallback;
    const auto out = parse_double(*value);
    if (!out) {
        throw std::invalid_argument("option --" + name + " is not a number: " + *value);
    }
    return *out;
}

long arg_parser::integer_or(const std::string& name, long fallback) const {
    const auto value = option(name);
    if (!value) return fallback;
    const auto out = parse_long(*value);
    if (!out) {
        throw std::invalid_argument("option --" + name + " is not an integer: " + *value);
    }
    return *out;
}

}  // namespace fallsense::util
