// CSV reading/writing for dataset import/export and bench result dumps.
//
// Deliberately small: comma separator, optional header row, numeric or
// string cells, no quoting of embedded commas (dataset columns never need
// it).  Parse errors carry row/column positions.
#pragma once

#include <filesystem>
#include <string>
#include <vector>

namespace fallsense::util {

/// One parsed CSV table: header (possibly empty) + rows of string cells.
struct csv_table {
    std::vector<std::string> header;
    std::vector<std::vector<std::string>> rows;

    /// Index of a header column; throws if absent.
    std::size_t column_index(const std::string& name) const;
    /// Cell as double; throws with row/col context on parse failure.
    double number_at(std::size_t row, std::size_t col) const;
};

/// Parse CSV text. If `has_header` the first non-empty line becomes `header`.
csv_table parse_csv(const std::string& text, bool has_header);

/// Read and parse a CSV file; throws std::runtime_error on I/O failure.
csv_table read_csv_file(const std::filesystem::path& path, bool has_header);

/// Serialize rows (all cells already strings) to CSV text.
std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows);

/// Write CSV text to a file; throws std::runtime_error on I/O failure.
void write_csv_file(const std::filesystem::path& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows);

}  // namespace fallsense::util
