// Experiment-scale configuration shared by benches, examples, and tests.
//
// FALLSENSE_SCALE selects how much synthetic data the experiment harness
// generates (tiny → CI smoke, quick → default laptop run, full → paper
// scale).  FALLSENSE_SEED fixes the global seed.  See DESIGN.md §5.
#pragma once

#include <cstdint>
#include <string>

namespace fallsense::util {

enum class run_scale { tiny, quick, full };

/// Parse "tiny" / "quick" / "full"; anything else → quick.
run_scale parse_run_scale(const std::string& text);

/// Human-readable name of a scale.
const char* run_scale_name(run_scale scale);

/// Read FALLSENSE_SCALE (default quick).
run_scale env_run_scale();

/// Read FALLSENSE_SEED (default 42).
std::uint64_t env_seed();

/// Read an arbitrary environment variable; empty string when unset.
std::string env_string(const char* name);

}  // namespace fallsense::util
