#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fallsense::util {

double mean(std::span<const double> values) {
    if (values.empty()) return 0.0;
    double sum = 0.0;
    for (const double v : values) sum += v;
    return sum / static_cast<double>(values.size());
}

double variance(std::span<const double> values) {
    if (values.size() < 1) return 0.0;
    const double m = mean(values);
    double acc = 0.0;
    for (const double v : values) acc += (v - m) * (v - m);
    return acc / static_cast<double>(values.size());
}

double stddev(std::span<const double> values) { return std::sqrt(variance(values)); }

double min_value(std::span<const double> values) {
    FS_ARG_CHECK(!values.empty(), "min of empty span");
    return *std::min_element(values.begin(), values.end());
}

double max_value(std::span<const double> values) {
    FS_ARG_CHECK(!values.empty(), "max of empty span");
    return *std::max_element(values.begin(), values.end());
}

double percentile(std::span<const double> values, double p) {
    FS_ARG_CHECK(!values.empty(), "percentile of empty span");
    FS_ARG_CHECK(p >= 0.0 && p <= 100.0, "percentile outside [0, 100]");
    std::vector<double> sorted(values.begin(), values.end());
    std::sort(sorted.begin(), sorted.end());
    if (sorted.size() == 1) return sorted.front();
    const double rank = p / 100.0 * static_cast<double>(sorted.size() - 1);
    const auto lo = static_cast<std::size_t>(std::floor(rank));
    const auto hi = static_cast<std::size_t>(std::ceil(rank));
    const double frac = rank - static_cast<double>(lo);
    return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

void running_stats::add(double x) {
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double running_stats::stddev() const { return std::sqrt(variance()); }

double running_stats::min() const {
    FS_CHECK(n_ > 0, "min of empty running_stats");
    return min_;
}

double running_stats::max() const {
    FS_CHECK(n_ > 0, "max of empty running_stats");
    return max_;
}

}  // namespace fallsense::util
