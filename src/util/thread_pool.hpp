// Deterministic shared-memory parallelism for the experiment harness.
//
// A single process-wide pool of worker threads executes `parallel_for`
// regions.  Scheduling is static (task i runs on participant i mod T) and
// work-stealing-free, so the set of loop indices each participant executes
// is a pure function of the iteration space — never of timing.  Callers
// keep results deterministic by writing to disjoint, index-addressed slots
// and performing any floating-point reductions themselves in fixed chunk
// order via `parallel_for_chunks` (whose chunk boundaries depend only on
// `grain`, never on the thread count).
//
// The pool is sized from FALLSENSE_THREADS (default: hardware concurrency;
// 1 = run every region inline on the calling thread, exactly the legacy
// serial behaviour).  Nested regions — a parallel_for issued from inside a
// pool task — always run inline, so library code may parallelize freely
// without deadlocking outer parallel callers.
#pragma once

#include <cstddef>
#include <functional>

namespace fallsense::util {

class thread_pool {
public:
    /// A pool with `threads` participants total (the caller counts as one;
    /// `threads - 1` workers are spawned).  threads == 1 spawns nothing.
    explicit thread_pool(std::size_t threads);
    ~thread_pool();

    thread_pool(const thread_pool&) = delete;
    thread_pool& operator=(const thread_pool&) = delete;

    /// Total participants (workers + the calling thread).
    std::size_t thread_count() const;

    /// Run fn(i) once for every i in [0, tasks).  Task i executes on
    /// participant i mod thread_count() (static assignment); the call blocks
    /// until all tasks finish and rethrows the first task exception.  Called
    /// from inside a pool task, runs every task inline in index order.
    void run(std::size_t tasks, const std::function<void(std::size_t)>& fn);

    /// True on a thread currently executing a pool task (used to force
    /// nested regions inline).
    static bool in_parallel_region();

private:
    struct impl;
    impl* impl_;
};

/// The process-wide pool, created on first use with FALLSENSE_THREADS
/// participants (default: hardware concurrency, minimum 1).
thread_pool& global_pool();

/// Participant count of the global pool.
std::size_t global_thread_count();

/// Replace the global pool with one of `threads` participants; 0 restores
/// the FALLSENSE_THREADS / hardware default.  Intended for tests and
/// benchmarks; must not be called from inside a parallel region.
void set_global_threads(std::size_t threads);

/// Parse FALLSENSE_THREADS (unset/0 → hardware concurrency, minimum 1).
std::size_t env_thread_count();

/// fn(i) for every i in [begin, end) on the global pool.  Indices are
/// grouped into contiguous chunks of at least `grain` for dispatch; writes
/// to disjoint per-index slots are deterministic for any thread count.
void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn);

/// fn(chunk_index, chunk_begin, chunk_end) over [begin, end) split into
/// chunks of exactly `grain` (last chunk ragged).  Chunk boundaries depend
/// only on `grain`, so per-chunk partial results reduced in chunk-index
/// order are bit-identical for every thread count — the contract the GEMM
/// gradient kernels rely on.
void parallel_for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& fn);

}  // namespace fallsense::util
