// Minimal command-line argument parser for the fallsense CLI.
//
// Grammar: `program <command> [--flag] [--key value] [positional...]`.
// Flags and options use long names only; `--key=value` and `--key value`
// are both accepted.  Unknown options are an error (typos must not pass
// silently on a tool that can overwrite files).
#pragma once

#include <map>
#include <optional>
#include <set>
#include <string>
#include <vector>

namespace fallsense::util {

/// Whole-string numeric parses; std::nullopt on malformed input (callers
/// decide whether that is a usage error worth a message or a fallback).
std::optional<long> parse_long(const std::string& text);
std::optional<double> parse_double(const std::string& text);

class arg_parser {
public:
    /// Declare recognized names before parsing.
    void add_flag(const std::string& name);
    void add_option(const std::string& name);

    /// Parse argv after the command word; throws std::invalid_argument on
    /// unknown or malformed arguments.
    void parse(int argc, const char* const* argv, int start_index = 1);
    void parse(const std::vector<std::string>& args);

    bool has_flag(const std::string& name) const;
    std::optional<std::string> option(const std::string& name) const;
    std::string option_or(const std::string& name, const std::string& fallback) const;
    /// Option parsed as a number; throws on non-numeric values.
    double number_or(const std::string& name, double fallback) const;
    long integer_or(const std::string& name, long fallback) const;

    const std::vector<std::string>& positionals() const { return positionals_; }

private:
    std::set<std::string> declared_flags_;
    std::set<std::string> declared_options_;
    std::set<std::string> flags_;
    std::map<std::string, std::string> options_;
    std::vector<std::string> positionals_;
};

}  // namespace fallsense::util
