// Small descriptive-statistics helpers shared by the data synthesizer,
// the evaluation module, and the benches.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fallsense::util {

/// Arithmetic mean; 0 for an empty span.
double mean(std::span<const double> values);

/// Population variance (divides by N); 0 for spans shorter than 1.
double variance(std::span<const double> values);

/// Population standard deviation.
double stddev(std::span<const double> values);

/// Minimum / maximum; both throw on empty input.
double min_value(std::span<const double> values);
double max_value(std::span<const double> values);

/// Linearly interpolated percentile, p in [0, 100]. Throws on empty input.
double percentile(std::span<const double> values, double p);

/// Streaming mean/variance accumulator (Welford).
class running_stats {
public:
    void add(double x);
    std::size_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    /// Population variance.
    double variance() const { return n_ ? m2_ / static_cast<double>(n_) : 0.0; }
    double stddev() const;
    double min() const;
    double max() const;

private:
    std::size_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

}  // namespace fallsense::util
