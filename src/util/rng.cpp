#include "util/rng.hpp"

#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace fallsense::util {

namespace {

inline std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
}

}  // namespace

std::uint64_t splitmix64(std::uint64_t& state) {
    state += 0x9e3779b97f4a7c15ULL;
    std::uint64_t z = state;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

void rng::reseed(std::uint64_t seed) {
    std::uint64_t sm = seed;
    for (auto& s : state_) s = splitmix64(sm);
    // xoshiro must not start from the all-zero state.
    if ((state_[0] | state_[1] | state_[2] | state_[3]) == 0) state_[0] = 1;
    has_cached_normal_ = false;
}

std::uint64_t rng::next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
}

double rng::uniform() {
    // 53 high bits → double in [0, 1).
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
}

double rng::uniform(double lo, double hi) {
    FS_ARG_CHECK(lo <= hi, "uniform range is inverted");
    return lo + (hi - lo) * uniform();
}

std::int64_t rng::uniform_int(std::int64_t lo, std::int64_t hi) {
    FS_ARG_CHECK(lo <= hi, "uniform_int range is inverted");
    const auto span = static_cast<std::uint64_t>(hi - lo) + 1;
    if (span == 0) return static_cast<std::int64_t>(next_u64());  // full 64-bit range
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t limit = (~0ULL) - ((~0ULL) % span);
    std::uint64_t v = next_u64();
    while (v >= limit) v = next_u64();
    return lo + static_cast<std::int64_t>(v % span);
}

double rng::normal() {
    if (has_cached_normal_) {
        has_cached_normal_ = false;
        return cached_normal_;
    }
    // Box–Muller; u1 in (0,1] so log is finite.
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    const double u2 = uniform();
    const double r = std::sqrt(-2.0 * std::log(u1));
    const double theta = 2.0 * std::numbers::pi * u2;
    cached_normal_ = r * std::sin(theta);
    has_cached_normal_ = true;
    return r * std::cos(theta);
}

double rng::normal(double mean, double stddev) {
    FS_ARG_CHECK(stddev >= 0.0, "negative standard deviation");
    return mean + stddev * normal();
}

bool rng::bernoulli(double p_true) {
    FS_ARG_CHECK(p_true >= 0.0 && p_true <= 1.0, "probability outside [0, 1]");
    return uniform() < p_true;
}

std::uint64_t derive_seed(std::uint64_t parent, std::initializer_list<std::uint64_t> tags) {
    std::uint64_t s = parent ^ 0xd1b54a32d192ed03ULL;
    for (const auto tag : tags) {
        s ^= tag + 0x9e3779b97f4a7c15ULL + (s << 6) + (s >> 2);
        s = splitmix64(s);
    }
    return splitmix64(s);
}

std::uint64_t derive_seed(std::uint64_t parent, std::string_view tag) {
    std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV-1a offset basis
    for (const char c : tag) {
        h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
        h *= 0x100000001b3ULL;
    }
    return derive_seed(parent, {h});
}

}  // namespace fallsense::util
