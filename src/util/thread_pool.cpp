#include "util/thread_pool.hpp"

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstdlib>
#include <exception>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

#include "util/check.hpp"
#include "util/env.hpp"

namespace fallsense::util {

namespace {

thread_local bool tl_in_parallel_region = false;

/// RAII flag so nested parallel_for calls detect they are inside a task.
struct region_guard {
    bool previous;
    region_guard() : previous(tl_in_parallel_region) { tl_in_parallel_region = true; }
    ~region_guard() { tl_in_parallel_region = previous; }
};

}  // namespace

struct thread_pool::impl {
    std::vector<std::thread> workers;

    std::mutex mu;
    std::condition_variable cv_start;
    std::condition_variable cv_done;
    std::uint64_t generation = 0;
    bool stopping = false;

    // Current job (valid while workers_remaining > 0).
    const std::function<void(std::size_t)>* job = nullptr;
    std::size_t job_tasks = 0;
    std::size_t participants = 1;
    std::size_t workers_remaining = 0;
    std::exception_ptr first_error;

    void run_share(std::size_t participant) {
        region_guard guard;
        for (std::size_t i = participant; i < job_tasks; i += participants) {
            (*job)(i);
        }
    }

    void worker_loop(std::size_t participant) {
        std::uint64_t seen = 0;
        for (;;) {
            {
                std::unique_lock<std::mutex> lock(mu);
                cv_start.wait(lock, [&] { return stopping || generation != seen; });
                if (stopping) return;
                seen = generation;
            }
            try {
                run_share(participant);
            } catch (...) {
                std::lock_guard<std::mutex> lock(mu);
                if (!first_error) first_error = std::current_exception();
            }
            {
                std::lock_guard<std::mutex> lock(mu);
                if (--workers_remaining == 0) cv_done.notify_all();
            }
        }
    }
};

thread_pool::thread_pool(std::size_t threads) : impl_(new impl) {
    FS_ARG_CHECK(threads >= 1, "thread_pool needs at least one participant");
    impl_->participants = threads;
    impl_->workers.reserve(threads - 1);
    for (std::size_t w = 1; w < threads; ++w) {
        impl_->workers.emplace_back([this, w] { impl_->worker_loop(w); });
    }
}

thread_pool::~thread_pool() {
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->stopping = true;
    }
    impl_->cv_start.notify_all();
    for (std::thread& t : impl_->workers) t.join();
    delete impl_;
}

std::size_t thread_pool::thread_count() const { return impl_->participants; }

bool thread_pool::in_parallel_region() { return tl_in_parallel_region; }

void thread_pool::run(std::size_t tasks, const std::function<void(std::size_t)>& fn) {
    if (tasks == 0) return;
    // Inline paths: single participant, a nested call from inside a pool
    // task, or fewer tasks than it takes to amortize a wakeup.
    if (impl_->participants == 1 || tl_in_parallel_region || tasks == 1) {
        region_guard guard;
        for (std::size_t i = 0; i < tasks; ++i) fn(i);
        return;
    }
    {
        std::lock_guard<std::mutex> lock(impl_->mu);
        impl_->job = &fn;
        impl_->job_tasks = tasks;
        impl_->workers_remaining = impl_->workers.size();
        impl_->first_error = nullptr;
        ++impl_->generation;
    }
    impl_->cv_start.notify_all();
    // The calling thread is participant 0.
    std::exception_ptr local_error;
    try {
        impl_->run_share(0);
    } catch (...) {
        local_error = std::current_exception();
    }
    std::unique_lock<std::mutex> lock(impl_->mu);
    impl_->cv_done.wait(lock, [&] { return impl_->workers_remaining == 0; });
    impl_->job = nullptr;
    std::exception_ptr error = impl_->first_error ? impl_->first_error : local_error;
    lock.unlock();
    if (error) std::rethrow_exception(error);
}

namespace {

std::mutex g_pool_mu;
std::unique_ptr<thread_pool> g_pool;

}  // namespace

std::size_t env_thread_count() {
    const std::string text = env_string("FALLSENSE_THREADS");
    if (!text.empty()) {
        const unsigned long long n = std::strtoull(text.c_str(), nullptr, 10);
        if (n >= 1) return static_cast<std::size_t>(std::min(n, 1024ULL));
    }
    const unsigned hw = std::thread::hardware_concurrency();
    return hw >= 1 ? hw : 1;
}

thread_pool& global_pool() {
    std::lock_guard<std::mutex> lock(g_pool_mu);
    if (!g_pool) g_pool = std::make_unique<thread_pool>(env_thread_count());
    return *g_pool;
}

std::size_t global_thread_count() { return global_pool().thread_count(); }

void set_global_threads(std::size_t threads) {
    FS_CHECK(!thread_pool::in_parallel_region(),
             "set_global_threads called from inside a parallel region");
    std::lock_guard<std::mutex> lock(g_pool_mu);
    g_pool = std::make_unique<thread_pool>(threads == 0 ? env_thread_count() : threads);
}

void parallel_for(std::size_t begin, std::size_t end, std::size_t grain,
                  const std::function<void(std::size_t)>& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    thread_pool& pool = global_pool();
    const std::size_t min_chunk = std::max<std::size_t>(grain, 1);
    if (n <= min_chunk || pool.thread_count() == 1 || thread_pool::in_parallel_region()) {
        region_guard guard;
        for (std::size_t i = begin; i < end; ++i) fn(i);
        return;
    }
    // Per-index work has no cross-index ordering, so the chunking may adapt
    // to the pool size (unlike parallel_for_chunks).
    const std::size_t target = (n + pool.thread_count() * 4 - 1) / (pool.thread_count() * 4);
    const std::size_t chunk = std::max(min_chunk, target);
    const std::size_t chunks = (n + chunk - 1) / chunk;
    // One reference capture keeps the dispatch closure inside the
    // std::function small-buffer store: a hot serving tick issues several
    // parallel regions, and none of them may heap-allocate.
    struct dispatch_ctx {
        std::size_t begin, end, chunk;
        const std::function<void(std::size_t)>* fn;
    } ctx{begin, end, chunk, &fn};
    pool.run(chunks, [&ctx](std::size_t c) {
        const std::size_t lo = ctx.begin + c * ctx.chunk;
        const std::size_t hi = std::min(ctx.end, lo + ctx.chunk);
        for (std::size_t i = lo; i < hi; ++i) (*ctx.fn)(i);
    });
}

void parallel_for_chunks(std::size_t begin, std::size_t end, std::size_t grain,
                         const std::function<void(std::size_t, std::size_t, std::size_t)>& fn) {
    if (begin >= end) return;
    const std::size_t n = end - begin;
    const std::size_t chunk = std::max<std::size_t>(grain, 1);
    const std::size_t chunks = (n + chunk - 1) / chunk;
    // Chunk boundaries are fixed by `grain` alone; only the assignment of
    // chunks to threads varies with the pool size.  The single-reference
    // capture keeps the closure in the std::function small-buffer store.
    struct dispatch_ctx {
        std::size_t begin, end, chunk;
        const std::function<void(std::size_t, std::size_t, std::size_t)>* fn;
    } ctx{begin, end, chunk, &fn};
    global_pool().run(chunks, [&ctx](std::size_t c) {
        const std::size_t lo = ctx.begin + c * ctx.chunk;
        const std::size_t hi = std::min(ctx.end, lo + ctx.chunk);
        (*ctx.fn)(c, lo, hi);
    });
}

}  // namespace fallsense::util
