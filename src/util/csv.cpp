#include "util/csv.hpp"

#include <charconv>
#include <fstream>
#include <sstream>

#include "util/check.hpp"

namespace fallsense::util {

namespace {

std::vector<std::string> split_line(const std::string& line) {
    std::vector<std::string> cells;
    std::string cell;
    for (const char c : line) {
        if (c == ',') {
            cells.push_back(std::move(cell));
            cell.clear();
        } else if (c != '\r') {
            cell.push_back(c);
        }
    }
    cells.push_back(std::move(cell));
    return cells;
}

}  // namespace

std::size_t csv_table::column_index(const std::string& name) const {
    for (std::size_t i = 0; i < header.size(); ++i) {
        if (header[i] == name) return i;
    }
    throw std::out_of_range("csv column not found: " + name);
}

double csv_table::number_at(std::size_t row, std::size_t col) const {
    FS_ARG_CHECK(row < rows.size(), "csv row out of range");
    FS_ARG_CHECK(col < rows[row].size(), "csv column out of range");
    const std::string& cell = rows[row][col];
    double value = 0.0;
    const auto* begin = cell.data();
    const auto* end = cell.data() + cell.size();
    const auto [ptr, ec] = std::from_chars(begin, end, value);
    if (ec != std::errc{} || ptr != end) {
        std::ostringstream os;
        os << "csv numeric parse failure at row " << row << ", col " << col << ": '" << cell << "'";
        throw std::runtime_error(os.str());
    }
    return value;
}

csv_table parse_csv(const std::string& text, bool has_header) {
    csv_table table;
    std::istringstream in(text);
    std::string line;
    bool header_pending = has_header;
    while (std::getline(in, line)) {
        if (line.empty() || line == "\r") continue;
        auto cells = split_line(line);
        if (header_pending) {
            table.header = std::move(cells);
            header_pending = false;
        } else {
            table.rows.push_back(std::move(cells));
        }
    }
    return table;
}

csv_table read_csv_file(const std::filesystem::path& path, bool has_header) {
    std::ifstream in(path, std::ios::binary);
    if (!in) throw std::runtime_error("cannot open csv file: " + path.string());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return parse_csv(buffer.str(), has_header);
}

std::string to_csv(const std::vector<std::string>& header,
                   const std::vector<std::vector<std::string>>& rows) {
    std::ostringstream os;
    auto emit_row = [&os](const std::vector<std::string>& cells) {
        for (std::size_t i = 0; i < cells.size(); ++i) {
            if (i) os << ',';
            os << cells[i];
        }
        os << '\n';
    };
    if (!header.empty()) emit_row(header);
    for (const auto& row : rows) emit_row(row);
    return os.str();
}

void write_csv_file(const std::filesystem::path& path, const std::vector<std::string>& header,
                    const std::vector<std::vector<std::string>>& rows) {
    std::ofstream out(path, std::ios::binary);
    if (!out) throw std::runtime_error("cannot write csv file: " + path.string());
    out << to_csv(header, rows);
    if (!out) throw std::runtime_error("write failure on csv file: " + path.string());
}

}  // namespace fallsense::util
