#include "util/env.hpp"

#include <cstdlib>

namespace fallsense::util {

run_scale parse_run_scale(const std::string& text) {
    if (text == "tiny") return run_scale::tiny;
    if (text == "full") return run_scale::full;
    return run_scale::quick;
}

const char* run_scale_name(run_scale scale) {
    switch (scale) {
        case run_scale::tiny: return "tiny";
        case run_scale::quick: return "quick";
        case run_scale::full: return "full";
    }
    return "?";
}

run_scale env_run_scale() { return parse_run_scale(env_string("FALLSENSE_SCALE")); }

std::uint64_t env_seed() {
    const std::string text = env_string("FALLSENSE_SEED");
    if (text.empty()) return 42;
    return static_cast<std::uint64_t>(std::strtoull(text.c_str(), nullptr, 10));
}

std::string env_string(const char* name) {
    const char* value = std::getenv(name);
    return value ? std::string(value) : std::string();
}

}  // namespace fallsense::util
