// Deterministic random number generation.
//
// All stochastic components in fallsense (data synthesis, augmentation,
// weight initialization, shuffling, the MCU jitter model) draw from
// `rng`, a xoshiro256** generator with explicit seeding.  Determinism is a
// hard requirement: every experiment in EXPERIMENTS.md must reproduce
// bit-identically for a given FALLSENSE_SEED.
//
// `derive_seed` hashes a parent seed with a stream of tags (subject id,
// task id, trial index, ...) so independent components get decorrelated,
// stable substreams without sharing generator state.
#pragma once

#include <cstdint>
#include <string_view>
#include <vector>

namespace fallsense::util {

/// xoshiro256** 1.0 (Blackman & Vigna) — fast, high-quality, 256-bit state.
class rng {
public:
    using result_type = std::uint64_t;

    explicit rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL) { reseed(seed); }

    /// Re-initialize state from a 64-bit seed via splitmix64 expansion.
    void reseed(std::uint64_t seed);

    /// Next raw 64-bit value.
    std::uint64_t next_u64();

    static constexpr result_type min() { return 0; }
    static constexpr result_type max() { return ~0ULL; }
    result_type operator()() { return next_u64(); }

    /// Uniform double in [0, 1).
    double uniform();
    /// Uniform double in [lo, hi).
    double uniform(double lo, double hi);
    /// Uniform integer in [lo, hi] (inclusive).
    std::int64_t uniform_int(std::int64_t lo, std::int64_t hi);
    /// Standard normal via Box–Muller (cached second deviate).
    double normal();
    /// Normal with given mean and standard deviation.
    double normal(double mean, double stddev);
    /// Bernoulli draw.
    bool bernoulli(double p_true);

    /// Fisher–Yates shuffle of an index-addressable container.
    template <typename Container>
    void shuffle(Container& c) {
        if (c.size() < 2) return;
        for (std::size_t i = c.size() - 1; i > 0; --i) {
            const auto j = static_cast<std::size_t>(uniform_int(0, static_cast<std::int64_t>(i)));
            using std::swap;
            swap(c[i], c[j]);
        }
    }

private:
    std::uint64_t state_[4]{};
    bool has_cached_normal_ = false;
    double cached_normal_ = 0.0;
};

/// splitmix64 step — used for seed expansion and seed derivation.
std::uint64_t splitmix64(std::uint64_t& state);

/// Derive a decorrelated child seed from a parent seed and a tag stream.
/// Stable across platforms and runs.
std::uint64_t derive_seed(std::uint64_t parent, std::initializer_list<std::uint64_t> tags);

/// Derive from a string tag (e.g. a module name) — FNV-1a folded into the stream.
std::uint64_t derive_seed(std::uint64_t parent, std::string_view tag);

}  // namespace fallsense::util
