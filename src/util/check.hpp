// Lightweight runtime-contract checking used across fallsense.
//
// FS_CHECK(cond, msg)  — always-on invariant check; throws std::logic_error.
// FS_ARG_CHECK(...)    — argument validation; throws std::invalid_argument.
//
// These are used on public API boundaries (where misuse must be reported to
// the caller) and for internal invariants that guard against silent data
// corruption.  Hot inner loops rely on validated preconditions instead.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace fallsense::util {

[[noreturn]] inline void throw_logic(const std::string& expr, const std::string& msg,
                                     const char* file, int line) {
    std::ostringstream os;
    os << "check failed: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::logic_error(os.str());
}

[[noreturn]] inline void throw_arg(const std::string& expr, const std::string& msg,
                                   const char* file, int line) {
    std::ostringstream os;
    os << "invalid argument: " << expr << " at " << file << ':' << line;
    if (!msg.empty()) os << " — " << msg;
    throw std::invalid_argument(os.str());
}

}  // namespace fallsense::util

#define FS_CHECK(cond, msg)                                                   \
    do {                                                                      \
        if (!(cond)) ::fallsense::util::throw_logic(#cond, (msg), __FILE__, __LINE__); \
    } while (false)

#define FS_ARG_CHECK(cond, msg)                                               \
    do {                                                                      \
        if (!(cond)) ::fallsense::util::throw_arg(#cond, (msg), __FILE__, __LINE__); \
    } while (false)
