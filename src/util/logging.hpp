// Minimal leveled logger.
//
// Benches and examples use this for progress reporting; the library itself
// stays quiet below `warn` so it can be embedded without console noise.
// Output is a single line per record: `[level module] message`.
#pragma once

#include <sstream>
#include <string>
#include <string_view>

namespace fallsense::util {

enum class log_level { debug = 0, info = 1, warn = 2, error = 3, off = 4 };

/// Global minimum level; records below it are discarded.
void set_log_level(log_level level);
log_level get_log_level();

/// Parse "debug" / "info" / "warn" / "error" / "off"; unknown → info.
log_level parse_log_level(std::string_view text);

/// Emit one record (thread-safe, newline appended).
void log_record(log_level level, std::string_view module, std::string_view message);

/// Stream-style builder: LOG_INFO("nn") << "epoch " << e;
class log_stream {
public:
    log_stream(log_level level, std::string_view module)
        : level_(level), module_(module), enabled_(level >= get_log_level()) {}
    ~log_stream() {
        if (enabled_) log_record(level_, module_, os_.str());
    }
    log_stream(const log_stream&) = delete;
    log_stream& operator=(const log_stream&) = delete;

    template <typename T>
    log_stream& operator<<(const T& value) {
        if (enabled_) os_ << value;
        return *this;
    }

private:
    log_level level_;
    std::string module_;
    bool enabled_;
    std::ostringstream os_;
};

}  // namespace fallsense::util

#define FS_LOG_DEBUG(module) ::fallsense::util::log_stream(::fallsense::util::log_level::debug, (module))
#define FS_LOG_INFO(module) ::fallsense::util::log_stream(::fallsense::util::log_level::info, (module))
#define FS_LOG_WARN(module) ::fallsense::util::log_stream(::fallsense::util::log_level::warn, (module))
#define FS_LOG_ERROR(module) ::fallsense::util::log_stream(::fallsense::util::log_level::error, (module))
