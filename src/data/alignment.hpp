// Dataset alignment and merging (Section IV-A).
//
// Before merging KFall with the self-collected dataset the paper (i) rotates
// KFall's sensor frame onto the reference frame with a rotation matrix from
// Rodrigues' formula and (ii) standardizes units to gravitational
// acceleration.  `align_dataset` performs both; `merge_datasets` then
// concatenates aligned datasets, preserving globally unique subject ids.
#pragma once

#include <vector>

#include "data/types.hpp"

namespace fallsense::data {

/// Convert one trial in place to g / rad/s and rotate its samples by `r`.
void align_trial(trial& t, const dsp::mat3& r);

/// Return a copy of `d` in the reference frame with standardized units.
/// The copy's `to_reference_frame` becomes identity.
dataset align_dataset(const dataset& d);

/// Concatenate aligned datasets.  Throws if any input is not yet aligned
/// (non-identity frame or non-standard units) or if subject ids collide.
dataset merge_datasets(const std::vector<dataset>& aligned, std::string merged_name);

}  // namespace fallsense::data
