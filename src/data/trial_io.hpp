// CSV import/export of trials — the interchange format for users who want
// to run fallsense on their own recordings.
//
// Layout: one row per sample with header
//   ax,ay,az,gx,gy,gz
// plus trial metadata carried in the file name or supplied by the caller.
#pragma once

#include <filesystem>

#include "data/types.hpp"

namespace fallsense::data {

/// Write the samples of a trial (units as stored).
void write_trial_csv(const trial& t, const std::filesystem::path& path);

/// Read samples into a trial skeleton.  Metadata (subject/task ids, units,
/// annotation) must be set by the caller; samples/sample_rate come from the
/// file and the `sample_rate_hz` argument.
trial read_trial_csv(const std::filesystem::path& path, double sample_rate_hz);

}  // namespace fallsense::data
