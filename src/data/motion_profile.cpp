#include "data/motion_profile.hpp"

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <stdexcept>
#include <string>

#include "util/check.hpp"

namespace fallsense::data {

namespace {

using phases = std::vector<motion_phase>;

/// Small multiplicative jitter: value * U(1-spread, 1+spread).
double vary(double value, double spread, util::rng& gen) {
    return value * gen.uniform(1.0 - spread, 1.0 + spread);
}

motion_phase hold(double duration_s, double pitch = 0.0, double roll = 0.0) {
    motion_phase p;
    p.duration_s = duration_s;
    p.pitch_to = pitch;
    p.roll_to = roll;
    p.accel_noise_g = 0.012;
    p.gyro_noise_rad_s = 0.015;
    return p;
}

motion_phase locomotion(double duration_s, double bounce_g, double cadence_hz,
                        double yaw_to = 0.0) {
    motion_phase p;
    p.duration_s = duration_s;
    p.bounce_amp_g = bounce_g;
    p.bounce_freq_hz = cadence_hz;
    p.yaw_to = yaw_to;
    p.accel_noise_g = 0.035;
    p.gyro_noise_rad_s = 0.12;
    return p;
}

motion_phase transition(double duration_s, double pitch_to, double roll_to = 0.0,
                        double dip = 0.0, double impact_g = 0.0) {
    motion_phase p;
    p.duration_s = duration_s;
    p.pitch_to = pitch_to;
    p.roll_to = roll_to;
    p.support_to = 1.0 - dip;  // mild unweighting during quick descents
    p.accel_noise_g = 0.03;
    p.gyro_noise_rad_s = 0.08;
    p.impact_g = impact_g;
    return p;
}

/// The unrecoverable falling phase.  `attitude_late` delays the attitude
/// ramp toward the end (falls from height: clean drop first, rotation late).
motion_phase falling(double duration_s, double pitch_to, double roll_to,
                     double freefall_depth, double impact_g, bool attitude_late = false) {
    motion_phase p;
    p.duration_s = duration_s;
    p.pitch_to = attitude_late ? pitch_to * 0.5 : pitch_to;
    p.roll_to = attitude_late ? roll_to * 0.5 : roll_to;
    p.support_to = 1.0 - freefall_depth;
    p.accel_noise_g = 0.09;
    p.gyro_noise_rad_s = 0.38;
    p.impact_g = impact_g;
    p.semantic = phase_semantic::falling;
    return p;
}

motion_phase post_fall(double duration_s, double pitch, double roll) {
    motion_phase p;
    p.duration_s = duration_s;
    p.pitch_to = pitch;
    p.roll_to = roll;
    p.accel_noise_g = 0.01;
    p.gyro_noise_rad_s = 0.012;
    p.semantic = phase_semantic::post_fall;
    return p;
}

/// Ballistic flight (jump) — free fall without loss of recovery.
motion_phase flight(double duration_s, double landing_impact_g) {
    motion_phase p;
    p.duration_s = duration_s;
    p.support_to = 0.0;
    p.accel_noise_g = 0.04;
    p.gyro_noise_rad_s = 0.15;
    p.impact_g = landing_impact_g;
    return p;
}

/// Append a standard fall tail: falling -> post-fall lying.  The impact
/// impulse rides on the end of the falling phase; annotation marks the
/// impulse start as the impact frame (see synthesizer).
void append_fall(phases& script, double fall_s, double pitch_to, double roll_to,
                 double freefall_depth, double impact_g, double post_s,
                 bool attitude_late = false) {
    script.push_back(
        falling(fall_s, pitch_to, roll_to, freefall_depth, impact_g, attitude_late));
    // Lying attitude: keep the terminal fall attitude.
    script.push_back(post_fall(post_s, script.back().pitch_to, script.back().roll_to));
}

}  // namespace

std::vector<motion_phase> build_task_phases(int task_id, const subject_profile& subject,
                                            const motion_tuning& tuning, util::rng& gen) {
    FS_ARG_CHECK(subject.tempo > 0.0 && subject.vigor > 0.0 && subject.noisiness > 0.0,
                 "subject profile factors must be positive");
    const double tempo = subject.tempo;
    const double vigor = subject.vigor;
    // Taller/heavier subjects fall slightly longer and hit slightly harder.
    const double stature = subject.height_cm / 178.0;
    const double mass = subject.weight_kg / 71.5;

    auto T = [&](double s) { return vary(s * tempo, 0.15, gen); };      // duration
    auto A = [&](double g) { return vary(g * vigor, 0.20, gen); };      // amplitude
    auto ang = [&](double r) { return vary(r, 0.12, gen); };            // attitude
    auto fall_T = [&](double s) { return vary(s * stature, 0.18, gen); };
    auto hit = [&](double g) { return vary(g * mass, 0.20, gen); };
    // Free-fall depth: how completely the body unloads during the falling
    // phase.  Pivoting falls (sitting/fainting) unload only partially; clean
    // drops from height approach full ballistic unloading.  Per-trial
    // variation keeps the classes from being separable on one feature.
    auto depth = [&](double d) { return std::clamp(vary(d, 0.20, gen), 0.25, 1.0); };

    const double hold_s = tuning.static_hold_s;
    const double loco_s = tuning.locomotion_s;
    const double post_s = tuning.post_fall_hold_s;

    phases script;
    switch (task_id) {
        // ---- static ADLs -------------------------------------------------
        case 1:
            script.push_back(hold(T(hold_s)));
            break;
        case 11:
            script.push_back(hold(T(hold_s), ang(0.12)));
            break;
        case 17:
            script.push_back(hold(T(hold_s), ang(-1.45)));
            break;

        // ---- transition ADLs ---------------------------------------------
        case 2:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(1.5), ang(1.25)));
            script.push_back(hold(T(1.2), ang(1.25)));
            script.push_back(transition(T(1.5), 0.0));
            script.push_back(hold(T(1.0)));
            break;
        case 3:
            script.push_back(hold(T(0.8)));
            script.push_back(transition(T(1.4), ang(1.10), 0.0, 0.04));
            script.push_back(transition(T(1.2), 0.0));
            script.push_back(hold(T(0.8)));
            break;
        case 5:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(2.0), ang(0.45), 0.0, 0.12));
            script.push_back(hold(T(1.5), ang(0.45)));
            script.push_back(transition(T(2.0), 0.0));
            script.push_back(hold(T(1.0)));
            break;
        case 13:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(1.2), ang(0.18), 0.0, 0.08));
            script.push_back(hold(T(1.5), ang(0.18)));
            script.push_back(transition(T(1.2), 0.0));
            script.push_back(hold(T(1.0)));
            break;
        case 14:
            script.push_back(hold(T(0.8)));
            script.push_back(transition(T(0.55), ang(0.2), 0.0, 0.30, hit(1.6)));
            script.push_back(hold(T(1.0), ang(0.2)));
            script.push_back(transition(T(0.55), 0.0, 0.0, 0.10));
            script.push_back(hold(T(0.8)));
            break;
        case 18:
            script.push_back(hold(T(1.2), ang(0.15)));
            script.push_back(transition(T(1.8), ang(-1.35), 0.0, 0.10));
            script.push_back(hold(T(1.8), ang(-1.35)));
            script.push_back(transition(T(1.8), ang(0.15)));
            script.push_back(hold(T(1.0), ang(0.15)));
            break;
        case 19:
            script.push_back(hold(T(1.0), ang(0.15)));
            script.push_back(transition(T(0.85), ang(-1.35), 0.0, 0.18, hit(1.4)));
            script.push_back(hold(T(1.4), ang(-1.35)));
            script.push_back(transition(T(0.8), ang(0.15), 0.0, 0.10));
            break;

        // ---- locomotion ADLs ----------------------------------------------
        case 6:
            script.push_back(locomotion(T(loco_s / 2), A(0.22), vary(1.8, 0.1, gen)));
            script.push_back(locomotion(T(loco_s / 2), A(0.22), vary(1.8, 0.1, gen), ang(3.1)));
            break;
        case 7:
            script.push_back(locomotion(T(loco_s / 2), A(0.34), vary(2.2, 0.1, gen)));
            script.push_back(locomotion(T(loco_s / 2), A(0.34), vary(2.2, 0.1, gen), ang(3.1)));
            break;
        case 8:
            script.push_back(locomotion(T(loco_s / 2), A(0.60), vary(2.6, 0.1, gen)));
            script.push_back(locomotion(T(loco_s / 2), A(0.60), vary(2.6, 0.1, gen), ang(3.1)));
            break;
        case 9:
            script.push_back(locomotion(T(loco_s / 2), A(0.80), vary(2.9, 0.1, gen)));
            script.push_back(locomotion(T(loco_s / 2), A(0.80), vary(2.9, 0.1, gen), ang(3.1)));
            break;
        case 12:
            script.push_back(locomotion(T(loco_s), A(0.40), vary(2.0, 0.1, gen)));
            break;
        case 16:
            script.push_back(locomotion(T(loco_s * 0.8), A(0.55), vary(2.4, 0.1, gen)));
            break;
        case 35:
            script.push_back(locomotion(T(loco_s), A(0.34), vary(1.9, 0.1, gen)));
            break;
        case 36:
            script.push_back(locomotion(T(loco_s * 0.8), A(0.48), vary(2.3, 0.1, gen)));
            break;
        case 43:
            script.push_back(locomotion(T(loco_s), A(0.38), vary(2.0, 0.1, gen)));
            script.push_back(hold(T(0.8)));
            script.push_back(locomotion(T(loco_s), A(0.42), vary(2.0, 0.1, gen)));
            break;

        // ---- near-fall ADLs ------------------------------------------------
        case 4: {  // gentle jump: crouch, takeoff, flight, landing
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(0.4), ang(0.3), 0.0, 0.05));
            motion_phase takeoff = transition(T(0.18), 0.0);
            takeoff.support_to = 1.0;
            takeoff.bounce_amp_g = A(1.1);  // push-off surge
            takeoff.bounce_freq_hz = 2.8;
            script.push_back(takeoff);
            script.push_back(flight(vary(0.30, 0.2, gen), hit(2.4)));
            script.push_back(hold(T(1.0)));
            break;
        }
        case 10: {  // stumble with recovery
            script.push_back(locomotion(T(2.5), A(0.25), vary(1.9, 0.1, gen)));
            motion_phase stumble = falling(vary(0.18, 0.2, gen), ang(0.30), ang(0.08),
                                           depth(0.22), hit(0.9));
            stumble.semantic = phase_semantic::activity;  // recovered — not a fall
            script.push_back(stumble);
            script.push_back(transition(T(0.5), 0.0));
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.9, 0.1, gen)));
            break;
        }
        case 15: {  // collapse into a chair
            script.push_back(hold(T(1.0), ang(0.15)));
            script.push_back(transition(T(0.8), ang(-0.1)));
            motion_phase collapse =
                falling(vary(0.30, 0.2, gen), ang(0.22), ang(0.1), depth(0.40), hit(1.8));
            collapse.semantic = phase_semantic::activity;  // lands on the chair
            script.push_back(collapse);
            script.push_back(hold(T(1.5), ang(0.2)));
            break;
        }
        case 44: {  // walk + jump over obstacle — the paper's top FP source
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.8, 0.1, gen)));
            motion_phase takeoff = transition(T(0.15), ang(0.1));
            takeoff.bounce_amp_g = A(1.3);
            takeoff.bounce_freq_hz = 3.0;
            script.push_back(takeoff);
            script.push_back(flight(vary(0.38, 0.2, gen), hit(3.0)));
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.8, 0.1, gen)));
            break;
        }

        // ---- falls when trying to sit / get up (20-24) ---------------------
        case 20:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(0.5), ang(0.2), 0.0, 0.08));
            append_fall(script, fall_T(0.55), ang(1.45), ang(0.1), depth(0.45), hit(4.5), post_s);
            break;
        case 21:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(0.5), ang(0.2), 0.0, 0.08));
            append_fall(script, fall_T(0.50), ang(-1.45), ang(-0.1), depth(0.45), hit(4.8), post_s);
            break;
        case 22:
            script.push_back(hold(T(1.0)));
            script.push_back(transition(T(0.5), ang(0.15), 0.0, 0.08));
            append_fall(script, fall_T(0.52), ang(0.15), ang(1.40), depth(0.42), hit(4.4), post_s);
            break;
        case 23:
            script.push_back(hold(T(1.5), ang(0.15)));
            script.push_back(transition(T(0.6), ang(-0.1), 0.0, 0.05));
            append_fall(script, fall_T(0.50), ang(1.40), ang(0.1), depth(0.42), hit(4.6), post_s);
            break;
        case 24:
            script.push_back(hold(T(1.5), ang(0.15)));
            script.push_back(transition(T(0.6), ang(-0.1), 0.0, 0.05));
            append_fall(script, fall_T(0.50), ang(0.1), ang(-1.40), depth(0.42), hit(4.5), post_s);
            break;

        // ---- fainting falls from sitting (25-27): slower slump -------------
        case 25:
            script.push_back(hold(T(2.0), ang(0.15)));
            script.push_back(transition(T(0.5), ang(0.35)));  // slump forward
            append_fall(script, fall_T(0.65), ang(1.40), ang(0.05), depth(0.36), hit(3.6), post_s);
            break;
        case 26:
            script.push_back(hold(T(2.0), ang(0.15)));
            script.push_back(transition(T(0.5), ang(0.2), ang(0.3)));
            append_fall(script, fall_T(0.62), ang(0.2), ang(1.40), depth(0.36), hit(3.5), post_s);
            break;
        case 27:
            script.push_back(hold(T(2.0), ang(0.15)));
            script.push_back(transition(T(0.5), ang(-0.15)));
            append_fall(script, fall_T(0.60), ang(-1.40), 0.0, depth(0.38), hit(3.8), post_s);
            break;

        // ---- falls while walking / jogging (28-34) --------------------------
        case 28:
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.8, 0.1, gen)));
            append_fall(script, fall_T(0.45), ang(1.50), ang(0.1), depth(0.60), hit(5.2), post_s);
            break;
        case 29: {
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.8, 0.1, gen)));
            // Hands dampen the fall: shallower free fall, softer impact.
            append_fall(script, fall_T(0.50), ang(1.35), ang(0.1), depth(0.42), hit(3.0), post_s);
            break;
        }
        case 30:
            script.push_back(locomotion(T(2.0), A(0.26), vary(1.9, 0.1, gen)));
            append_fall(script, fall_T(0.45), ang(1.50), ang(0.12), depth(0.58), hit(5.5), post_s);
            break;
        case 31:
            script.push_back(locomotion(T(2.0), A(0.60), vary(2.6, 0.1, gen)));
            append_fall(script, fall_T(0.42), ang(1.55), ang(0.15), depth(0.78), hit(6.4), post_s);
            break;
        case 32:
            script.push_back(locomotion(T(2.0), A(0.26), vary(1.9, 0.1, gen)));
            append_fall(script, fall_T(0.50), ang(1.45), ang(0.1), depth(0.52), hit(5.0), post_s);
            break;
        case 33:
            script.push_back(locomotion(T(2.0), A(0.26), vary(1.9, 0.1, gen)));
            append_fall(script, fall_T(0.52), ang(0.2), ang(1.45), depth(0.48), hit(4.8), post_s);
            break;
        case 34:
            script.push_back(locomotion(T(2.0), A(0.26), vary(1.9, 0.1, gen)));
            append_fall(script, fall_T(0.55), ang(-1.45), ang(-0.1), depth(0.48), hit(5.0), post_s);
            break;

        // ---- backward-walking falls (37-38, self-collected) -----------------
        case 37:
            script.push_back(locomotion(T(2.0), A(0.18), vary(1.5, 0.1, gen)));
            append_fall(script, fall_T(0.60), ang(-1.45), 0.0, depth(0.46), hit(4.6), post_s);
            break;
        case 38:
            script.push_back(locomotion(T(1.5), A(0.30), vary(2.1, 0.1, gen)));
            append_fall(script, fall_T(0.45), ang(-1.50), 0.0, depth(0.55), hit(5.6), post_s);
            break;

        // ---- falls from height (39-42): clean drop, late rotation ----------
        case 39:
            script.push_back(hold(T(1.5), ang(0.1)));
            append_fall(script, fall_T(0.75), ang(1.30), ang(0.1), depth(0.95), hit(7.0), post_s,
                        /*attitude_late=*/true);
            break;
        case 40:
            script.push_back(hold(T(1.5), ang(0.1)));
            append_fall(script, fall_T(0.72), ang(-1.30), 0.0, depth(0.95), hit(7.2), post_s,
                        /*attitude_late=*/true);
            break;
        case 41: {
            // Ladder climb: slow cadence with rung impacts.
            script.push_back(locomotion(T(2.0), A(0.20), vary(1.1, 0.1, gen)));
            append_fall(script, fall_T(0.65), ang(-1.35), ang(0.1), depth(0.88), hit(6.0), post_s,
                        /*attitude_late=*/true);
            break;
        }
        case 42: {
            script.push_back(locomotion(T(2.0), A(0.20), vary(1.1, 0.1, gen)));
            append_fall(script, fall_T(0.60), ang(-1.35), ang(-0.1), depth(0.88), hit(5.8), post_s,
                        /*attitude_late=*/true);
            break;
        }

        // ---- adversarial extension scripts (45-46, not in Table II) --------
        case 45: {  // near-fall arrested mid-descent: a genuine fall onset
                    // (deep unweighting, strong forward pitch) caught and
                    // reversed before ground contact — harder than the
                    // task-10 stumble, which barely unweights.
            script.push_back(locomotion(T(2.0), A(0.25), vary(1.9, 0.1, gen)));
            motion_phase descent = falling(vary(0.32, 0.2, gen), ang(0.85), ang(0.15),
                                           depth(0.55), hit(1.4));
            descent.semantic = phase_semantic::activity;  // recovered — not a fall
            script.push_back(descent);
            script.push_back(transition(T(0.7), ang(0.1)));  // hauls back upright
            script.push_back(hold(T(1.0), ang(0.1)));
            script.push_back(locomotion(T(1.5), A(0.22), vary(1.8, 0.1, gen)));
            break;
        }
        case 46: {  // trip caught on the hands: fast forward pitch and a
                    // hard hand-strike impact, then push-up and walk on.
            script.push_back(locomotion(T(2.0), A(0.30), vary(2.0, 0.1, gen)));
            motion_phase trip = falling(vary(0.24, 0.2, gen), ang(0.95), ang(0.1),
                                        depth(0.65), hit(2.2));
            trip.semantic = phase_semantic::activity;  // hands catch the fall
            script.push_back(trip);
            script.push_back(transition(T(0.6), ang(0.25), 0.0, 0.05));
            script.push_back(transition(T(0.8), 0.0));
            script.push_back(locomotion(T(1.8), A(0.28), vary(2.0, 0.1, gen)));
            break;
        }

        default:
            throw std::out_of_range("no motion script for task id " + std::to_string(task_id));
    }
    FS_CHECK(!script.empty(), "empty motion script");
    return script;
}

// ---------------------------------------------------------------------------
// Named scenario profiles
// ---------------------------------------------------------------------------

bool stream_perturbation::any() const {
    return (vibration_amp_g > 0.0 && vibration_freq_hz > 0.0) ||
           (dropout_bursts_per_min > 0.0 && dropout_burst_s > 0.0) ||
           (jitter_bursts_per_min > 0.0 && jitter_burst_s > 0.0);
}

void apply_stream_perturbation(std::vector<raw_sample>& samples,
                               const stream_perturbation& perturb,
                               double sample_rate_hz, util::rng& gen) {
    FS_ARG_CHECK(sample_rate_hz > 0.0, "perturbation needs a positive sample rate");
    if (!perturb.any() || samples.empty()) return;
    constexpr double k_two_pi = 6.283185307179586;
    const double dt = 1.0 / sample_rate_hz;
    const double minutes = static_cast<double>(samples.size()) * dt / 60.0;
    const auto burst_count = [&](double per_min) {
        // A knob that is on yields at least one burst even on short
        // streams, so every scenario stream actually sees its effect.
        return static_cast<std::size_t>(std::max<std::int64_t>(
            1, static_cast<std::int64_t>(std::llround(per_min * minutes))));
    };
    const auto burst_span = [&](double burst_s, std::size_t& start, std::size_t& end) {
        const std::size_t len = static_cast<std::size_t>(
            std::max<std::int64_t>(1, std::llround(burst_s * sample_rate_hz)));
        start = static_cast<std::size_t>(
            gen.uniform_int(0, static_cast<std::int64_t>(samples.size() - 1)));
        end = std::min(samples.size(), start + len);
    };

    if (perturb.vibration_amp_g > 0.0 && perturb.vibration_freq_hz > 0.0) {
        const double phase[3] = {gen.uniform(0.0, k_two_pi), gen.uniform(0.0, k_two_pi),
                                 gen.uniform(0.0, k_two_pi)};
        for (std::size_t i = 0; i < samples.size(); ++i) {
            const double arg = k_two_pi * perturb.vibration_freq_hz *
                               static_cast<double>(i) * dt;
            for (int a = 0; a < 3; ++a) {
                samples[i].accel[static_cast<std::size_t>(a)] += static_cast<float>(
                    perturb.vibration_amp_g * std::sin(arg + phase[a]));
            }
        }
    }
    if (perturb.dropout_bursts_per_min > 0.0 && perturb.dropout_burst_s > 0.0) {
        const std::size_t bursts = burst_count(perturb.dropout_bursts_per_min);
        for (std::size_t b = 0; b < bursts; ++b) {
            std::size_t start = 0, end = 0;
            burst_span(perturb.dropout_burst_s, start, end);
            const raw_sample frozen = samples[start];
            for (std::size_t i = start + 1; i < end; ++i) samples[i] = frozen;
        }
    }
    if (perturb.jitter_bursts_per_min > 0.0 && perturb.jitter_burst_s > 0.0) {
        const std::size_t bursts = burst_count(perturb.jitter_bursts_per_min);
        for (std::size_t b = 0; b < bursts; ++b) {
            std::size_t start = 0, end = 0;
            burst_span(perturb.jitter_burst_s, start, end);
            for (std::size_t i = start; i < end; ++i) {
                for (std::size_t a = 0; a < 3; ++a) {
                    samples[i].accel[a] +=
                        static_cast<float>(gen.normal(0.0, perturb.jitter_accel_g));
                    samples[i].gyro[a] +=
                        static_cast<float>(gen.normal(0.0, perturb.jitter_gyro_rad_s));
                }
            }
        }
    }
}

namespace {

/// Everyday Table II mix the loadgen has always cycled: ADLs, near-fall
/// ADLs, and falls, so a fleet sees quiet and trigger-heavy streams.
const std::vector<int> k_baseline_mix = {6, 20, 12, 30, 1, 25, 18, 38};

const std::vector<scenario_profile>& registry() {
    static const std::vector<scenario_profile> profiles = [] {
        std::vector<scenario_profile> v;
        v.push_back({"baseline",
                     "everyday Table II mix: ADLs, near-fall ADLs, and falls",
                     k_baseline_mix,
                     {}});
        v.push_back({"near_fall",
                     "descents arrested mid-fall (id 45) among stumbles, "
                     "collapses, jumps, and real falls",
                     {45, 10, 45, 15, 30, 45, 4, 20},
                     {}});
        v.push_back({"trip_catch",
                     "trips caught on the hands (id 46) amid walking and "
                     "real forward falls",
                     {46, 6, 46, 12, 28, 46, 43, 38},
                     {}});
        {
            scenario_profile p{"vehicle_vibration",
                               "baseline mix riding a vibrating vehicle "
                               "(sustained sinusoid on the accelerometer)",
                               k_baseline_mix,
                               {}};
            p.perturb.vibration_amp_g = 0.12;
            p.perturb.vibration_freq_hz = 27.0;
            v.push_back(std::move(p));
        }
        {
            scenario_profile p{"sensor_dropout",
                               "baseline mix with frozen-sensor dropouts and "
                               "wideband jitter bursts",
                               k_baseline_mix,
                               {}};
            p.perturb.dropout_bursts_per_min = 6.0;
            p.perturb.dropout_burst_s = 0.35;
            p.perturb.jitter_bursts_per_min = 4.0;
            p.perturb.jitter_burst_s = 0.25;
            p.perturb.jitter_accel_g = 0.35;
            p.perturb.jitter_gyro_rad_s = 0.9;
            v.push_back(std::move(p));
        }
        return v;
    }();
    return profiles;
}

}  // namespace

scenario_profile make_profile(const std::string& name) {
    for (const scenario_profile& p : registry()) {
        if (p.name == name) return p;
    }
    std::string message = "unknown scenario profile '" + name + "'; registered:";
    for (const scenario_profile& p : registry()) message += " " + p.name;
    throw unknown_profile_error(message);
}

std::vector<std::string> list_profiles() {
    std::vector<std::string> names;
    names.reserve(registry().size());
    for (const scenario_profile& p : registry()) names.push_back(p.name);
    return names;
}

}  // namespace fallsense::data
