// Parametric motion scripts for every Table II task.
//
// Each task is described as a sequence of `motion_phase`s: torso-attitude
// ramps (pitch/roll/yaw targets), locomotion bounce (amplitude + cadence),
// support factor (1 = standing on the ground, 0 = free fall), optional
// terminal impact impulse, and a semantic label (activity / falling /
// impact / post-fall) used for frame-accurate annotation.
//
// The scripts encode the biomechanical structure the evaluation depends on:
//   - falls: activity -> unrecoverable falling (free-fall + attitude ramp)
//     -> impact spike -> motionless post-fall;
//   - near-fall ADLs (stumble, collapse into chair, jumps) contain brief
//     fall-like signatures but recover — the paper's false-positive sources;
//   - falls from height develop attitude change late, so their early
//     falling phase resembles a jump flight — the paper's hardest misses.
#pragma once

#include <array>
#include <vector>

#include "util/rng.hpp"

namespace fallsense::data {

enum class phase_semantic { activity, falling, impact, post_fall };

struct motion_phase {
    double duration_s = 1.0;
    // Attitude targets (rad) reached by smoothstep ramp across the phase.
    double pitch_to = 0.0;
    double roll_to = 0.0;
    double yaw_to = 0.0;
    // Locomotion bounce along the gravity axis.
    double bounce_amp_g = 0.0;
    double bounce_freq_hz = 0.0;
    // Support factor target: 1 = fully supported (|accel| ~ 1 g at rest),
    // 0 = ballistic free fall (|accel| ~ 0 g).  Ramped across the phase.
    double support_to = 1.0;
    // Sensor noise levels.
    double accel_noise_g = 0.02;
    double gyro_noise_rad_s = 0.03;
    // Impact impulse at the END of this phase (half-sine, ~60 ms), in g.
    double impact_g = 0.0;
    phase_semantic semantic = phase_semantic::activity;
};

/// Per-subject anthropometric/behavioral variation applied to every script.
struct subject_profile {
    int id = 0;
    double height_cm = 178.0;
    double weight_kg = 71.5;
    double tempo = 1.0;   ///< multiplies phase durations (slower > 1)
    double vigor = 1.0;   ///< multiplies bounce/impact amplitudes
    double noisiness = 1.0;  ///< multiplies sensor/movement noise
    /// How the jacket sits on this subject: a fixed attitude offset of the
    /// sensor w.r.t. the torso (rad).  This is the main source of
    /// cross-subject distribution shift — the reason the paper insists on
    /// subject-independent evaluation.
    double mount_pitch_offset = 0.0;
    double mount_roll_offset = 0.0;
    /// Per-channel sensor gain errors (calibration spread of the MEMS
    /// parts): ax, ay, az, gx, gy, gz multipliers.
    std::array<double, 6> channel_gain{1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    /// Gait idiosyncrasy: relative amplitude and phase of the second
    /// harmonic riding on the locomotion bounce.
    double gait_harmonic_amp = 0.25;
    double gait_harmonic_phase = 0.0;
};

/// Tuning knobs shared by all scripts (long static holds are shortened at
/// smaller run scales to bound synthetic-data volume).
struct motion_tuning {
    double static_hold_s = 8.0;      ///< nominal "stand/sit/lie 30 s" hold
    double locomotion_s = 5.0;       ///< nominal walking/jogging stretch
    double post_fall_hold_s = 2.0;   ///< motionless time after impact
};

/// Build the phase script for a task (Table II id) as performed by a
/// subject; `gen` supplies per-trial variation.  Throws for unknown ids.
std::vector<motion_phase> build_task_phases(int task_id, const subject_profile& subject,
                                            const motion_tuning& tuning, util::rng& gen);

}  // namespace fallsense::data
