// Parametric motion scripts for every Table II task.
//
// Each task is described as a sequence of `motion_phase`s: torso-attitude
// ramps (pitch/roll/yaw targets), locomotion bounce (amplitude + cadence),
// support factor (1 = standing on the ground, 0 = free fall), optional
// terminal impact impulse, and a semantic label (activity / falling /
// impact / post-fall) used for frame-accurate annotation.
//
// The scripts encode the biomechanical structure the evaluation depends on:
//   - falls: activity -> unrecoverable falling (free-fall + attitude ramp)
//     -> impact spike -> motionless post-fall;
//   - near-fall ADLs (stumble, collapse into chair, jumps) contain brief
//     fall-like signatures but recover — the paper's false-positive sources;
//   - falls from height develop attitude change late, so their early
//     falling phase resembles a jump flight — the paper's hardest misses.
//
// Beyond the 44 Table II tasks, ids 45-46 are *adversarial extension
// scripts* (near-fall recovered mid-descent, trip caught on the hands)
// following the hard-scenario settings of arXiv:2501.15655.  They are
// deliberately NOT part of data::taxonomy — the paper's datasets stay
// pinned at 44 tasks — and are reachable only through the named scenario
// profiles below (docs/evaluation.md catalogues them).
#pragma once

#include <array>
#include <stdexcept>
#include <string>
#include <vector>

#include "data/types.hpp"
#include "util/rng.hpp"

namespace fallsense::data {

enum class phase_semantic { activity, falling, impact, post_fall };

struct motion_phase {
    double duration_s = 1.0;
    // Attitude targets (rad) reached by smoothstep ramp across the phase.
    double pitch_to = 0.0;
    double roll_to = 0.0;
    double yaw_to = 0.0;
    // Locomotion bounce along the gravity axis.
    double bounce_amp_g = 0.0;
    double bounce_freq_hz = 0.0;
    // Support factor target: 1 = fully supported (|accel| ~ 1 g at rest),
    // 0 = ballistic free fall (|accel| ~ 0 g).  Ramped across the phase.
    double support_to = 1.0;
    // Sensor noise levels.
    double accel_noise_g = 0.02;
    double gyro_noise_rad_s = 0.03;
    // Impact impulse at the END of this phase (half-sine, ~60 ms), in g.
    double impact_g = 0.0;
    phase_semantic semantic = phase_semantic::activity;
};

/// Per-subject anthropometric/behavioral variation applied to every script.
struct subject_profile {
    int id = 0;
    double height_cm = 178.0;
    double weight_kg = 71.5;
    double tempo = 1.0;   ///< multiplies phase durations (slower > 1)
    double vigor = 1.0;   ///< multiplies bounce/impact amplitudes
    double noisiness = 1.0;  ///< multiplies sensor/movement noise
    /// How the jacket sits on this subject: a fixed attitude offset of the
    /// sensor w.r.t. the torso (rad).  This is the main source of
    /// cross-subject distribution shift — the reason the paper insists on
    /// subject-independent evaluation.
    double mount_pitch_offset = 0.0;
    double mount_roll_offset = 0.0;
    /// Per-channel sensor gain errors (calibration spread of the MEMS
    /// parts): ax, ay, az, gx, gy, gz multipliers.
    std::array<double, 6> channel_gain{1.0, 1.0, 1.0, 1.0, 1.0, 1.0};
    /// Gait idiosyncrasy: relative amplitude and phase of the second
    /// harmonic riding on the locomotion bounce.
    double gait_harmonic_amp = 0.25;
    double gait_harmonic_phase = 0.0;
};

/// Tuning knobs shared by all scripts (long static holds are shortened at
/// smaller run scales to bound synthetic-data volume).
struct motion_tuning {
    double static_hold_s = 8.0;      ///< nominal "stand/sit/lie 30 s" hold
    double locomotion_s = 5.0;       ///< nominal walking/jogging stretch
    double post_fall_hold_s = 2.0;   ///< motionless time after impact
};

/// Build the phase script for a task (Table II id 1-44, or adversarial
/// extension id 45-46) as performed by a subject; `gen` supplies
/// per-trial variation.  Throws std::out_of_range for unknown ids.
std::vector<motion_phase> build_task_phases(int task_id, const subject_profile& subject,
                                            const motion_tuning& tuning, util::rng& gen);

// ---------------------------------------------------------------------------
// Named scenario profiles
// ---------------------------------------------------------------------------

/// Post-synthesis stream corruption: environmental and sensor-level
/// effects no motion script can express.  Applied sample-wise to a
/// finished trial stream, so annotations (which index samples) stay
/// valid.  All knobs default to off.
struct stream_perturbation {
    /// Continuous vehicle vibration: a sinusoid on all three accel axes
    /// (random per-axis phase), e.g. an engine idling under the wearer.
    double vibration_amp_g = 0.0;
    double vibration_freq_hz = 0.0;
    /// Sensor dropout: bursts where the IMU output freezes at the last
    /// delivered value (stuck bus / packet loss at the sensor hub).
    double dropout_bursts_per_min = 0.0;
    double dropout_burst_s = 0.0;
    /// Jitter bursts: wideband noise on accel + gyro (loose connector,
    /// EMI) for short stretches.
    double jitter_bursts_per_min = 0.0;
    double jitter_burst_s = 0.0;
    double jitter_accel_g = 0.0;
    double jitter_gyro_rad_s = 0.0;

    bool any() const;
};

/// Corrupt `samples` in place per `perturb`; deterministic in
/// (samples, perturb, sample_rate_hz, gen seed).  No-op (and no rng
/// draws) when `perturb.any()` is false, so unperturbed streams are
/// byte-identical with or without this call in the pipeline.
void apply_stream_perturbation(std::vector<raw_sample>& samples,
                               const stream_perturbation& perturb,
                               double sample_rate_hz, util::rng& gen);

/// A named traffic scenario: which task scripts a synthesized fleet
/// cycles through and how the resulting streams are corrupted.  The ONE
/// way scenario traffic is described — serve::synthesize_fleet_streams
/// and the loadgen take a profile instead of hard-coding a task mix.
struct scenario_profile {
    std::string name;
    std::string summary;          ///< one line for --list-scenarios
    std::vector<int> task_mix;    ///< cycled over sessions; ids must script
    stream_perturbation perturb;  ///< applied to every synthesized stream
};

/// Thrown by make_profile for a name the registry does not know; the
/// message lists the registered names.  Tool layers translate this into
/// their own usage errors (tools/tool_common.hpp).
struct unknown_profile_error : std::invalid_argument {
    using std::invalid_argument::invalid_argument;
};

/// Look up a registered scenario by name.  Registered: "baseline",
/// "near_fall", "trip_catch", "vehicle_vibration", "sensor_dropout"
/// (docs/evaluation.md).  Throws unknown_profile_error otherwise.
scenario_profile make_profile(const std::string& name);

/// All registered scenario names, in registration order (baseline first).
std::vector<std::string> list_profiles();

}  // namespace fallsense::data
