#include "data/dataset_io.hpp"

#include <sstream>

#include "data/trial_io.hpp"
#include "util/check.hpp"
#include "util/csv.hpp"

namespace fallsense::data {

namespace {

std::string trial_file_name(const trial& t) {
    std::ostringstream os;
    os << "trial_" << t.subject_id << '_' << t.task_id << '_' << t.trial_index << ".csv";
    return os.str();
}

accel_unit parse_accel_unit(const std::string& text) {
    if (text == "g") return accel_unit::g;
    if (text == "m/s^2") return accel_unit::meters_per_s2;
    throw std::runtime_error("manifest: unknown accel unit '" + text + "'");
}

gyro_unit parse_gyro_unit(const std::string& text) {
    if (text == "rad/s") return gyro_unit::rad_per_s;
    if (text == "deg/s") return gyro_unit::deg_per_s;
    throw std::runtime_error("manifest: unknown gyro unit '" + text + "'");
}

}  // namespace

void write_dataset_dir(const dataset& d, const std::filesystem::path& dir) {
    std::filesystem::create_directories(dir);
    std::vector<std::vector<std::string>> rows;
    rows.reserve(d.trials.size());
    for (const trial& t : d.trials) {
        t.validate();
        const std::string file = trial_file_name(t);
        write_trial_csv(t, dir / file);
        rows.push_back({file, std::to_string(t.subject_id), std::to_string(t.task_id),
                        std::to_string(t.trial_index), std::to_string(t.sample_rate_hz),
                        accel_unit_name(t.accel_units), gyro_unit_name(t.gyro_units),
                        t.fall ? std::to_string(t.fall->onset_index) : "",
                        t.fall ? std::to_string(t.fall->impact_index) : ""});
    }
    util::write_csv_file(dir / "manifest.csv",
                         {"file", "subject_id", "task_id", "trial_index", "sample_rate_hz",
                          "accel_unit", "gyro_unit", "fall_onset", "fall_impact"},
                         rows);
}

dataset read_dataset_dir(const std::filesystem::path& dir) {
    const util::csv_table manifest = util::read_csv_file(dir / "manifest.csv", true);
    const std::size_t c_file = manifest.column_index("file");
    const std::size_t c_subject = manifest.column_index("subject_id");
    const std::size_t c_task = manifest.column_index("task_id");
    const std::size_t c_rep = manifest.column_index("trial_index");
    const std::size_t c_rate = manifest.column_index("sample_rate_hz");
    const std::size_t c_au = manifest.column_index("accel_unit");
    const std::size_t c_gu = manifest.column_index("gyro_unit");
    const std::size_t c_onset = manifest.column_index("fall_onset");
    const std::size_t c_impact = manifest.column_index("fall_impact");

    dataset d;
    d.name = dir.filename().string();
    d.trials.reserve(manifest.rows.size());
    for (std::size_t r = 0; r < manifest.rows.size(); ++r) {
        const auto& row = manifest.rows[r];
        FS_CHECK(row.size() >= 9, "manifest row too short");
        trial t = read_trial_csv(dir / row[c_file], manifest.number_at(r, c_rate));
        t.subject_id = static_cast<int>(manifest.number_at(r, c_subject));
        t.task_id = static_cast<int>(manifest.number_at(r, c_task));
        t.trial_index = static_cast<int>(manifest.number_at(r, c_rep));
        t.accel_units = parse_accel_unit(row[c_au]);
        t.gyro_units = parse_gyro_unit(row[c_gu]);
        if (!row[c_onset].empty()) {
            fall_annotation fall;
            fall.onset_index = static_cast<std::size_t>(manifest.number_at(r, c_onset));
            fall.impact_index = static_cast<std::size_t>(manifest.number_at(r, c_impact));
            t.fall = fall;
        }
        t.validate();
        d.trials.push_back(std::move(t));
    }
    return d;
}

}  // namespace fallsense::data
