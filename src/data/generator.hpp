// Dataset-level generation: subject cohorts and the two dataset profiles
// the paper merges (KFall-like and the Protechto self-collected set).
//
// The KFall-like profile deliberately differs from the reference in sensor
// mounting orientation and measurement units, so the alignment step
// (Rodrigues rotation + unit standardization, Section IV-A) is a real
// transformation rather than a no-op.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "data/motion_profile.hpp"
#include "data/synthesizer.hpp"
#include "data/types.hpp"

namespace fallsense::data {

struct dataset_profile {
    std::string name;
    std::vector<int> task_ids;
    int n_subjects = 29;
    int trials_per_task = 1;
    accel_unit accel_units = accel_unit::g;
    gyro_unit gyro_units = gyro_unit::rad_per_s;
    /// Rotation from this dataset's sensor frame to the reference frame.
    dsp::mat3 to_reference_frame;
    motion_tuning tuning;
    synthesis_config synthesis;
    /// Subject-id offset so merged datasets keep globally unique ids.
    int subject_id_base = 0;
};

/// The self-collected dataset: 29 subjects, all 44 tasks, g / rad/s,
/// reference orientation.
dataset_profile protechto_profile();

/// The KFall-like dataset: 32 subjects, tasks 1-36, m/s^2 / deg/s, and a
/// sensor frame rotated 90 degrees about the vertical axis.
dataset_profile kfall_profile();

/// Draw a subject cohort with the paper's anthropometrics
/// (age 23.5 +- 6.3, height 178 +- 8 cm, weight 71.5 +- 13.2 kg).
std::vector<subject_profile> sample_subjects(int count, int id_base, std::uint64_t seed);

/// Generate every (subject, task, trial) combination of a profile.
/// Deterministic in (profile, seed).
dataset generate_dataset(const dataset_profile& profile, std::uint64_t seed);

}  // namespace fallsense::data
