// Core dataset types: raw IMU samples, trials, and datasets.
//
// A `trial` is one performance of one task (Table II) by one subject: a
// contiguous 100 Hz stream of accelerometer + gyroscope samples with,
// for fall tasks, the frame-accurate annotation (fall onset = first frame
// from which recovery is impossible; impact = first ground contact) the
// paper obtains from synchronized video.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "dsp/rotation.hpp"

namespace fallsense::data {

/// One raw IMU reading in the sensor frame.
struct raw_sample {
    std::array<float, 3> accel{};  ///< specific force, unit per trial metadata
    std::array<float, 3> gyro{};   ///< angular rate, unit per trial metadata
};

enum class accel_unit : std::uint8_t { g, meters_per_s2 };
enum class gyro_unit : std::uint8_t { rad_per_s, deg_per_s };

const char* accel_unit_name(accel_unit unit);
const char* gyro_unit_name(gyro_unit unit);

/// Frame-accurate fall annotation (sample indices into the trial stream).
struct fall_annotation {
    std::size_t onset_index = 0;   ///< first unrecoverable free-fall frame
    std::size_t impact_index = 0;  ///< first ground-contact frame

    std::size_t falling_samples() const { return impact_index - onset_index; }
};

struct trial {
    int subject_id = 0;
    int task_id = 0;     ///< Table II id, 1-44
    int trial_index = 0; ///< repetition number for (subject, task)
    double sample_rate_hz = 100.0;
    accel_unit accel_units = accel_unit::g;
    gyro_unit gyro_units = gyro_unit::rad_per_s;
    std::vector<raw_sample> samples;
    std::optional<fall_annotation> fall;  ///< set iff the task ends in a fall

    std::size_t sample_count() const { return samples.size(); }
    double duration_s() const {
        return static_cast<double>(samples.size()) / sample_rate_hz;
    }
    bool is_fall_trial() const { return fall.has_value(); }
    void validate() const;  ///< throws on inconsistent annotation/limits
};

/// A named collection of trials sharing a sensor mounting orientation.
struct dataset {
    std::string name;
    /// Rotation from this dataset's sensor frame to the reference
    /// (self-collected) frame; identity when already aligned.
    dsp::mat3 to_reference_frame;
    std::vector<trial> trials;

    std::size_t trial_count() const { return trials.size(); }
    std::size_t fall_trial_count() const;
    std::vector<int> subject_ids() const;  ///< sorted, unique
};

}  // namespace fallsense::data
