#include "data/trial_io.hpp"

#include <string>

#include "util/check.hpp"
#include "util/csv.hpp"

namespace fallsense::data {

void write_trial_csv(const trial& t, const std::filesystem::path& path) {
    std::vector<std::vector<std::string>> rows;
    rows.reserve(t.samples.size());
    for (const raw_sample& s : t.samples) {
        rows.push_back({std::to_string(s.accel[0]), std::to_string(s.accel[1]),
                        std::to_string(s.accel[2]), std::to_string(s.gyro[0]),
                        std::to_string(s.gyro[1]), std::to_string(s.gyro[2])});
    }
    util::write_csv_file(path, {"ax", "ay", "az", "gx", "gy", "gz"}, rows);
}

trial read_trial_csv(const std::filesystem::path& path, double sample_rate_hz) {
    FS_ARG_CHECK(sample_rate_hz > 0.0, "sample rate must be positive");
    const util::csv_table table = util::read_csv_file(path, /*has_header=*/true);
    trial t;
    t.sample_rate_hz = sample_rate_hz;
    t.samples.reserve(table.rows.size());
    const std::size_t ax = table.column_index("ax");
    const std::size_t ay = table.column_index("ay");
    const std::size_t az = table.column_index("az");
    const std::size_t gx = table.column_index("gx");
    const std::size_t gy = table.column_index("gy");
    const std::size_t gz = table.column_index("gz");
    for (std::size_t r = 0; r < table.rows.size(); ++r) {
        raw_sample s;
        s.accel = {static_cast<float>(table.number_at(r, ax)),
                   static_cast<float>(table.number_at(r, ay)),
                   static_cast<float>(table.number_at(r, az))};
        s.gyro = {static_cast<float>(table.number_at(r, gx)),
                  static_cast<float>(table.number_at(r, gy)),
                  static_cast<float>(table.number_at(r, gz))};
        t.samples.push_back(s);
    }
    return t;
}

}  // namespace fallsense::data
