#include "data/synthesizer.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace fallsense::data {

namespace {

double smoothstep(double u) {
    u = std::clamp(u, 0.0, 1.0);
    return u * u * (3.0 - 2.0 * u);
}

struct attitude {
    double pitch = 0.0, roll = 0.0, yaw = 0.0, support = 1.0;
};

/// Gravity direction in the sensor frame for a given attitude (unit vector
/// when upright; matches dsp::complementary_filter::accel_attitude).
void gravity_direction(double pitch, double roll, double& gx, double& gy, double& gz) {
    gx = -std::sin(pitch);
    gy = std::cos(pitch) * std::sin(roll);
    gz = std::cos(pitch) * std::cos(roll);
}

}  // namespace

trial synthesize_trial(const std::vector<motion_phase>& script, const subject_profile& subject,
                       const synthesis_config& config, util::rng& gen) {
    FS_ARG_CHECK(!script.empty(), "empty motion script");
    FS_ARG_CHECK(config.sample_rate_hz > 0.0, "sample rate must be positive");
    const double fs = config.sample_rate_hz;
    const double dt = 1.0 / fs;
    const auto impact_samples =
        static_cast<std::size_t>(std::lround(config.impact_duration_s * fs));

    trial out;
    out.subject_id = subject.id;
    out.sample_rate_hz = fs;
    out.accel_units = accel_unit::g;
    out.gyro_units = gyro_unit::rad_per_s;

    attitude state;
    double bounce_phase = gen.uniform(0.0, 2.0 * std::numbers::pi);
    std::size_t fall_onset = 0;
    std::size_t fall_impact = 0;
    bool saw_falling = false;
    bool saw_impact = false;

    auto emit_sample = [&](double pitch, double roll, double /*yaw*/, double support,
                           double gyro_x, double gyro_y, double gyro_z, double bounce_g,
                           double extra_g, double accel_noise, double gyro_noise) {
        // The jacket's fit shifts the measured attitude for this subject.
        pitch += subject.mount_pitch_offset;
        roll += subject.mount_roll_offset;
        double dir_x = 0.0, dir_y = 0.0, dir_z = 0.0;
        gravity_direction(pitch, roll, dir_x, dir_y, dir_z);
        const double axial = support + bounce_g + extra_g;
        const double noise = accel_noise * subject.noisiness;
        const std::array<double, 6>& gain = subject.channel_gain;
        raw_sample s;
        s.accel[0] = static_cast<float>(
            std::clamp(gain[0] * (dir_x * axial + gen.normal(0.0, noise)),
                       -config.accel_clip_g, config.accel_clip_g));
        s.accel[1] = static_cast<float>(
            std::clamp(gain[1] * (dir_y * axial + gen.normal(0.0, noise)),
                       -config.accel_clip_g, config.accel_clip_g));
        s.accel[2] = static_cast<float>(
            std::clamp(gain[2] * (dir_z * axial + gen.normal(0.0, noise)),
                       -config.accel_clip_g, config.accel_clip_g));
        const double gn = gyro_noise * subject.noisiness;
        s.gyro[0] = static_cast<float>(std::clamp(gain[3] * (gyro_x + gen.normal(0.0, gn)),
                                                  -config.gyro_clip_rad_s,
                                                  config.gyro_clip_rad_s));
        s.gyro[1] = static_cast<float>(std::clamp(gain[4] * (gyro_y + gen.normal(0.0, gn)),
                                                  -config.gyro_clip_rad_s,
                                                  config.gyro_clip_rad_s));
        s.gyro[2] = static_cast<float>(std::clamp(gain[5] * (gyro_z + gen.normal(0.0, gn)),
                                                  -config.gyro_clip_rad_s,
                                                  config.gyro_clip_rad_s));
        out.samples.push_back(s);
    };

    for (const motion_phase& phase : script) {
        const auto n = std::max<std::size_t>(
            static_cast<std::size_t>(std::lround(phase.duration_s * fs)), 2);
        const attitude begin = state;
        if (phase.semantic == phase_semantic::falling && !saw_falling) {
            saw_falling = true;
            fall_onset = out.samples.size();
        }
        for (std::size_t i = 0; i < n; ++i) {
            const double u = static_cast<double>(i + 1) / static_cast<double>(n);
            const double s = smoothstep(u);
            const double pitch = begin.pitch + (phase.pitch_to - begin.pitch) * s;
            const double roll = begin.roll + (phase.roll_to - begin.roll) * s;
            const double yaw = begin.yaw + (phase.yaw_to - begin.yaw) * s;
            const double support =
                begin.support + (phase.support_to - begin.support) * s;
            // Analytic ramp derivative: d(smoothstep)/dt = 6u(1-u)/T.
            const double ds_dt =
                6.0 * u * (1.0 - u) / (static_cast<double>(n) * dt);
            const double gyro_y = (phase.pitch_to - begin.pitch) * ds_dt;
            const double gyro_x = (phase.roll_to - begin.roll) * ds_dt;
            const double gyro_z = (phase.yaw_to - begin.yaw) * ds_dt;
            double bounce = 0.0;
            if (phase.bounce_amp_g > 0.0 && phase.bounce_freq_hz > 0.0) {
                bounce_phase += 2.0 * std::numbers::pi * phase.bounce_freq_hz * dt;
                // Fundamental plus a subject-specific second harmonic: gait
                // waveforms differ in shape, not just amplitude/cadence.
                bounce = phase.bounce_amp_g *
                         (std::sin(bounce_phase) +
                          subject.gait_harmonic_amp *
                              std::sin(2.0 * bounce_phase + subject.gait_harmonic_phase));
            }
            emit_sample(pitch, roll, yaw, support, gyro_x, gyro_y, gyro_z, bounce, 0.0,
                        phase.accel_noise_g, phase.gyro_noise_rad_s);
            state.pitch = pitch;
            state.roll = roll;
            state.yaw = yaw;
            state.support = support;
        }

        if (phase.impact_g > 0.0 && impact_samples > 0) {
            if (phase.semantic == phase_semantic::falling && !saw_impact) {
                saw_impact = true;
                fall_impact = out.samples.size();
            }
            // Half-sine impulse; gyro rings down simultaneously.
            for (std::size_t i = 0; i < impact_samples; ++i) {
                const double u =
                    static_cast<double>(i) / static_cast<double>(impact_samples);
                const double pulse = phase.impact_g * std::sin(std::numbers::pi * u);
                const double ring = (1.0 - u);
                emit_sample(state.pitch, state.roll, state.yaw,
                            /*support=*/1.0, gen.normal(0.0, 2.5) * ring,
                            gen.normal(0.0, 2.5) * ring, gen.normal(0.0, 1.0) * ring,
                            0.0, pulse, phase.accel_noise_g * 2.0,
                            phase.gyro_noise_rad_s);
            }
            state.support = 1.0;
        }
    }

    if (saw_falling) {
        FS_CHECK(saw_impact, "falling script without an impact impulse");
        out.fall = fall_annotation{fall_onset, fall_impact};
    }
    out.validate();
    return out;
}

trial synthesize_task(int task_id, const subject_profile& subject, const motion_tuning& tuning,
                      const synthesis_config& config, util::rng& gen) {
    const std::vector<motion_phase> script =
        build_task_phases(task_id, subject, tuning, gen);
    trial t = synthesize_trial(script, subject, config, gen);
    t.task_id = task_id;
    return t;
}

}  // namespace fallsense::data
