#include "data/types.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fallsense::data {

const char* accel_unit_name(accel_unit unit) {
    switch (unit) {
        case accel_unit::g: return "g";
        case accel_unit::meters_per_s2: return "m/s^2";
    }
    return "?";
}

const char* gyro_unit_name(gyro_unit unit) {
    switch (unit) {
        case gyro_unit::rad_per_s: return "rad/s";
        case gyro_unit::deg_per_s: return "deg/s";
    }
    return "?";
}

void trial::validate() const {
    FS_CHECK(sample_rate_hz > 0.0, "trial sample rate must be positive");
    FS_CHECK(!samples.empty(), "trial has no samples");
    if (fall) {
        FS_CHECK(fall->onset_index < fall->impact_index,
                 "fall onset must precede impact");
        FS_CHECK(fall->impact_index < samples.size(),
                 "fall impact index beyond trial end");
    }
}

std::size_t dataset::fall_trial_count() const {
    return static_cast<std::size_t>(
        std::count_if(trials.begin(), trials.end(),
                      [](const trial& t) { return t.is_fall_trial(); }));
}

std::vector<int> dataset::subject_ids() const {
    std::vector<int> ids;
    ids.reserve(trials.size());
    for (const trial& t : trials) ids.push_back(t.subject_id);
    std::sort(ids.begin(), ids.end());
    ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
    return ids;
}

}  // namespace fallsense::data
