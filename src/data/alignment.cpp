#include "data/alignment.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <set>

#include "dsp/units.hpp"
#include "util/check.hpp"

namespace fallsense::data {

namespace {

bool is_identity(const dsp::mat3& m, double tol = 1e-9) {
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            const double expected = (r == c) ? 1.0 : 0.0;
            if (std::abs(m(r, c) - expected) > tol) return false;
        }
    }
    return true;
}

}  // namespace

void align_trial(trial& t, const dsp::mat3& r) {
    const double a_scale =
        (t.accel_units == accel_unit::meters_per_s2) ? (1.0 / dsp::k_standard_gravity_ms2) : 1.0;
    const double w_scale =
        (t.gyro_units == gyro_unit::deg_per_s) ? (std::numbers::pi / 180.0) : 1.0;
    for (raw_sample& s : t.samples) {
        const dsp::vec3 a = r.apply({s.accel[0] * a_scale, s.accel[1] * a_scale,
                                     s.accel[2] * a_scale});
        const dsp::vec3 w =
            r.apply({s.gyro[0] * w_scale, s.gyro[1] * w_scale, s.gyro[2] * w_scale});
        s.accel = {static_cast<float>(a.x), static_cast<float>(a.y), static_cast<float>(a.z)};
        s.gyro = {static_cast<float>(w.x), static_cast<float>(w.y), static_cast<float>(w.z)};
    }
    t.accel_units = accel_unit::g;
    t.gyro_units = gyro_unit::rad_per_s;
}

dataset align_dataset(const dataset& d) {
    FS_ARG_CHECK(dsp::is_rotation_matrix(d.to_reference_frame, 1e-6),
                 "dataset frame is not a rotation matrix");
    dataset out;
    out.name = d.name;
    out.to_reference_frame = dsp::mat3::identity();
    out.trials.reserve(d.trials.size());
    for (const trial& t : d.trials) {
        trial aligned = t;
        align_trial(aligned, d.to_reference_frame);
        out.trials.push_back(std::move(aligned));
    }
    return out;
}

dataset merge_datasets(const std::vector<dataset>& aligned, std::string merged_name) {
    FS_ARG_CHECK(!aligned.empty(), "nothing to merge");
    dataset out;
    out.name = std::move(merged_name);
    out.to_reference_frame = dsp::mat3::identity();
    std::set<int> seen_subjects;
    for (const dataset& d : aligned) {
        FS_ARG_CHECK(is_identity(d.to_reference_frame),
                     "dataset '" + d.name + "' is not aligned to the reference frame");
        for (const trial& t : d.trials) {
            FS_ARG_CHECK(t.accel_units == accel_unit::g && t.gyro_units == gyro_unit::rad_per_s,
                         "dataset '" + d.name + "' has non-standard units");
            out.trials.push_back(t);
        }
        for (const int id : d.subject_ids()) {
            FS_ARG_CHECK(seen_subjects.insert(id).second,
                         "subject id collision while merging: " + std::to_string(id));
        }
    }
    return out;
}

}  // namespace fallsense::data
