// Phase-script → IMU-trial synthesis.
//
// Integrates a motion script sample-by-sample at the dataset's sampling
// rate: torso attitude follows smoothstep ramps, the accelerometer measures
// the supported fraction of gravity plus locomotion bounce, impact
// impulses, and sensor noise; the gyroscope measures the attitude
// derivative plus noise.  Because acceleration and angular rate derive from
// one attitude trajectory, downstream sensor fusion (dsp::complementary_filter)
// recovers physically consistent Euler angles, as on the real board.
#pragma once

#include <vector>

#include "data/motion_profile.hpp"
#include "data/types.hpp"
#include "util/rng.hpp"

namespace fallsense::data {

struct synthesis_config {
    double sample_rate_hz = 100.0;
    double impact_duration_s = 0.06;  ///< half-sine impulse width
    double accel_clip_g = 16.0;       ///< LIS3DH ±16 g range
    double gyro_clip_rad_s = 35.0;    ///< ~2000 dps gyro range
};

/// Synthesize one trial in the REFERENCE sensor frame with g / rad/s units.
/// Fall annotation is attached when the script contains a falling phase.
trial synthesize_trial(const std::vector<motion_phase>& script,
                       const subject_profile& subject, const synthesis_config& config,
                       util::rng& gen);

/// Convenience: build the script for `task_id` and synthesize it.
trial synthesize_task(int task_id, const subject_profile& subject,
                      const motion_tuning& tuning, const synthesis_config& config,
                      util::rng& gen);

}  // namespace fallsense::data
