// Dataset directory I/O: persist a whole dataset as one CSV per trial plus
// a manifest, and load it back.  This is how synthetic datasets generated
// by the CLI are shared and how user recordings are ingested in bulk.
//
// Layout:
//   <dir>/manifest.csv   — one row per trial:
//       file,subject_id,task_id,trial_index,sample_rate_hz,accel_unit,
//       gyro_unit,fall_onset,fall_impact        (onset/impact empty for ADLs)
//   <dir>/trial_<subject>_<task>_<rep>.csv — sample rows (see trial_io).
#pragma once

#include <filesystem>

#include "data/types.hpp"

namespace fallsense::data {

/// Write every trial + manifest into `dir` (created if needed).
void write_dataset_dir(const dataset& d, const std::filesystem::path& dir);

/// Load a dataset directory; throws std::runtime_error on missing files or
/// malformed manifests.  The dataset name is the directory name.
dataset read_dataset_dir(const std::filesystem::path& dir);

}  // namespace fallsense::data
