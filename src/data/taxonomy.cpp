#include "data/taxonomy.hpp"

#include <array>
#include <stdexcept>
#include <string>

namespace fallsense::data {

namespace {

using tc = task_category;
using rc = risk_class;

// Table II verbatim.  Falls: 20-34 (KFall) and 37-42 (self-collected only).
// Red ADLs follow Table IV(b): dynamic tasks with the highest false-positive
// rates (jump, jog, quick transitions, collapse, obstacle jump).
constexpr std::array<task_info, 44> k_tasks{{
    {1, "Stand for 30 seconds", tc::adl_static, rc::green, true},
    {2, "Stand, slowly bend, tie shoe lace, and get up", tc::adl_transition, rc::green, true},
    {3, "Pick up an object from the floor", tc::adl_transition, rc::green, true},
    {4, "Gently jump (try to reach an object)", tc::adl_near_fall, rc::red, true},
    {5, "Stand, sit to the ground, wait a moment, and get up with normal speed",
     tc::adl_transition, rc::green, true},
    {6, "Walk normally with turn", tc::adl_locomotion, rc::green, true},
    {7, "Walk quickly with turn", tc::adl_locomotion, rc::green, true},
    {8, "Jog normally with turn", tc::adl_locomotion, rc::red, true},
    {9, "Jog quickly with turn", tc::adl_locomotion, rc::red, true},
    {10, "Stumble with obstacle while walking", tc::adl_near_fall, rc::red, true},
    {11, "Sit on a chair for 30 seconds", tc::adl_static, rc::green, true},
    {12, "Walk downstairs normally", tc::adl_locomotion, rc::green, true},
    {13, "Sit down to a chair normally, and get up from a chair normally",
     tc::adl_transition, rc::green, true},
    {14, "Sit down to a chair quickly, and get up from a chair quickly",
     tc::adl_transition, rc::red, true},
    {15, "Sit a moment, trying to get up, and collapse into a chair",
     tc::adl_near_fall, rc::red, true},
    {16, "Walk downstairs quickly", tc::adl_locomotion, rc::red, true},
    {17, "Lie on the floor for 30 seconds", tc::adl_static, rc::green, true},
    {18, "Sit a moment, lie down to the floor normally, and get up normally",
     tc::adl_transition, rc::green, true},
    {19, "Sit a moment, lie down to the floor quickly, and get up quickly",
     tc::adl_near_fall, rc::red, true},
    {20, "Forward fall when trying to sit down", tc::fall_from_standing, rc::fall, true},
    {21, "Backward fall when trying to sit down", tc::fall_from_standing, rc::fall, true},
    {22, "Lateral fall when trying to sit down", tc::fall_from_standing, rc::fall, true},
    {23, "Forward fall when trying to get up", tc::fall_from_sitting, rc::fall, true},
    {24, "Lateral fall when trying to get up", tc::fall_from_sitting, rc::fall, true},
    {25, "Forward fall while sitting, caused by fainting", tc::fall_from_sitting, rc::fall, true},
    {26, "Lateral fall while sitting, caused by fainting", tc::fall_from_sitting, rc::fall, true},
    {27, "Backward fall while sitting, caused by fainting", tc::fall_from_sitting, rc::fall, true},
    {28, "Vertical (forward) fall while walking caused by fainting",
     tc::fall_from_walking, rc::fall, true},
    {29, "Fall while walking, use of hands to dampen fall, caused by fainting",
     tc::fall_from_walking, rc::fall, true},
    {30, "Forward fall while walking caused by a trip", tc::fall_from_walking, rc::fall, true},
    {31, "Forward fall while jogging caused by a trip", tc::fall_from_walking, rc::fall, true},
    {32, "Forward fall while walking caused by a slip", tc::fall_from_walking, rc::fall, true},
    {33, "Lateral fall while walking caused by a slip", tc::fall_from_walking, rc::fall, true},
    {34, "Backward fall while walking caused by a slip", tc::fall_from_walking, rc::fall, true},
    {35, "Walk upstairs normally", tc::adl_locomotion, rc::green, true},
    {36, "Walk upstairs quickly", tc::adl_locomotion, rc::green, true},
    {37, "Backward fall while slowly moving back", tc::fall_from_walking, rc::fall, false},
    {38, "Backward fall while quickly moving back", tc::fall_from_walking, rc::fall, false},
    {39, "Forward fall from height", tc::fall_from_height, rc::fall, false},
    {40, "Backward fall from height", tc::fall_from_height, rc::fall, false},
    {41, "Backward fall while trying to climb up the ladder", tc::fall_from_height, rc::fall,
     false},
    {42, "Backward fall while trying to climb down the ladder", tc::fall_from_height, rc::fall,
     false},
    {43, "Climb up and climb down the stairs", tc::adl_locomotion, rc::green, false},
    {44, "Walk slowly and jump over the obstacle", tc::adl_near_fall, rc::red, false},
}};

}  // namespace

std::span<const task_info> all_tasks() { return k_tasks; }

const task_info& task_by_id(int task_id) {
    if (task_id < 1 || task_id > static_cast<int>(k_tasks.size())) {
        throw std::out_of_range("unknown task id " + std::to_string(task_id));
    }
    return k_tasks[static_cast<std::size_t>(task_id - 1)];
}

std::vector<int> kfall_task_ids() {
    std::vector<int> ids;
    for (const task_info& t : k_tasks) {
        if (t.in_kfall) ids.push_back(t.id);
    }
    return ids;
}

std::vector<int> self_collected_task_ids() {
    std::vector<int> ids;
    ids.reserve(k_tasks.size());
    for (const task_info& t : k_tasks) ids.push_back(t.id);
    return ids;
}

std::vector<int> fall_task_ids() {
    std::vector<int> ids;
    for (const task_info& t : k_tasks) {
        if (t.is_fall()) ids.push_back(t.id);
    }
    return ids;
}

std::vector<int> adl_task_ids() {
    std::vector<int> ids;
    for (const task_info& t : k_tasks) {
        if (!t.is_fall()) ids.push_back(t.id);
    }
    return ids;
}

}  // namespace fallsense::data
