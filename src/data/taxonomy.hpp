// Activity taxonomy — Table II of the paper: 44 task types, of which 21 end
// in a fall (tasks 20-34, 37-42) and 23 are ADLs.  The KFall dataset covers
// the first 36 (21 ADLs / 15 falls); the self-collected dataset adds
// backward-walking falls, falls from height, and ladder falls (37-42) plus
// stair climbing (43) and obstacle jumping (44).
//
// `risk_class` reflects Table IV(b)'s red/green partition: red ADLs are
// dynamic activities (jumping, jogging, quick transitions) that elderly
// people or workers in risky places rarely perform; green ADLs are the
// everyday movements where false positives would matter most.
#pragma once

#include <span>
#include <string_view>
#include <vector>

namespace fallsense::data {

enum class task_category {
    adl_static,      ///< standing, sitting, lying still
    adl_transition,  ///< sit/stand/lie transitions, picking objects
    adl_locomotion,  ///< walking, jogging, stairs
    adl_near_fall,   ///< stumble, collapse-into-chair, jump — fall-like ADLs
    fall_from_sitting,
    fall_from_standing,
    fall_from_walking,
    fall_from_height,  ///< ladder / scaffold falls (self-collected only)
};

enum class risk_class {
    green,  ///< common for at-risk users — false positives here are costly
    red,    ///< rare for at-risk users (dynamic/vigorous ADLs)
    fall,   ///< not an ADL
};

struct task_info {
    int id;  ///< Table II task number, 1-44
    std::string_view description;
    task_category category;
    risk_class risk;
    bool in_kfall;  ///< present in the KFall protocol (tasks 1-36)

    bool is_fall() const { return risk == risk_class::fall; }
};

/// All 44 tasks, ordered by id.
std::span<const task_info> all_tasks();

/// Lookup by Table II id; throws std::out_of_range for unknown ids.
const task_info& task_by_id(int task_id);

/// Task-id lists for dataset profiles.
std::vector<int> kfall_task_ids();          ///< 36 tasks (21 ADLs / 15 falls)
std::vector<int> self_collected_task_ids(); ///< all 44 (23 ADLs / 21 falls)
std::vector<int> fall_task_ids();           ///< the 21 fall tasks
std::vector<int> adl_task_ids();            ///< the 23 ADL tasks

}  // namespace fallsense::data
