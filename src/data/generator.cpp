#include "data/generator.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "data/taxonomy.hpp"
#include "dsp/units.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::data {

dataset_profile protechto_profile() {
    dataset_profile p;
    p.name = "protechto";
    p.task_ids = self_collected_task_ids();
    p.n_subjects = 29;
    p.trials_per_task = 1;
    p.accel_units = accel_unit::g;
    p.gyro_units = gyro_unit::rad_per_s;
    p.to_reference_frame = dsp::mat3::identity();
    p.subject_id_base = 100;
    return p;
}

dataset_profile kfall_profile() {
    dataset_profile p;
    p.name = "kfall";
    p.task_ids = kfall_task_ids();
    p.n_subjects = 32;
    p.trials_per_task = 1;
    p.accel_units = accel_unit::meters_per_s2;
    p.gyro_units = gyro_unit::deg_per_s;
    // KFall's sensor is mounted rotated a quarter turn about the body
    // vertical (z) relative to the reference jacket.
    p.to_reference_frame = dsp::rodrigues_rotation({0.0, 0.0, 1.0}, -std::numbers::pi / 2.0);
    p.subject_id_base = 200;
    return p;
}

std::vector<subject_profile> sample_subjects(int count, int id_base, std::uint64_t seed) {
    FS_ARG_CHECK(count > 0, "subject count must be positive");
    std::vector<subject_profile> subjects;
    subjects.reserve(static_cast<std::size_t>(count));
    for (int i = 0; i < count; ++i) {
        util::rng gen(util::derive_seed(seed, {0x5u, static_cast<std::uint64_t>(id_base + i)}));
        subject_profile s;
        s.id = id_base + i;
        s.height_cm = std::clamp(gen.normal(178.0, 8.0), 150.0, 205.0);
        s.weight_kg = std::clamp(gen.normal(71.5, 13.2), 45.0, 120.0);
        s.tempo = std::clamp(gen.normal(1.0, 0.14), 0.70, 1.40);
        s.vigor = std::clamp(gen.normal(1.0, 0.20), 0.55, 1.60);
        s.noisiness = std::clamp(gen.normal(1.0, 0.25), 0.45, 2.00);
        s.mount_pitch_offset = std::clamp(gen.normal(0.0, 0.15), -0.35, 0.35);
        s.mount_roll_offset = std::clamp(gen.normal(0.0, 0.12), -0.30, 0.30);
        for (double& g : s.channel_gain) g = std::clamp(gen.normal(1.0, 0.05), 0.85, 1.15);
        s.gait_harmonic_amp = gen.uniform(0.10, 0.50);
        s.gait_harmonic_phase = gen.uniform(0.0, 2.0 * std::numbers::pi);
        subjects.push_back(s);
    }
    return subjects;
}

namespace {

/// Rotate a reference-frame sample into the dataset's own sensor frame and
/// convert to the dataset's units.  The inverse (alignment) is what
/// Section IV-A applies before merging.
raw_sample to_dataset_frame(const raw_sample& reference, const dsp::mat3& from_reference,
                            accel_unit au, gyro_unit gu) {
    const dsp::vec3 a = from_reference.apply(
        {reference.accel[0], reference.accel[1], reference.accel[2]});
    const dsp::vec3 w = from_reference.apply(
        {reference.gyro[0], reference.gyro[1], reference.gyro[2]});
    const double a_scale = (au == accel_unit::meters_per_s2) ? dsp::k_standard_gravity_ms2 : 1.0;
    const double w_scale = (gu == gyro_unit::deg_per_s) ? (180.0 / std::numbers::pi) : 1.0;
    raw_sample s;
    s.accel = {static_cast<float>(a.x * a_scale), static_cast<float>(a.y * a_scale),
               static_cast<float>(a.z * a_scale)};
    s.gyro = {static_cast<float>(w.x * w_scale), static_cast<float>(w.y * w_scale),
              static_cast<float>(w.z * w_scale)};
    return s;
}

}  // namespace

dataset generate_dataset(const dataset_profile& profile, std::uint64_t seed) {
    FS_ARG_CHECK(!profile.task_ids.empty(), "dataset profile with no tasks");
    FS_ARG_CHECK(profile.trials_per_task > 0, "trials_per_task must be positive");
    OBS_SCOPE("data/generate");
    dataset out;
    out.name = profile.name;
    out.to_reference_frame = profile.to_reference_frame;
    const dsp::mat3 from_reference = profile.to_reference_frame.transpose();

    const std::vector<subject_profile> subjects =
        sample_subjects(profile.n_subjects, profile.subject_id_base,
                        util::derive_seed(seed, profile.name));

    // Flatten the subject x task x repetition nest into one job list so the
    // independent trials synthesize in parallel.  Each trial seeds its own
    // rng from (subject, task, rep) and writes only its own slot, so the
    // dataset is bit-identical to the sequential loop for any thread count.
    struct trial_job {
        const subject_profile* subject;
        int task_id;
        int rep;
    };
    std::vector<trial_job> jobs;
    jobs.reserve(subjects.size() * profile.task_ids.size() *
                 static_cast<std::size_t>(profile.trials_per_task));
    for (const subject_profile& subject : subjects) {
        for (const int task_id : profile.task_ids) {
            for (int rep = 0; rep < profile.trials_per_task; ++rep) {
                jobs.push_back({&subject, task_id, rep});
            }
        }
    }

    out.trials.resize(jobs.size());
    util::parallel_for(0, jobs.size(), 1, [&](std::size_t i) {
        const trial_job& job = jobs[i];
        util::rng gen(util::derive_seed(
            seed, {static_cast<std::uint64_t>(job.subject->id),
                   static_cast<std::uint64_t>(job.task_id),
                   static_cast<std::uint64_t>(job.rep)}));
        trial t = synthesize_task(job.task_id, *job.subject, profile.tuning,
                                  profile.synthesis, gen);
        t.trial_index = job.rep;
        t.accel_units = profile.accel_units;
        t.gyro_units = profile.gyro_units;
        for (raw_sample& s : t.samples) {
            s = to_dataset_frame(s, from_reference, profile.accel_units,
                                 profile.gyro_units);
        }
        out.trials[i] = std::move(t);
    });
    obs::add_counter("data/datasets_generated");
    obs::add_counter("data/trials_synthesized", jobs.size());
    return out;
}

}  // namespace fallsense::data
