#include "eval/evaluator.hpp"

#include <sstream>
#include <stdexcept>
#include <vector>

namespace fallsense::eval {

const char* evaluator_kind_name(evaluator_kind kind) {
    switch (kind) {
        case evaluator_kind::per_window: return "per_window";
        case evaluator_kind::event_stream: return "event_stream";
        case evaluator_kind::cost_sensitive: return "cost_sensitive";
    }
    return "unknown";
}

std::optional<evaluator_kind> parse_evaluator_kind(const std::string& text) {
    if (text == "per_window") return evaluator_kind::per_window;
    if (text == "event_stream") return evaluator_kind::event_stream;
    if (text == "cost_sensitive") return evaluator_kind::cost_sensitive;
    return std::nullopt;
}

std::string evaluation_report::summary() const {
    std::ostringstream os;
    os << "evaluator: " << evaluator_kind_name(kind) << '\n';
    if (classification) os << to_string(*classification) << '\n';
    if (events) {
        os << "fall_miss_percent_avg: " << events->fall_miss_percent_avg << '\n'
           << "adl_false_percent_avg: " << events->adl_false_percent_avg << '\n';
    }
    if (counts) {
        os << "falls_detected: " << counts->falls_detected << '/' << counts->falls_total
           << '\n'
           << "adl_false_alarms: " << counts->adl_false_alarms << '/' << counts->adl_total
           << '\n';
    }
    if (stream) os << stream->summary();
    return os.str();
}

namespace {

class per_window_evaluator final : public evaluator {
  public:
    explicit per_window_evaluator(double threshold) : threshold_(threshold) {}

    std::string describe() const override {
        std::ostringstream os;
        os << "per_window(threshold=" << threshold_ << ")";
        return os.str();
    }

    void add_segments(std::span<const segment_record> records) override {
        check_open();
        records_.insert(records_.end(), records.begin(), records.end());
    }

    void add_stream(std::span<const stream_trigger>,
                    std::span<const session_annotation>) override {
        throw std::invalid_argument(
            "per_window evaluator scores segment records, not trigger streams");
    }

    evaluation_report finish() override {
        check_open();
        finished_ = true;
        std::vector<float> probs, labels;
        probs.reserve(records_.size());
        labels.reserve(records_.size());
        for (const segment_record& r : records_) {
            probs.push_back(r.probability);
            labels.push_back(r.label);
        }
        evaluation_report report;
        report.kind = evaluator_kind::per_window;
        report.classification = evaluate(probs, labels, threshold_);
        report.events = analyze_events(records_, threshold_);
        report.counts = count_events(records_, threshold_);
        return report;
    }

  private:
    void check_open() const {
        if (finished_) throw std::invalid_argument("evaluator already finished");
    }

    double threshold_;
    bool finished_ = false;
    std::vector<segment_record> records_;
};

class stream_evaluator final : public evaluator {
  public:
    stream_evaluator(evaluator_kind kind, stream_eval_config config)
        : kind_(kind), config_(std::move(config)) {}

    std::string describe() const override {
        std::ostringstream os;
        os << evaluator_kind_name(kind_) << "(grace_s=" << config_.detection_grace_s;
        if (kind_ == evaluator_kind::cost_sensitive) {
            os << ", ratios=" << config_.cost_ratios.size();
        }
        os << ")";
        return os.str();
    }

    void add_segments(std::span<const segment_record>) override {
        throw std::invalid_argument(
            "streaming evaluator scores trigger streams, not segment records");
    }

    void add_stream(std::span<const stream_trigger> triggers,
                    std::span<const session_annotation> sessions) override {
        check_open();
        triggers_.insert(triggers_.end(), triggers.begin(), triggers.end());
        sessions_.insert(sessions_.end(), sessions.begin(), sessions.end());
    }

    evaluation_report finish() override {
        check_open();
        finished_ = true;
        evaluation_report report;
        report.kind = kind_;
        report.stream = evaluate_stream(triggers_, sessions_, config_);
        // The plain event_stream kind reports detection/miss/false-alarm
        // numbers without committing to a cost model.
        if (kind_ == evaluator_kind::event_stream) report.stream->cost_curve.clear();
        return report;
    }

  private:
    void check_open() const {
        if (finished_) throw std::invalid_argument("evaluator already finished");
    }

    evaluator_kind kind_;
    stream_eval_config config_;
    bool finished_ = false;
    std::vector<stream_trigger> triggers_;
    std::vector<session_annotation> sessions_;
};

}  // namespace

std::unique_ptr<evaluator> make_evaluator(const evaluator_spec& spec) {
    switch (spec.kind) {
        case evaluator_kind::per_window:
            if (!(spec.threshold >= 0.0 && spec.threshold <= 1.0)) {
                throw std::invalid_argument("evaluator threshold must be in [0, 1]");
            }
            return std::make_unique<per_window_evaluator>(spec.threshold);
        case evaluator_kind::event_stream:
        case evaluator_kind::cost_sensitive:
            if (!(spec.stream.sample_rate_hz > 0.0)) {
                throw std::invalid_argument("evaluator sample rate must be positive");
            }
            if (spec.stream.cost_ratios.empty()) {
                throw std::invalid_argument("evaluator cost-ratio grid is empty");
            }
            return std::make_unique<stream_evaluator>(spec.kind, spec.stream);
    }
    throw std::invalid_argument("unknown evaluator kind");
}

}  // namespace fallsense::eval
