#include "eval/roc.hpp"

#include <algorithm>
#include <numeric>

#include "util/check.hpp"

namespace fallsense::eval {

std::vector<roc_point> roc_curve(std::span<const float> probabilities,
                                 std::span<const float> labels) {
    FS_ARG_CHECK(probabilities.size() == labels.size(), "probability/label count mismatch");
    FS_ARG_CHECK(!probabilities.empty(), "empty score set");

    std::size_t positives = 0;
    for (const float y : labels) positives += (y > 0.5f) ? 1 : 0;
    const std::size_t negatives = labels.size() - positives;
    FS_ARG_CHECK(positives > 0 && negatives > 0, "ROC needs both classes");

    // Sort indices by descending score; sweep the threshold down.
    std::vector<std::size_t> order(labels.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return probabilities[a] > probabilities[b];
    });

    std::vector<roc_point> curve;
    curve.push_back({1.0 + 1e-9, 0.0, 0.0});
    std::size_t tp = 0, fp = 0;
    for (std::size_t i = 0; i < order.size();) {
        const float score = probabilities[order[i]];
        // Consume ties together so the curve is well-defined.
        while (i < order.size() && probabilities[order[i]] == score) {
            if (labels[order[i]] > 0.5f) {
                ++tp;
            } else {
                ++fp;
            }
            ++i;
        }
        curve.push_back({score,
                         static_cast<double>(tp) / static_cast<double>(positives),
                         static_cast<double>(fp) / static_cast<double>(negatives)});
    }
    return curve;
}

std::vector<pr_point> pr_curve(std::span<const float> probabilities,
                               std::span<const float> labels) {
    FS_ARG_CHECK(probabilities.size() == labels.size(), "probability/label count mismatch");
    FS_ARG_CHECK(!probabilities.empty(), "empty score set");
    std::size_t positives = 0;
    for (const float y : labels) positives += (y > 0.5f) ? 1 : 0;
    FS_ARG_CHECK(positives > 0, "PR curve needs positive examples");

    std::vector<std::size_t> order(labels.size());
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
        return probabilities[a] > probabilities[b];
    });

    std::vector<pr_point> curve;
    std::size_t tp = 0, fp = 0;
    for (std::size_t i = 0; i < order.size();) {
        const float score = probabilities[order[i]];
        while (i < order.size() && probabilities[order[i]] == score) {
            if (labels[order[i]] > 0.5f) {
                ++tp;
            } else {
                ++fp;
            }
            ++i;
        }
        curve.push_back({score, static_cast<double>(tp) / static_cast<double>(tp + fp),
                         static_cast<double>(tp) / static_cast<double>(positives)});
    }
    return curve;
}

double average_precision(std::span<const float> probabilities,
                         std::span<const float> labels) {
    const std::vector<pr_point> curve = pr_curve(probabilities, labels);
    double ap = 0.0;
    double prev_recall = 0.0;
    for (const pr_point& p : curve) {
        ap += (p.recall - prev_recall) * p.precision;
        prev_recall = p.recall;
    }
    return ap;
}

double roc_auc(std::span<const float> probabilities, std::span<const float> labels) {
    const std::vector<roc_point> curve = roc_curve(probabilities, labels);
    double auc = 0.0;
    for (std::size_t i = 1; i < curve.size(); ++i) {
        const double dx = curve[i].false_positive_rate - curve[i - 1].false_positive_rate;
        const double avg_y =
            0.5 * (curve[i].true_positive_rate + curve[i - 1].true_positive_rate);
        auc += dx * avg_y;
    }
    return auc;
}

}  // namespace fallsense::eval
