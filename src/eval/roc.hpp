// ROC analysis over scored segments: the threshold-free view of the
// detection/false-alarm trade-off that Section IV-B reasons about.
#pragma once

#include <span>
#include <vector>

namespace fallsense::eval {

struct roc_point {
    double threshold = 0.0;
    double true_positive_rate = 0.0;
    double false_positive_rate = 0.0;
};

/// ROC curve from probabilities + 0/1 labels, one point per distinct score
/// (plus the (0,0) and (1,1) endpoints), ordered by increasing FPR.
std::vector<roc_point> roc_curve(std::span<const float> probabilities,
                                 std::span<const float> labels);

/// Area under the ROC curve (trapezoidal).  0.5 = chance, 1 = perfect.
/// Equals the Mann-Whitney probability that a random positive outscores a
/// random negative.
double roc_auc(std::span<const float> probabilities, std::span<const float> labels);

struct pr_point {
    double threshold = 0.0;
    double precision = 0.0;
    double recall = 0.0;
};

/// Precision-recall curve, ordered by increasing recall.  On the heavily
/// imbalanced fall-segment task PR is more informative than ROC: the
/// negative class is so large that tiny FPR changes dominate precision.
std::vector<pr_point> pr_curve(std::span<const float> probabilities,
                               std::span<const float> labels);

/// Average precision (area under the PR curve, step-wise interpolation) —
/// the single-number summary of minority-class ranking quality.
double average_precision(std::span<const float> probabilities,
                         std::span<const float> labels);

}  // namespace fallsense::eval
