#include "eval/threshold.hpp"

#include "util/check.hpp"

namespace fallsense::eval {

threshold_selection select_threshold_for_precision(std::span<const segment_record> validation,
                                                   double max_false_rate, std::size_t steps) {
    FS_ARG_CHECK(!validation.empty(), "threshold selection on empty validation set");
    FS_ARG_CHECK(steps >= 1, "threshold scan needs at least one step");
    FS_ARG_CHECK(max_false_rate >= 0.0 && max_false_rate <= 1.0,
                 "false-rate budget outside [0, 1]");

    threshold_selection best;
    bool found_qualifying = false;
    double fallback_false_rate = 1.1;

    for (std::size_t i = 1; i <= steps; ++i) {
        const double threshold = static_cast<double>(i) / static_cast<double>(steps + 1);
        const event_counts counts = count_events(validation, threshold);
        const double detection =
            counts.falls_total == 0
                ? 0.0
                : static_cast<double>(counts.falls_detected) /
                      static_cast<double>(counts.falls_total);
        const double false_rate =
            counts.adl_total == 0
                ? 0.0
                : static_cast<double>(counts.adl_false_alarms) /
                      static_cast<double>(counts.adl_total);

        if (false_rate <= max_false_rate) {
            if (!found_qualifying || detection > best.fall_detection_rate) {
                best = {threshold, detection, false_rate};
                found_qualifying = true;
            }
        } else if (!found_qualifying && false_rate < fallback_false_rate) {
            best = {threshold, detection, false_rate};
            fallback_false_rate = false_rate;
        }
    }
    return best;
}

}  // namespace fallsense::eval
