// Binary-classification metrics: confusion matrix, accuracy, precision,
// recall, F1 — the segment-level scores of Table III.
//
// Convention: the positive class is "falling".  Precision/recall/F1 are
// reported for the positive class (the paper's usage); `macro_*` variants
// average over both classes, which is what makes the MLP row's ~50 %
// precision at ~97 % accuracy meaningful.
#pragma once

#include <cstddef>
#include <span>
#include <string>

namespace fallsense::eval {

struct confusion_matrix {
    std::size_t true_positive = 0;
    std::size_t false_positive = 0;
    std::size_t true_negative = 0;
    std::size_t false_negative = 0;

    std::size_t total() const {
        return true_positive + false_positive + true_negative + false_negative;
    }
    std::size_t actual_positive() const { return true_positive + false_negative; }
    std::size_t actual_negative() const { return true_negative + false_positive; }

    confusion_matrix& operator+=(const confusion_matrix& other);
};

/// Build from probabilities and 0/1 labels at a decision threshold.
confusion_matrix make_confusion(std::span<const float> probabilities,
                                std::span<const float> labels, double threshold = 0.5);

double accuracy(const confusion_matrix& cm);
/// Positive-class metrics; 0 when undefined (no predicted/actual positives).
double precision(const confusion_matrix& cm);
double recall(const confusion_matrix& cm);
double f1_score(const confusion_matrix& cm);

/// Class-averaged (macro) metrics over {positive, negative}.
double macro_precision(const confusion_matrix& cm);
double macro_recall(const confusion_matrix& cm);
double macro_f1(const confusion_matrix& cm);

struct classification_report {
    confusion_matrix cm;
    double accuracy = 0.0;
    double precision = 0.0;  ///< macro
    double recall = 0.0;     ///< macro
    double f1 = 0.0;         ///< macro
};

/// Full report with macro metrics (Table III convention).
classification_report evaluate(std::span<const float> probabilities,
                               std::span<const float> labels, double threshold = 0.5);

/// One-line "acc=.. prec=.. rec=.. f1=.." summary.
std::string to_string(const classification_report& report);

}  // namespace fallsense::eval
