#include "eval/metrics.hpp"

#include <sstream>

#include "util/check.hpp"

namespace fallsense::eval {

confusion_matrix& confusion_matrix::operator+=(const confusion_matrix& other) {
    true_positive += other.true_positive;
    false_positive += other.false_positive;
    true_negative += other.true_negative;
    false_negative += other.false_negative;
    return *this;
}

confusion_matrix make_confusion(std::span<const float> probabilities,
                                std::span<const float> labels, double threshold) {
    FS_ARG_CHECK(probabilities.size() == labels.size(), "probability/label count mismatch");
    confusion_matrix cm;
    for (std::size_t i = 0; i < probabilities.size(); ++i) {
        const bool predicted = probabilities[i] >= threshold;
        const bool actual = labels[i] > 0.5f;
        if (predicted && actual) {
            ++cm.true_positive;
        } else if (predicted && !actual) {
            ++cm.false_positive;
        } else if (!predicted && actual) {
            ++cm.false_negative;
        } else {
            ++cm.true_negative;
        }
    }
    return cm;
}

namespace {

double safe_ratio(std::size_t num, std::size_t den) {
    return den == 0 ? 0.0 : static_cast<double>(num) / static_cast<double>(den);
}

double f1_from(double p, double r) { return (p + r) == 0.0 ? 0.0 : 2.0 * p * r / (p + r); }

}  // namespace

double accuracy(const confusion_matrix& cm) {
    return safe_ratio(cm.true_positive + cm.true_negative, cm.total());
}

double precision(const confusion_matrix& cm) {
    return safe_ratio(cm.true_positive, cm.true_positive + cm.false_positive);
}

double recall(const confusion_matrix& cm) {
    return safe_ratio(cm.true_positive, cm.true_positive + cm.false_negative);
}

double f1_score(const confusion_matrix& cm) {
    return f1_from(precision(cm), recall(cm));
}

double macro_precision(const confusion_matrix& cm) {
    const double pos = precision(cm);
    const double neg = safe_ratio(cm.true_negative, cm.true_negative + cm.false_negative);
    return 0.5 * (pos + neg);
}

double macro_recall(const confusion_matrix& cm) {
    const double pos = recall(cm);
    const double neg = safe_ratio(cm.true_negative, cm.true_negative + cm.false_positive);
    return 0.5 * (pos + neg);
}

double macro_f1(const confusion_matrix& cm) {
    const double pos = f1_score(cm);
    const double neg_p = safe_ratio(cm.true_negative, cm.true_negative + cm.false_negative);
    const double neg_r = safe_ratio(cm.true_negative, cm.true_negative + cm.false_positive);
    return 0.5 * (pos + f1_from(neg_p, neg_r));
}

classification_report evaluate(std::span<const float> probabilities,
                               std::span<const float> labels, double threshold) {
    classification_report report;
    report.cm = make_confusion(probabilities, labels, threshold);
    report.accuracy = accuracy(report.cm);
    report.precision = macro_precision(report.cm);
    report.recall = macro_recall(report.cm);
    report.f1 = macro_f1(report.cm);
    return report;
}

std::string to_string(const classification_report& report) {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "acc=" << report.accuracy * 100.0 << " prec=" << report.precision * 100.0
       << " rec=" << report.recall * 100.0 << " f1=" << report.f1 * 100.0;
    return os.str();
}

}  // namespace fallsense::eval
