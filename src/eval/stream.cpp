#include "eval/stream.hpp"

#include <algorithm>
#include <charconv>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace fallsense::eval {

namespace {

/// Shortest round-trip decimal form — the same convention the obs
/// manifest writer uses, so summary lines are byte-stable.
std::string format_double(double value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), value);
    return std::string(buf, ptr);
}

/// One loop-expanded ground-truth instance in ingested-sample coordinates.
struct fall_instance {
    std::size_t onset = 0;
    std::size_t impact = 0;
    std::size_t window_end = 0;  ///< last sample still attributed to the fall
    bool detected = false;
};

void validate_annotation(const session_annotation& s) {
    for (std::size_t i = 0; i < s.falls.size(); ++i) {
        const stream_fall_event& f = s.falls[i];
        if (f.onset_index >= f.impact_index) {
            throw invariant_error("session_annotation: fall onset must precede impact");
        }
        if (i > 0 && s.falls[i - 1].impact_index >= f.onset_index) {
            throw invariant_error(
                "session_annotation: fall events must be ascending and non-overlapping");
        }
    }
    if (s.stream_samples > 0 && !s.falls.empty() &&
        s.falls.back().impact_index >= s.stream_samples) {
        throw invariant_error("session_annotation: fall impact lies outside the stream");
    }
}

/// Expand the annotated falls to every loop instance whose impact was
/// ingested, ascending; clamp each grace window before the next onset.
std::vector<fall_instance> expand_instances(const session_annotation& s,
                                            std::size_t grace_samples) {
    std::vector<fall_instance> instances;
    const std::size_t loops =
        s.stream_samples == 0 ? 1 : s.samples_ingested / s.stream_samples + 1;
    for (std::size_t k = 0; k < loops; ++k) {
        const std::size_t base = k * s.stream_samples;
        for (const stream_fall_event& f : s.falls) {
            const std::size_t impact = f.impact_index + base;
            if (impact >= s.samples_ingested) break;
            instances.push_back({f.onset_index + base, impact, impact + grace_samples});
        }
        if (s.stream_samples == 0) break;
    }
    for (std::size_t i = 0; i + 1 < instances.size(); ++i) {
        instances[i].window_end =
            std::min(instances[i].window_end, instances[i + 1].onset - 1);
    }
    return instances;
}

}  // namespace

std::string stream_eval_report::summary() const {
    std::ostringstream os;
    os << "eval_sessions: " << sessions << '\n'
       << "eval_samples: " << samples << '\n'
       << "eval_triggers: " << triggers << '\n'
       << "eval_fall_events: " << fall_events << '\n'
       << "eval_falls_detected: " << falls_detected << '\n'
       << "eval_falls_detected_late: " << falls_detected_late << '\n'
       << "eval_falls_missed: " << falls_missed << '\n'
       << "eval_false_alarms: " << false_alarms << '\n'
       << "eval_stream_hours: " << format_double(stream_hours) << '\n'
       << "eval_false_alarms_per_hour: " << format_double(false_alarms_per_hour) << '\n'
       << "eval_mean_lead_ms: " << format_double(mean_lead_ms) << '\n'
       << "eval_min_lead_ms: " << format_double(min_lead_ms) << '\n'
       << "eval_max_lead_ms: " << format_double(max_lead_ms) << '\n';
    for (const cost_point& p : cost_curve) {
        os << "eval_cost_ratio_" << format_double(p.cost_ratio) << ": "
           << format_double(p.cost) << '\n';
    }
    return os.str();
}

stream_eval_report evaluate_stream(std::span<const stream_trigger> triggers,
                                   std::span<const session_annotation> sessions,
                                   const stream_eval_config& config) {
    if (!(config.sample_rate_hz > 0.0)) {
        throw std::invalid_argument("evaluate_stream: sample rate must be positive");
    }
    if (config.detection_grace_s < 0.0) {
        throw std::invalid_argument("evaluate_stream: detection grace must be >= 0");
    }
    if (config.cost_ratios.empty()) {
        throw std::invalid_argument("evaluate_stream: cost-ratio grid is empty");
    }
    const std::size_t grace_samples = static_cast<std::size_t>(
        std::llround(config.detection_grace_s * config.sample_rate_hz));

    // Canonical order regardless of producer interleaving: annotations by
    // session id, triggers by (session, sample index).  Serial from here
    // on, so the report is bit-identical for any thread count.
    std::vector<const session_annotation*> ordered;
    ordered.reserve(sessions.size());
    for (const session_annotation& s : sessions) {
        validate_annotation(s);
        ordered.push_back(&s);
    }
    std::sort(ordered.begin(), ordered.end(),
              [](const session_annotation* a, const session_annotation* b) {
                  return a->session < b->session;
              });
    for (std::size_t i = 0; i + 1 < ordered.size(); ++i) {
        if (ordered[i]->session == ordered[i + 1]->session) {
            throw invariant_error("evaluate_stream: duplicate session annotation");
        }
    }
    std::vector<stream_trigger> fired(triggers.begin(), triggers.end());
    std::sort(fired.begin(), fired.end(),
              [](const stream_trigger& a, const stream_trigger& b) {
                  if (a.session != b.session) return a.session < b.session;
                  return a.sample_index < b.sample_index;
              });

    stream_eval_report report;
    report.sessions = ordered.size();
    double lead_ms_sum = 0.0;
    double lead_ms_min = std::numeric_limits<double>::infinity();
    double lead_ms_max = 0.0;

    std::size_t cursor = 0;  // into `fired`
    for (const session_annotation* s : ordered) {
        report.samples += s->samples_ingested;
        // Triggers for sessions with no annotation entry fall between the
        // sorted runs and are skipped here.
        while (cursor < fired.size() && fired[cursor].session < s->session) ++cursor;
        std::vector<fall_instance> instances = expand_instances(*s, grace_samples);
        std::size_t ii = 0;
        while (cursor < fired.size() && fired[cursor].session == s->session) {
            const std::size_t t = fired[cursor].sample_index;
            ++report.triggers;
            ++cursor;
            while (ii < instances.size() && instances[ii].window_end < t) {
                if (!instances[ii].detected) ++report.falls_missed;
                ++ii;
            }
            if (ii < instances.size() && t >= instances[ii].onset) {
                fall_instance& inst = instances[ii];
                if (!inst.detected) {
                    inst.detected = true;
                    if (t <= inst.impact) {
                        ++report.falls_detected;
                        const double lead_ms =
                            static_cast<double>(inst.impact - t) / config.sample_rate_hz *
                            1000.0;
                        lead_ms_sum += lead_ms;
                        lead_ms_min = std::min(lead_ms_min, lead_ms);
                        lead_ms_max = std::max(lead_ms_max, lead_ms);
                    } else {
                        ++report.falls_detected_late;
                    }
                }
                // Repeat firings inside one event window fold into the
                // detection — re-alerting on a fall already caught is not
                // a new false alarm.
            } else {
                ++report.false_alarms;
            }
        }
        while (ii < instances.size()) {
            if (!instances[ii].detected) ++report.falls_missed;
            ++ii;
        }
        report.fall_events += instances.size();
    }

    report.stream_hours =
        static_cast<double>(report.samples) / config.sample_rate_hz / 3600.0;
    report.false_alarms_per_hour =
        report.stream_hours > 0.0
            ? static_cast<double>(report.false_alarms) / report.stream_hours
            : 0.0;
    if (report.falls_detected > 0) {
        report.mean_lead_ms = lead_ms_sum / static_cast<double>(report.falls_detected);
        report.min_lead_ms = lead_ms_min;
        report.max_lead_ms = lead_ms_max;
    }
    report.cost_curve.reserve(config.cost_ratios.size());
    for (const double ratio : config.cost_ratios) {
        report.cost_curve.push_back(
            {ratio, ratio * static_cast<double>(report.falls_missed) +
                        static_cast<double>(report.false_alarms)});
    }
    return report;
}

}  // namespace fallsense::eval
