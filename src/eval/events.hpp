// Event-level evaluation (Section IV-B, Table IV).
//
// A fall/ADL *event* spans many segments.  One correctly flagged segment is
// enough to trigger the airbag, so a fall event counts as detected when ANY
// of its falling-window segments is predicted positive; conversely an ADL
// event becomes a false positive when ANY of its segments fires.  Table IV
// reports, per task, the percentage of fall events missed (a) and of ADL
// events misclassified as falls (b), plus averages and the red/green ADL
// split.
#pragma once

#include <cstddef>
#include <map>
#include <span>
#include <stdexcept>
#include <vector>

namespace fallsense::eval {

/// Thrown when evaluation inputs violate a structural invariant the
/// matching logic depends on: segment records that disagree on whether
/// their (subject, task, trial) event is a fall, or streaming ground
/// truth with unordered/overlapping fall events (eval/stream.hpp).
/// Silently "merging" such inputs would mis-pair events, so it is a
/// typed, catchable error instead.
struct invariant_error : std::invalid_argument {
    using std::invalid_argument::invalid_argument;
};

/// One scored segment with the identifiers needed for event grouping.
struct segment_record {
    int subject_id = 0;
    int task_id = 0;
    int trial_index = 0;
    bool trial_is_fall = false;
    float label = 0.0f;  ///< 1 = falling-window segment
    float probability = 0.0f;
};

struct task_event_stats {
    int task_id = 0;
    std::size_t events = 0;
    std::size_t misclassified = 0;  ///< missed falls, or ADL false alarms

    double miss_percent() const {
        return events == 0 ? 0.0
                           : 100.0 * static_cast<double>(misclassified) /
                                 static_cast<double>(events);
    }
};

struct event_analysis {
    /// Fall tasks: percentage of fall events with no positive segment.
    std::vector<task_event_stats> fall_misses;       ///< sorted by miss% desc
    /// ADL tasks: percentage of ADL events with at least one positive segment.
    std::vector<task_event_stats> adl_false_alarms;  ///< sorted by miss% desc
    double fall_miss_percent_avg = 0.0;   ///< paper: 4.17 %
    double adl_false_percent_avg = 0.0;   ///< paper: 2.04 %
    double red_adl_false_percent = 0.0;   ///< paper: 3.34 %
    double green_adl_false_percent = 0.0; ///< paper: 0.46 %
};

/// Group segments into events by (subject, task, trial) and compute
/// Table IV.  Red/green classification comes from data::taxonomy.
/// All records of one (subject, task, trial) event must agree on
/// `trial_is_fall`; a contradiction throws eval::invariant_error (ground
/// truth that overlaps or relabels an event cannot be paired soundly).
event_analysis analyze_events(std::span<const segment_record> records,
                              double threshold = 0.5);

/// Event-level counts only: (detected falls, total falls, ADL false alarms,
/// total ADL events) — used by ablation benches.
struct event_counts {
    std::size_t falls_detected = 0;
    std::size_t falls_total = 0;
    std::size_t adl_false_alarms = 0;
    std::size_t adl_total = 0;
};
event_counts count_events(std::span<const segment_record> records, double threshold = 0.5);

}  // namespace fallsense::eval
