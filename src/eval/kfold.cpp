#include "eval/kfold.hpp"

#include <algorithm>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::eval {

std::vector<fold_split> make_subject_folds(std::vector<int> subject_ids,
                                           const kfold_config& config) {
    FS_ARG_CHECK(config.folds >= 2, "k-fold needs at least two folds");
    std::sort(subject_ids.begin(), subject_ids.end());
    subject_ids.erase(std::unique(subject_ids.begin(), subject_ids.end()), subject_ids.end());
    FS_ARG_CHECK(subject_ids.size() >= config.folds,
                 "fewer subjects than folds");

    util::rng gen(config.shuffle_seed);
    gen.shuffle(subject_ids);

    // Distribute subjects round-robin so fold sizes differ by at most one.
    std::vector<std::vector<int>> folds(config.folds);
    for (std::size_t i = 0; i < subject_ids.size(); ++i) {
        folds[i % config.folds].push_back(subject_ids[i]);
    }

    std::vector<fold_split> splits;
    splits.reserve(config.folds);
    for (std::size_t test_fold = 0; test_fold < config.folds; ++test_fold) {
        fold_split split;
        split.test_subjects = folds[test_fold];
        std::vector<int> remaining;
        for (std::size_t f = 0; f < config.folds; ++f) {
            if (f == test_fold) continue;
            remaining.insert(remaining.end(), folds[f].begin(), folds[f].end());
        }
        FS_CHECK(remaining.size() > config.validation_subjects,
                 "not enough subjects left for train+validation");
        gen.shuffle(remaining);
        split.validation_subjects.assign(remaining.begin(),
                                         remaining.begin() +
                                             static_cast<std::ptrdiff_t>(
                                                 config.validation_subjects));
        split.train_subjects.assign(remaining.begin() + static_cast<std::ptrdiff_t>(
                                                            config.validation_subjects),
                                    remaining.end());
        std::sort(split.test_subjects.begin(), split.test_subjects.end());
        std::sort(split.validation_subjects.begin(), split.validation_subjects.end());
        std::sort(split.train_subjects.begin(), split.train_subjects.end());
        splits.push_back(std::move(split));
    }
    return splits;
}

void for_each_fold(std::size_t fold_count, const std::function<void(std::size_t)>& fn) {
    obs::add_counter("eval/folds", fold_count);
    // Grain 1: a fold is the coarsest unit of work in the harness, so every
    // fold is its own task.  Nested parallel regions inside a fold (GEMM,
    // preprocessing) automatically run inline on the fold's thread.
    util::parallel_for(0, fold_count, 1, [&fn](std::size_t fold) {
        OBS_SCOPE("eval/fold");
        fn(fold);
    });
}

}  // namespace fallsense::eval
