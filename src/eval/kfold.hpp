// Subject-based k-fold cross-validation (Section III-C).
//
// Subjects — never individual segments — are partitioned into k folds; in
// each round one fold is the test set, a few subjects drawn from the
// remaining folds form the validation set (for early stopping), and the
// rest train.  This guarantees no subject appears on both sides, the
// subject-independent protocol the paper insists on.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

namespace fallsense::eval {

struct fold_split {
    std::vector<int> train_subjects;
    std::vector<int> validation_subjects;
    std::vector<int> test_subjects;
};

struct kfold_config {
    std::size_t folds = 5;
    std::size_t validation_subjects = 4;  ///< drawn from the training side
    std::uint64_t shuffle_seed = 7;
};

/// Partition `subject_ids` into `config.folds` splits.  Every subject
/// appears in exactly one test fold across the k splits; train/validation/
/// test are pairwise disjoint within each split.
std::vector<fold_split> make_subject_folds(std::vector<int> subject_ids,
                                           const kfold_config& config);

/// Run fn(fold_index) once for every fold in [0, fold_count), distributing
/// folds across the global thread pool (FALLSENSE_THREADS).  Each fold must
/// be self-contained — seeded from its own derived seed and writing results
/// only to its own index-addressed slot — which keeps the cross-validation
/// output bit-identical for any thread count.  Blocks until every fold
/// finishes; rethrows the first fold exception.
void for_each_fold(std::size_t fold_count, const std::function<void(std::size_t)>& fn);

}  // namespace fallsense::eval
