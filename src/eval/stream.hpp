// Event-level streaming evaluation at fleet scale.
//
// The per-window metrics (eval/metrics.hpp) and the per-trial event view
// (eval/events.hpp) both score a finite labeled dataset.  The product
// question is different: a fleet of always-on wearers emits *trigger
// streams*, the synthesizer knows where the real falls are, and what
// matters is (a) how long before impact each fall is caught, (b) how many
// falls are missed outright, and (c) how often the airbag fires for
// nothing — false alarms per hour of worn time, the alert-fatigue number.
// Following the cost-sensitive streaming framing in PAPERS.md
// ("Watch Your Step", arXiv:2509.11789), the two error kinds are folded
// into one tunable score, C = cost_ratio * misses + false_alarms, swept
// over a cost-ratio grid so a deployment can pick its operating point.
//
// Inputs are plain value types so any producer can feed it: the serve
// loadgen taps `fleet_router::tick()` triggers and pairs them with the
// synthesizer's `data::fall_annotation` per session
// (serve::run_loadgen, docs/evaluation.md).  Trigger `sample_index` is
// the session-local ingested-sample tick (serve::trigger_event); looped
// replay streams recur, so each annotated fall is expanded to one ground
// -truth instance per completed loop.
//
// Everything here is single-threaded over canonically ordered inputs:
// given the same triggers and annotations the report is bit-identical
// for any FALLSENSE_THREADS — pinned by tests/serve/scenario_eval_test.cpp
// and the CI scenario-suite manifest diffs.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "eval/events.hpp"  // invariant_error

namespace fallsense::eval {

/// One ground-truth fall inside a session's source stream (indices into
/// the un-looped stream, as produced by data::fall_annotation).
struct stream_fall_event {
    std::size_t onset_index = 0;   ///< first unrecoverable free-fall frame
    std::size_t impact_index = 0;  ///< first ground-contact frame
};

/// Ground truth for one streamed session.
struct session_annotation {
    std::uint32_t session = 0;
    /// Length of the looped source stream; 0 means the stream does not
    /// loop and `falls` indices are absolute.
    std::size_t stream_samples = 0;
    /// Samples the engine actually ingested for this session — bounds the
    /// loop expansion and contributes to worn-time hours.
    std::size_t samples_ingested = 0;
    /// Ascending, non-overlapping (onset < impact, impact < next onset);
    /// violations throw eval::invariant_error.
    std::vector<stream_fall_event> falls;
};

/// One detector firing, as tapped from serve::trigger_event.
struct stream_trigger {
    std::uint32_t session = 0;
    std::size_t sample_index = 0;  ///< session-local ingested-sample tick
};

struct stream_eval_config {
    double sample_rate_hz = 100.0;
    /// Triggers up to this long after impact still attribute to the fall
    /// (late detection, not a false alarm) — the airbag missed its window
    /// but the alert is real.  Clamped so the grace window never reaches
    /// the next fall instance's onset.
    double detection_grace_s = 0.5;
    /// Miss/false-alarm cost ratios swept for the cost curve
    /// (c_fa is normalized to 1; cost = ratio * misses + false_alarms).
    std::vector<double> cost_ratios{1.0, 2.0, 5.0, 10.0, 25.0, 50.0, 100.0};
};

struct cost_point {
    double cost_ratio = 1.0;
    double cost = 0.0;  ///< cost_ratio * falls_missed + false_alarms
};

struct stream_eval_report {
    std::size_t sessions = 0;
    std::uint64_t samples = 0;        ///< total ingested samples
    std::uint64_t triggers = 0;       ///< total trigger firings consumed
    std::uint64_t fall_events = 0;    ///< ground-truth instances (loop-expanded)
    std::uint64_t falls_detected = 0;       ///< first trigger at or before impact
    std::uint64_t falls_detected_late = 0;  ///< first trigger in the grace window
    std::uint64_t falls_missed = 0;         ///< no trigger in [onset, impact+grace]
    std::uint64_t false_alarms = 0;   ///< triggers outside every event window
    double stream_hours = 0.0;        ///< samples / rate / 3600
    double false_alarms_per_hour = 0.0;
    /// Detection lead time before impact, pre-impact detections only.
    double mean_lead_ms = 0.0;
    double min_lead_ms = 0.0;
    double max_lead_ms = 0.0;
    std::vector<cost_point> cost_curve;  ///< one per config cost ratio, in order

    /// Deterministic `key: value` lines (doubles via shortest round-trip
    /// formatting), appended verbatim to loadgen summaries and diffed by
    /// the 1-vs-4-thread acceptance checks.
    std::string summary() const;
};

/// Score trigger streams against per-session ground truth.
///
/// Matching, per session: each annotated fall is expanded to instances
/// `[onset + k*stream_samples, impact + k*stream_samples]` for every loop
/// with `impact` inside the ingested range; the first trigger in
/// `[onset, impact + grace]` detects the instance (pre-impact iff it fires
/// at or before impact, with lead time `impact - trigger`); further
/// triggers inside the same window are folded into the detection; every
/// trigger outside all windows is a false alarm; instances with no
/// trigger are misses.  Sessions without an annotation entry contribute
/// nothing (their triggers are ignored, not counted as false alarms) —
/// pass an annotation with empty `falls` to count a session's triggers.
///
/// Throws eval::invariant_error for unsorted/overlapping falls or
/// onset >= impact, and std::invalid_argument for a non-positive sample
/// rate or an empty cost grid.
stream_eval_report evaluate_stream(std::span<const stream_trigger> triggers,
                                   std::span<const session_annotation> sessions,
                                   const stream_eval_config& config = {});

}  // namespace fallsense::eval
