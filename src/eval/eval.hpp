// Umbrella header: the stable v1 surface of the evaluation layer.
//
// Everything a tool, bench, or test needs to score a model comes through
// this one include:
//
//   - metrics.hpp    — confusion matrix + Table III classification report
//   - events.hpp     — per-trial event grouping (Table IV), invariant_error
//   - roc.hpp        — ROC curve / AUC over scored segments
//   - threshold.hpp  — decision-threshold selection under a false-alarm
//                      budget
//   - kfold.hpp      — subject-based cross-validation splits
//   - stream.hpp     — event-level streaming evaluation: detection lead
//                      time, false alarms per hour, miss/false-alarm cost
//                      curve (docs/evaluation.md)
//   - evaluator.hpp  — evaluator_spec / make_evaluator, the ONE way
//                      callers construct evaluators
//
// Includers outside src/eval must use this header — scripts/check_docs.sh
// rejects direct includes of the per-module headers, the same contract
// serve/serve.hpp holds for the serving layer.
#pragma once

#include "eval/evaluator.hpp"  // IWYU pragma: export
#include "eval/events.hpp"     // IWYU pragma: export
#include "eval/kfold.hpp"      // IWYU pragma: export
#include "eval/metrics.hpp"    // IWYU pragma: export
#include "eval/roc.hpp"        // IWYU pragma: export
#include "eval/stream.hpp"     // IWYU pragma: export
#include "eval/threshold.hpp"  // IWYU pragma: export
