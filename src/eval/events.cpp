#include "eval/events.hpp"

#include <algorithm>
#include <tuple>

#include "data/taxonomy.hpp"
#include "util/check.hpp"

namespace fallsense::eval {

namespace {

struct event_key {
    int subject_id;
    int task_id;
    int trial_index;
    auto operator<=>(const event_key&) const = default;
};

struct event_state {
    bool seen = false;
    bool is_fall = false;
    bool any_positive = false;         ///< any segment fired
    bool any_positive_in_window = false;  ///< any falling-window segment fired
};

std::map<event_key, event_state> group_events(std::span<const segment_record> records,
                                              double threshold) {
    std::map<event_key, event_state> events;
    for (const segment_record& r : records) {
        event_state& state = events[{r.subject_id, r.task_id, r.trial_index}];
        // The matcher assumes ground-truth events are disjoint: every
        // segment of one (subject, task, trial) carries the same
        // trial_is_fall.  A contradiction means two overlapping events
        // were collapsed onto one key — refuse rather than mis-pair.
        if (state.seen && state.is_fall != r.trial_is_fall) {
            throw invariant_error(
                "segment records disagree on trial_is_fall for one "
                "(subject, task, trial) event");
        }
        state.seen = true;
        state.is_fall = r.trial_is_fall;
        const bool fired = r.probability >= threshold;
        state.any_positive = state.any_positive || fired;
        if (r.label > 0.5f && fired) state.any_positive_in_window = true;
    }
    return events;
}

}  // namespace

event_analysis analyze_events(std::span<const segment_record> records, double threshold) {
    const auto events = group_events(records, threshold);

    std::map<int, task_event_stats> fall_stats;
    std::map<int, task_event_stats> adl_stats;
    for (const auto& [key, state] : events) {
        if (state.is_fall) {
            task_event_stats& s = fall_stats[key.task_id];
            s.task_id = key.task_id;
            ++s.events;
            // A fall is detected iff some segment inside the (truncated)
            // falling window fired — firings elsewhere are coincidence.
            if (!state.any_positive_in_window) ++s.misclassified;
        } else {
            task_event_stats& s = adl_stats[key.task_id];
            s.task_id = key.task_id;
            ++s.events;
            if (state.any_positive) ++s.misclassified;
        }
    }

    event_analysis out;
    std::size_t fall_events = 0, fall_missed = 0;
    for (const auto& [task, s] : fall_stats) {
        out.fall_misses.push_back(s);
        fall_events += s.events;
        fall_missed += s.misclassified;
    }
    std::size_t adl_events = 0, adl_false = 0;
    std::size_t red_events = 0, red_false = 0, green_events = 0, green_false = 0;
    for (const auto& [task, s] : adl_stats) {
        out.adl_false_alarms.push_back(s);
        adl_events += s.events;
        adl_false += s.misclassified;
        const data::risk_class risk = data::task_by_id(task).risk;
        if (risk == data::risk_class::red) {
            red_events += s.events;
            red_false += s.misclassified;
        } else if (risk == data::risk_class::green) {
            green_events += s.events;
            green_false += s.misclassified;
        }
    }

    auto pct = [](std::size_t num, std::size_t den) {
        return den == 0 ? 0.0 : 100.0 * static_cast<double>(num) / static_cast<double>(den);
    };
    out.fall_miss_percent_avg = pct(fall_missed, fall_events);
    out.adl_false_percent_avg = pct(adl_false, adl_events);
    out.red_adl_false_percent = pct(red_false, red_events);
    out.green_adl_false_percent = pct(green_false, green_events);

    const auto by_miss_desc = [](const task_event_stats& a, const task_event_stats& b) {
        if (a.miss_percent() != b.miss_percent()) return a.miss_percent() > b.miss_percent();
        return a.task_id < b.task_id;
    };
    std::sort(out.fall_misses.begin(), out.fall_misses.end(), by_miss_desc);
    std::sort(out.adl_false_alarms.begin(), out.adl_false_alarms.end(), by_miss_desc);
    return out;
}

event_counts count_events(std::span<const segment_record> records, double threshold) {
    const auto events = group_events(records, threshold);
    event_counts counts;
    for (const auto& [key, state] : events) {
        if (state.is_fall) {
            ++counts.falls_total;
            if (state.any_positive_in_window) ++counts.falls_detected;
        } else {
            ++counts.adl_total;
            if (state.any_positive) ++counts.adl_false_alarms;
        }
    }
    return counts;
}

}  // namespace fallsense::eval
