// Decision-threshold selection.
//
// The paper tunes the model "to minimize false positives, even at the cost
// of missing the detection of some actual falls" (Section IV-B).
// `select_threshold_for_precision` scans candidate thresholds on validation
// scores and returns the lowest threshold whose event-level false-positive
// rate does not exceed the budget, preferring higher fall detection among
// qualifying thresholds.
#pragma once

#include <span>

#include "eval/events.hpp"

namespace fallsense::eval {

struct threshold_selection {
    double threshold = 0.5;
    double fall_detection_rate = 0.0;  ///< at the chosen threshold
    double adl_false_rate = 0.0;
};

/// Scan thresholds in (0, 1) with `steps` increments on validation segment
/// records; return the threshold maximizing fall detection subject to
/// adl_false_rate <= max_false_rate (falls back to the minimum-false-rate
/// threshold when none qualifies).
threshold_selection select_threshold_for_precision(std::span<const segment_record> validation,
                                                   double max_false_rate = 0.02,
                                                   std::size_t steps = 99);

}  // namespace fallsense::eval
