// The one place evaluators are constructed.
//
// Mirrors serve::make_scorer (src/serve/scorer_factory.hpp): everything
// outside src/eval — tools, benches, tests — builds its evaluator through
// `make_evaluator(evaluator_spec)`: pick a kind, set the decision
// threshold or the streaming config, then feed inputs and call finish().
// The factory owns the wiring between the per-window metrics, the
// Table IV event view, and the streaming cost-sensitive evaluator, so a
// new evaluation mode touches exactly one translation unit.
//
//   - per_window:     segment records in; Table III classification report
//                     + Table IV event analysis + event counts out.
//   - event_stream:   trigger streams + session ground truth in;
//                     detection latency / misses / false alarms per hour
//                     out (eval/stream.hpp), no cost curve.
//   - cost_sensitive: event_stream plus the miss/false-alarm cost curve
//                     swept over the spec's cost-ratio grid.
#pragma once

#include <memory>
#include <optional>
#include <span>
#include <string>

#include "eval/events.hpp"
#include "eval/metrics.hpp"
#include "eval/stream.hpp"

namespace fallsense::eval {

enum class evaluator_kind {
    per_window,      ///< segment-level Table III/IV view
    event_stream,    ///< streaming event matching, latency + FA/hour
    cost_sensitive,  ///< event_stream + cost curve over the ratio grid
};

const char* evaluator_kind_name(evaluator_kind kind);
/// Parse "per_window" / "event_stream" / "cost_sensitive"; anything else
/// returns nullopt.
std::optional<evaluator_kind> parse_evaluator_kind(const std::string& text);

/// Everything needed to build an evaluator.
struct evaluator_spec {
    evaluator_kind kind = evaluator_kind::per_window;
    /// per_window only: decision threshold on segment probabilities.
    double threshold = 0.5;
    /// event_stream / cost_sensitive: sample rate, detection grace,
    /// cost-ratio grid.
    stream_eval_config stream{};
};

/// What finish() returns; the sections present depend on the kind.
struct evaluation_report {
    evaluator_kind kind = evaluator_kind::per_window;
    // per_window sections.
    std::optional<classification_report> classification;
    std::optional<event_analysis> events;
    std::optional<event_counts> counts;
    // event_stream / cost_sensitive section (cost_curve empty for the
    // former).
    std::optional<stream_eval_report> stream;

    /// Deterministic multi-line summary of whichever sections are set.
    std::string summary() const;
};

/// Incremental evaluator: feed inputs matching the kind, then finish().
/// Feeding the wrong input kind (segments into a streaming evaluator or
/// vice versa) throws std::invalid_argument — the mismatch is a caller
/// bug, not data.
class evaluator {
  public:
    virtual ~evaluator() = default;
    virtual std::string describe() const = 0;
    virtual void add_segments(std::span<const segment_record> records) = 0;
    virtual void add_stream(std::span<const stream_trigger> triggers,
                            std::span<const session_annotation> sessions) = 0;
    /// Compute the report over everything added so far.  May be called
    /// once; inputs added after finish() throw.
    virtual evaluation_report finish() = 0;
};

/// Build the evaluator `spec` describes; throws std::invalid_argument on
/// an unusable spec (threshold outside [0, 1], non-positive sample rate,
/// empty cost grid for the streaming kinds).
std::unique_ptr<evaluator> make_evaluator(const evaluator_spec& spec);

}  // namespace fallsense::eval
