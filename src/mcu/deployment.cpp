#include "mcu/deployment.hpp"

#include <cstring>
#include <sstream>
#include <stdexcept>

namespace fallsense::mcu {

namespace {

template <typename T>
void append_pod(std::vector<std::uint8_t>& blob, const T& value) {
    const auto* bytes = reinterpret_cast<const std::uint8_t*>(&value);
    blob.insert(blob.end(), bytes, bytes + sizeof(T));
}

void append_qparams(std::vector<std::uint8_t>& blob, const quant::qparams& qp) {
    append_pod(blob, qp.scale);
    append_pod(blob, qp.zero_point);
}

void append_multiplier(std::vector<std::uint8_t>& blob,
                       const quant::quantized_multiplier& m) {
    append_pod(blob, m.mantissa);
    append_pod(blob, static_cast<std::int32_t>(m.right_shift));
}

}  // namespace

std::vector<std::uint8_t> serialize_deployment_blob(const quant::quantized_cnn& model) {
    std::vector<std::uint8_t> blob;
    blob.insert(blob.end(), {'F', 'S', 'Q', '1'});
    append_pod(blob, static_cast<std::uint32_t>(model.time_steps()));
    append_pod(blob, static_cast<std::uint32_t>(model.input_channels()));
    append_pod(blob, static_cast<std::uint32_t>(model.branches().size()));
    append_pod(blob, static_cast<std::uint32_t>(model.trunk().size()));
    append_qparams(blob, model.input_q());
    append_qparams(blob, model.concat_q());

    for (const quant::q_conv_branch& b : model.branches()) {
        append_pod(blob, static_cast<std::uint32_t>(b.kernel));
        append_pod(blob, static_cast<std::uint32_t>(b.in_channels));
        append_pod(blob, static_cast<std::uint32_t>(b.out_channels));
        append_pod(blob, static_cast<std::uint32_t>(b.pool));
        append_qparams(blob, b.weight_q);
        append_multiplier(blob, b.requant);
        blob.insert(blob.end(), reinterpret_cast<const std::uint8_t*>(b.weight.data()),
                    reinterpret_cast<const std::uint8_t*>(b.weight.data() + b.weight.size()));
        for (const std::int32_t v : b.bias) append_pod(blob, v);
    }
    for (const quant::q_dense& d : model.trunk()) {
        append_pod(blob, static_cast<std::uint32_t>(d.in_features));
        append_pod(blob, static_cast<std::uint32_t>(d.out_features));
        append_pod(blob, static_cast<std::uint32_t>(d.relu ? 1 : 0));
        append_qparams(blob, d.weight_q);
        append_qparams(blob, d.output_q);
        append_multiplier(blob, d.requant);
        blob.insert(blob.end(), reinterpret_cast<const std::uint8_t*>(d.weight.data()),
                    reinterpret_cast<const std::uint8_t*>(d.weight.data() + d.weight.size()));
        for (const std::int32_t v : d.bias) append_pod(blob, v);
    }
    return blob;
}

namespace {

/// Bounds-checked sequential reader over a blob.
class blob_reader {
public:
    explicit blob_reader(std::span<const std::uint8_t> blob) : blob_(blob) {}

    template <typename T>
    T read() {
        if (offset_ + sizeof(T) > blob_.size()) {
            throw std::runtime_error("deployment blob truncated");
        }
        T value{};
        std::memcpy(&value, blob_.data() + offset_, sizeof(T));
        offset_ += sizeof(T);
        return value;
    }

    std::vector<std::int8_t> read_i8(std::size_t count) {
        if (offset_ + count > blob_.size()) {
            throw std::runtime_error("deployment blob truncated in weights");
        }
        std::vector<std::int8_t> out(count);
        std::memcpy(out.data(), blob_.data() + offset_, count);
        offset_ += count;
        return out;
    }

    std::vector<std::int32_t> read_i32(std::size_t count) {
        std::vector<std::int32_t> out(count);
        for (auto& v : out) v = read<std::int32_t>();
        return out;
    }

    quant::qparams read_qparams() {
        quant::qparams qp;
        qp.scale = read<float>();
        qp.zero_point = read<std::int32_t>();
        return qp;
    }

    quant::quantized_multiplier read_multiplier() {
        quant::quantized_multiplier m;
        m.mantissa = read<std::int32_t>();
        m.right_shift = static_cast<int>(read<std::int32_t>());
        return m;
    }

    bool exhausted() const { return offset_ == blob_.size(); }

private:
    std::span<const std::uint8_t> blob_;
    std::size_t offset_ = 0;
};

/// Sanity cap: no deployed dimension exceeds this (a 256 KiB part cannot
/// hold more) — rejects garbage headers before huge allocations.
constexpr std::uint32_t k_max_dim = 1u << 20;

std::uint32_t checked_dim(std::uint32_t v, const char* what) {
    if (v == 0 || v > k_max_dim) {
        throw std::runtime_error(std::string("deployment blob: implausible ") + what);
    }
    return v;
}

}  // namespace

quant::quantized_cnn deserialize_deployment_blob(std::span<const std::uint8_t> blob) {
    if (blob.size() < 4 || std::memcmp(blob.data(), "FSQ1", 4) != 0) {
        throw std::runtime_error("deployment blob: bad magic");
    }
    blob_reader reader(blob.subspan(4));
    quant::quantized_cnn_parts parts;
    parts.time_steps = checked_dim(reader.read<std::uint32_t>(), "time steps");
    const std::uint32_t channels = checked_dim(reader.read<std::uint32_t>(), "channels");
    const std::uint32_t branch_count = checked_dim(reader.read<std::uint32_t>(), "branches");
    const std::uint32_t trunk_count = checked_dim(reader.read<std::uint32_t>(), "trunk");
    parts.input_q = reader.read_qparams();
    parts.concat_q = reader.read_qparams();

    std::size_t channel_sum = 0;
    for (std::uint32_t bi = 0; bi < branch_count; ++bi) {
        quant::q_conv_branch b;
        b.kernel = checked_dim(reader.read<std::uint32_t>(), "kernel");
        b.in_channels = checked_dim(reader.read<std::uint32_t>(), "in channels");
        b.out_channels = checked_dim(reader.read<std::uint32_t>(), "out channels");
        b.pool = checked_dim(reader.read<std::uint32_t>(), "pool");
        b.weight_q = reader.read_qparams();
        b.requant = reader.read_multiplier();
        b.weight = reader.read_i8(b.kernel * b.in_channels * b.out_channels);
        b.bias = reader.read_i32(b.out_channels);
        channel_sum += b.in_channels;
        parts.branches.push_back(std::move(b));
    }
    if (channel_sum != channels) {
        throw std::runtime_error("deployment blob: branch channels disagree with header");
    }
    for (std::uint32_t di = 0; di < trunk_count; ++di) {
        quant::q_dense d;
        d.in_features = checked_dim(reader.read<std::uint32_t>(), "dense in");
        d.out_features = checked_dim(reader.read<std::uint32_t>(), "dense out");
        d.relu = reader.read<std::uint32_t>() != 0;
        d.weight_q = reader.read_qparams();
        d.output_q = reader.read_qparams();
        d.requant = reader.read_multiplier();
        d.weight = reader.read_i8(d.in_features * d.out_features);
        d.bias = reader.read_i32(d.out_features);
        parts.trunk.push_back(std::move(d));
    }
    if (!reader.exhausted()) {
        throw std::runtime_error("deployment blob: trailing bytes");
    }
    return quant::quantized_cnn(std::move(parts));
}

std::string render_c_array(const std::vector<std::uint8_t>& blob, const std::string& name) {
    std::ostringstream os;
    os << "/* fallsense deployment blob: " << blob.size() << " bytes */\n";
    os << "const unsigned char " << name << "[" << blob.size() << "] = {";
    for (std::size_t i = 0; i < blob.size(); ++i) {
        if (i % 12 == 0) os << "\n    ";
        os << static_cast<unsigned>(blob[i]);
        if (i + 1 != blob.size()) os << ", ";
    }
    os << "\n};\n";
    os << "const unsigned int " << name << "_len = " << blob.size() << ";\n";
    return os.str();
}

}  // namespace fallsense::mcu
