// Firmware deployment artifact emission: serialize a quantized model into
// the flat binary blob the firmware flashes, and render it as a C array for
// inclusion in an embedded build — the last step of the paper's pipeline.
//
// Blob layout (little-endian):
//   magic "FSQ1" | u32 time_steps | u32 channels | u32 branch_count |
//   u32 trunk_count | input qparams | concat qparams |
//   per branch: dims, weight qparams, requant, int8 weights, int32 biases |
//   per dense:  dims, flags, qparams, requant, int8 weights, int32 biases
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "quant/quantized_cnn.hpp"

namespace fallsense::mcu {

/// Serialize the deployment blob.
std::vector<std::uint8_t> serialize_deployment_blob(const quant::quantized_cnn& model);

/// The firmware loader: parse a blob back into an executable int8 model.
/// Throws std::runtime_error on bad magic, truncation, or inconsistent
/// structure — a corrupted flash image must never run.
quant::quantized_cnn deserialize_deployment_blob(std::span<const std::uint8_t> blob);

/// Render a blob as a C source snippet: `const unsigned char name[] = {...};`
std::string render_c_array(const std::vector<std::uint8_t>& blob, const std::string& name);

}  // namespace fallsense::mcu
