#include "mcu/stm32_spec.hpp"

namespace fallsense::mcu {

device_spec stm32f722() { return device_spec{}; }

}  // namespace fallsense::mcu
