#include "mcu/memory_planner.hpp"

#include <sstream>

namespace fallsense::mcu {

std::size_t deployed_tensor_count(const quant::quantized_cnn& model) {
    // Per branch: weight, bias, conv output, pool output.  Per dense:
    // weight, bias, output.  Plus the input tensor.
    return 1 + model.branches().size() * 4 + model.trunk().size() * 3;
}

flash_report plan_flash(const quant::quantized_cnn& model, const runtime_constants& rc) {
    flash_report report;
    report.weight_bytes = model.weight_bytes();
    report.bias_bytes = model.bias_bytes();
    const std::size_t tensors = deployed_tensor_count(model);
    report.metadata_bytes = rc.model_header_bytes +
                            tensors * (rc.graph_descriptor_bytes_per_tensor +
                                       rc.quant_record_bytes_per_tensor);
    report.total_bytes = report.weight_bytes + report.bias_bytes + report.metadata_bytes;
    return report;
}

ram_report plan_ram(const quant::quantized_cnn& model, const runtime_constants& rc) {
    ram_report report;
    report.activation_arena_bytes = model.activation_arena_bytes();
    // Input staging: the float segment handed to the quantizer plus a raw
    // 6-channel int16 ring buffer covering one window.
    const std::size_t window = model.time_steps();
    report.input_staging_bytes = window * model.input_channels() * sizeof(float) +
                                 window * 6 * sizeof(std::int16_t);
    report.runtime_bytes =
        rc.interpreter_ram_bytes + rc.fusion_state_bytes + rc.stack_reserve_bytes;
    report.total_bytes = report.activation_arena_bytes + report.input_staging_bytes +
                         report.runtime_bytes;
    return report;
}

deployment_plan plan_deployment(const quant::quantized_cnn& model, const device_spec& device,
                                const runtime_constants& rc) {
    deployment_plan plan;
    plan.flash = plan_flash(model, rc);
    plan.ram = plan_ram(model, rc);
    plan.fits_flash = plan.flash.total_bytes <= device.flash_budget_bytes;
    plan.fits_ram = plan.ram.total_bytes <= device.ram_budget_bytes;
    return plan;
}

std::string deployment_plan::summary() const {
    std::ostringstream os;
    os.setf(std::ios::fixed);
    os.precision(2);
    os << "flash: " << flash.total_kib() << " KiB (weights "
       << static_cast<double>(flash.weight_bytes) / 1024.0 << ", biases "
       << static_cast<double>(flash.bias_bytes) / 1024.0 << ", metadata "
       << static_cast<double>(flash.metadata_bytes) / 1024.0 << ")"
       << (fits_flash ? " [fits]" : " [OVER BUDGET]") << '\n';
    os << "ram:   " << ram.total_kib() << " KiB (arena "
       << static_cast<double>(ram.activation_arena_bytes) / 1024.0 << ", staging "
       << static_cast<double>(ram.input_staging_bytes) / 1024.0 << ", runtime "
       << static_cast<double>(ram.runtime_bytes) / 1024.0 << ")"
       << (fits_ram ? " [fits]" : " [OVER BUDGET]");
    return os.str();
}

}  // namespace fallsense::mcu
