// Flash / RAM footprint accounting for a deployed quantized model —
// the substitute for STM32Cube.AI's allocation report (Section IV-C:
// model 67.03 KiB flash, 16.87 KiB RAM).
//
// Flash = weights (int8) + biases (int32) + per-tensor quantization records
// + graph/operator descriptors.  RAM = activation arena + input staging
// (float window + raw ring buffer) + filter/fusion state + runtime
// bookkeeping.  The runtime-constant terms model the TFLM/Cube.AI
// interpreter the paper's firmware links.
#pragma once

#include <cstddef>
#include <string>

#include "mcu/stm32_spec.hpp"
#include "quant/quantized_cnn.hpp"

namespace fallsense::mcu {

struct runtime_constants {
    std::size_t graph_descriptor_bytes_per_tensor = 64;  ///< op + tensor metadata
    std::size_t quant_record_bytes_per_tensor = 24;
    std::size_t model_header_bytes = 512;
    std::size_t interpreter_ram_bytes = 9 * 1024;  ///< interpreter + op scratch
    std::size_t fusion_state_bytes = 6 * 2 * 2 * sizeof(float) + 3 * sizeof(float);
    std::size_t stack_reserve_bytes = 2 * 1024;
};

struct flash_report {
    std::size_t weight_bytes = 0;
    std::size_t bias_bytes = 0;
    std::size_t metadata_bytes = 0;
    std::size_t total_bytes = 0;

    double total_kib() const { return static_cast<double>(total_bytes) / 1024.0; }
};

struct ram_report {
    std::size_t activation_arena_bytes = 0;
    std::size_t input_staging_bytes = 0;  ///< float window + raw ring buffer
    std::size_t runtime_bytes = 0;
    std::size_t total_bytes = 0;

    double total_kib() const { return static_cast<double>(total_bytes) / 1024.0; }
};

struct deployment_plan {
    flash_report flash;
    ram_report ram;
    bool fits_flash = false;
    bool fits_ram = false;

    std::string summary() const;  ///< multi-line human-readable report
};

/// Count the tensors a deployment graph materializes (weights, biases, and
/// per-layer activations) — drives metadata sizing.
std::size_t deployed_tensor_count(const quant::quantized_cnn& model);

flash_report plan_flash(const quant::quantized_cnn& model, const runtime_constants& rc = {});
ram_report plan_ram(const quant::quantized_cnn& model, const runtime_constants& rc = {});

/// Full plan with capacity checks against the device budget.
deployment_plan plan_deployment(const quant::quantized_cnn& model, const device_spec& device,
                                const runtime_constants& rc = {});

}  // namespace fallsense::mcu
