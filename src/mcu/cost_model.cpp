#include "mcu/cost_model.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"
#include "util/stats.hpp"

namespace fallsense::mcu {

latency_estimate estimate_inference(const quant::quantized_cnn& model,
                                    const device_spec& device, const cycle_costs& costs) {
    const quant::op_counts ops = model.count_ops();
    const std::size_t layers = model.branches().size() * 2 + model.trunk().size();
    double cycles = costs.cycles_fixed;
    cycles += static_cast<double>(ops.macs) * costs.cycles_per_mac;
    cycles += static_cast<double>(ops.requants) * costs.cycles_per_requant;
    cycles += static_cast<double>(ops.pool_compares) * costs.cycles_per_pool_compare;
    cycles += static_cast<double>(layers) * costs.cycles_per_layer;
    cycles += static_cast<double>(model.weight_bytes()) * costs.cycles_per_weight_byte;

    latency_estimate est;
    est.cycles = cycles;
    est.milliseconds = cycles / device.clock_hz * 1e3;
    return est;
}

latency_estimate estimate_fusion(std::size_t window_samples, const device_spec& device,
                                 const fusion_costs& costs) {
    FS_ARG_CHECK(window_samples > 0, "fusion estimate for empty window");
    const double per_sample =
        costs.cycles_per_sample_io +
        costs.cycles_per_biquad_step * static_cast<double>(costs.biquad_sections) *
            static_cast<double>(costs.raw_channels) +
        costs.cycles_per_fusion_update;
    latency_estimate est;
    est.cycles = per_sample * static_cast<double>(window_samples);
    est.milliseconds = est.cycles / device.clock_hz * 1e3;
    return est;
}

latency_stats simulate_latency(const quant::quantized_cnn& model, const device_spec& device,
                               std::size_t iterations, util::rng& gen,
                               const cycle_costs& costs, const jitter_model& jitter) {
    FS_ARG_CHECK(iterations > 0, "latency simulation needs iterations");
    const double base_ms = estimate_inference(model, device, costs).milliseconds;

    util::running_stats stats;
    for (std::size_t i = 0; i < iterations; ++i) {
        double ms = base_ms;
        // Poisson-distributed interrupt arrivals (inverse-CDF sampling is
        // fine at these small means), each with exponential service time.
        const double mean = jitter.interrupt_rate_per_inference;
        std::size_t arrivals = 0;
        double p = std::exp(-mean);
        double cdf = p;
        const double u = gen.uniform();
        while (u > cdf && arrivals < 64) {
            ++arrivals;
            p *= mean / static_cast<double>(arrivals);
            cdf += p;
        }
        for (std::size_t a = 0; a < arrivals; ++a) {
            ms += -jitter.interrupt_service_ms * std::log(std::max(gen.uniform(), 1e-12));
        }
        // Cache / bus state: symmetric uniform spread.
        ms += gen.uniform(-jitter.cache_state_spread_ms, jitter.cache_state_spread_ms);
        ms = std::max(ms, base_ms * 0.5);
        stats.add(ms);
    }

    latency_stats out;
    out.mean_ms = stats.mean();
    out.stddev_ms = stats.stddev();
    out.min_ms = stats.min();
    out.max_ms = stats.max();
    out.samples = stats.count();
    return out;
}

}  // namespace fallsense::mcu
