// Target-device description: the STM32F722RET6 the paper deploys on.
//
// ARM Cortex-M7 (dual-issue, 6-stage, DSP extension with SIMD int8/int16
// MACs, single-precision FPU) at 216 MHz.  The part has 512 KiB flash and
// 256 KiB SRAM; the paper's footnote budgets 256 KiB of flash for the
// application (the rest holds the bootloader/telemetry firmware), so the
// deployment check uses the paper's budget.
#pragma once

#include <cstddef>
#include <cstdint>

namespace fallsense::mcu {

struct device_spec {
    const char* name = "STM32F722RET6";
    double clock_hz = 216e6;
    std::size_t flash_capacity_bytes = 512 * 1024;
    std::size_t flash_budget_bytes = 256 * 1024;  ///< paper's app budget
    std::size_t ram_capacity_bytes = 256 * 1024;
    std::size_t ram_budget_bytes = 256 * 1024;
};

/// The paper's board.
device_spec stm32f722();

}  // namespace fallsense::mcu
