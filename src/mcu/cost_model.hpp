// Cortex-M7 cycle-cost model for the quantized CNN and the sensor-fusion
// preprocessing — the substitute for the paper's on-hardware timing
// (Section IV-C: inference 4 ms +- 3 ms, fusion 3 ms per segment).
//
// The model is analytic: per-operation cycle costs for the generated int8
// kernels (portable C loops with per-output requantization, as produced by
// STM32Cube.AI's reference path), plus per-layer dispatch overhead and a
// memory-traffic term for flash-resident weights behind the ART cache.
// Constants are calibrated so a ~62 k-parameter model lands in the paper's
// measured envelope; the calibration is explicit and documented here rather
// than buried in magic numbers.
#pragma once

#include <cstdint>

#include "mcu/stm32_spec.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"

namespace fallsense::mcu {

struct cycle_costs {
    // Int8 kernel costs (cycles per operation, reference C kernels; the
    // quantization arithmetic dominates the inner loop).
    double cycles_per_mac = 7.5;
    double cycles_per_requant = 28.0;
    double cycles_per_pool_compare = 3.0;
    // Per-layer dispatch + arena bookkeeping.
    double cycles_per_layer = 900.0;
    // Flash wait-state penalty per weight byte streamed through the ART
    // accelerator (misses amortized).
    double cycles_per_weight_byte = 0.8;
    // Fixed per-inference runtime overhead (interpreter entry, input
    // quantization, output dequantization).
    double cycles_fixed = 24'000.0;
};

struct fusion_costs {
    // Per-sample costs of the 10 ms tick path: sensor I/O (SPI transactions
    // to the accelerometer and gyro at a modest bus clock, register
    // handling, unit scaling), one 4th-order Butterworth step on each of 6
    // raw channels, and the complementary-filter update (atan2/sqrt in
    // single-precision FPU plus state bookkeeping).  Calibrated so a
    // 40-sample window costs ~3 ms, the paper's reported fusion time.
    double cycles_per_sample_io = 6'400.0;
    double cycles_per_biquad_step = 55.0;   ///< one biquad, one channel
    double cycles_per_fusion_update = 9'100.0;  ///< trig-heavy attitude update
    std::size_t biquad_sections = 2;  ///< 4th-order = 2 cascaded sections
    std::size_t raw_channels = 6;
};

struct latency_estimate {
    double cycles = 0.0;
    double milliseconds = 0.0;
};

/// Deterministic inference-latency estimate for one segment.
latency_estimate estimate_inference(const quant::quantized_cnn& model,
                                    const device_spec& device,
                                    const cycle_costs& costs = {});

/// Deterministic preprocessing (fusion) estimate for one segment of
/// `window_samples` ticks.
latency_estimate estimate_fusion(std::size_t window_samples, const device_spec& device,
                                 const fusion_costs& costs = {});

/// Execution-time jitter model: the measured +-3 ms spread comes from
/// sensor-DMA contention, systick/BLE interrupts, and flash-cache state.
/// Samples a per-inference latency around the deterministic estimate.
struct jitter_model {
    double interrupt_rate_per_inference = 1.6;   ///< Poisson mean
    double interrupt_service_ms = 0.9;           ///< mean per interrupt
    double cache_state_spread_ms = 0.5;          ///< half-range, uniform
};

struct latency_stats {
    double mean_ms = 0.0;
    double stddev_ms = 0.0;
    double min_ms = 0.0;
    double max_ms = 0.0;
    std::size_t samples = 0;
};

/// Simulate `iterations` inferences with jitter; returns summary stats.
latency_stats simulate_latency(const quant::quantized_cnn& model, const device_spec& device,
                               std::size_t iterations, util::rng& gen,
                               const cycle_costs& costs = {}, const jitter_model& jitter = {});

}  // namespace fallsense::mcu
