#include "augment/warping.hpp"

#include <algorithm>
#include <cmath>

#include "util/check.hpp"

namespace fallsense::augment {

namespace {

std::size_t frame_count(const std::vector<float>& interleaved, std::size_t channels) {
    FS_ARG_CHECK(channels > 0, "channel count must be positive");
    FS_ARG_CHECK(interleaved.size() % channels == 0,
                 "buffer size not a multiple of channel count");
    return interleaved.size() / channels;
}

/// Sample the series at fractional frame `pos` (clamped, linear interp).
void sample_at(const std::vector<float>& in, std::size_t channels, std::size_t frames,
               double pos, float* out) {
    pos = std::clamp(pos, 0.0, static_cast<double>(frames - 1));
    const auto lo = static_cast<std::size_t>(pos);
    const std::size_t hi = std::min(lo + 1, frames - 1);
    const double frac = pos - static_cast<double>(lo);
    for (std::size_t c = 0; c < channels; ++c) {
        const double a = in[lo * channels + c];
        const double b = in[hi * channels + c];
        out[c] = static_cast<float>(a + (b - a) * frac);
    }
}

}  // namespace

std::vector<float> resample_linear(const std::vector<float>& interleaved, std::size_t channels,
                                   std::size_t new_frames) {
    const std::size_t frames = frame_count(interleaved, channels);
    FS_ARG_CHECK(frames >= 2, "resample needs at least two frames");
    FS_ARG_CHECK(new_frames >= 2, "resample target needs at least two frames");
    std::vector<float> out(new_frames * channels);
    const double step = static_cast<double>(frames - 1) / static_cast<double>(new_frames - 1);
    for (std::size_t t = 0; t < new_frames; ++t) {
        sample_at(interleaved, channels, frames, static_cast<double>(t) * step,
                  out.data() + t * channels);
    }
    return out;
}

warp_result time_warp(const std::vector<float>& interleaved, std::size_t channels,
                      const time_warp_config& config, const std::vector<std::size_t>& tracked,
                      util::rng& gen) {
    const std::size_t frames = frame_count(interleaved, channels);
    FS_ARG_CHECK(frames >= 2, "time_warp needs at least two frames");
    FS_ARG_CHECK(config.knots >= 1, "time_warp needs at least one knot");
    FS_ARG_CHECK(config.sigma >= 0.0, "time_warp sigma must be non-negative");

    // Monotone warp curve w: [0,1] -> [0,1] built from perturbed positive
    // increments at knots+2 anchor points, then normalized.
    const std::size_t anchors = config.knots + 2;
    std::vector<double> increments(anchors - 1);
    for (double& inc : increments) {
        inc = std::max(0.05, 1.0 + gen.normal(0.0, config.sigma));
    }
    std::vector<double> cum(anchors, 0.0);
    for (std::size_t i = 1; i < anchors; ++i) cum[i] = cum[i - 1] + increments[i - 1];
    for (double& v : cum) v /= cum.back();  // w(0)=0, w(1)=1, monotone

    // Piecewise-linear evaluation of w at u in [0,1].
    auto warp_at = [&](double u) {
        u = std::clamp(u, 0.0, 1.0);
        const double pos = u * static_cast<double>(anchors - 1);
        const auto lo = std::min(static_cast<std::size_t>(pos), anchors - 2);
        const double frac = pos - static_cast<double>(lo);
        return cum[lo] + (cum[lo + 1] - cum[lo]) * frac;
    };

    warp_result result;
    result.series.resize(frames * channels);
    for (std::size_t t = 0; t < frames; ++t) {
        const double u = static_cast<double>(t) / static_cast<double>(frames - 1);
        const double src = warp_at(u) * static_cast<double>(frames - 1);
        sample_at(interleaved, channels, frames, src, result.series.data() + t * channels);
    }

    // Map tracked input frames: find t_out with w(t_out) closest to the
    // tracked source position (w is monotone — binary search).
    result.mapped_indices.reserve(tracked.size());
    for (const std::size_t src_idx : tracked) {
        FS_ARG_CHECK(src_idx < frames, "tracked index out of range");
        const double target = static_cast<double>(src_idx) / static_cast<double>(frames - 1);
        std::size_t lo = 0, hi = frames - 1;
        while (lo < hi) {
            const std::size_t mid = (lo + hi) / 2;
            const double u = static_cast<double>(mid) / static_cast<double>(frames - 1);
            if (warp_at(u) < target) {
                lo = mid + 1;
            } else {
                hi = mid;
            }
        }
        result.mapped_indices.push_back(lo);
    }
    return result;
}

warp_result window_warp(const std::vector<float>& interleaved, std::size_t channels,
                        const window_warp_config& config,
                        const std::vector<std::size_t>& tracked, util::rng& gen) {
    const std::size_t frames = frame_count(interleaved, channels);
    FS_ARG_CHECK(frames >= 8, "window_warp needs at least eight frames");
    FS_ARG_CHECK(config.window_fraction > 0.0 && config.window_fraction < 1.0,
                 "window fraction must be in (0, 1)");
    FS_ARG_CHECK(config.scale_low > 0.0 && config.scale_high >= config.scale_low,
                 "invalid window-warp scale range");

    const auto window =
        std::max<std::size_t>(2, static_cast<std::size_t>(
                                     std::lround(config.window_fraction *
                                                 static_cast<double>(frames))));
    const std::size_t max_start = frames - window;
    const auto start = static_cast<std::size_t>(
        gen.uniform_int(0, static_cast<std::int64_t>(max_start)));
    const std::size_t end = start + window;
    const double scale = gen.uniform(config.scale_low, config.scale_high);
    const auto new_window = std::max<std::size_t>(
        2, static_cast<std::size_t>(std::lround(scale * static_cast<double>(window))));

    // Resample the window in isolation.
    std::vector<float> window_buf(interleaved.begin() +
                                      static_cast<std::ptrdiff_t>(start * channels),
                                  interleaved.begin() +
                                      static_cast<std::ptrdiff_t>(end * channels));
    const std::vector<float> warped_window = resample_linear(window_buf, channels, new_window);

    warp_result result;
    result.series.reserve((frames - window + new_window) * channels);
    result.series.insert(result.series.end(), interleaved.begin(),
                         interleaved.begin() + static_cast<std::ptrdiff_t>(start * channels));
    result.series.insert(result.series.end(), warped_window.begin(), warped_window.end());
    result.series.insert(result.series.end(),
                         interleaved.begin() + static_cast<std::ptrdiff_t>(end * channels),
                         interleaved.end());

    const double in_window_scale =
        static_cast<double>(new_window) / static_cast<double>(window);
    const std::ptrdiff_t shift =
        static_cast<std::ptrdiff_t>(new_window) - static_cast<std::ptrdiff_t>(window);
    result.mapped_indices.reserve(tracked.size());
    for (const std::size_t src_idx : tracked) {
        FS_ARG_CHECK(src_idx < frames, "tracked index out of range");
        std::size_t mapped = 0;
        if (src_idx < start) {
            mapped = src_idx;
        } else if (src_idx >= end) {
            mapped = static_cast<std::size_t>(static_cast<std::ptrdiff_t>(src_idx) + shift);
        } else {
            mapped = start + static_cast<std::size_t>(std::lround(
                                 static_cast<double>(src_idx - start) * in_window_scale));
        }
        const std::size_t out_frames = result.series.size() / channels;
        result.mapped_indices.push_back(std::min(mapped, out_frames - 1));
    }
    return result;
}

}  // namespace fallsense::augment
