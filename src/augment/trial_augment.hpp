// Trial-level augmentation: apply time / window warping to a fall trial's
// raw samples and re-map its frame-accurate annotation.
#pragma once

#include "augment/warping.hpp"
#include "data/types.hpp"

namespace fallsense::augment {

enum class augmentation_kind { time_warp, window_warp };

struct trial_augment_config {
    time_warp_config time_warp;
    window_warp_config window_warp;
};

/// Produce an augmented copy of a fall trial; onset/impact indices are
/// warped along with the signal.  Throws if `t` is not a fall trial.
data::trial augment_fall_trial(const data::trial& t, augmentation_kind kind,
                               const trial_augment_config& config, util::rng& gen);

/// Append `copies_per_trial` augmented variants of every fall trial in
/// `trials` (alternating time/window warping), leaving ADL trials untouched.
void augment_fall_trials(std::vector<data::trial>& trials, int copies_per_trial,
                         const trial_augment_config& config, util::rng& gen);

}  // namespace fallsense::augment
