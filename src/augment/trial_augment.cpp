#include "augment/trial_augment.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace fallsense::augment {

data::trial augment_fall_trial(const data::trial& t, augmentation_kind kind,
                               const trial_augment_config& config, util::rng& gen) {
    FS_ARG_CHECK(t.is_fall_trial(), "augment_fall_trial on a non-fall trial");
    t.validate();

    // Interleave the 6 raw channels.
    constexpr std::size_t channels = 6;
    std::vector<float> buf;
    buf.reserve(t.samples.size() * channels);
    for (const data::raw_sample& s : t.samples) {
        buf.insert(buf.end(), {s.accel[0], s.accel[1], s.accel[2], s.gyro[0], s.gyro[1],
                               s.gyro[2]});
    }
    const std::vector<std::size_t> tracked{t.fall->onset_index, t.fall->impact_index};

    warp_result warped;
    switch (kind) {
        case augmentation_kind::time_warp:
            warped = time_warp(buf, channels, config.time_warp, tracked, gen);
            break;
        case augmentation_kind::window_warp:
            warped = window_warp(buf, channels, config.window_warp, tracked, gen);
            break;
    }

    data::trial out = t;
    const std::size_t frames = warped.series.size() / channels;
    out.samples.resize(frames);
    for (std::size_t i = 0; i < frames; ++i) {
        const float* row = warped.series.data() + i * channels;
        out.samples[i].accel = {row[0], row[1], row[2]};
        out.samples[i].gyro = {row[3], row[4], row[5]};
    }
    std::size_t onset = warped.mapped_indices[0];
    std::size_t impact = warped.mapped_indices[1];
    // Warping can collapse a short falling phase; keep the annotation sane.
    impact = std::min(impact, frames - 1);
    if (onset >= impact) onset = impact > 0 ? impact - 1 : 0;
    out.fall = data::fall_annotation{onset, impact};
    out.validate();
    return out;
}

void augment_fall_trials(std::vector<data::trial>& trials, int copies_per_trial,
                         const trial_augment_config& config, util::rng& gen) {
    FS_ARG_CHECK(copies_per_trial >= 0, "negative augmentation count");
    std::vector<data::trial> augmented;
    for (const data::trial& t : trials) {
        if (!t.is_fall_trial()) continue;
        for (int copy = 0; copy < copies_per_trial; ++copy) {
            const augmentation_kind kind = (copy % 2 == 0) ? augmentation_kind::time_warp
                                                           : augmentation_kind::window_warp;
            augmented.push_back(augment_fall_trial(t, kind, config, gen));
        }
    }
    trials.insert(trials.end(), std::make_move_iterator(augmented.begin()),
                  std::make_move_iterator(augmented.end()));
}

}  // namespace fallsense::augment
