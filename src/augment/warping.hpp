// Time-series augmentation: time warping (Um et al., 2017) and window
// warping (Rashid & Louis, 2019) — the two techniques the paper applies to
// fall trials to counter class imbalance (Section III-C).
//
// All warps operate on interleaved row-major [frames x channels] buffers
// and report an index mapping so frame-accurate fall annotations (onset /
// impact) stay correct after augmentation.
#pragma once

#include <cstddef>
#include <vector>

#include "util/rng.hpp"

namespace fallsense::augment {

/// Linear resampling of a multichannel series to `new_frames` frames.
std::vector<float> resample_linear(const std::vector<float>& interleaved,
                                   std::size_t channels, std::size_t new_frames);

struct warp_result {
    std::vector<float> series;  ///< warped interleaved buffer
    /// mapped[i] = output frame corresponding to input frame `tracked[i]`.
    std::vector<std::size_t> mapped_indices;
};

struct time_warp_config {
    std::size_t knots = 4;      ///< interior control points of the warp curve
    double sigma = 0.2;         ///< warp strength (std of knot perturbations)
};

/// Smooth random time warp; output has the same frame count as the input.
/// `tracked` lists input frame indices whose warped positions are needed.
warp_result time_warp(const std::vector<float>& interleaved, std::size_t channels,
                      const time_warp_config& config,
                      const std::vector<std::size_t>& tracked, util::rng& gen);

struct window_warp_config {
    double window_fraction = 0.3;  ///< length of the warped window
    double scale_low = 0.6;        ///< speed-up bound (window compressed)
    double scale_high = 1.6;       ///< slow-down bound (window stretched)
};

/// Warp a random window by a random factor; output length changes.
warp_result window_warp(const std::vector<float>& interleaved, std::size_t channels,
                        const window_warp_config& config,
                        const std::vector<std::size_t>& tracked, util::rng& gen);

}  // namespace fallsense::augment
