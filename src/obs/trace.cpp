#include "obs/trace.hpp"

#include <chrono>
#include <ctime>
#include <map>
#include <memory>
#include <mutex>

namespace fallsense::obs {

namespace {

struct stage_stat {
    std::uint64_t count = 0;
    std::uint64_t wall_ns = 0;
    std::uint64_t cpu_ns = 0;
};

/// One thread's stage table.  The owning thread mutates it under `mu`
/// (uncontended except while a snapshot merge is in flight); the global
/// list below holds shared_ptrs so tables outlive pool threads that exit
/// (set_global_threads replaces workers mid-process).
struct thread_table {
    std::mutex mu;
    std::map<std::string, stage_stat, std::less<>> stats;
};

struct trace_state {
    std::mutex mu;
    std::vector<std::shared_ptr<thread_table>> tables;
};

trace_state& global_trace() {
    static trace_state s;
    return s;
}

thread_table& local_table() {
    thread_local std::shared_ptr<thread_table> table = [] {
        auto t = std::make_shared<thread_table>();
        trace_state& g = global_trace();
        const std::lock_guard<std::mutex> lock(g.mu);
        g.tables.push_back(t);
        return t;
    }();
    return *table;
}

std::uint64_t wall_now_ns() {
    return static_cast<std::uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

std::uint64_t cpu_now_ns() {
#if defined(CLOCK_THREAD_CPUTIME_ID)
    timespec ts{};
    if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) == 0) {
        return static_cast<std::uint64_t>(ts.tv_sec) * 1'000'000'000ULL +
               static_cast<std::uint64_t>(ts.tv_nsec);
    }
#endif
    return 0;
}

}  // namespace

stage_scope::stage_scope(std::string_view name) : active_(enabled()) {
    if (!active_) return;
    name_.assign(name);
    wall_start_ns_ = wall_now_ns();
    cpu_start_ns_ = cpu_now_ns();
}

stage_scope::~stage_scope() {
    if (!active_) return;
    const std::uint64_t wall = wall_now_ns() - wall_start_ns_;
    const std::uint64_t cpu = cpu_now_ns() - cpu_start_ns_;
    thread_table& t = local_table();
    const std::lock_guard<std::mutex> lock(t.mu);
    const auto it = t.stats.find(name_);
    stage_stat& s =
        (it != t.stats.end()) ? it->second : t.stats.emplace(name_, stage_stat{}).first->second;
    s.count += 1;
    s.wall_ns += wall;
    s.cpu_ns += cpu;
}

void add_stage_counts(std::string_view name, std::uint64_t count) {
    if (!enabled() || count == 0) return;
    thread_table& t = local_table();
    const std::lock_guard<std::mutex> lock(t.mu);
    const auto it = t.stats.find(name);
    stage_stat& s = (it != t.stats.end())
                        ? it->second
                        : t.stats.emplace(std::string(name), stage_stat{}).first->second;
    s.count += count;
}

std::vector<stage_snapshot> merged_stage_snapshots() {
    std::map<std::string, stage_stat, std::less<>> merged;
    trace_state& g = global_trace();
    const std::lock_guard<std::mutex> glock(g.mu);
    for (const std::shared_ptr<thread_table>& table : g.tables) {
        const std::lock_guard<std::mutex> tlock(table->mu);
        for (const auto& [name, stat] : table->stats) {
            stage_stat& m = merged[name];
            m.count += stat.count;
            m.wall_ns += stat.wall_ns;
            m.cpu_ns += stat.cpu_ns;
        }
    }
    std::vector<stage_snapshot> out;
    out.reserve(merged.size());
    for (const auto& [name, stat] : merged) {
        out.push_back({name, stat.count, static_cast<double>(stat.wall_ns) / 1e6,
                       static_cast<double>(stat.cpu_ns) / 1e6});
    }
    return out;
}

void reset_stage_traces() {
    trace_state& g = global_trace();
    const std::lock_guard<std::mutex> glock(g.mu);
    for (const std::shared_ptr<thread_table>& table : g.tables) {
        const std::lock_guard<std::mutex> tlock(table->mu);
        table->stats.clear();
    }
}

}  // namespace fallsense::obs
