// Scoped stage tracing: RAII timers that nest and aggregate per thread.
//
//     void train() {
//         OBS_SCOPE("train/fit");
//         for (...) { OBS_SCOPE("train/epoch"); ... }
//     }
//
// Each scope records one (count, inclusive wall time, thread CPU time)
// observation into a table owned by the current thread — no cross-thread
// contention on the hot path beyond one uncontended lock.  `snapshot()`
// (metrics.hpp) merges all per-thread tables by plain summation, so counts
// and sums are independent of how the work was distributed over
// FALLSENSE_THREADS: only the wall/CPU *values* vary run to run, never
// which stages exist or how often they ran.  While the registry is
// disabled a scope costs one relaxed atomic load.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "obs/metrics.hpp"

namespace fallsense::obs {

class stage_scope {
public:
    explicit stage_scope(std::string_view name);
    ~stage_scope();

    stage_scope(const stage_scope&) = delete;
    stage_scope& operator=(const stage_scope&) = delete;

private:
    std::string name_;
    bool active_ = false;
    std::uint64_t wall_start_ns_ = 0;
    std::uint64_t cpu_start_ns_ = 0;
};

/// All stage tables merged (summed) across threads, sorted by name.
/// Usually consumed via obs::snapshot().
std::vector<stage_snapshot> merged_stage_snapshots();

/// Merge `count` prior occurrences of stage `name` into the current
/// thread's table with zero wall/CPU time.  Checkpoint restore uses this
/// to carry a snapshot's stage counts into the restored process (the time
/// was spent in another process and is deliberately not replayed — the
/// deterministic manifest only compares counts).  No-op while disabled.
void add_stage_counts(std::string_view name, std::uint64_t count);

/// Clear every per-thread stage table (tests; usually via obs::reset()).
void reset_stage_traces();

}  // namespace fallsense::obs

#define FS_OBS_CONCAT_INNER(a, b) a##b
#define FS_OBS_CONCAT(a, b) FS_OBS_CONCAT_INNER(a, b)
/// Time the enclosing scope as stage `name` (a string; may be computed).
#define OBS_SCOPE(name) \
    ::fallsense::obs::stage_scope FS_OBS_CONCAT(fs_obs_scope_, __LINE__){(name)}
