// Process-wide metrics registry: counters, gauges, and fixed-bucket
// latency histograms.
//
// The registry is disabled by default and every recording call is a no-op
// until `set_enabled(true)` (or FALLSENSE_METRICS=1 in the environment) —
// the hot paths pay one relaxed atomic load.  When enabled, recordings are
// thread-safe and additive, so counters accumulated from parallel regions
// (folds, synthesis jobs) reach the same totals for any FALLSENSE_THREADS.
// Snapshots list every metric in name order, which makes serialized
// snapshots byte-comparable across runs (see docs/observability.md for the
// naming scheme and the full determinism contract).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace fallsense::obs {

/// Global recording switch.  Initialized from FALLSENSE_METRICS
/// ("1"/"on"/"true" → enabled) on first query.
bool enabled();
void set_enabled(bool on);

/// counters[name] += delta.  No-op while disabled.
void add_counter(std::string_view name, std::uint64_t delta = 1);

/// gauges[name] = value (last write wins).  No-op while disabled.
void set_gauge(std::string_view name, double value);

/// Record one latency observation (microseconds) into the fixed-bucket
/// histogram `name`.  No-op while disabled.
void observe_latency_us(std::string_view name, double micros);

/// Upper bounds (µs) of the latency buckets: a 1-2-5 series from 1 µs to
/// 10 ms.  Every histogram has `latency_bucket_bounds().size() + 1`
/// buckets; the last one counts observations above the largest bound.
std::span<const double> latency_bucket_bounds();

struct counter_snapshot {
    std::string name;
    std::uint64_t value = 0;
};

struct gauge_snapshot {
    std::string name;
    double value = 0.0;
};

struct histogram_snapshot {
    std::string name;
    std::vector<std::uint64_t> bucket_counts;  ///< bounds.size() + 1 entries
    std::uint64_t count = 0;                   ///< total observations
    double sum_us = 0.0;                       ///< sum of raw observations
};

/// One traced stage (see trace.hpp), merged over every thread that ever
/// entered it.  `count` and the deterministic parts of the run manifest
/// rely on the merge being a plain sum: totals are independent of how the
/// scopes were distributed over threads.
struct stage_snapshot {
    std::string name;
    std::uint64_t count = 0;
    double wall_ms = 0.0;  ///< summed inclusive wall time
    double cpu_ms = 0.0;   ///< summed per-thread CPU time
};

struct metrics_snapshot {
    std::vector<counter_snapshot> counters;  ///< each sorted by name
    std::vector<gauge_snapshot> gauges;
    std::vector<histogram_snapshot> histograms;
    std::vector<stage_snapshot> stages;
};

/// Copy the current registry + stage-tracer state, sorted by name.
metrics_snapshot snapshot();

/// Drop every metric and stage record (tests; does not change `enabled`).
void reset();

}  // namespace fallsense::obs
