#include "obs/metrics.hpp"

#include <algorithm>
#include <array>
#include <atomic>
#include <map>
#include <mutex>

#include "obs/trace.hpp"
#include "util/env.hpp"

namespace fallsense::obs {

namespace {

constexpr std::array<double, 13> k_latency_bounds_us = {
    1.0, 2.0, 5.0, 10.0, 20.0, 50.0, 100.0, 200.0, 500.0, 1000.0, 2000.0, 5000.0, 10000.0};

struct histogram_data {
    std::array<std::uint64_t, k_latency_bounds_us.size() + 1> buckets{};
    std::uint64_t count = 0;
    double sum_us = 0.0;
};

/// std::map keys iterate in lexicographic order, which is exactly the
/// snapshot-ordering contract — no extra sort needed.
struct registry {
    std::mutex mu;
    std::map<std::string, std::uint64_t, std::less<>> counters;
    std::map<std::string, double, std::less<>> gauges;
    std::map<std::string, histogram_data, std::less<>> histograms;
};

registry& global_registry() {
    static registry r;
    return r;
}

std::atomic<bool>& enabled_flag() {
    static std::atomic<bool> flag{[] {
        const std::string v = util::env_string("FALLSENSE_METRICS");
        return v == "1" || v == "on" || v == "true";
    }()};
    return flag;
}

template <typename Map>
typename Map::mapped_type& find_or_insert(Map& map, std::string_view name) {
    const auto it = map.find(name);
    if (it != map.end()) return it->second;
    return map.emplace(std::string(name), typename Map::mapped_type{}).first->second;
}

}  // namespace

bool enabled() { return enabled_flag().load(std::memory_order_relaxed); }

void set_enabled(bool on) { enabled_flag().store(on, std::memory_order_relaxed); }

void add_counter(std::string_view name, std::uint64_t delta) {
    if (!enabled()) return;
    registry& r = global_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    find_or_insert(r.counters, name) += delta;
}

void set_gauge(std::string_view name, double value) {
    if (!enabled()) return;
    registry& r = global_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    find_or_insert(r.gauges, name) = value;
}

void observe_latency_us(std::string_view name, double micros) {
    if (!enabled()) return;
    registry& r = global_registry();
    const std::lock_guard<std::mutex> lock(r.mu);
    histogram_data& h = find_or_insert(r.histograms, name);
    const auto it = std::lower_bound(k_latency_bounds_us.begin(), k_latency_bounds_us.end(),
                                     micros);
    h.buckets[static_cast<std::size_t>(it - k_latency_bounds_us.begin())] += 1;
    h.count += 1;
    h.sum_us += micros;
}

std::span<const double> latency_bucket_bounds() { return k_latency_bounds_us; }

metrics_snapshot snapshot() {
    metrics_snapshot snap;
    registry& r = global_registry();
    {
        const std::lock_guard<std::mutex> lock(r.mu);
        snap.counters.reserve(r.counters.size());
        for (const auto& [name, value] : r.counters) snap.counters.push_back({name, value});
        snap.gauges.reserve(r.gauges.size());
        for (const auto& [name, value] : r.gauges) snap.gauges.push_back({name, value});
        snap.histograms.reserve(r.histograms.size());
        for (const auto& [name, h] : r.histograms) {
            histogram_snapshot hs;
            hs.name = name;
            hs.bucket_counts.assign(h.buckets.begin(), h.buckets.end());
            hs.count = h.count;
            hs.sum_us = h.sum_us;
            snap.histograms.push_back(std::move(hs));
        }
    }
    snap.stages = merged_stage_snapshots();
    return snap;
}

void reset() {
    registry& r = global_registry();
    {
        const std::lock_guard<std::mutex> lock(r.mu);
        r.counters.clear();
        r.gauges.clear();
        r.histograms.clear();
    }
    reset_stage_traces();
}

}  // namespace fallsense::obs
