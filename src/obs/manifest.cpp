#include "obs/manifest.hpp"

#include <charconv>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "util/thread_pool.hpp"

namespace fallsense::obs {

namespace {

void append_escaped(std::string& out, std::string_view text) {
    out += '"';
    for (const char c : text) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            case '\t': out += "\\t"; break;
            case '\r': out += "\\r"; break;
            default:
                if (static_cast<unsigned char>(c) < 0x20) {
                    char buf[8];
                    std::snprintf(buf, sizeof buf, "\\u%04x", c);
                    out += buf;
                } else {
                    out += c;
                }
        }
    }
    out += '"';
}

/// Shortest round-trip decimal representation — deterministic for equal
/// bit patterns, which is what keeps manifests byte-comparable.
void append_double(std::string& out, double value) {
    char buf[64];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    if (ec != std::errc{}) {
        out += "null";
        return;
    }
    out.append(buf, ptr);
}

void append_u64(std::string& out, std::uint64_t value) {
    char buf[32];
    const auto [ptr, ec] = std::to_chars(buf, buf + sizeof buf, value);
    out.append(buf, ptr);
}

/// Emits `"key": value` members of one object, handling the commas.
class object_writer {
public:
    object_writer(std::string& out, int indent) : out_(out), indent_(indent) {
        out_ += "{";
    }
    void raw_member(std::string_view key, std::string_view raw) {
        begin_member(key);
        out_ += raw;
    }
    void string_member(std::string_view key, std::string_view value) {
        begin_member(key);
        append_escaped(out_, value);
    }
    void u64_member(std::string_view key, std::uint64_t value) {
        begin_member(key);
        append_u64(out_, value);
    }
    void double_member(std::string_view key, double value) {
        begin_member(key);
        append_double(out_, value);
    }
    void close() {
        if (!first_) {
            out_ += '\n';
            pad(indent_ - 1);
        }
        out_ += '}';
    }
    /// Start a member whose value the caller writes directly.
    void begin_member(std::string_view key) {
        out_ += first_ ? "\n" : ",\n";
        first_ = false;
        pad(indent_);
        append_escaped(out_, key);
        out_ += ": ";
    }

private:
    void pad(int levels) { out_.append(static_cast<std::size_t>(levels) * 2, ' '); }
    std::string& out_;
    int indent_;
    bool first_ = true;
};

}  // namespace

std::string manifest_json(const run_manifest& run, const metrics_snapshot& snap,
                          const manifest_options& options) {
    std::string out;
    object_writer root(out, 1);
    root.string_member("schema", "fallsense.run_manifest/1");
    root.string_member("command", run.command);
    root.u64_member("seed", run.seed);
    root.string_member("scale", run.scale);

    root.begin_member("config");
    {
        object_writer config(out, 2);
        for (const auto& [key, value] : run.config) config.string_member(key, value);
        config.close();
    }

    root.begin_member("counters");
    {
        object_writer counters(out, 2);
        for (const counter_snapshot& c : snap.counters) counters.u64_member(c.name, c.value);
        counters.close();
    }

    root.begin_member("gauges");
    {
        object_writer gauges(out, 2);
        for (const gauge_snapshot& g : snap.gauges) gauges.double_member(g.name, g.value);
        gauges.close();
    }

    // Stage entry counts are deterministic (the region structure of a run
    // never depends on the thread count); the measured times are not and
    // live in the opt-in "timings" section below.
    root.begin_member("stages");
    {
        object_writer stages(out, 2);
        for (const stage_snapshot& s : snap.stages) {
            stages.begin_member(s.name);
            object_writer stage(out, 3);
            stage.u64_member("count", s.count);
            stage.close();
        }
        stages.close();
    }

    if (options.include_timings) {
        root.begin_member("environment");
        {
            object_writer env(out, 2);
            env.u64_member("threads", util::global_thread_count());
            env.close();
        }

        root.begin_member("timings");
        {
            object_writer timings(out, 2);
            for (const stage_snapshot& s : snap.stages) {
                timings.begin_member(s.name);
                object_writer stage(out, 3);
                stage.double_member("wall_ms", s.wall_ms);
                stage.double_member("cpu_ms", s.cpu_ms);
                stage.close();
            }
            timings.close();
        }

        root.begin_member("histograms");
        {
            object_writer histograms(out, 2);
            for (const histogram_snapshot& h : snap.histograms) {
                histograms.begin_member(h.name);
                object_writer hist(out, 3);
                hist.begin_member("bounds_us");
                out += '[';
                bool first = true;
                for (const double b : latency_bucket_bounds()) {
                    if (!first) out += ", ";
                    first = false;
                    append_double(out, b);
                }
                out += ']';
                hist.begin_member("bucket_counts");
                out += '[';
                first = true;
                for (const std::uint64_t c : h.bucket_counts) {
                    if (!first) out += ", ";
                    first = false;
                    append_u64(out, c);
                }
                out += ']';
                hist.u64_member("count", h.count);
                hist.double_member("sum_us", h.sum_us);
                hist.close();
            }
            histograms.close();
        }
    }

    root.close();
    out += '\n';
    return out;
}

void write_manifest(std::ostream& os, const run_manifest& run, const metrics_snapshot& snap,
                    const manifest_options& options) {
    os << manifest_json(run, snap, options);
}

void write_manifest_file(const std::string& path, const run_manifest& run,
                         const metrics_snapshot& snap, const manifest_options& options) {
    std::ofstream os(path);
    if (!os) throw std::runtime_error("cannot write manifest file " + path);
    write_manifest(os, run, snap, options);
}

}  // namespace fallsense::obs
