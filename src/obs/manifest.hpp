// Run manifests: one JSON document per run describing what ran (command,
// config echo, seed, scale) and what the metrics registry observed
// (counters, gauges, stage counts; optionally timings).
//
// The document is split into a deterministic part and an opt-in timing
// part.  With `include_timings == false` (the default) the JSON contains
// only values that the repository's reproducibility contract makes
// bit-identical for any FALLSENSE_THREADS — the golden-file test in
// tests/obs/manifest_test.cpp and the CLI acceptance check both compare
// manifests from 1- and 4-thread runs byte for byte.  With timings on, an
// `environment` section (thread count), per-stage wall/CPU times, and the
// latency histograms are appended; those are real measurements and vary
// run to run.  Schema: docs/observability.md.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <utility>
#include <vector>

#include "obs/metrics.hpp"

namespace fallsense::obs {

struct run_manifest {
    std::string command;  ///< e.g. "evaluate" or a bench/test name
    /// Echo of the run's configuration, serialized in the given order.
    std::vector<std::pair<std::string, std::string>> config;
    std::uint64_t seed = 0;
    std::string scale;  ///< "tiny" / "quick" / "full"
};

struct manifest_options {
    bool include_timings = false;  ///< wall/CPU, thread count, histograms
};

/// Serialize the manifest (2-space-indented JSON, trailing newline).
std::string manifest_json(const run_manifest& run, const metrics_snapshot& snap,
                          const manifest_options& options = {});

void write_manifest(std::ostream& os, const run_manifest& run, const metrics_snapshot& snap,
                    const manifest_options& options = {});

/// Write to `path`; throws std::runtime_error when the file cannot be
/// opened.
void write_manifest_file(const std::string& path, const run_manifest& run,
                         const metrics_snapshot& snap, const manifest_options& options = {});

}  // namespace fallsense::obs
