// Sliding-window segmentation of multichannel time series.
//
// The paper slides a window of 100-400 ms over the filtered 100 Hz stream
// with 0-75 % overlap; each segment becomes one [n x 9] model input.
#pragma once

#include <cstddef>
#include <vector>

namespace fallsense::dsp {

struct segmentation_config {
    std::size_t window_samples = 40;  ///< n rows per segment (e.g. 40 = 400 ms @ 100 Hz)
    double overlap_fraction = 0.5;    ///< in [0, 1): 0.5 = 50 % overlap

    /// Samples between consecutive window starts (>= 1).
    std::size_t hop_samples() const;
    void validate() const;
};

/// Start indices of every full window over a stream of `total_samples`.
std::vector<std::size_t> segment_starts(std::size_t total_samples,
                                        const segmentation_config& config);

/// Number of full windows over a stream of `total_samples`.
std::size_t segment_count(std::size_t total_samples, const segmentation_config& config);

/// Milliseconds helper: window/overlap in time units at a sample rate.
segmentation_config make_segmentation(double window_ms, double overlap_fraction,
                                      double sample_rate_hz);

}  // namespace fallsense::dsp
