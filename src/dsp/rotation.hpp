// 3-vector / 3x3-matrix math and Rodrigues' rotation formula.
//
// Used by dataset alignment (Section IV-A): the KFall sensor frame is
// re-oriented onto the self-collected dataset's frame with a rotation
// matrix computed via Rodrigues' formula, and units are converted to g.
#pragma once

#include <array>
#include <cstddef>

namespace fallsense::dsp {

struct vec3 {
    double x = 0.0, y = 0.0, z = 0.0;

    vec3 operator+(const vec3& o) const { return {x + o.x, y + o.y, z + o.z}; }
    vec3 operator-(const vec3& o) const { return {x - o.x, y - o.y, z - o.z}; }
    vec3 operator*(double s) const { return {x * s, y * s, z * s}; }

    double dot(const vec3& o) const { return x * o.x + y * o.y + z * o.z; }
    vec3 cross(const vec3& o) const {
        return {y * o.z - z * o.y, z * o.x - x * o.z, x * o.y - y * o.x};
    }
    double norm() const;
    /// Unit vector; throws on (near-)zero input.
    vec3 normalized() const;
};

/// Row-major 3x3 matrix.
struct mat3 {
    std::array<double, 9> m{1, 0, 0, 0, 1, 0, 0, 0, 1};

    static mat3 identity() { return {}; }
    double operator()(std::size_t r, std::size_t c) const { return m[r * 3 + c]; }
    double& operator()(std::size_t r, std::size_t c) { return m[r * 3 + c]; }

    vec3 apply(const vec3& v) const;
    mat3 multiply(const mat3& o) const;
    mat3 transpose() const;
    double determinant() const;
};

/// Rodrigues' rotation formula: rotation of `angle_rad` about unit `axis`.
/// R = I + sin(a) K + (1 - cos(a)) K^2, K the cross-product matrix of axis.
mat3 rodrigues_rotation(const vec3& axis, double angle_rad);

/// Rotation taking direction `from` onto direction `to` (minimal-angle).
/// Handles the parallel and antiparallel cases.
mat3 rotation_between(const vec3& from, const vec3& to);

/// True when R^T R == I and det(R) == 1 within `tol`.
bool is_rotation_matrix(const mat3& r, double tol = 1e-9);

}  // namespace fallsense::dsp
