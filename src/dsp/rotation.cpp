#include "dsp/rotation.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>

#include "util/check.hpp"

namespace fallsense::dsp {

double vec3::norm() const { return std::sqrt(dot(*this)); }

vec3 vec3::normalized() const {
    const double n = norm();
    FS_ARG_CHECK(n > 1e-12, "cannot normalize near-zero vector");
    return {x / n, y / n, z / n};
}

vec3 mat3::apply(const vec3& v) const {
    return {m[0] * v.x + m[1] * v.y + m[2] * v.z,
            m[3] * v.x + m[4] * v.y + m[5] * v.z,
            m[6] * v.x + m[7] * v.y + m[8] * v.z};
}

mat3 mat3::multiply(const mat3& o) const {
    mat3 out;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) {
            double acc = 0.0;
            for (std::size_t k = 0; k < 3; ++k) acc += (*this)(r, k) * o(k, c);
            out(r, c) = acc;
        }
    }
    return out;
}

mat3 mat3::transpose() const {
    mat3 out;
    for (std::size_t r = 0; r < 3; ++r) {
        for (std::size_t c = 0; c < 3; ++c) out(r, c) = (*this)(c, r);
    }
    return out;
}

double mat3::determinant() const {
    return m[0] * (m[4] * m[8] - m[5] * m[7]) - m[1] * (m[3] * m[8] - m[5] * m[6]) +
           m[2] * (m[3] * m[7] - m[4] * m[6]);
}

mat3 rodrigues_rotation(const vec3& axis, double angle_rad) {
    const vec3 u = axis.normalized();
    const double c = std::cos(angle_rad);
    const double s = std::sin(angle_rad);
    const double t = 1.0 - c;
    mat3 r;
    r(0, 0) = c + u.x * u.x * t;
    r(0, 1) = u.x * u.y * t - u.z * s;
    r(0, 2) = u.x * u.z * t + u.y * s;
    r(1, 0) = u.y * u.x * t + u.z * s;
    r(1, 1) = c + u.y * u.y * t;
    r(1, 2) = u.y * u.z * t - u.x * s;
    r(2, 0) = u.z * u.x * t - u.y * s;
    r(2, 1) = u.z * u.y * t + u.x * s;
    r(2, 2) = c + u.z * u.z * t;
    return r;
}

mat3 rotation_between(const vec3& from, const vec3& to) {
    const vec3 f = from.normalized();
    const vec3 t = to.normalized();
    const double cos_angle = f.dot(t);
    if (cos_angle > 1.0 - 1e-12) return mat3::identity();
    if (cos_angle < -1.0 + 1e-12) {
        // Antiparallel: rotate pi about any axis orthogonal to `from`.
        vec3 ortho = std::abs(f.x) < 0.9 ? vec3{1, 0, 0} : vec3{0, 1, 0};
        const vec3 axis = f.cross(ortho).normalized();
        return rodrigues_rotation(axis, std::numbers::pi);
    }
    const vec3 axis = f.cross(t);
    const double angle = std::acos(std::clamp(cos_angle, -1.0, 1.0));
    return rodrigues_rotation(axis, angle);
}

bool is_rotation_matrix(const mat3& r, double tol) {
    const mat3 should_be_identity = r.transpose().multiply(r);
    for (std::size_t i = 0; i < 3; ++i) {
        for (std::size_t j = 0; j < 3; ++j) {
            const double expected = (i == j) ? 1.0 : 0.0;
            if (std::abs(should_be_identity(i, j) - expected) > tol) return false;
        }
    }
    return std::abs(r.determinant() - 1.0) <= tol;
}

}  // namespace fallsense::dsp
