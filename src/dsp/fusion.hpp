// On-edge sensor fusion: Euler angles (pitch, roll, yaw) from accelerometer
// and gyroscope, exactly the computation the paper's firmware performs every
// 10 ms before feeding the model (Section II-A).
//
// A complementary filter blends the gyro-integrated orientation (accurate
// over short horizons) with the accelerometer gravity estimate (drift-free
// but noisy during motion).  Yaw has no gravity reference and is pure gyro
// integration, as on the real board (no magnetometer on the PCB).
#pragma once

#include <cstddef>

#include "dsp/rotation.hpp"

namespace fallsense::dsp {

/// Euler angles in radians.
struct euler_angles {
    double pitch = 0.0;
    double roll = 0.0;
    double yaw = 0.0;
};

struct fusion_config {
    double sample_rate_hz = 100.0;
    /// Complementary-filter blend: fraction of the gyro path (close to 1).
    double gyro_weight = 0.98;
};

class complementary_filter {
public:
    explicit complementary_filter(const fusion_config& config = {});

    /// Advance one step.  accel in g (gravity included), gyro in rad/s.
    /// Returns the fused Euler angles after this step.
    euler_angles update(const vec3& accel_g, const vec3& gyro_rad_s);

    /// Current estimate without advancing.
    euler_angles current() const { return state_; }
    /// Whether the accelerometer bootstrap has happened (checkpointing).
    bool initialized() const { return initialized_; }
    /// Install a previously captured estimate (checkpoint restore).
    void restore(const euler_angles& state, bool initialized) {
        state_ = state;
        initialized_ = initialized;
    }
    void reset();

    /// Gravity-only attitude from one accelerometer sample (the
    /// accelerometer path of the filter); exposed for tests.
    static euler_angles accel_attitude(const vec3& accel_g);

private:
    fusion_config config_;
    euler_angles state_;
    bool initialized_ = false;
};

}  // namespace fallsense::dsp
