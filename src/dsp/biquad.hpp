// Second-order IIR sections and Butterworth low-pass design.
//
// The paper's preprocessing applies a 4th-order Butterworth low-pass at
// 5 Hz (100 Hz sampling) to every IMU channel.  A 2N-pole Butterworth
// factors into N second-order sections whose Q values come from the
// Butterworth pole angles; each section is realized as an RBJ-cookbook
// low-pass biquad (bilinear transform, direct form II transposed), which is
// also how the filter runs on the microcontroller.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

namespace fallsense::dsp {

/// One biquad: y[n] = b0 x[n] + b1 x[n-1] + b2 x[n-2] - a1 y[n-1] - a2 y[n-2]
/// (a0 normalized to 1).  Stateful: process() streams.
class biquad {
public:
    biquad() = default;
    biquad(double b0, double b1, double b2, double a1, double a2);

    /// Process one sample (direct form II transposed).
    float process(float x);
    /// Process a buffer in place.
    void process_inplace(std::span<float> samples);
    /// Clear delay-line state.
    void reset();
    /// Set the delay line to the steady state for a constant input — kills
    /// the startup transient when a stream begins mid-signal.
    void prime(float steady_input);

    /// Magnitude response at normalized frequency f (Hz) for sample rate fs.
    double magnitude_at(double freq_hz, double sample_rate_hz) const;

    double b0() const { return b0_; }
    double b1() const { return b1_; }
    double b2() const { return b2_; }
    double a1() const { return a1_; }
    double a2() const { return a2_; }

    /// DF2T delay-line state, exposed for checkpointing: two doubles fully
    /// describe a section mid-stream.
    double state_s1() const { return s1_; }
    double state_s2() const { return s2_; }
    /// Install a previously captured delay line (checkpoint restore).
    void set_state(double s1, double s2) {
        s1_ = s1;
        s2_ = s2;
    }

private:
    double b0_ = 1.0, b1_ = 0.0, b2_ = 0.0, a1_ = 0.0, a2_ = 0.0;
    double s1_ = 0.0, s2_ = 0.0;  // DF2T state
};

/// RBJ-cookbook low-pass biquad for cutoff f0 and quality Q.
biquad design_lowpass_biquad(double cutoff_hz, double sample_rate_hz, double q);

/// Butterworth low-pass of even order `order` as a cascade of order/2
/// sections (order must be even and >= 2; the paper uses order 4).
class butterworth_lowpass {
public:
    butterworth_lowpass(std::size_t order, double cutoff_hz, double sample_rate_hz);

    float process(float x);
    void process_inplace(std::span<float> samples);
    void reset();
    /// Prime every section for a constant input (see biquad::prime).
    void prime(float steady_input);

    /// |H(f)| of the full cascade.
    double magnitude_at(double freq_hz) const;

    std::size_t order() const { return 2 * sections_.size(); }
    double cutoff_hz() const { return cutoff_hz_; }
    double sample_rate_hz() const { return sample_rate_hz_; }
    std::span<const biquad> sections() const { return sections_; }
    /// Install one section's delay line (checkpoint restore; coefficients
    /// are redesigned from the config, only state travels).
    void set_section_state(std::size_t index, double s1, double s2);

private:
    double cutoff_hz_;
    double sample_rate_hz_;
    std::vector<biquad> sections_;
};

/// Filter every channel of a row-major [frames x channels] buffer
/// independently (fresh filter state per channel), in place.
void filter_channels_inplace(std::span<float> interleaved, std::size_t channels,
                             std::size_t order, double cutoff_hz, double sample_rate_hz);

}  // namespace fallsense::dsp
