// Unit conversions used by dataset alignment (Section IV-A): everything is
// standardized to gravitational acceleration (g) and radians.
#pragma once

#include <numbers>

namespace fallsense::dsp {

inline constexpr double k_standard_gravity_ms2 = 9.80665;

constexpr double ms2_to_g(double a_ms2) { return a_ms2 / k_standard_gravity_ms2; }
constexpr double g_to_ms2(double a_g) { return a_g * k_standard_gravity_ms2; }

constexpr double deg_to_rad(double deg) { return deg * std::numbers::pi / 180.0; }
constexpr double rad_to_deg(double rad) { return rad * 180.0 / std::numbers::pi; }

}  // namespace fallsense::dsp
