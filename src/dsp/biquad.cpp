#include "dsp/biquad.hpp"

#include <cmath>
#include <complex>
#include <numbers>

#include "util/check.hpp"
#include "util/thread_pool.hpp"

namespace fallsense::dsp {

biquad::biquad(double b0, double b1, double b2, double a1, double a2)
    : b0_(b0), b1_(b1), b2_(b2), a1_(a1), a2_(a2) {}

float biquad::process(float x) {
    // Direct form II transposed: good numerical behavior for audio-rate IIR.
    const double y = b0_ * x + s1_;
    s1_ = b1_ * x - a1_ * y + s2_;
    s2_ = b2_ * x - a2_ * y;
    return static_cast<float>(y);
}

void biquad::process_inplace(std::span<float> samples) {
    for (float& s : samples) s = process(s);
}

void biquad::reset() { s1_ = s2_ = 0.0; }

void biquad::prime(float steady_input) {
    // Steady state for constant input x: y = G x with G the DC gain, and
    // the DF2T delay line solved from its update equations.
    const double x = steady_input;
    const double gain = (b0_ + b1_ + b2_) / (1.0 + a1_ + a2_);
    const double y = gain * x;
    s2_ = b2_ * x - a2_ * y;
    s1_ = y - b0_ * x;
}

double biquad::magnitude_at(double freq_hz, double sample_rate_hz) const {
    const double w = 2.0 * std::numbers::pi * freq_hz / sample_rate_hz;
    const std::complex<double> z = std::polar(1.0, w);
    const std::complex<double> zi = 1.0 / z;
    const std::complex<double> num = b0_ + b1_ * zi + b2_ * zi * zi;
    const std::complex<double> den = 1.0 + a1_ * zi + a2_ * zi * zi;
    return std::abs(num / den);
}

biquad design_lowpass_biquad(double cutoff_hz, double sample_rate_hz, double q) {
    FS_ARG_CHECK(cutoff_hz > 0.0, "cutoff must be positive");
    FS_ARG_CHECK(sample_rate_hz > 2.0 * cutoff_hz, "cutoff above Nyquist");
    FS_ARG_CHECK(q > 0.0, "Q must be positive");
    const double w0 = 2.0 * std::numbers::pi * cutoff_hz / sample_rate_hz;
    const double cw = std::cos(w0);
    const double sw = std::sin(w0);
    const double alpha = sw / (2.0 * q);
    const double a0 = 1.0 + alpha;
    return biquad(((1.0 - cw) / 2.0) / a0, (1.0 - cw) / a0, ((1.0 - cw) / 2.0) / a0,
                  (-2.0 * cw) / a0, (1.0 - alpha) / a0);
}

butterworth_lowpass::butterworth_lowpass(std::size_t order, double cutoff_hz,
                                         double sample_rate_hz)
    : cutoff_hz_(cutoff_hz), sample_rate_hz_(sample_rate_hz) {
    FS_ARG_CHECK(order >= 2 && order % 2 == 0, "butterworth order must be even and >= 2");
    const std::size_t n_sections = order / 2;
    sections_.reserve(n_sections);
    for (std::size_t k = 0; k < n_sections; ++k) {
        // Butterworth pole-pair quality factors: Q_k = 1 / (2 sin(theta_k)),
        // theta_k = pi (2k + 1) / (2 * order) measured from the imaginary axis.
        const double theta =
            std::numbers::pi * (2.0 * static_cast<double>(k) + 1.0) / (2.0 * static_cast<double>(order));
        const double q = 1.0 / (2.0 * std::sin(theta));
        sections_.push_back(design_lowpass_biquad(cutoff_hz, sample_rate_hz, q));
    }
}

float butterworth_lowpass::process(float x) {
    float y = x;
    for (biquad& s : sections_) y = s.process(y);
    return y;
}

void butterworth_lowpass::process_inplace(std::span<float> samples) {
    for (float& s : samples) s = process(s);
}

void butterworth_lowpass::reset() {
    for (biquad& s : sections_) s.reset();
}

void butterworth_lowpass::prime(float steady_input) {
    // Unity DC gain per section: every section sees the same steady input.
    for (biquad& s : sections_) s.prime(steady_input);
}

void butterworth_lowpass::set_section_state(std::size_t index, double s1, double s2) {
    FS_ARG_CHECK(index < sections_.size(), "section index out of range");
    sections_[index].set_state(s1, s2);
}

double butterworth_lowpass::magnitude_at(double freq_hz) const {
    double mag = 1.0;
    for (const biquad& s : sections_) mag *= s.magnitude_at(freq_hz, sample_rate_hz_);
    return mag;
}

void filter_channels_inplace(std::span<float> interleaved, std::size_t channels,
                             std::size_t order, double cutoff_hz, double sample_rate_hz) {
    FS_ARG_CHECK(channels > 0, "channel count must be positive");
    FS_ARG_CHECK(interleaved.size() % channels == 0,
                 "interleaved buffer size not a multiple of channel count");
    const std::size_t frames = interleaved.size() / channels;
    // Channels filter independently (own filter state, disjoint strided
    // samples), so they run in parallel; the streamed recursion within a
    // channel stays strictly serial.
    util::parallel_for(0, channels, 1, [&](std::size_t c) {
        butterworth_lowpass filter(order, cutoff_hz, sample_rate_hz);
        // Prime on the channel's first sample: recordings begin mid-signal
        // (the subject is already standing/walking), so a cold-start
        // transient would be an artifact.
        if (frames > 0) filter.prime(interleaved[c]);
        for (std::size_t t = 0; t < frames; ++t) {
            float& sample = interleaved[t * channels + c];
            sample = filter.process(sample);
        }
    });
}

}  // namespace fallsense::dsp
