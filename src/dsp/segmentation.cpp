#include "dsp/segmentation.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::dsp {

std::size_t segmentation_config::hop_samples() const {
    const double hop = static_cast<double>(window_samples) * (1.0 - overlap_fraction);
    const auto rounded = static_cast<std::size_t>(std::lround(hop));
    return rounded > 0 ? rounded : 1;
}

void segmentation_config::validate() const {
    FS_ARG_CHECK(window_samples > 0, "segmentation window must be positive");
    FS_ARG_CHECK(overlap_fraction >= 0.0 && overlap_fraction < 1.0,
                 "overlap fraction must be in [0, 1)");
}

std::vector<std::size_t> segment_starts(std::size_t total_samples,
                                        const segmentation_config& config) {
    config.validate();
    std::vector<std::size_t> starts;
    if (total_samples < config.window_samples) return starts;
    const std::size_t hop = config.hop_samples();
    for (std::size_t s = 0; s + config.window_samples <= total_samples; s += hop) {
        starts.push_back(s);
    }
    return starts;
}

std::size_t segment_count(std::size_t total_samples, const segmentation_config& config) {
    return segment_starts(total_samples, config).size();
}

segmentation_config make_segmentation(double window_ms, double overlap_fraction,
                                      double sample_rate_hz) {
    FS_ARG_CHECK(window_ms > 0.0 && sample_rate_hz > 0.0, "nonpositive segmentation timing");
    segmentation_config config;
    config.window_samples =
        static_cast<std::size_t>(std::lround(window_ms * sample_rate_hz / 1000.0));
    config.overlap_fraction = overlap_fraction;
    config.validate();
    return config;
}

}  // namespace fallsense::dsp
