#include "dsp/fusion.hpp"

#include <cmath>

#include "util/check.hpp"

namespace fallsense::dsp {

complementary_filter::complementary_filter(const fusion_config& config) : config_(config) {
    FS_ARG_CHECK(config_.sample_rate_hz > 0.0, "fusion sample rate must be positive");
    FS_ARG_CHECK(config_.gyro_weight >= 0.0 && config_.gyro_weight <= 1.0,
                 "gyro weight must be in [0, 1]");
}

euler_angles complementary_filter::accel_attitude(const vec3& accel_g) {
    euler_angles angles;
    // Sensor convention: +z out of the back of the jacket, +x forward.
    // pitch about y (forward lean positive), roll about x.
    angles.pitch = std::atan2(-accel_g.x, std::sqrt(accel_g.y * accel_g.y +
                                                    accel_g.z * accel_g.z));
    angles.roll = std::atan2(accel_g.y, accel_g.z);
    angles.yaw = 0.0;  // unobservable from gravity
    return angles;
}

euler_angles complementary_filter::update(const vec3& accel_g, const vec3& gyro_rad_s) {
    const double dt = 1.0 / config_.sample_rate_hz;
    if (!initialized_) {
        // Bootstrap from the first accelerometer sample so the filter does
        // not start with a large transient.
        state_ = accel_attitude(accel_g);
        initialized_ = true;
        return state_;
    }
    const euler_angles from_accel = accel_attitude(accel_g);
    const double a = config_.gyro_weight;
    state_.pitch = a * (state_.pitch + gyro_rad_s.y * dt) + (1.0 - a) * from_accel.pitch;
    state_.roll = a * (state_.roll + gyro_rad_s.x * dt) + (1.0 - a) * from_accel.roll;
    state_.yaw = state_.yaw + gyro_rad_s.z * dt;  // pure integration
    return state_;
}

void complementary_filter::reset() {
    state_ = euler_angles{};
    initialized_ = false;
}

}  // namespace fallsense::dsp
