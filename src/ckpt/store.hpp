// Snapshot capture/restore glue: fleet + obs registry <-> snapshot value
// <-> snapshot file.
//
// The codec (checkpoint.hpp) moves bytes; this header moves *state*:
//
//   - capture() reads a fleet_router (between ticks) and the obs registry
//     into one fleet_snapshot value;
//   - restore() validates the config fingerprint, merges the obs image
//     back into the registry (counters and stage counts add, gauges set),
//     and rebuilds the fleet — after which the process continues the run
//     bit-identically to one that never stopped;
//   - write_snapshot_file()/read_snapshot_file() move the encoded bytes
//     with atomic rename-on-write, so a crash mid-snapshot can never
//     leave a torn file at the published path;
//   - snapshot_to_file()/restore_from_file() are the operator-facing
//     compositions both tools call, and the only functions that touch the
//     ckpt/* obs counters (snapshots taken, snapshot bytes, restores,
//     sessions restored — docs/observability.md).
//
// The obs merge happens BEFORE the fleet rebuild: fleet_router::restore
// re-asserts the serve gauges to the restored truth last, so a rebalanced
// restore reports the new shard count, not the capture-time one.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace fallsense::ckpt {

/// File- or state-level checkpoint failure: unreadable/unwritable paths,
/// a payload that fails decode (the message names the decode_status), or
/// a config fingerprint mismatch at restore.
class checkpoint_error : public std::runtime_error {
public:
    using std::runtime_error::runtime_error;
};

/// The fingerprint of a fleet config (the fields a snapshot's state
/// depends on; shard count and score mode excluded by design).
config_fingerprint fingerprint_of(const serve::fleet_config& config);

/// Capture the fleet and the obs registry (when enabled) at a tick
/// boundary.  Pure read.
fleet_snapshot capture(const serve::fleet_router& fleet);

/// Restore `snapshot` into `fleet`: fingerprint check (checkpoint_error on
/// mismatch), obs image merge, then fleet_router::restore.  The router's
/// CURRENT shard count wins — restoring a K-shard snapshot into an
/// M-shard router is a deterministic rebalance.
void restore(serve::fleet_router& fleet, const fleet_snapshot& snapshot);

/// Encode + write to `path` via a temporary file and atomic rename.
/// Returns the encoded byte count.
std::size_t write_snapshot_file(const std::string& path, const fleet_snapshot& snapshot);

/// Read + decode `path`; checkpoint_error on I/O or decode failure.
fleet_snapshot read_snapshot_file(const std::string& path);

/// capture + write_snapshot_file + bump ckpt/snapshots, ckpt/snapshot_bytes.
/// The counters land AFTER the capture, so the written image never counts
/// its own writing — a restored run's manifest matches an uninterrupted
/// one once ckpt/* lines are stripped.
void snapshot_to_file(const serve::fleet_router& fleet, const std::string& path);

/// read_snapshot_file + restore + bump ckpt/restores, ckpt/sessions_restored.
/// Returns the snapshot so callers can rebuild traffic state (stream
/// cursors, wire sequence numbers) from it.
fleet_snapshot restore_from_file(serve::fleet_router& fleet, const std::string& path);

/// One live session's replay position for the transport layer: the wire
/// sequence number the next offered sample should carry, i.e. samples
/// offered so far (accepted + rejected) mod 2^32 — the u32 wrap the wire
/// protocol's sequence field already has.
struct session_handoff {
    serve::session_id session = 0;       ///< router-global id
    std::uint32_t next_sequence = 0;
};

/// Handoffs for every live session, ascending id.  The gateway consumes
/// these (net::session_gateway::restore_wire_sessions) so a reconnecting
/// sender resumes its sequence numbers without reopening sessions.
std::vector<session_handoff> session_handoffs(const fleet_snapshot& snapshot);

}  // namespace fallsense::ckpt
