#include "ckpt/store.hpp"

#include <cstdio>
#include <sstream>

#include "obs/metrics.hpp"
#include "obs/trace.hpp"
#include "util/check.hpp"

namespace fallsense::ckpt {

config_fingerprint fingerprint_of(const serve::fleet_config& config) {
    const serve::engine_config& e = config.engine;
    const core::detector_config& d = e.detector;
    config_fingerprint fp;
    fp.window_samples = static_cast<std::uint32_t>(d.window_samples);
    fp.overlap_fraction = d.overlap_fraction;
    fp.threshold = d.threshold;
    fp.consecutive_required = static_cast<std::uint32_t>(d.consecutive_required);
    fp.sample_rate_hz = d.sample_rate_hz;
    fp.filter_order = static_cast<std::uint32_t>(d.preprocess.filter_order);
    fp.cutoff_hz = d.preprocess.cutoff_hz;
    fp.gyro_weight = d.preprocess.fusion.gyro_weight;
    fp.queue_capacity = static_cast<std::uint32_t>(e.queue_capacity);
    fp.drop_policy = e.policy == serve::drop_policy::drop_oldest ? 1 : 2;
    fp.samples_per_tick = static_cast<std::uint32_t>(e.samples_per_tick);
    fp.max_samples_per_tick = static_cast<std::uint32_t>(e.max_samples_per_tick);
    fp.drain_watermark = static_cast<std::uint32_t>(e.drain_watermark);
    return fp;
}

fleet_snapshot capture(const serve::fleet_router& fleet) {
    fleet_snapshot snap;
    snap.config = fingerprint_of(fleet.config());
    snap.fleet = fleet.snapshot();
    if (obs::enabled()) {
        const obs::metrics_snapshot metrics = obs::snapshot();
        snap.obs.counters.reserve(metrics.counters.size());
        for (const obs::counter_snapshot& c : metrics.counters) {
            snap.obs.counters.emplace_back(c.name, c.value);
        }
        snap.obs.gauges.reserve(metrics.gauges.size());
        for (const obs::gauge_snapshot& g : metrics.gauges) {
            snap.obs.gauges.emplace_back(g.name, g.value);
        }
        snap.obs.stage_counts.reserve(metrics.stages.size());
        for (const obs::stage_snapshot& s : metrics.stages) {
            snap.obs.stage_counts.emplace_back(s.name, s.count);
        }
    }
    return snap;
}

void restore(serve::fleet_router& fleet, const fleet_snapshot& snapshot) {
    const config_fingerprint live = fingerprint_of(fleet.config());
    if (!(live == snapshot.config)) {
        throw checkpoint_error(
            "snapshot config fingerprint does not match the running config "
            "(detector/queue/drain settings must be identical; see docs/checkpoint.md)");
    }
    // Obs first: counters and stage counts are additive (the restored
    // process starts from zero, so the merge replays the captured half),
    // gauges are last-write-wins.  fleet.restore() then re-asserts the
    // serve gauges, so a rebalanced restore reports the new layout.
    for (const auto& [name, value] : snapshot.obs.counters) obs::add_counter(name, value);
    for (const auto& [name, value] : snapshot.obs.gauges) obs::set_gauge(name, value);
    for (const auto& [name, count] : snapshot.obs.stage_counts) obs::add_stage_counts(name, count);
    fleet.restore(snapshot.fleet);
}

std::size_t write_snapshot_file(const std::string& path, const fleet_snapshot& snapshot) {
    const std::vector<std::uint8_t> bytes = encode_snapshot(snapshot);
    const std::string tmp_path = path + ".tmp";
    std::FILE* f = std::fopen(tmp_path.c_str(), "wb");
    if (f == nullptr) {
        throw checkpoint_error("cannot open snapshot temp file for writing: " + tmp_path);
    }
    const std::size_t written = std::fwrite(bytes.data(), 1, bytes.size(), f);
    const bool flushed = std::fflush(f) == 0;
    std::fclose(f);
    if (written != bytes.size() || !flushed) {
        std::remove(tmp_path.c_str());
        throw checkpoint_error("short write while writing snapshot: " + tmp_path);
    }
    // Atomic publish: rename() replaces `path` in one step, so readers see
    // either the previous complete snapshot or this one, never a torn file.
    if (std::rename(tmp_path.c_str(), path.c_str()) != 0) {
        std::remove(tmp_path.c_str());
        throw checkpoint_error("cannot publish snapshot file: " + path);
    }
    return bytes.size();
}

fleet_snapshot read_snapshot_file(const std::string& path) {
    std::FILE* f = std::fopen(path.c_str(), "rb");
    if (f == nullptr) throw checkpoint_error("cannot open snapshot file: " + path);
    std::vector<std::uint8_t> bytes;
    std::uint8_t buf[1 << 16];
    std::size_t n = 0;
    while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) {
        bytes.insert(bytes.end(), buf, buf + n);
    }
    const bool read_error = std::ferror(f) != 0;
    std::fclose(f);
    if (read_error) throw checkpoint_error("read error on snapshot file: " + path);
    fleet_snapshot snap;
    const decode_status status = decode_snapshot(bytes, snap);
    if (status != decode_status::ok) {
        std::ostringstream os;
        os << "snapshot file " << path << " is not a valid checkpoint: "
           << decode_status_name(status);
        throw checkpoint_error(os.str());
    }
    return snap;
}

void snapshot_to_file(const serve::fleet_router& fleet, const std::string& path) {
    const fleet_snapshot snap = capture(fleet);
    const std::size_t bytes = write_snapshot_file(path, snap);
    // After the capture, so the image never counts its own writing.
    obs::add_counter("ckpt/snapshots");
    obs::add_counter("ckpt/snapshot_bytes", bytes);
}

fleet_snapshot restore_from_file(serve::fleet_router& fleet, const std::string& path) {
    fleet_snapshot snap = read_snapshot_file(path);
    restore(fleet, snap);
    obs::add_counter("ckpt/restores");
    obs::add_counter("ckpt/sessions_restored", snap.fleet.sessions.size());
    return snap;
}

std::vector<session_handoff> session_handoffs(const fleet_snapshot& snapshot) {
    std::vector<session_handoff> out;
    out.reserve(snapshot.fleet.sessions.size());
    for (const serve::session_checkpoint& sc : snapshot.fleet.sessions) {
        const std::uint64_t offered = sc.stats.accepted + sc.stats.rejected;
        out.push_back({sc.global_id, static_cast<std::uint32_t>(offered & 0xFFFFFFFFull)});
    }
    return out;
}

}  // namespace fallsense::ckpt
