// Binary checkpoint codec — the fallsense fleet snapshot format v1.
//
// The byte layout is documented normatively in docs/checkpoint.md
// (section tables, field semantics, worked hex example); this header is
// its implementation, built on the same discipline as the wire codec
// (src/net/wire.hpp): fixed little-endian layout, strict bounds-checked
// decode, typed errors, and nothing consumed on error.  A snapshot file
// is self-contained: four CRC-guarded sections carry the fleet metadata
// and config fingerprint (META), the dense global-id routing table
// (ROUT), every live session's queue + detector state (SESS), and the
// obs registry image (OBSC), so a restored process resumes the stream
// bit-identically — triggers, scores, and the deterministic manifest all
// match an uninterrupted run.
//
// Layout summary (every multi-byte integer little-endian, unaligned):
//
//   file header (8 bytes)
//     0  4  magic 0x46 0x53 0x43 0x4B ("FSCK")
//     4  1  format version (k_checkpoint_version == 1)
//     5  1  reserved, must be 0
//     6  2  section count, must be 4
//   then 4 sections, each
//     0  4  tag ("META" / "ROUT" / "SESS" / "OBSC", in exactly that order)
//     4  4  payload byte count
//     8  4  CRC-32 (IEEE reflected, the zlib polynomial) of the payload
//   followed by the payload bytes.
//
// Decoding validates in fixed order — length, magic, version, section
// framing, CRC, then payload content — so every malformed input maps to
// exactly one `decode_status`, and a truncated or hostile buffer is
// rejected without reading out of bounds (the malformed-input table in
// tests/ckpt/checkpoint_test.cpp runs under ASan/UBSan in CI).
#pragma once

#include <array>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "serve/fleet.hpp"

namespace fallsense::ckpt {

inline constexpr std::array<std::uint8_t, 4> k_checkpoint_magic{0x46, 0x53, 0x43, 0x4B};  // "FSCK"
inline constexpr std::uint8_t k_checkpoint_version = 1;
inline constexpr std::size_t k_file_header_bytes = 8;
inline constexpr std::size_t k_section_header_bytes = 12;
inline constexpr std::uint16_t k_section_count = 4;

/// CRC-32 (IEEE 802.3 reflected, polynomial 0xEDB88320, init/final-xor
/// 0xFFFFFFFF — the zlib crc32).  Exposed so tests and tools can frame
/// sections independently.
std::uint32_t crc32(std::span<const std::uint8_t> bytes);

/// The detector/engine configuration a snapshot was taken under.  A
/// checkpoint only carries *state*; coefficients, hop sizes, and buffer
/// shapes are re-derived from the live config at restore, so restore
/// refuses a snapshot whose fingerprint differs (ckpt::restore throws
/// checkpoint_error).  The shard count and score mode are deliberately
/// NOT part of the fingerprint: restoring into a different shard count is
/// rebalancing, and score modes are bit-identical by contract.
struct config_fingerprint {
    std::uint32_t window_samples = 0;
    double overlap_fraction = 0.0;
    double threshold = 0.0;
    std::uint32_t consecutive_required = 0;
    double sample_rate_hz = 0.0;
    std::uint32_t filter_order = 0;
    double cutoff_hz = 0.0;
    double gyro_weight = 0.0;
    std::uint32_t queue_capacity = 0;
    std::uint8_t drop_policy = 0;  ///< 1 = drop-oldest, 2 = reject-newest
    std::uint32_t samples_per_tick = 0;
    std::uint32_t max_samples_per_tick = 0;
    std::uint32_t drain_watermark = 0;

    bool operator==(const config_fingerprint&) const = default;
};

/// Snapshot of the obs registry: counters, gauges, and stage counts (no
/// timings — wall/CPU values are never part of the deterministic manifest,
/// and histograms are excluded from it entirely).  Entries are stored and
/// encoded in the registry's canonical name order.
struct obs_image {
    std::vector<std::pair<std::string, std::uint64_t>> counters;
    std::vector<std::pair<std::string, double>> gauges;
    std::vector<std::pair<std::string, std::uint64_t>> stage_counts;
};

/// Everything a `restore` needs, in one value: the config fingerprint,
/// the fleet state (serve::fleet_checkpoint), and the obs image.
struct fleet_snapshot {
    config_fingerprint config{};
    serve::fleet_checkpoint fleet{};
    obs_image obs{};
};

/// Typed decode outcomes; `ok` is the only success.  Validation order is
/// fixed (see file comment), so each malformed input maps to one status.
enum class decode_status : std::uint8_t {
    ok = 0,
    truncated,    ///< buffer ends inside the header or a section
    bad_magic,    ///< first four bytes are not "FSCK"
    bad_version,  ///< version byte != k_checkpoint_version
    bad_section,  ///< wrong section count, tag, or order
    bad_crc,      ///< a section's payload fails its CRC
    bad_payload,  ///< section content is internally inconsistent
};

const char* decode_status_name(decode_status status);

/// Serialize a snapshot to the v1 byte format.  The fleet checkpoint must
/// be internally consistent (one session record per live flag, ascending
/// ids, per-session sizes matching the fingerprint) — encode validates
/// with FS_ARG_CHECK since a malformed in-memory snapshot is a caller bug,
/// not hostile input.
std::vector<std::uint8_t> encode_snapshot(const fleet_snapshot& snapshot);

/// Decode a complete snapshot buffer into `out`.  On any status other
/// than `ok`, `out` is unspecified and nothing should be trusted from it.
/// Trailing bytes after the last section are `bad_payload` — a snapshot
/// file is exactly one snapshot.
decode_status decode_snapshot(std::span<const std::uint8_t> bytes, fleet_snapshot& out);

}  // namespace fallsense::ckpt
