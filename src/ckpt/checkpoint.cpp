#include "ckpt/checkpoint.hpp"

#include <bit>
#include <cstring>

#include "core/preprocess.hpp"
#include "util/check.hpp"

namespace fallsense::ckpt {

namespace {

// --- little-endian primitives (explicit byte stores/loads, same idiom as
// --- the wire codec: no reinterpret_cast, no alignment assumptions) ---

void put_u8(std::vector<std::uint8_t>& out, std::uint8_t v) { out.push_back(v); }

void put_u16(std::vector<std::uint8_t>& out, std::uint16_t v) {
    out.push_back(static_cast<std::uint8_t>(v & 0xff));
    out.push_back(static_cast<std::uint8_t>((v >> 8) & 0xff));
}

void put_u32(std::vector<std::uint8_t>& out, std::uint32_t v) {
    for (int shift = 0; shift < 32; shift += 8) {
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
}

void put_u64(std::vector<std::uint8_t>& out, std::uint64_t v) {
    for (int shift = 0; shift < 64; shift += 8) {
        out.push_back(static_cast<std::uint8_t>((v >> shift) & 0xff));
    }
}

void put_f32(std::vector<std::uint8_t>& out, float v) {
    put_u32(out, std::bit_cast<std::uint32_t>(v));
}

void put_f64(std::vector<std::uint8_t>& out, double v) {
    put_u64(out, std::bit_cast<std::uint64_t>(v));
}

/// Bounds-checked cursor over one section payload.  Every get_* returns
/// false instead of reading past the end; a false anywhere maps to
/// `bad_payload` (the section was framed correctly but its content claims
/// more than it holds).
struct reader {
    std::span<const std::uint8_t> buf;
    std::size_t pos = 0;

    std::size_t remaining() const { return buf.size() - pos; }
    bool done() const { return pos == buf.size(); }

    bool get_u8(std::uint8_t& v) {
        if (remaining() < 1) return false;
        v = buf[pos++];
        return true;
    }
    bool get_u16(std::uint16_t& v) {
        if (remaining() < 2) return false;
        v = static_cast<std::uint16_t>(buf[pos] | (buf[pos + 1] << 8));
        pos += 2;
        return true;
    }
    bool get_u32(std::uint32_t& v) {
        if (remaining() < 4) return false;
        v = 0;
        for (int i = 0; i < 4; ++i) v |= static_cast<std::uint32_t>(buf[pos + i]) << (8 * i);
        pos += 4;
        return true;
    }
    bool get_u64(std::uint64_t& v) {
        if (remaining() < 8) return false;
        v = 0;
        for (int i = 0; i < 8; ++i) v |= static_cast<std::uint64_t>(buf[pos + i]) << (8 * i);
        pos += 8;
        return true;
    }
    bool get_f32(float& v) {
        std::uint32_t raw = 0;
        if (!get_u32(raw)) return false;
        v = std::bit_cast<float>(raw);
        return true;
    }
    bool get_f64(double& v) {
        std::uint64_t raw = 0;
        if (!get_u64(raw)) return false;
        v = std::bit_cast<double>(raw);
        return true;
    }
    bool get_name(std::string& v) {
        std::uint16_t len = 0;
        if (!get_u16(len) || len == 0 || remaining() < len) return false;
        v.assign(reinterpret_cast<const char*>(buf.data() + pos), len);
        pos += len;
        return true;
    }
};

constexpr std::array<std::uint8_t, 4> k_tag_meta{'M', 'E', 'T', 'A'};
constexpr std::array<std::uint8_t, 4> k_tag_rout{'R', 'O', 'U', 'T'};
constexpr std::array<std::uint8_t, 4> k_tag_sess{'S', 'E', 'S', 'S'};
constexpr std::array<std::uint8_t, 4> k_tag_obsc{'O', 'B', 'S', 'C'};

std::array<std::uint32_t, 256> make_crc_table() {
    std::array<std::uint32_t, 256> table{};
    for (std::uint32_t n = 0; n < 256; ++n) {
        std::uint32_t c = n;
        for (int k = 0; k < 8; ++k) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        table[n] = c;
    }
    return table;
}

/// Per-session wire size derived from the fingerprint (fixed part plus the
/// queue payload); the derived buffer sizes are what decode validates the
/// stream against.
std::size_t session_fixed_bytes(std::size_t filter_vals, std::size_t ring_elems) {
    return 4 + 6 * 8 + 4 + 4          // id, stats, drain rate, queue depth
           + 8 + 8 + 4 + 1 + 3 * 8    // tick, positive run, last score, fusion, attitude
           + filter_vals * 8 + ring_elems * 4;
}

void put_stats(std::vector<std::uint8_t>& out, const serve::session_stats& s) {
    put_u64(out, s.accepted);
    put_u64(out, s.dropped);
    put_u64(out, s.rejected);
    put_u64(out, s.ingested);
    put_u64(out, s.windows_scored);
    put_u64(out, s.triggers);
}

bool get_stats(reader& r, serve::session_stats& s) {
    return r.get_u64(s.accepted) && r.get_u64(s.dropped) && r.get_u64(s.rejected) &&
           r.get_u64(s.ingested) && r.get_u64(s.windows_scored) && r.get_u64(s.triggers);
}

void append_section(std::vector<std::uint8_t>& out, const std::array<std::uint8_t, 4>& tag,
                    const std::vector<std::uint8_t>& payload) {
    out.insert(out.end(), tag.begin(), tag.end());
    put_u32(out, static_cast<std::uint32_t>(payload.size()));
    put_u32(out, crc32(payload));
    out.insert(out.end(), payload.begin(), payload.end());
}

decode_status parse_meta(reader r, fleet_snapshot& out, std::uint32_t& total_sessions,
                         std::uint32_t& live_sessions) {
    config_fingerprint& fp = out.config;
    std::uint32_t shard_count = 0;
    if (!r.get_u64(out.fleet.ticks) || !r.get_u64(out.fleet.swap_generation) ||
        !r.get_u32(shard_count) || !r.get_u32(total_sessions) || !r.get_u32(live_sessions) ||
        !r.get_u32(fp.window_samples) || !r.get_f64(fp.overlap_fraction) ||
        !r.get_f64(fp.threshold) || !r.get_u32(fp.consecutive_required) ||
        !r.get_f64(fp.sample_rate_hz) || !r.get_u32(fp.filter_order) ||
        !r.get_f64(fp.cutoff_hz) || !r.get_f64(fp.gyro_weight) ||
        !r.get_u32(fp.queue_capacity) || !r.get_u8(fp.drop_policy) ||
        !r.get_u32(fp.samples_per_tick) || !r.get_u32(fp.max_samples_per_tick) ||
        !r.get_u32(fp.drain_watermark)) {
        return decode_status::bad_payload;
    }
    if (shard_count == 0 || live_sessions > total_sessions) return decode_status::bad_payload;
    if (fp.window_samples == 0 || fp.filter_order < 2 || fp.filter_order % 2 != 0) {
        return decode_status::bad_payload;
    }
    if (fp.drop_policy != 1 && fp.drop_policy != 2) return decode_status::bad_payload;
    out.fleet.shard_count = shard_count;
    out.fleet.retired.clear();
    for (std::uint32_t s = 0; s < shard_count; ++s) {
        serve::session_stats stats;
        if (!get_stats(r, stats)) return decode_status::bad_payload;
        out.fleet.retired.push_back(stats);
    }
    return r.done() ? decode_status::ok : decode_status::bad_payload;
}

decode_status parse_rout(reader r, fleet_snapshot& out, std::uint32_t total_sessions,
                         std::uint32_t live_sessions) {
    if (r.remaining() != total_sessions) return decode_status::bad_payload;
    out.fleet.live.clear();
    out.fleet.live.reserve(total_sessions);
    std::uint32_t live_seen = 0;
    for (std::uint32_t i = 0; i < total_sessions; ++i) {
        std::uint8_t flag = 0;
        if (!r.get_u8(flag) || flag > 1) return decode_status::bad_payload;
        live_seen += flag;
        out.fleet.live.push_back(flag);
    }
    if (live_seen != live_sessions) return decode_status::bad_payload;
    return decode_status::ok;
}

decode_status parse_sess(reader r, fleet_snapshot& out, std::uint32_t total_sessions,
                         std::uint32_t live_sessions) {
    const std::size_t ring_elems =
        static_cast<std::size_t>(out.config.window_samples) * core::k_feature_channels;
    const std::size_t filter_vals = 6 * (out.config.filter_order / 2) * 2;
    out.fleet.sessions.clear();
    out.fleet.sessions.reserve(live_sessions);
    std::int64_t prev_id = -1;
    for (std::uint32_t i = 0; i < live_sessions; ++i) {
        serve::session_checkpoint& sc = out.fleet.sessions.emplace_back();
        std::uint32_t gid = 0;
        if (!r.get_u32(gid)) return decode_status::bad_payload;
        if (static_cast<std::int64_t>(gid) <= prev_id || gid >= total_sessions ||
            out.fleet.live[gid] != 1) {
            return decode_status::bad_payload;
        }
        prev_id = gid;
        sc.global_id = gid;
        std::uint32_t drain = 0;
        std::uint32_t depth = 0;
        if (!get_stats(r, sc.stats) || !r.get_u32(drain) || !r.get_u32(depth)) {
            return decode_status::bad_payload;
        }
        sc.drain_rate = drain;
        if (r.remaining() < static_cast<std::uint64_t>(depth) * 24) {
            return decode_status::bad_payload;
        }
        sc.queue.clear();
        sc.queue.reserve(depth);
        for (std::uint32_t q = 0; q < depth; ++q) {
            data::raw_sample sample{};
            for (float& v : sample.accel) {
                if (!r.get_f32(v)) return decode_status::bad_payload;
            }
            for (float& v : sample.gyro) {
                if (!r.get_f32(v)) return decode_status::bad_payload;
            }
            sc.queue.push_back(sample);
        }
        core::detector_state_image& img = sc.detector;
        std::uint8_t fusion_flag = 0;
        if (!r.get_u64(img.tick) || !r.get_u64(img.positive_run) ||
            !r.get_f32(img.last_score) || !r.get_u8(fusion_flag) || fusion_flag > 1 ||
            !r.get_f64(img.attitude.pitch) || !r.get_f64(img.attitude.roll) ||
            !r.get_f64(img.attitude.yaw)) {
            return decode_status::bad_payload;
        }
        img.fusion_initialized = fusion_flag == 1;
        if (r.remaining() < filter_vals * 8 + ring_elems * 4) return decode_status::bad_payload;
        img.filter_state.clear();
        img.filter_state.reserve(filter_vals);
        for (std::size_t v = 0; v < filter_vals; ++v) {
            double d = 0.0;
            if (!r.get_f64(d)) return decode_status::bad_payload;
            img.filter_state.push_back(d);
        }
        img.ring.clear();
        img.ring.reserve(ring_elems);
        for (std::size_t v = 0; v < ring_elems; ++v) {
            float f = 0.0f;
            if (!r.get_f32(f)) return decode_status::bad_payload;
            img.ring.push_back(f);
        }
    }
    return r.done() ? decode_status::ok : decode_status::bad_payload;
}

decode_status parse_obsc(reader r, fleet_snapshot& out) {
    std::uint32_t n = 0;
    if (!r.get_u32(n)) return decode_status::bad_payload;
    out.obs.counters.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t value = 0;
        if (!r.get_name(name) || !r.get_u64(value)) return decode_status::bad_payload;
        out.obs.counters.emplace_back(std::move(name), value);
    }
    if (!r.get_u32(n)) return decode_status::bad_payload;
    out.obs.gauges.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        double value = 0.0;
        if (!r.get_name(name) || !r.get_f64(value)) return decode_status::bad_payload;
        out.obs.gauges.emplace_back(std::move(name), value);
    }
    if (!r.get_u32(n)) return decode_status::bad_payload;
    out.obs.stage_counts.clear();
    for (std::uint32_t i = 0; i < n; ++i) {
        std::string name;
        std::uint64_t count = 0;
        if (!r.get_name(name) || !r.get_u64(count)) return decode_status::bad_payload;
        out.obs.stage_counts.emplace_back(std::move(name), count);
    }
    return r.done() ? decode_status::ok : decode_status::bad_payload;
}

}  // namespace

std::uint32_t crc32(std::span<const std::uint8_t> bytes) {
    static const std::array<std::uint32_t, 256> table = make_crc_table();
    std::uint32_t c = 0xFFFFFFFFu;
    for (const std::uint8_t b : bytes) c = table[(c ^ b) & 0xff] ^ (c >> 8);
    return c ^ 0xFFFFFFFFu;
}

const char* decode_status_name(decode_status status) {
    switch (status) {
        case decode_status::ok: return "ok";
        case decode_status::truncated: return "truncated";
        case decode_status::bad_magic: return "bad_magic";
        case decode_status::bad_version: return "bad_version";
        case decode_status::bad_section: return "bad_section";
        case decode_status::bad_crc: return "bad_crc";
        case decode_status::bad_payload: return "bad_payload";
    }
    return "?";
}

std::vector<std::uint8_t> encode_snapshot(const fleet_snapshot& snapshot) {
    const config_fingerprint& fp = snapshot.config;
    const serve::fleet_checkpoint& fleet = snapshot.fleet;
    FS_ARG_CHECK(fp.window_samples > 0, "snapshot fingerprint window must be positive");
    FS_ARG_CHECK(fp.filter_order >= 2 && fp.filter_order % 2 == 0,
                 "snapshot fingerprint filter order must be even and >= 2");
    FS_ARG_CHECK(fp.drop_policy == 1 || fp.drop_policy == 2,
                 "snapshot fingerprint drop policy must be 1 or 2");
    FS_ARG_CHECK(fleet.shard_count > 0, "snapshot needs at least one shard");
    FS_ARG_CHECK(fleet.retired.size() == fleet.shard_count,
                 "snapshot retired stats must cover every shard");
    std::size_t live_total = 0;
    for (const std::uint8_t flag : fleet.live) {
        FS_ARG_CHECK(flag <= 1, "snapshot live flags must be 0 or 1");
        live_total += flag;
    }
    FS_ARG_CHECK(fleet.sessions.size() == live_total,
                 "snapshot must carry exactly one record per live session");

    const std::size_t ring_elems =
        static_cast<std::size_t>(fp.window_samples) * core::k_feature_channels;
    const std::size_t filter_vals = 6 * (fp.filter_order / 2) * 2;

    std::vector<std::uint8_t> meta;
    put_u64(meta, fleet.ticks);
    put_u64(meta, fleet.swap_generation);
    put_u32(meta, fleet.shard_count);
    put_u32(meta, static_cast<std::uint32_t>(fleet.live.size()));
    put_u32(meta, static_cast<std::uint32_t>(live_total));
    put_u32(meta, fp.window_samples);
    put_f64(meta, fp.overlap_fraction);
    put_f64(meta, fp.threshold);
    put_u32(meta, fp.consecutive_required);
    put_f64(meta, fp.sample_rate_hz);
    put_u32(meta, fp.filter_order);
    put_f64(meta, fp.cutoff_hz);
    put_f64(meta, fp.gyro_weight);
    put_u32(meta, fp.queue_capacity);
    put_u8(meta, fp.drop_policy);
    put_u32(meta, fp.samples_per_tick);
    put_u32(meta, fp.max_samples_per_tick);
    put_u32(meta, fp.drain_watermark);
    for (const serve::session_stats& s : fleet.retired) put_stats(meta, s);

    std::vector<std::uint8_t> rout(fleet.live.begin(), fleet.live.end());

    std::vector<std::uint8_t> sess;
    sess.reserve(fleet.sessions.size() * session_fixed_bytes(filter_vals, ring_elems));
    std::int64_t prev_id = -1;
    for (const serve::session_checkpoint& sc : fleet.sessions) {
        FS_ARG_CHECK(static_cast<std::int64_t>(sc.global_id) > prev_id &&
                         sc.global_id < fleet.live.size() && fleet.live[sc.global_id] == 1,
                     "snapshot session ids must be ascending and live");
        prev_id = sc.global_id;
        FS_ARG_CHECK(sc.detector.filter_state.size() == filter_vals,
                     "snapshot session filter state does not match the fingerprint");
        FS_ARG_CHECK(sc.detector.ring.size() == ring_elems,
                     "snapshot session ring does not match the fingerprint");
        put_u32(sess, sc.global_id);
        put_stats(sess, sc.stats);
        put_u32(sess, static_cast<std::uint32_t>(sc.drain_rate));
        put_u32(sess, static_cast<std::uint32_t>(sc.queue.size()));
        for (const data::raw_sample& sample : sc.queue) {
            for (const float v : sample.accel) put_f32(sess, v);
            for (const float v : sample.gyro) put_f32(sess, v);
        }
        put_u64(sess, sc.detector.tick);
        put_u64(sess, sc.detector.positive_run);
        put_f32(sess, sc.detector.last_score);
        put_u8(sess, sc.detector.fusion_initialized ? 1 : 0);
        put_f64(sess, sc.detector.attitude.pitch);
        put_f64(sess, sc.detector.attitude.roll);
        put_f64(sess, sc.detector.attitude.yaw);
        for (const double v : sc.detector.filter_state) put_f64(sess, v);
        for (const float v : sc.detector.ring) put_f32(sess, v);
    }

    std::vector<std::uint8_t> obsc;
    put_u32(obsc, static_cast<std::uint32_t>(snapshot.obs.counters.size()));
    for (const auto& [name, value] : snapshot.obs.counters) {
        FS_ARG_CHECK(!name.empty() && name.size() <= 0xFFFF, "obs name length out of range");
        put_u16(obsc, static_cast<std::uint16_t>(name.size()));
        obsc.insert(obsc.end(), name.begin(), name.end());
        put_u64(obsc, value);
    }
    put_u32(obsc, static_cast<std::uint32_t>(snapshot.obs.gauges.size()));
    for (const auto& [name, value] : snapshot.obs.gauges) {
        FS_ARG_CHECK(!name.empty() && name.size() <= 0xFFFF, "obs name length out of range");
        put_u16(obsc, static_cast<std::uint16_t>(name.size()));
        obsc.insert(obsc.end(), name.begin(), name.end());
        put_f64(obsc, value);
    }
    put_u32(obsc, static_cast<std::uint32_t>(snapshot.obs.stage_counts.size()));
    for (const auto& [name, count] : snapshot.obs.stage_counts) {
        FS_ARG_CHECK(!name.empty() && name.size() <= 0xFFFF, "obs name length out of range");
        put_u16(obsc, static_cast<std::uint16_t>(name.size()));
        obsc.insert(obsc.end(), name.begin(), name.end());
        put_u64(obsc, count);
    }

    std::vector<std::uint8_t> out;
    out.reserve(k_file_header_bytes + 4 * k_section_header_bytes + meta.size() + rout.size() +
                sess.size() + obsc.size());
    out.insert(out.end(), k_checkpoint_magic.begin(), k_checkpoint_magic.end());
    put_u8(out, k_checkpoint_version);
    put_u8(out, 0);  // reserved
    put_u16(out, k_section_count);
    append_section(out, k_tag_meta, meta);
    append_section(out, k_tag_rout, rout);
    append_section(out, k_tag_sess, sess);
    append_section(out, k_tag_obsc, obsc);
    return out;
}

decode_status decode_snapshot(std::span<const std::uint8_t> bytes, fleet_snapshot& out) {
    if (bytes.size() < k_file_header_bytes) return decode_status::truncated;
    if (std::memcmp(bytes.data(), k_checkpoint_magic.data(), 4) != 0) {
        return decode_status::bad_magic;
    }
    if (bytes[4] != k_checkpoint_version) return decode_status::bad_version;
    if (bytes[5] != 0) return decode_status::bad_payload;
    const std::uint16_t sections = static_cast<std::uint16_t>(bytes[6] | (bytes[7] << 8));
    if (sections != k_section_count) return decode_status::bad_section;

    const std::array<const std::array<std::uint8_t, 4>*, 4> expected{&k_tag_meta, &k_tag_rout,
                                                                     &k_tag_sess, &k_tag_obsc};
    std::array<std::span<const std::uint8_t>, 4> payloads;
    std::size_t cursor = k_file_header_bytes;
    for (std::size_t s = 0; s < 4; ++s) {
        if (bytes.size() - cursor < k_section_header_bytes) return decode_status::truncated;
        if (std::memcmp(bytes.data() + cursor, expected[s]->data(), 4) != 0) {
            return decode_status::bad_section;
        }
        std::uint32_t payload_len = 0;
        std::uint32_t stored_crc = 0;
        for (int i = 0; i < 4; ++i) {
            payload_len |= static_cast<std::uint32_t>(bytes[cursor + 4 + i]) << (8 * i);
            stored_crc |= static_cast<std::uint32_t>(bytes[cursor + 8 + i]) << (8 * i);
        }
        cursor += k_section_header_bytes;
        if (bytes.size() - cursor < payload_len) return decode_status::truncated;
        payloads[s] = bytes.subspan(cursor, payload_len);
        if (crc32(payloads[s]) != stored_crc) return decode_status::bad_crc;
        cursor += payload_len;
    }
    if (cursor != bytes.size()) return decode_status::bad_payload;

    std::uint32_t total_sessions = 0;
    std::uint32_t live_sessions = 0;
    decode_status status = parse_meta(reader{payloads[0]}, out, total_sessions, live_sessions);
    if (status != decode_status::ok) return status;
    status = parse_rout(reader{payloads[1]}, out, total_sessions, live_sessions);
    if (status != decode_status::ok) return status;
    status = parse_sess(reader{payloads[2]}, out, total_sessions, live_sessions);
    if (status != decode_status::ok) return status;
    return parse_obsc(reader{payloads[3]}, out);
}

}  // namespace fallsense::ckpt
