# Empty compiler generated dependencies file for fallsense_dsp.
# This may be replaced when dependencies are built.
