file(REMOVE_RECURSE
  "libfallsense_dsp.a"
)
