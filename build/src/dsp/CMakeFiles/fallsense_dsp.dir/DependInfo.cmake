
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/dsp/biquad.cpp" "src/dsp/CMakeFiles/fallsense_dsp.dir/biquad.cpp.o" "gcc" "src/dsp/CMakeFiles/fallsense_dsp.dir/biquad.cpp.o.d"
  "/root/repo/src/dsp/fusion.cpp" "src/dsp/CMakeFiles/fallsense_dsp.dir/fusion.cpp.o" "gcc" "src/dsp/CMakeFiles/fallsense_dsp.dir/fusion.cpp.o.d"
  "/root/repo/src/dsp/rotation.cpp" "src/dsp/CMakeFiles/fallsense_dsp.dir/rotation.cpp.o" "gcc" "src/dsp/CMakeFiles/fallsense_dsp.dir/rotation.cpp.o.d"
  "/root/repo/src/dsp/segmentation.cpp" "src/dsp/CMakeFiles/fallsense_dsp.dir/segmentation.cpp.o" "gcc" "src/dsp/CMakeFiles/fallsense_dsp.dir/segmentation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
