file(REMOVE_RECURSE
  "CMakeFiles/fallsense_dsp.dir/biquad.cpp.o"
  "CMakeFiles/fallsense_dsp.dir/biquad.cpp.o.d"
  "CMakeFiles/fallsense_dsp.dir/fusion.cpp.o"
  "CMakeFiles/fallsense_dsp.dir/fusion.cpp.o.d"
  "CMakeFiles/fallsense_dsp.dir/rotation.cpp.o"
  "CMakeFiles/fallsense_dsp.dir/rotation.cpp.o.d"
  "CMakeFiles/fallsense_dsp.dir/segmentation.cpp.o"
  "CMakeFiles/fallsense_dsp.dir/segmentation.cpp.o.d"
  "libfallsense_dsp.a"
  "libfallsense_dsp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_dsp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
