# Empty dependencies file for fallsense_util.
# This may be replaced when dependencies are built.
