file(REMOVE_RECURSE
  "libfallsense_util.a"
)
