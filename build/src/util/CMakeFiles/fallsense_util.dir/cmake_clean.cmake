file(REMOVE_RECURSE
  "CMakeFiles/fallsense_util.dir/args.cpp.o"
  "CMakeFiles/fallsense_util.dir/args.cpp.o.d"
  "CMakeFiles/fallsense_util.dir/csv.cpp.o"
  "CMakeFiles/fallsense_util.dir/csv.cpp.o.d"
  "CMakeFiles/fallsense_util.dir/env.cpp.o"
  "CMakeFiles/fallsense_util.dir/env.cpp.o.d"
  "CMakeFiles/fallsense_util.dir/logging.cpp.o"
  "CMakeFiles/fallsense_util.dir/logging.cpp.o.d"
  "CMakeFiles/fallsense_util.dir/rng.cpp.o"
  "CMakeFiles/fallsense_util.dir/rng.cpp.o.d"
  "CMakeFiles/fallsense_util.dir/stats.cpp.o"
  "CMakeFiles/fallsense_util.dir/stats.cpp.o.d"
  "libfallsense_util.a"
  "libfallsense_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
