
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mcu/cost_model.cpp" "src/mcu/CMakeFiles/fallsense_mcu.dir/cost_model.cpp.o" "gcc" "src/mcu/CMakeFiles/fallsense_mcu.dir/cost_model.cpp.o.d"
  "/root/repo/src/mcu/deployment.cpp" "src/mcu/CMakeFiles/fallsense_mcu.dir/deployment.cpp.o" "gcc" "src/mcu/CMakeFiles/fallsense_mcu.dir/deployment.cpp.o.d"
  "/root/repo/src/mcu/memory_planner.cpp" "src/mcu/CMakeFiles/fallsense_mcu.dir/memory_planner.cpp.o" "gcc" "src/mcu/CMakeFiles/fallsense_mcu.dir/memory_planner.cpp.o.d"
  "/root/repo/src/mcu/stm32_spec.cpp" "src/mcu/CMakeFiles/fallsense_mcu.dir/stm32_spec.cpp.o" "gcc" "src/mcu/CMakeFiles/fallsense_mcu.dir/stm32_spec.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/fallsense_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fallsense_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
