file(REMOVE_RECURSE
  "libfallsense_mcu.a"
)
