file(REMOVE_RECURSE
  "CMakeFiles/fallsense_mcu.dir/cost_model.cpp.o"
  "CMakeFiles/fallsense_mcu.dir/cost_model.cpp.o.d"
  "CMakeFiles/fallsense_mcu.dir/deployment.cpp.o"
  "CMakeFiles/fallsense_mcu.dir/deployment.cpp.o.d"
  "CMakeFiles/fallsense_mcu.dir/memory_planner.cpp.o"
  "CMakeFiles/fallsense_mcu.dir/memory_planner.cpp.o.d"
  "CMakeFiles/fallsense_mcu.dir/stm32_spec.cpp.o"
  "CMakeFiles/fallsense_mcu.dir/stm32_spec.cpp.o.d"
  "libfallsense_mcu.a"
  "libfallsense_mcu.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_mcu.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
