# Empty compiler generated dependencies file for fallsense_mcu.
# This may be replaced when dependencies are built.
