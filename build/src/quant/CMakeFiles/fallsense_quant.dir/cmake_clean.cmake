file(REMOVE_RECURSE
  "CMakeFiles/fallsense_quant.dir/cnn_spec.cpp.o"
  "CMakeFiles/fallsense_quant.dir/cnn_spec.cpp.o.d"
  "CMakeFiles/fallsense_quant.dir/qparams.cpp.o"
  "CMakeFiles/fallsense_quant.dir/qparams.cpp.o.d"
  "CMakeFiles/fallsense_quant.dir/quantized_cnn.cpp.o"
  "CMakeFiles/fallsense_quant.dir/quantized_cnn.cpp.o.d"
  "libfallsense_quant.a"
  "libfallsense_quant.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_quant.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
