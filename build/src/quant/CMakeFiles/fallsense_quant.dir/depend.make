# Empty dependencies file for fallsense_quant.
# This may be replaced when dependencies are built.
