file(REMOVE_RECURSE
  "libfallsense_quant.a"
)
