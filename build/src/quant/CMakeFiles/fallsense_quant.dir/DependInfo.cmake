
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/quant/cnn_spec.cpp" "src/quant/CMakeFiles/fallsense_quant.dir/cnn_spec.cpp.o" "gcc" "src/quant/CMakeFiles/fallsense_quant.dir/cnn_spec.cpp.o.d"
  "/root/repo/src/quant/qparams.cpp" "src/quant/CMakeFiles/fallsense_quant.dir/qparams.cpp.o" "gcc" "src/quant/CMakeFiles/fallsense_quant.dir/qparams.cpp.o.d"
  "/root/repo/src/quant/quantized_cnn.cpp" "src/quant/CMakeFiles/fallsense_quant.dir/quantized_cnn.cpp.o" "gcc" "src/quant/CMakeFiles/fallsense_quant.dir/quantized_cnn.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fallsense_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
