file(REMOVE_RECURSE
  "CMakeFiles/fallsense_eval.dir/events.cpp.o"
  "CMakeFiles/fallsense_eval.dir/events.cpp.o.d"
  "CMakeFiles/fallsense_eval.dir/kfold.cpp.o"
  "CMakeFiles/fallsense_eval.dir/kfold.cpp.o.d"
  "CMakeFiles/fallsense_eval.dir/metrics.cpp.o"
  "CMakeFiles/fallsense_eval.dir/metrics.cpp.o.d"
  "CMakeFiles/fallsense_eval.dir/roc.cpp.o"
  "CMakeFiles/fallsense_eval.dir/roc.cpp.o.d"
  "CMakeFiles/fallsense_eval.dir/threshold.cpp.o"
  "CMakeFiles/fallsense_eval.dir/threshold.cpp.o.d"
  "libfallsense_eval.a"
  "libfallsense_eval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_eval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
