
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/eval/events.cpp" "src/eval/CMakeFiles/fallsense_eval.dir/events.cpp.o" "gcc" "src/eval/CMakeFiles/fallsense_eval.dir/events.cpp.o.d"
  "/root/repo/src/eval/kfold.cpp" "src/eval/CMakeFiles/fallsense_eval.dir/kfold.cpp.o" "gcc" "src/eval/CMakeFiles/fallsense_eval.dir/kfold.cpp.o.d"
  "/root/repo/src/eval/metrics.cpp" "src/eval/CMakeFiles/fallsense_eval.dir/metrics.cpp.o" "gcc" "src/eval/CMakeFiles/fallsense_eval.dir/metrics.cpp.o.d"
  "/root/repo/src/eval/roc.cpp" "src/eval/CMakeFiles/fallsense_eval.dir/roc.cpp.o" "gcc" "src/eval/CMakeFiles/fallsense_eval.dir/roc.cpp.o.d"
  "/root/repo/src/eval/threshold.cpp" "src/eval/CMakeFiles/fallsense_eval.dir/threshold.cpp.o" "gcc" "src/eval/CMakeFiles/fallsense_eval.dir/threshold.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fallsense_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fallsense_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
