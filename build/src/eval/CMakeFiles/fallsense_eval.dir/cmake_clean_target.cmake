file(REMOVE_RECURSE
  "libfallsense_eval.a"
)
