# Empty dependencies file for fallsense_eval.
# This may be replaced when dependencies are built.
