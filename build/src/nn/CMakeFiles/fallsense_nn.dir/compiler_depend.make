# Empty compiler generated dependencies file for fallsense_nn.
# This may be replaced when dependencies are built.
