file(REMOVE_RECURSE
  "libfallsense_nn.a"
)
