
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/activations.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/activations.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/activations.cpp.o.d"
  "/root/repo/src/nn/conv1d.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/conv1d.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/conv1d.cpp.o.d"
  "/root/repo/src/nn/conv_lstm2d.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/conv_lstm2d.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/conv_lstm2d.cpp.o.d"
  "/root/repo/src/nn/dense.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/dense.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/dense.cpp.o.d"
  "/root/repo/src/nn/init.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/init.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/init.cpp.o.d"
  "/root/repo/src/nn/layer.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/layer.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/layer.cpp.o.d"
  "/root/repo/src/nn/loss.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/loss.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/loss.cpp.o.d"
  "/root/repo/src/nn/lstm.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/lstm.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/lstm.cpp.o.d"
  "/root/repo/src/nn/misc_layers.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/misc_layers.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/misc_layers.cpp.o.d"
  "/root/repo/src/nn/multi_branch.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/multi_branch.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/multi_branch.cpp.o.d"
  "/root/repo/src/nn/optimizer.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/optimizer.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/optimizer.cpp.o.d"
  "/root/repo/src/nn/pooling.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/pooling.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/pooling.cpp.o.d"
  "/root/repo/src/nn/sequential.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/sequential.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/sequential.cpp.o.d"
  "/root/repo/src/nn/serialize.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/serialize.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/serialize.cpp.o.d"
  "/root/repo/src/nn/tensor.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/tensor.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/tensor.cpp.o.d"
  "/root/repo/src/nn/trainer.cpp" "src/nn/CMakeFiles/fallsense_nn.dir/trainer.cpp.o" "gcc" "src/nn/CMakeFiles/fallsense_nn.dir/trainer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
