# Empty dependencies file for fallsense_data.
# This may be replaced when dependencies are built.
