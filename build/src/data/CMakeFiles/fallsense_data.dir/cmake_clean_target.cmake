file(REMOVE_RECURSE
  "libfallsense_data.a"
)
