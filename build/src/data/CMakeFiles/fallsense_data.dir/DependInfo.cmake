
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/alignment.cpp" "src/data/CMakeFiles/fallsense_data.dir/alignment.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/alignment.cpp.o.d"
  "/root/repo/src/data/dataset_io.cpp" "src/data/CMakeFiles/fallsense_data.dir/dataset_io.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/dataset_io.cpp.o.d"
  "/root/repo/src/data/generator.cpp" "src/data/CMakeFiles/fallsense_data.dir/generator.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/generator.cpp.o.d"
  "/root/repo/src/data/motion_profile.cpp" "src/data/CMakeFiles/fallsense_data.dir/motion_profile.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/motion_profile.cpp.o.d"
  "/root/repo/src/data/synthesizer.cpp" "src/data/CMakeFiles/fallsense_data.dir/synthesizer.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/synthesizer.cpp.o.d"
  "/root/repo/src/data/taxonomy.cpp" "src/data/CMakeFiles/fallsense_data.dir/taxonomy.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/taxonomy.cpp.o.d"
  "/root/repo/src/data/trial_io.cpp" "src/data/CMakeFiles/fallsense_data.dir/trial_io.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/trial_io.cpp.o.d"
  "/root/repo/src/data/types.cpp" "src/data/CMakeFiles/fallsense_data.dir/types.cpp.o" "gcc" "src/data/CMakeFiles/fallsense_data.dir/types.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fallsense_dsp.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
