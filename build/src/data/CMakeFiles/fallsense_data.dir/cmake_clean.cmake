file(REMOVE_RECURSE
  "CMakeFiles/fallsense_data.dir/alignment.cpp.o"
  "CMakeFiles/fallsense_data.dir/alignment.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/dataset_io.cpp.o"
  "CMakeFiles/fallsense_data.dir/dataset_io.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/generator.cpp.o"
  "CMakeFiles/fallsense_data.dir/generator.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/motion_profile.cpp.o"
  "CMakeFiles/fallsense_data.dir/motion_profile.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/synthesizer.cpp.o"
  "CMakeFiles/fallsense_data.dir/synthesizer.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/taxonomy.cpp.o"
  "CMakeFiles/fallsense_data.dir/taxonomy.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/trial_io.cpp.o"
  "CMakeFiles/fallsense_data.dir/trial_io.cpp.o.d"
  "CMakeFiles/fallsense_data.dir/types.cpp.o"
  "CMakeFiles/fallsense_data.dir/types.cpp.o.d"
  "libfallsense_data.a"
  "libfallsense_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
