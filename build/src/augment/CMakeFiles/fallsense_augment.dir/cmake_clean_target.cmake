file(REMOVE_RECURSE
  "libfallsense_augment.a"
)
