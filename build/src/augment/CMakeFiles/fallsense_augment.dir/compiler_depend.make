# Empty compiler generated dependencies file for fallsense_augment.
# This may be replaced when dependencies are built.
