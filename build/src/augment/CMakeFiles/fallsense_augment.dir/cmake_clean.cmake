file(REMOVE_RECURSE
  "CMakeFiles/fallsense_augment.dir/trial_augment.cpp.o"
  "CMakeFiles/fallsense_augment.dir/trial_augment.cpp.o.d"
  "CMakeFiles/fallsense_augment.dir/warping.cpp.o"
  "CMakeFiles/fallsense_augment.dir/warping.cpp.o.d"
  "libfallsense_augment.a"
  "libfallsense_augment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_augment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
