file(REMOVE_RECURSE
  "CMakeFiles/fallsense_core.dir/airbag.cpp.o"
  "CMakeFiles/fallsense_core.dir/airbag.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/experiment.cpp.o"
  "CMakeFiles/fallsense_core.dir/experiment.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/models.cpp.o"
  "CMakeFiles/fallsense_core.dir/models.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/pipeline.cpp.o"
  "CMakeFiles/fallsense_core.dir/pipeline.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/preprocess.cpp.o"
  "CMakeFiles/fallsense_core.dir/preprocess.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/threshold_detector.cpp.o"
  "CMakeFiles/fallsense_core.dir/threshold_detector.cpp.o.d"
  "CMakeFiles/fallsense_core.dir/windowing.cpp.o"
  "CMakeFiles/fallsense_core.dir/windowing.cpp.o.d"
  "libfallsense_core.a"
  "libfallsense_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
