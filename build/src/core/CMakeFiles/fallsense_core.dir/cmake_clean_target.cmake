file(REMOVE_RECURSE
  "libfallsense_core.a"
)
