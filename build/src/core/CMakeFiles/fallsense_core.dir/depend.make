# Empty dependencies file for fallsense_core.
# This may be replaced when dependencies are built.
