
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/airbag.cpp" "src/core/CMakeFiles/fallsense_core.dir/airbag.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/airbag.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/core/CMakeFiles/fallsense_core.dir/experiment.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/experiment.cpp.o.d"
  "/root/repo/src/core/models.cpp" "src/core/CMakeFiles/fallsense_core.dir/models.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/models.cpp.o.d"
  "/root/repo/src/core/pipeline.cpp" "src/core/CMakeFiles/fallsense_core.dir/pipeline.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/pipeline.cpp.o.d"
  "/root/repo/src/core/preprocess.cpp" "src/core/CMakeFiles/fallsense_core.dir/preprocess.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/preprocess.cpp.o.d"
  "/root/repo/src/core/threshold_detector.cpp" "src/core/CMakeFiles/fallsense_core.dir/threshold_detector.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/threshold_detector.cpp.o.d"
  "/root/repo/src/core/windowing.cpp" "src/core/CMakeFiles/fallsense_core.dir/windowing.cpp.o" "gcc" "src/core/CMakeFiles/fallsense_core.dir/windowing.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fallsense_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fallsense_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fallsense_data.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/fallsense_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fallsense_eval.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
