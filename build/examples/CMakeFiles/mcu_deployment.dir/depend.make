# Empty dependencies file for mcu_deployment.
# This may be replaced when dependencies are built.
