# Empty compiler generated dependencies file for mcu_deployment.
# This may be replaced when dependencies are built.
