file(REMOVE_RECURSE
  "CMakeFiles/mcu_deployment.dir/mcu_deployment.cpp.o"
  "CMakeFiles/mcu_deployment.dir/mcu_deployment.cpp.o.d"
  "mcu_deployment"
  "mcu_deployment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mcu_deployment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
