file(REMOVE_RECURSE
  "CMakeFiles/train_and_quantize.dir/train_and_quantize.cpp.o"
  "CMakeFiles/train_and_quantize.dir/train_and_quantize.cpp.o.d"
  "train_and_quantize"
  "train_and_quantize.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_and_quantize.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
