# Empty compiler generated dependencies file for train_and_quantize.
# This may be replaced when dependencies are built.
