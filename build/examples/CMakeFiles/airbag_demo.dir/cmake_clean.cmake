file(REMOVE_RECURSE
  "CMakeFiles/airbag_demo.dir/airbag_demo.cpp.o"
  "CMakeFiles/airbag_demo.dir/airbag_demo.cpp.o.d"
  "airbag_demo"
  "airbag_demo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/airbag_demo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
