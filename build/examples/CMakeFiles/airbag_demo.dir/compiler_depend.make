# Empty compiler generated dependencies file for airbag_demo.
# This may be replaced when dependencies are built.
