# Empty compiler generated dependencies file for streaming_replay.
# This may be replaced when dependencies are built.
