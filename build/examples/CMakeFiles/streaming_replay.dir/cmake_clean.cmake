file(REMOVE_RECURSE
  "CMakeFiles/streaming_replay.dir/streaming_replay.cpp.o"
  "CMakeFiles/streaming_replay.dir/streaming_replay.cpp.o.d"
  "streaming_replay"
  "streaming_replay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/streaming_replay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
