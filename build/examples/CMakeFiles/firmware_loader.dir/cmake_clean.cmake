file(REMOVE_RECURSE
  "CMakeFiles/firmware_loader.dir/firmware_loader.cpp.o"
  "CMakeFiles/firmware_loader.dir/firmware_loader.cpp.o.d"
  "firmware_loader"
  "firmware_loader.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/firmware_loader.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
