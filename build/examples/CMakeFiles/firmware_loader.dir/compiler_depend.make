# Empty compiler generated dependencies file for firmware_loader.
# This may be replaced when dependencies are built.
