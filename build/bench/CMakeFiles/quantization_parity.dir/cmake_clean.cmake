file(REMOVE_RECURSE
  "CMakeFiles/quantization_parity.dir/quantization_parity.cpp.o"
  "CMakeFiles/quantization_parity.dir/quantization_parity.cpp.o.d"
  "quantization_parity"
  "quantization_parity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantization_parity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
