# Empty compiler generated dependencies file for quantization_parity.
# This may be replaced when dependencies are built.
