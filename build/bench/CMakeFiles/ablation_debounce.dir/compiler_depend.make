# Empty compiler generated dependencies file for ablation_debounce.
# This may be replaced when dependencies are built.
