file(REMOVE_RECURSE
  "CMakeFiles/ablation_imbalance.dir/ablation_imbalance.cpp.o"
  "CMakeFiles/ablation_imbalance.dir/ablation_imbalance.cpp.o.d"
  "ablation_imbalance"
  "ablation_imbalance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_imbalance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
