# Empty dependencies file for ablation_imbalance.
# This may be replaced when dependencies are built.
