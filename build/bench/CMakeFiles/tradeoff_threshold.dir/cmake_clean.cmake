file(REMOVE_RECURSE
  "CMakeFiles/tradeoff_threshold.dir/tradeoff_threshold.cpp.o"
  "CMakeFiles/tradeoff_threshold.dir/tradeoff_threshold.cpp.o.d"
  "tradeoff_threshold"
  "tradeoff_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tradeoff_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
