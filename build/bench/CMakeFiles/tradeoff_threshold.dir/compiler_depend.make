# Empty compiler generated dependencies file for tradeoff_threshold.
# This may be replaced when dependencies are built.
