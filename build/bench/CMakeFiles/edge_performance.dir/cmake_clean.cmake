file(REMOVE_RECURSE
  "CMakeFiles/edge_performance.dir/edge_performance.cpp.o"
  "CMakeFiles/edge_performance.dir/edge_performance.cpp.o.d"
  "edge_performance"
  "edge_performance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/edge_performance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
