# Empty dependencies file for edge_performance.
# This may be replaced when dependencies are built.
