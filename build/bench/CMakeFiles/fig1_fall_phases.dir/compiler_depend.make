# Empty compiler generated dependencies file for fig1_fall_phases.
# This may be replaced when dependencies are built.
