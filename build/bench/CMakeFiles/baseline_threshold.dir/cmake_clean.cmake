file(REMOVE_RECURSE
  "CMakeFiles/baseline_threshold.dir/baseline_threshold.cpp.o"
  "CMakeFiles/baseline_threshold.dir/baseline_threshold.cpp.o.d"
  "baseline_threshold"
  "baseline_threshold.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/baseline_threshold.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
