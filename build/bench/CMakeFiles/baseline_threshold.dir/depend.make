# Empty dependencies file for baseline_threshold.
# This may be replaced when dependencies are built.
