file(REMOVE_RECURSE
  "CMakeFiles/fig2_pipeline.dir/fig2_pipeline.cpp.o"
  "CMakeFiles/fig2_pipeline.dir/fig2_pipeline.cpp.o.d"
  "fig2_pipeline"
  "fig2_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig2_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
