# Empty compiler generated dependencies file for fallsense_tests.
# This may be replaced when dependencies are built.
