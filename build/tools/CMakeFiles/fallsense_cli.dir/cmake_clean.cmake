file(REMOVE_RECURSE
  "CMakeFiles/fallsense_cli.dir/fallsense_cli.cpp.o"
  "CMakeFiles/fallsense_cli.dir/fallsense_cli.cpp.o.d"
  "fallsense"
  "fallsense.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fallsense_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
