# Empty compiler generated dependencies file for fallsense_cli.
# This may be replaced when dependencies are built.
