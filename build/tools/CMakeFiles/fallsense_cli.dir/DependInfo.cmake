
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/fallsense_cli.cpp" "tools/CMakeFiles/fallsense_cli.dir/fallsense_cli.cpp.o" "gcc" "tools/CMakeFiles/fallsense_cli.dir/fallsense_cli.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mcu/CMakeFiles/fallsense_mcu.dir/DependInfo.cmake"
  "/root/repo/build/src/quant/CMakeFiles/fallsense_quant.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/fallsense_core.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/fallsense_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/augment/CMakeFiles/fallsense_augment.dir/DependInfo.cmake"
  "/root/repo/build/src/eval/CMakeFiles/fallsense_eval.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/fallsense_data.dir/DependInfo.cmake"
  "/root/repo/build/src/dsp/CMakeFiles/fallsense_dsp.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fallsense_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
