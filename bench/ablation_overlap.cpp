// Design-sweep ablation (Section III-A): segment size 100-400 ms x overlap
// 0-75 %, CNN only.  The paper explored this grid to pick 400 ms / 50 %;
// the shape to reproduce: longer windows and more overlap both help, with
// diminishing returns, and 100 ms windows are too short to be competitive.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using namespace fallsense;
    core::experiment_scale scale =
        bench::banner("Ablation — segment size x overlap sweep (CNN)");
    const std::uint64_t seed = util::env_seed();
    // 16 grid points: keep each one cheap (single fold, capped epochs) —
    // the sweep compares configurations relatively.
    scale.folds_to_run = 1;
    scale.max_epochs = std::min<std::size_t>(scale.max_epochs, 8);

    const data::dataset merged = core::make_merged_dataset(scale, seed);

    constexpr double k_windows_ms[] = {100.0, 200.0, 300.0, 400.0};
    constexpr double k_overlaps[] = {0.0, 0.25, 0.5, 0.75};

    std::printf("%-10s %-9s %8s %10s %8s %9s %10s\n", "window", "overlap", "acc %",
                "prec %", "rec %", "f1 %", "#segments");
    for (const double window_ms : k_windows_ms) {
        for (const double overlap : k_overlaps) {
            const core::windowing_config wc = core::standard_windowing(window_ms, overlap);
            const core::cross_validation_result cv =
                core::run_cross_validation(core::model_kind::cnn, merged, wc, scale, seed);
            std::printf("%-10.0f %-9.2f %8.2f %10.2f %8.2f %9.2f %10zu\n", window_ms,
                        overlap, cv.pooled.accuracy * 100.0, cv.pooled.precision * 100.0,
                        cv.pooled.recall * 100.0, cv.pooled.f1 * 100.0,
                        cv.pooled.cm.total());
        }
        std::printf("\n");
    }
    std::printf("paper choice: 400 ms window, 50%% overlap (best F1).\n");
    return 0;
}
