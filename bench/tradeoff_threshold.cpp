// Operating-point sweep: the detection-vs-false-alarm trade-off behind the
// paper's statement "we configured our model to minimize false positives,
// even at the cost of missing the detection of some actual falls"
// (Section IV-B).  Sweeps the decision threshold over the cross-validated
// scores and prints the event-level curve plus the paper-style operating
// point picked by eval::select_threshold_for_precision.
#include <cstdio>

#include "bench_common.hpp"
#include "eval/eval.hpp"

int main() {
    using namespace fallsense;
    core::experiment_scale scale =
        bench::banner("Trade-off — detection vs false alarms across thresholds");
    const std::uint64_t seed = util::env_seed();
    scale.folds_to_run = 1;  // the curve's shape needs one fold, not the pool

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(400.0);
    const core::cross_validation_result cv =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, scale, seed);

    std::printf("%-11s %16s %16s\n", "threshold", "falls detected %", "ADL false %");
    for (double threshold = 0.05; threshold <= 0.951; threshold += 0.05) {
        const eval::event_counts c = eval::count_events(cv.all_records, threshold);
        const double det = c.falls_total
                               ? 100.0 * static_cast<double>(c.falls_detected) /
                                     static_cast<double>(c.falls_total)
                               : 0.0;
        const double fp = c.adl_total
                              ? 100.0 * static_cast<double>(c.adl_false_alarms) /
                                    static_cast<double>(c.adl_total)
                              : 0.0;
        std::printf("%-11.2f %16.1f %16.2f\n", threshold, det, fp);
    }

    std::vector<float> probs, labels;
    for (const eval::segment_record& r : cv.all_records) {
        probs.push_back(r.probability);
        labels.push_back(r.label);
    }
    std::printf("\nsegment-level ROC AUC: %.4f\n", eval::roc_auc(probs, labels));

    const eval::threshold_selection sel =
        eval::select_threshold_for_precision(cv.all_records, 0.02);
    std::printf("\npaper-style operating point (false-alarm budget 2%%): threshold %.2f "
                "-> detection %.1f%%, false alarms %.2f%%\n",
                sel.threshold, sel.fall_detection_rate * 100.0, sel.adl_false_rate * 100.0);
    std::printf("expected shape: detection degrades gracefully as the threshold rises while\n"
                "false alarms collapse — the curve the airbag use-case exploits.\n");
    return 0;
}
