// Figure 1 reproduction: the stages of a fall.
//
// Synthesizes one annotated fall trial and prints the acceleration-magnitude
// time series with the paper's phase bands: pre-fall activity (green in the
// paper), falling, the final 150 ms before impact (yellow), the impact
// instant (violet cross), and the post-fall phase — plus an ASCII plot.
#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>

#include "bench_common.hpp"
#include "data/synthesizer.hpp"
#include "data/taxonomy.hpp"

int main() {
    using namespace fallsense;
    bench::banner("Figure 1 — fall stages timeline");

    util::rng gen(util::env_seed());
    data::subject_profile subject;
    subject.id = 1;
    data::motion_tuning tuning;
    tuning.locomotion_s = 2.0;
    tuning.post_fall_hold_s = 1.2;
    // Task 30: forward fall while walking caused by a trip.
    const data::trial t =
        data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen);

    const std::size_t onset = t.fall->onset_index;
    const std::size_t impact = t.fall->impact_index;
    const std::size_t last150 = impact - 15;  // 150 ms at 100 Hz

    auto phase_of = [&](std::size_t i) -> const char* {
        if (i < onset) return "pre-fall";
        if (i < last150) return "falling";
        if (i < impact) return "falling(last 150 ms)";
        if (i < impact + 8) return "impact";
        return "post-fall";
    };

    std::printf("task 30: %s\n", std::string(data::task_by_id(30).description).c_str());
    std::printf("annotation: onset at %.2f s, impact at %.2f s (falling %.0f ms)\n\n",
                static_cast<double>(onset) / 100.0, static_cast<double>(impact) / 100.0,
                static_cast<double>(impact - onset) * 10.0);

    // ASCII plot: one row per 20 ms, magnitude bar up to 6 g.
    std::printf("%-8s %-7s %-22s %s\n", "t (s)", "|a| (g)", "phase", "magnitude");
    double peak = 0.0;
    for (std::size_t i = 0; i < t.sample_count(); i += 2) {
        const auto& s = t.samples[i];
        const double mag = std::sqrt(static_cast<double>(s.accel[0]) * s.accel[0] +
                                     s.accel[1] * s.accel[1] + s.accel[2] * s.accel[2]);
        peak = std::max(peak, mag);
        const int bars = static_cast<int>(std::lround(std::min(mag, 6.0) * 10.0));
        std::printf("%-8.2f %-7.2f %-22s %s%s\n", static_cast<double>(i) / 100.0, mag,
                    phase_of(i), std::string(static_cast<std::size_t>(bars), '#').c_str(),
                    (i <= impact && impact < i + 2) ? "  <-- impact (violet cross)" : "");
    }

    std::printf("\npaper shape check:\n");
    std::printf("  free-fall dip before impact:   |a| -> %.2f g near impact-20ms\n",
                [&] {
                    double m = 1.0;
                    for (std::size_t i = last150; i < impact; ++i) {
                        const auto& s = t.samples[i];
                        m = std::min(m, std::sqrt(static_cast<double>(s.accel[0]) * s.accel[0] +
                                                  s.accel[1] * s.accel[1] +
                                                  s.accel[2] * s.accel[2]));
                    }
                    return m;
                }());
    std::printf("  impact spike:                  peak |a| = %.2f g\n", peak);
    std::printf("  post-fall quiet:               |a| ~ 1 g, motionless\n");
    return 0;
}
