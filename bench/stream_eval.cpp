// Streaming-evaluator benchmarks (google-benchmark): evaluate_stream over
// fleets of 256 / 1024 / 4096 annotated sessions with realistic trigger
// densities, plus the per-stream scenario perturbations
// (data::apply_stream_perturbation) on a one-minute 100 Hz stream.  The
// acceptance bar for src/eval/stream.cpp: event matching is evaluation-
// time bookkeeping, far off the serving hot path — a 4096-session fleet
// hour must score in well under a second, so the loadgen can run it after
// every scenario sweep; scripts/run_bench.sh records the sweep in the
// stream_eval section of BENCH_serve.json.
#include <benchmark/benchmark.h>

#include <cstdint>
#include <string>
#include <vector>

#include "data/motion_profile.hpp"
#include "eval/eval.hpp"
#include "util/rng.hpp"

namespace {

using namespace fallsense;

/// One synthetic fleet hour: each session loops a ~40 s stream with one
/// annotated fall, ingests ~1 h of samples, and fires a mix of true
/// detections and false alarms (~12 triggers/session).
struct fleet_fixture {
    std::vector<eval::stream_trigger> triggers;
    std::vector<eval::session_annotation> sessions;
};

fleet_fixture make_fleet(std::size_t session_count) {
    fleet_fixture f;
    util::rng gen(41);
    for (std::size_t i = 0; i < session_count; ++i) {
        eval::session_annotation s;
        s.session = static_cast<std::uint32_t>(i);
        s.stream_samples = 4000 + static_cast<std::size_t>(gen.uniform_int(0, 400));
        s.samples_ingested = 360000;  // one hour at 100 Hz
        const std::size_t impact =
            1000 + static_cast<std::size_t>(gen.uniform_int(0, 2000));
        s.falls.push_back({impact - 40, impact});
        // A true firing shortly before most loop instances...
        for (std::size_t base = 0; base + impact < s.samples_ingested;
             base += s.stream_samples) {
            if (gen.bernoulli(0.8)) {
                f.triggers.push_back(
                    {s.session, base + impact - static_cast<std::size_t>(
                                                    gen.uniform_int(5, 35))});
            }
        }
        // ...and a few stray false alarms per session-hour.
        for (int fa = 0; fa < 3; ++fa) {
            f.triggers.push_back(
                {s.session, static_cast<std::size_t>(gen.uniform_int(
                                0, static_cast<long>(s.samples_ingested - 1)))});
        }
        f.sessions.push_back(std::move(s));
    }
    return f;
}

void BM_EvaluateStream(benchmark::State& state) {
    const fleet_fixture fleet = make_fleet(static_cast<std::size_t>(state.range(0)));
    eval::stream_eval_config config;
    for (auto _ : state) {
        const eval::stream_eval_report report =
            eval::evaluate_stream(fleet.triggers, fleet.sessions, config);
        benchmark::DoNotOptimize(report.false_alarms_per_hour);
    }
    state.counters["sessions"] = static_cast<double>(fleet.sessions.size());
    state.counters["triggers"] = static_cast<double>(fleet.triggers.size());
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fleet.sessions.size()));
}
BENCHMARK(BM_EvaluateStream)->Arg(256)->Arg(1024)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_EvaluatorFactoryStream(benchmark::State& state) {
    // Factory + incremental feed, the path serve::run_loadgen takes.
    const fleet_fixture fleet = make_fleet(1024);
    for (auto _ : state) {
        eval::evaluator_spec spec;
        spec.kind = eval::evaluator_kind::cost_sensitive;
        const auto evaluator = eval::make_evaluator(spec);
        evaluator->add_stream(fleet.triggers, fleet.sessions);
        const eval::evaluation_report report = evaluator->finish();
        benchmark::DoNotOptimize(report.stream->falls_detected);
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(fleet.sessions.size()));
}
BENCHMARK(BM_EvaluatorFactoryStream)->Unit(benchmark::kMillisecond);

void BM_StreamPerturbation(benchmark::State& state) {
    // One minute of 100 Hz samples through each registered profile's
    // perturbation (index into list_profiles(); baseline is the no-op
    // floor).
    const std::vector<std::string> names = data::list_profiles();
    const data::scenario_profile profile =
        data::make_profile(names[static_cast<std::size_t>(state.range(0)) % names.size()]);
    std::vector<data::raw_sample> pristine(6000);
    for (std::size_t i = 0; i < pristine.size(); ++i) {
        pristine[i].accel = {0.0f, 0.0f, 1.0f + 0.001f * static_cast<float>(i % 7)};
    }
    std::vector<data::raw_sample> samples;
    for (auto _ : state) {
        samples = pristine;
        util::rng gen(17);
        data::apply_stream_perturbation(samples, profile.perturb, 100.0, gen);
        benchmark::DoNotOptimize(samples.data());
    }
    state.SetLabel(profile.name);
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(pristine.size()));
}
BENCHMARK(BM_StreamPerturbation)->DenseRange(0, 4)->Unit(benchmark::kMicrosecond);

}  // namespace
