// End-to-end thread-scaling benchmarks (google-benchmark): the harness
// stages that the thread pool parallelizes — dataset synthesis, window
// extraction, and the full subject-independent k-fold protocol — each swept
// over FALLSENSE_THREADS = {1, 2, 4, 8}.  The acceptance bar for the
// substrate is a >= 2x k-fold wall-clock improvement at 4 threads on a
// 4-core host; scripts/run_bench.sh records the sweep in BENCH_kernel.json.
#include <benchmark/benchmark.h>

#include "core/experiment.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fallsense;

/// Small but representative scale: enough subjects/epochs that fold
/// training dominates, small enough that the sweep finishes in minutes.
core::experiment_scale bench_scale() {
    core::experiment_scale s = core::scale_preset(util::run_scale::tiny);
    s.kfall_subjects = 4;
    s.protechto_subjects = 4;
    s.folds = 4;
    s.folds_to_run = 4;
    s.validation_subjects = 1;
    s.max_epochs = 3;
    s.early_stop_patience = 0;
    return s;
}

void BM_DatasetSynthesisThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    const core::experiment_scale s = bench_scale();
    for (auto _ : state) {
        const data::dataset merged = core::make_merged_dataset(s, 42);
        benchmark::DoNotOptimize(merged.trial_count());
    }
    util::set_global_threads(0);
}
BENCHMARK(BM_DatasetSynthesisThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_WindowExtractionThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    const core::experiment_scale s = bench_scale();
    const data::dataset merged = core::make_merged_dataset(s, 42);
    const core::windowing_config wc = core::standard_windowing(400.0);
    for (auto _ : state) {
        const auto windows = core::extract_windows(merged.trials, wc);
        benchmark::DoNotOptimize(windows.size());
    }
    util::set_global_threads(0);
}
BENCHMARK(BM_WindowExtractionThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The headline number: the full cross-validation protocol (synthesis is
// done once outside the loop; folds, training, and evaluation inside).
void BM_KFoldEndToEndThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    const core::experiment_scale s = bench_scale();
    const data::dataset merged = core::make_merged_dataset(s, 42);
    const core::windowing_config wc = core::standard_windowing(400.0);
    for (auto _ : state) {
        const core::cross_validation_result cv =
            core::run_cross_validation(core::model_kind::cnn, merged, wc, s, 7);
        benchmark::DoNotOptimize(cv.pooled.f1);
    }
    util::set_global_threads(0);
}
BENCHMARK(BM_KFoldEndToEndThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
