// Serving-layer scaling benchmarks (google-benchmark): one session_engine
// hosting sessions ∈ {1, 64, 1024, 4096} versus the same fleet run as
// independent streaming_detector loops (one CNN forward per window — the
// architecture the engine replaces), plus the sharded fleet_router at 4096
// sessions in both score modes (fused fleet-wide batch vs per-shard scorer
// replicas).  The acceptance bars for src/serve: batched scoring beats the
// independent-detector baseline in windows/sec at 1024 sessions, the
// sharded router matches or beats the single engine at 4096, and per_shard
// beats fused in windows/sec at >= 4 shards on the 4096-session fleet;
// scripts/run_bench.sh records the sweep in BENCH_serve.json.
#include <benchmark/benchmark.h>

#include "core/models.hpp"
#include "data/synthesizer.hpp"
#include "nn/activations.hpp"
#include "serve/serve.hpp"
#include "util/rng.hpp"

namespace {

using namespace fallsense;

constexpr std::size_t k_window = 20;
constexpr std::size_t k_ticks = 120;

/// A handful of synthesized streams reused round-robin across the fleet:
/// setup stays O(1) in session count while every session still replays a
/// real motion profile (offset so sessions are out of phase).
const std::vector<std::vector<data::raw_sample>>& shared_streams() {
    static const std::vector<std::vector<data::raw_sample>> streams = [] {
        constexpr int tasks[] = {6, 30, 12, 38};
        data::motion_tuning tuning;
        tuning.static_hold_s = 1.5;
        tuning.locomotion_s = 2.0;
        tuning.post_fall_hold_s = 1.0;
        std::vector<std::vector<data::raw_sample>> out;
        util::rng gen(11);
        for (std::size_t i = 0; i < std::size(tasks); ++i) {
            data::subject_profile subject;
            subject.id = static_cast<int>(i + 1);
            out.push_back(data::synthesize_task(tasks[i], subject, tuning,
                                                data::synthesis_config{}, gen)
                              .samples);
        }
        return out;
    }();
    return streams;
}

core::detector_config bench_detector() {
    core::detector_config c;
    c.window_samples = k_window;
    c.overlap_fraction = 0.5;
    c.threshold = 0.65;
    return c;
}

const data::raw_sample& stream_sample(std::size_t session, std::size_t tick) {
    const auto& streams = shared_streams();
    const auto& s = streams[session % streams.size()];
    return s[(tick + session * 7) % s.size()];
}

serve::scorer_spec bench_scorer_spec(serve::scorer_backend backend) {
    serve::scorer_spec spec;
    spec.backend = backend;
    spec.window_samples = k_window;
    spec.seed = 7;
    return spec;
}

/// The engine: one batched CNN forward per tick across all sessions.
void BM_EngineBatchedSessions(benchmark::State& state) {
    const auto sessions = static_cast<std::size_t>(state.range(0));
    const auto scorer = serve::make_scorer(bench_scorer_spec(serve::scorer_backend::float32));
    std::uint64_t windows = 0;
    for (auto _ : state) {
        serve::engine_config config;
        config.detector = bench_detector();
        config.queue_capacity = 4;
        serve::session_engine engine(config, *scorer);
        for (std::size_t i = 0; i < sessions; ++i) engine.create_session();
        for (std::size_t tick = 0; tick < k_ticks; ++tick) {
            for (std::size_t i = 0; i < sessions; ++i) {
                engine.feed(static_cast<serve::session_id>(i), stream_sample(i, tick));
            }
            benchmark::DoNotOptimize(engine.tick().windows_scored);
        }
        windows += engine.totals().windows_scored;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(windows));
}
BENCHMARK(BM_EngineBatchedSessions)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The sharded router in both score modes.  Arg 2 selects the mode (0 =
/// fused fleet-wide batch, 1 = per-shard scorer replicas); compare rows
/// with the same shard count to see what concurrent scoring buys, and the
/// {4096 sessions, K shards} fused rows against BM_EngineBatchedSessions/
/// 4096 — same traffic, same windows scored.  Per-phase wall-clock is
/// reported via counters (ingest/score/apply microseconds per tick) from
/// fleet_router::last_tick_timings.
void BM_FleetShardedSessions(benchmark::State& state) {
    const auto sessions = static_cast<std::size_t>(state.range(0));
    const auto shards = static_cast<std::size_t>(state.range(1));
    const auto mode =
        state.range(2) != 0 ? serve::score_mode::per_shard : serve::score_mode::fused;
    std::uint64_t windows = 0;
    std::uint64_t ticks = 0;
    serve::tick_timings phase_sums;
    for (auto _ : state) {
        serve::fleet_config config;
        config.engine.detector = bench_detector();
        config.engine.queue_capacity = 4;
        config.shards = shards;
        config.mode = mode;
        serve::fleet_router fleet(
            config, serve::make_scorer(bench_scorer_spec(serve::scorer_backend::float32)));
        for (std::size_t i = 0; i < sessions; ++i) fleet.create_session();
        for (std::size_t tick = 0; tick < k_ticks; ++tick) {
            for (std::size_t i = 0; i < sessions; ++i) {
                fleet.feed(static_cast<serve::session_id>(i), stream_sample(i, tick));
            }
            benchmark::DoNotOptimize(fleet.tick().windows_scored);
            const serve::tick_timings& t = fleet.last_tick_timings();
            phase_sums.ingest_us += t.ingest_us;
            phase_sums.score_us += t.score_us;
            phase_sums.apply_us += t.apply_us;
            ++ticks;
        }
        windows += fleet.totals().windows_scored;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(windows));
    if (ticks > 0) {
        const auto per_tick = static_cast<double>(ticks);
        state.counters["ingest_us_per_tick"] = phase_sums.ingest_us / per_tick;
        state.counters["score_us_per_tick"] = phase_sums.score_us / per_tick;
        state.counters["apply_us_per_tick"] = phase_sums.apply_us / per_tick;
    }
}
BENCHMARK(BM_FleetShardedSessions)
    ->ArgNames({"sessions", "shards", "per_shard"})
    ->Args({4096, 1, 0})
    ->Args({4096, 2, 0})
    ->Args({4096, 4, 0})
    ->Args({4096, 8, 0})
    ->Args({4096, 1, 1})
    ->Args({4096, 2, 1})
    ->Args({4096, 4, 1})
    ->Args({4096, 8, 1})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// Durable-checkpoint restore latency: rebuild a 4096-session fleet from
/// an in-memory snapshot (shards reconstructed from scratch, every
/// session re-routed by the id hash — see fleet_router::restore).  The
/// fleet is warmed with real traffic first so the checkpoint carries
/// populated per-session windows and queues; scripts/run_bench.sh
/// publishes the row as the "restore_latency" section of
/// BENCH_serve.json.
void BM_FleetRestoreSessions(benchmark::State& state) {
    const auto sessions = static_cast<std::size_t>(state.range(0));
    serve::fleet_config config;
    config.engine.detector = bench_detector();
    config.engine.queue_capacity = 4;
    config.shards = 4;
    serve::fleet_router fleet(
        config, serve::make_scorer(bench_scorer_spec(serve::scorer_backend::float32)));
    std::vector<serve::session_id> ids;
    for (std::size_t i = 0; i < sessions; ++i) ids.push_back(fleet.create_session());
    for (std::size_t tick = 0; tick < k_window; ++tick) {
        for (std::size_t i = 0; i < sessions; ++i) {
            fleet.feed(ids[i], stream_sample(i, tick));
        }
        fleet.tick();
    }
    const serve::fleet_checkpoint cp = fleet.snapshot();
    for (auto _ : state) {
        fleet.restore(cp);
        benchmark::DoNotOptimize(fleet.is_live(ids.front()));
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                            static_cast<std::int64_t>(sessions));
}
BENCHMARK(BM_FleetRestoreSessions)
    ->ArgNames({"sessions"})
    ->Arg(4096)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The baseline the engine replaces: one streaming_detector per session,
/// each running its own CNN forward per due window (batch size 1).
void BM_IndependentDetectorsSessions(benchmark::State& state) {
    const auto sessions = static_cast<std::size_t>(state.range(0));
    const auto model = core::build_fallsense_cnn(k_window, 7);
    std::uint64_t windows = 0;
    for (auto _ : state) {
        std::uint64_t scored = 0;
        const core::segment_scorer score_one = [&](std::span<const float> w) {
            ++scored;
            const nn::tensor x({1, k_window, core::k_feature_channels},
                               std::vector<float>(w.begin(), w.end()));
            return nn::sigmoid_scalar(model->forward(x, false)[0]);
        };
        std::vector<core::streaming_detector> fleet;
        fleet.reserve(sessions);
        for (std::size_t i = 0; i < sessions; ++i) fleet.emplace_back(bench_detector(), score_one);
        for (std::size_t tick = 0; tick < k_ticks; ++tick) {
            for (std::size_t i = 0; i < sessions; ++i) {
                benchmark::DoNotOptimize(fleet[i].push(stream_sample(i, tick)));
            }
        }
        windows += scored;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(windows));
}
BENCHMARK(BM_IndependentDetectorsSessions)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

/// The int8 deployment path under the same fleet (quantized batch scoring).
void BM_EngineInt8Sessions(benchmark::State& state) {
    const auto sessions = static_cast<std::size_t>(state.range(0));
    const auto scorer = serve::make_scorer(bench_scorer_spec(serve::scorer_backend::int8));
    std::uint64_t windows = 0;
    for (auto _ : state) {
        serve::engine_config config;
        config.detector = bench_detector();
        config.queue_capacity = 4;
        serve::session_engine engine(config, *scorer);
        for (std::size_t i = 0; i < sessions; ++i) engine.create_session();
        for (std::size_t tick = 0; tick < k_ticks; ++tick) {
            for (std::size_t i = 0; i < sessions; ++i) {
                engine.feed(static_cast<serve::session_id>(i), stream_sample(i, tick));
            }
            benchmark::DoNotOptimize(engine.tick().windows_scored);
        }
        windows += engine.totals().windows_scored;
    }
    state.SetItemsProcessed(static_cast<std::int64_t>(windows));
}
BENCHMARK(BM_EngineInt8Sessions)
    ->Arg(1)
    ->Arg(64)
    ->Arg(1024)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace

BENCHMARK_MAIN();
