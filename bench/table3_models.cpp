// Table III reproduction: MLP / LSTM / ConvLSTM2D / CNN compared at
// 200 / 300 / 400 ms segment sizes with 50 % overlap, subject-based k-fold
// cross-validation, fall augmentation, class weights, and output-bias init.
//
// Absolute numbers depend on the synthetic substrate; the paper's shape to
// check: the proposed CNN leads precision/recall/F1 at every window size,
// LSTM second, ConvLSTM2D third, the MLP far behind (macro recall near the
// 0.5 all-negative floor), with every metric improving as the window grows.
#include <cstdio>

#include "bench_common.hpp"

int main() {
    using namespace fallsense;
    const core::experiment_scale scale =
        bench::banner("Table III — model x segment-size comparison");
    const std::uint64_t seed = util::env_seed();

    std::printf("generating merged dataset (%d KFall-like + %d self-collected subjects)...\n",
                scale.kfall_subjects, scale.protechto_subjects);
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    std::printf("%zu trials, %zu subjects, %zu fall trials\n\n", merged.trial_count(),
                merged.subject_ids().size(), merged.fall_trial_count());

    constexpr double k_windows_ms[] = {200.0, 300.0, 400.0};
    constexpr core::model_kind k_models[] = {
        core::model_kind::mlp,
        core::model_kind::lstm,
        core::model_kind::conv_lstm2d,
        core::model_kind::cnn,
    };

    for (const double window_ms : k_windows_ms) {
        std::printf("--- %.0f ms segment size (%.0f ms overlap) ---\n", window_ms,
                    window_ms / 2.0);
        bench::print_report_header();
        const core::windowing_config wc = core::standard_windowing(window_ms);
        for (const core::model_kind kind : k_models) {
            const core::cross_validation_result cv =
                core::run_cross_validation(kind, merged, wc, scale, seed);
            bench::print_report_row(core::model_kind_name(kind), cv.pooled);
        }
        std::printf("\n");
    }

    std::printf("paper reference (Table III, 400 ms): CNN 98.28 / 90.40 / 83.95 / 86.69;\n");
    std::printf("ordering CNN > LSTM > ConvLSTM2D > MLP and monotone gains with window size.\n");
    return 0;
}
