// Prints the SIMD backend that the runtime dispatch layer (nn/simd.hpp)
// resolves under the current environment: "scalar" when FALLSENSE_SIMD
// requests scalar mode, otherwise the best vector tier the CPU supports
// within the FALLSENSE_SIMD_BACKEND cap ("neon" / "avx2-fma" / "avx512").
// scripts/run_bench.sh records this as the manifest "simd" field of
// BENCH_*.json so the numbers name the backend that actually ran, not the
// mode that was requested.
#include <cstdio>

#include "nn/simd.hpp"

int main() {
    std::puts(fallsense::nn::active_simd_backend_name());
    return 0;
}
