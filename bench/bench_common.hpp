// Shared helpers for the table/figure reproduction benches.
#pragma once

#include <cstdio>

#include "core/experiment.hpp"
#include "util/env.hpp"

namespace fallsense::bench {

/// Print the standard bench banner and return the active scale preset.
inline core::experiment_scale banner(const char* title) {
    const util::run_scale scale = util::env_run_scale();
    std::printf("=== %s ===\n", title);
    std::printf("scale: %s (set FALLSENSE_SCALE=tiny|quick|full), seed: %llu\n\n",
                util::run_scale_name(scale),
                static_cast<unsigned long long>(util::env_seed()));
    return core::scale_preset(scale);
}

inline void print_report_row(const char* label, const eval::classification_report& r) {
    std::printf("%-16s %8.2f %10.2f %8.2f %9.2f\n", label, r.accuracy * 100.0,
                r.precision * 100.0, r.recall * 100.0, r.f1 * 100.0);
}

inline void print_report_header() {
    std::printf("%-16s %8s %10s %8s %9s\n", "Model", "Accuracy", "Precision", "Recall",
                "F1-Score");
}

}  // namespace fallsense::bench
