// Kernel micro-benchmarks (google-benchmark): the hot paths of the
// preprocessing pipeline, float training layers, and int8 inference — the
// engineering substrate behind the paper-level numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <string>
#include <vector>

#include "core/models.hpp"
#include "core/preprocess.hpp"
#include "data/synthesizer.hpp"
#include "dsp/biquad.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/lstm.hpp"
#include "nn/simd.hpp"
#include "nn/trainer.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fallsense;

nn::tensor random_tensor(nn::shape_t shape, std::uint64_t seed) {
    util::rng gen(seed);
    nn::tensor t(std::move(shape));
    for (float& v : t.values()) v = static_cast<float>(gen.normal());
    return t;
}

void BM_ButterworthProcess(benchmark::State& state) {
    dsp::butterworth_lowpass filter(4, 5.0, 100.0);
    float x = 0.37f;
    for (auto _ : state) {
        x = filter.process(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_ButterworthProcess);

void BM_ComplementaryFilterUpdate(benchmark::State& state) {
    dsp::complementary_filter fusion;
    const dsp::vec3 accel{0.1, 0.05, 0.99};
    const dsp::vec3 gyro{0.01, -0.02, 0.005};
    for (auto _ : state) {
        const dsp::euler_angles a = fusion.update(accel, gyro);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ComplementaryFilterUpdate);

void BM_DenseForward(benchmark::State& state) {
    const auto in_features = static_cast<std::size_t>(state.range(0));
    util::rng gen(1);
    nn::dense layer(in_features, 64, gen);
    const nn::tensor x = random_tensor({32, in_features}, 2);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(128)->Arg(512)->Arg(912);

void BM_DenseForwardNaive(benchmark::State& state) {
    const auto in_features = static_cast<std::size_t>(state.range(0));
    util::rng gen(1);
    nn::dense layer(in_features, 64, gen);
    const nn::tensor x = random_tensor({32, in_features}, 2);
    std::vector<float> y(32 * 64);
    for (auto _ : state) {
        nn::reference::dense_forward(x.data(), layer.weight().value.data(),
                                     layer.bias().value.data(), 32, in_features, 64,
                                     y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForwardNaive)->Arg(128)->Arg(512)->Arg(912);

// The paper's branch shape: [batch, 150, 3] -> filters, kernel 3.  Naive
// vs GEMM is the headline kernel comparison; the acceptance bar is >= 3x.
void BM_Conv1dForward(benchmark::State& state) {
    const auto filters = static_cast<std::size_t>(state.range(0));
    util::rng gen(3);
    nn::conv1d layer(3, filters, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dForwardNaive(benchmark::State& state) {
    const auto filters = static_cast<std::size_t>(state.range(0));
    util::rng gen(3);
    nn::conv1d layer(3, filters, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    std::vector<float> y(32 * 148 * filters);
    for (auto _ : state) {
        nn::reference::conv1d_forward(x.data(), layer.weight().value.data(),
                                      layer.bias().value.data(), 32, 150, 3, filters, 3,
                                      y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForwardNaive)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dBackward(benchmark::State& state) {
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    const nn::tensor gy = random_tensor({32, 148, 16}, 5);
    layer.forward(x, true);
    for (auto _ : state) {
        nn::tensor gx = layer.backward(gy);
        benchmark::DoNotOptimize(gx);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dBackward);

void BM_Conv1dBackwardNaive(benchmark::State& state) {
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    const nn::tensor gy = random_tensor({32, 148, 16}, 5);
    std::vector<float> gx(32 * 150 * 3), gw(3 * 3 * 16), gb(16);
    for (auto _ : state) {
        std::fill(gx.begin(), gx.end(), 0.0f);
        nn::reference::conv1d_backward(x.data(), layer.weight().value.data(), gy.data(), 32,
                                       150, 3, 16, 3, gx.data(), gw.data(), gb.data());
        benchmark::DoNotOptimize(gx.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dBackwardNaive);

// Raw GEMM thread-scaling sweep: 512x512x512 at FALLSENSE_THREADS
// overridden to {1, 2, 4, 8}.
void BM_GemmNNThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    const std::size_t m = 512, n = 512, k = 512;
    const nn::tensor a = random_tensor({m, k}, 6);
    const nn::tensor b = random_tensor({k, n}, 7);
    nn::tensor c({m, n});
    for (auto _ : state) {
        nn::gemm_nn(m, n, k, a.data(), b.data(), c.data(), false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * m * n * k));
    util::set_global_threads(0);
}
BENCHMARK(BM_GemmNNThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Conv1d forward at the paper's branch shape across thread counts.
void BM_Conv1dForwardThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({256, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 256);
    util::set_global_threads(0);
}
BENCHMARK(BM_Conv1dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// --- Runtime-dispatch (nn/simd.hpp) per-backend rows ------------------
//
// Each *Simd benchmark is registered once per backend reported by
// available_simd_backends() on this host (scalar always, then the vector
// tiers worst-first — neon / avx2-fma / avx512 as the CPU allows), named
// BM_*Simd/backend:<label>.  scripts/run_bench.sh divides every vector
// row's real_time into the scalar row of the same kernel, producing the
// per-backend "simd_speedup" section of BENCH_kernel.json; the acceptance
// bar is >= 1.5x on at least one dispatched GEMM kernel
// (docs/performance.md).  The BM_CnnFloatInferSimd /
// BM_CnnFloatInferNoFuseSimd pair measures the fused bias+activation
// epilogues end to end on the paper's CNN (same backend, fusion toggled),
// feeding the "fused_speedup" section.

/// Pin dispatch to one resolved backend for a benchmark run: scalar pins
/// scalar mode, any vector tier pins native mode capped at that backend.
/// The destructor lifts the cap and restores whatever FALLSENSE_SIMD /
/// FALLSENSE_SIMD_BACKEND resolved at startup.
struct simd_backend_scope {
    nn::simd_mode saved_mode = nn::active_simd_mode();
    explicit simd_backend_scope(nn::simd_backend backend) {
        nn::set_simd_backend_cap(backend);
        nn::set_simd_mode(backend == nn::simd_backend::scalar ? nn::simd_mode::scalar
                                                              : nn::simd_mode::native);
    }
    ~simd_backend_scope() {
        nn::set_simd_backend_cap(nn::simd_backend::avx512);
        nn::set_simd_mode(saved_mode);
    }
};

/// Epilogue-fusion toggle for the fused-vs-unfused CNN pair.
struct fusion_scope {
    bool saved = nn::epilogue_fusion_enabled();
    explicit fusion_scope(bool enabled) { nn::set_epilogue_fusion(enabled); }
    ~fusion_scope() { nn::set_epilogue_fusion(saved); }
};

void BM_GemmNNSimd(benchmark::State& state, nn::simd_backend backend) {
    simd_backend_scope scope(backend);
    const std::size_t m = 192, n = 192, k = 192;
    const nn::tensor a = random_tensor({m, k}, 6);
    const nn::tensor b = random_tensor({k, n}, 7);
    nn::tensor c({m, n});
    for (auto _ : state) {
        nn::gemm_nn(m, n, k, a.data(), b.data(), c.data(), false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * m * n * k));
}

void BM_DenseForwardSimd(benchmark::State& state, nn::simd_backend backend) {
    simd_backend_scope scope(backend);
    util::rng gen(1);
    nn::dense layer(912, 64, gen);
    const nn::tensor x = random_tensor({32, 912}, 2);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}

void BM_Conv1dForwardSimd(benchmark::State& state, nn::simd_backend backend) {
    simd_backend_scope scope(backend);
    util::rng gen(3);
    nn::conv1d layer(3, 64, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}

// Int8 deployment path: the q8 axpy kernels keep int32 accumulation
// exact, so every vector row must produce bit-identical logits — these
// rows measure what the vector kernels buy without changing a single
// score.
void BM_CnnInt8InferenceSimd(benchmark::State& state, nn::simd_backend backend) {
    simd_backend_scope scope(backend);
    const std::size_t window = 40;
    auto net = core::build_fallsense_cnn(window, 9);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor calibration = random_tensor({32, window, 9}, 10);
    const quant::quantized_cnn qmodel(spec, calibration);
    const nn::tensor seg = random_tensor({window, 9}, 11);
    for (auto _ : state) {
        const float logit = qmodel.predict_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}

// End-to-end float CNN inference through the model's planned workspace
// path (nn::predict_proba_rows), with the fused conv/dense bias+ReLU
// epilogues on (BM_CnnFloatInferSimd) or forced off
// (BM_CnnFloatInferNoFuseSimd).  Same backend, same arena plan layout —
// the ratio isolates what collapsing Conv→ReLU / Dense→ReLU into one
// kernel call buys.
void BM_CnnFloatInferSimd(benchmark::State& state, nn::simd_backend backend, bool fuse) {
    simd_backend_scope scope(backend);
    fusion_scope fusion(fuse);
    const std::size_t window = 40;
    auto net = core::build_fallsense_cnn(window, 7);
    const nn::tensor rows = random_tensor({32, window, 9}, 8);
    std::vector<float> probs(32);
    nn::predict_scratch scratch;
    for (auto _ : state) {
        nn::predict_proba_rows(*net, rows.values(), 32, {window, 9}, probs, scratch);
        benchmark::DoNotOptimize(probs.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}

void BM_LstmForward(benchmark::State& state) {
    util::rng gen(5);
    nn::lstm layer(9, 24, gen);
    const nn::tensor x = random_tensor({32, 40, 9}, 6);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LstmForward);

void BM_CnnFloatInference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 7);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor seg = random_tensor({window, 9}, 8);
    for (auto _ : state) {
        const float logit = spec.forward_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnFloatInference)->Arg(20)->Arg(30)->Arg(40);

void BM_CnnInt8Inference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 9);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor calibration = random_tensor({32, window, 9}, 10);
    const quant::quantized_cnn qmodel(spec, calibration);
    const nn::tensor seg = random_tensor({window, 9}, 11);
    for (auto _ : state) {
        const float logit = qmodel.predict_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnInt8Inference)->Arg(20)->Arg(30)->Arg(40);

void BM_SynthesizeFallTrial(benchmark::State& state) {
    data::subject_profile subject;
    data::motion_tuning tuning;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        util::rng gen(++seed);
        const data::trial t =
            data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen);
        benchmark::DoNotOptimize(t.sample_count());
    }
}
BENCHMARK(BM_SynthesizeFallTrial);

void BM_PreprocessTrial(benchmark::State& state) {
    util::rng gen(12);
    data::subject_profile subject;
    data::motion_tuning tuning;
    const data::trial t =
        data::synthesize_task(6, subject, tuning, data::synthesis_config{}, gen);
    for (auto _ : state) {
        const std::vector<float> stream = core::preprocess_trial(t, core::preprocess_config{});
        benchmark::DoNotOptimize(stream.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(t.sample_count()));
}
BENCHMARK(BM_PreprocessTrial);

/// Register one row per probed backend for every dispatched kernel, plus
/// the fused-vs-unfused float CNN pair.  Runtime registration (instead of
/// the BENCHMARK macro) because the row set depends on what the host CPU
/// reports at startup.
void register_simd_benchmarks() {
    for (const nn::simd_backend backend : nn::available_simd_backends()) {
        const std::string tag = std::string("/backend:") + nn::simd_backend_label(backend);
        benchmark::RegisterBenchmark(("BM_GemmNNSimd" + tag).c_str(), BM_GemmNNSimd,
                                     backend);
        benchmark::RegisterBenchmark(("BM_DenseForwardSimd" + tag).c_str(),
                                     BM_DenseForwardSimd, backend);
        benchmark::RegisterBenchmark(("BM_Conv1dForwardSimd" + tag).c_str(),
                                     BM_Conv1dForwardSimd, backend);
        benchmark::RegisterBenchmark(("BM_CnnInt8InferenceSimd" + tag).c_str(),
                                     BM_CnnInt8InferenceSimd, backend);
        benchmark::RegisterBenchmark(("BM_CnnFloatInferSimd" + tag).c_str(),
                                     BM_CnnFloatInferSimd, backend, true);
        benchmark::RegisterBenchmark(("BM_CnnFloatInferNoFuseSimd" + tag).c_str(),
                                     BM_CnnFloatInferSimd, backend, false);
    }
}

}  // namespace

int main(int argc, char** argv) {
    register_simd_benchmarks();
    benchmark::Initialize(&argc, argv);
    if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
    benchmark::RunSpecifiedBenchmarks();
    benchmark::Shutdown();
    return 0;
}
