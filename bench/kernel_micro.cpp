// Kernel micro-benchmarks (google-benchmark): the hot paths of the
// preprocessing pipeline, float training layers, and int8 inference — the
// engineering substrate behind the paper-level numbers.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <vector>

#include "core/models.hpp"
#include "core/preprocess.hpp"
#include "data/synthesizer.hpp"
#include "dsp/biquad.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/gemm.hpp"
#include "nn/lstm.hpp"
#include "nn/simd.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"
#include "util/thread_pool.hpp"

namespace {

using namespace fallsense;

nn::tensor random_tensor(nn::shape_t shape, std::uint64_t seed) {
    util::rng gen(seed);
    nn::tensor t(std::move(shape));
    for (float& v : t.values()) v = static_cast<float>(gen.normal());
    return t;
}

void BM_ButterworthProcess(benchmark::State& state) {
    dsp::butterworth_lowpass filter(4, 5.0, 100.0);
    float x = 0.37f;
    for (auto _ : state) {
        x = filter.process(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_ButterworthProcess);

void BM_ComplementaryFilterUpdate(benchmark::State& state) {
    dsp::complementary_filter fusion;
    const dsp::vec3 accel{0.1, 0.05, 0.99};
    const dsp::vec3 gyro{0.01, -0.02, 0.005};
    for (auto _ : state) {
        const dsp::euler_angles a = fusion.update(accel, gyro);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ComplementaryFilterUpdate);

void BM_DenseForward(benchmark::State& state) {
    const auto in_features = static_cast<std::size_t>(state.range(0));
    util::rng gen(1);
    nn::dense layer(in_features, 64, gen);
    const nn::tensor x = random_tensor({32, in_features}, 2);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(128)->Arg(512)->Arg(912);

void BM_DenseForwardNaive(benchmark::State& state) {
    const auto in_features = static_cast<std::size_t>(state.range(0));
    util::rng gen(1);
    nn::dense layer(in_features, 64, gen);
    const nn::tensor x = random_tensor({32, in_features}, 2);
    std::vector<float> y(32 * 64);
    for (auto _ : state) {
        nn::reference::dense_forward(x.data(), layer.weight().value.data(),
                                     layer.bias().value.data(), 32, in_features, 64,
                                     y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForwardNaive)->Arg(128)->Arg(512)->Arg(912);

// The paper's branch shape: [batch, 150, 3] -> filters, kernel 3.  Naive
// vs GEMM is the headline kernel comparison; the acceptance bar is >= 3x.
void BM_Conv1dForward(benchmark::State& state) {
    const auto filters = static_cast<std::size_t>(state.range(0));
    util::rng gen(3);
    nn::conv1d layer(3, filters, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForward)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dForwardNaive(benchmark::State& state) {
    const auto filters = static_cast<std::size_t>(state.range(0));
    util::rng gen(3);
    nn::conv1d layer(3, filters, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    std::vector<float> y(32 * 148 * filters);
    for (auto _ : state) {
        nn::reference::conv1d_forward(x.data(), layer.weight().value.data(),
                                      layer.bias().value.data(), 32, 150, 3, filters, 3,
                                      y.data());
        benchmark::DoNotOptimize(y.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForwardNaive)->Arg(16)->Arg(32)->Arg(64);

void BM_Conv1dBackward(benchmark::State& state) {
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    const nn::tensor gy = random_tensor({32, 148, 16}, 5);
    layer.forward(x, true);
    for (auto _ : state) {
        nn::tensor gx = layer.backward(gy);
        benchmark::DoNotOptimize(gx);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dBackward);

void BM_Conv1dBackwardNaive(benchmark::State& state) {
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    const nn::tensor gy = random_tensor({32, 148, 16}, 5);
    std::vector<float> gx(32 * 150 * 3), gw(3 * 3 * 16), gb(16);
    for (auto _ : state) {
        std::fill(gx.begin(), gx.end(), 0.0f);
        nn::reference::conv1d_backward(x.data(), layer.weight().value.data(), gy.data(), 32,
                                       150, 3, 16, 3, gx.data(), gw.data(), gb.data());
        benchmark::DoNotOptimize(gx.data());
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dBackwardNaive);

// Raw GEMM thread-scaling sweep: 512x512x512 at FALLSENSE_THREADS
// overridden to {1, 2, 4, 8}.
void BM_GemmNNThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    const std::size_t m = 512, n = 512, k = 512;
    const nn::tensor a = random_tensor({m, k}, 6);
    const nn::tensor b = random_tensor({k, n}, 7);
    nn::tensor c({m, n});
    for (auto _ : state) {
        nn::gemm_nn(m, n, k, a.data(), b.data(), c.data(), false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() *
                            static_cast<std::int64_t>(2 * m * n * k));
    util::set_global_threads(0);
}
BENCHMARK(BM_GemmNNThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// Conv1d forward at the paper's branch shape across thread counts.
void BM_Conv1dForwardThreads(benchmark::State& state) {
    util::set_global_threads(static_cast<std::size_t>(state.range(0)));
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({256, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 256);
    util::set_global_threads(0);
}
BENCHMARK(BM_Conv1dForwardThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->UseRealTime();

// --- Runtime-dispatch (nn/simd.hpp) scalar-vs-native rows -------------
//
// Each *Simd benchmark runs the same kernel twice: native:0 pins the
// scalar reference kernels, native:1 the runtime-dispatched vector
// kernels (AVX2+FMA / NEON where available; degrades to scalar
// otherwise, so the row pair is always valid).  scripts/run_bench.sh
// divides the paired real_times into the "simd_speedup" section of
// BENCH_kernel.json; the acceptance bar is >= 1.5x on at least one
// dispatched GEMM kernel (docs/performance.md).

/// Pin the dispatch mode for one benchmark run, restoring whatever
/// FALLSENSE_SIMD resolved on exit.
struct simd_mode_scope {
    nn::simd_mode saved = nn::active_simd_mode();
    explicit simd_mode_scope(nn::simd_mode mode) { nn::set_simd_mode(mode); }
    ~simd_mode_scope() { nn::set_simd_mode(saved); }
};

nn::simd_mode bench_simd_mode(const benchmark::State& state) {
    return state.range(0) != 0 ? nn::simd_mode::native : nn::simd_mode::scalar;
}

void BM_GemmNNSimd(benchmark::State& state) {
    simd_mode_scope scope(bench_simd_mode(state));
    const std::size_t m = 192, n = 192, k = 192;
    const nn::tensor a = random_tensor({m, k}, 6);
    const nn::tensor b = random_tensor({k, n}, 7);
    nn::tensor c({m, n});
    for (auto _ : state) {
        nn::gemm_nn(m, n, k, a.data(), b.data(), c.data(), false);
        benchmark::DoNotOptimize(c.data());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(2 * m * n * k));
}
BENCHMARK(BM_GemmNNSimd)->ArgNames({"native"})->Arg(0)->Arg(1);

void BM_DenseForwardSimd(benchmark::State& state) {
    simd_mode_scope scope(bench_simd_mode(state));
    util::rng gen(1);
    nn::dense layer(912, 64, gen);
    const nn::tensor x = random_tensor({32, 912}, 2);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForwardSimd)->ArgNames({"native"})->Arg(0)->Arg(1);

void BM_Conv1dForwardSimd(benchmark::State& state) {
    simd_mode_scope scope(bench_simd_mode(state));
    util::rng gen(3);
    nn::conv1d layer(3, 64, 3, gen);
    const nn::tensor x = random_tensor({32, 150, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForwardSimd)->ArgNames({"native"})->Arg(0)->Arg(1);

// Int8 deployment path: the q8 axpy kernels keep int32 accumulation
// exact, so the native row must produce bit-identical logits — this pair
// measures what the vector kernels buy without changing a single score.
void BM_CnnInt8InferenceSimd(benchmark::State& state) {
    simd_mode_scope scope(bench_simd_mode(state));
    const std::size_t window = 40;
    auto net = core::build_fallsense_cnn(window, 9);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor calibration = random_tensor({32, window, 9}, 10);
    const quant::quantized_cnn qmodel(spec, calibration);
    const nn::tensor seg = random_tensor({window, 9}, 11);
    for (auto _ : state) {
        const float logit = qmodel.predict_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnInt8InferenceSimd)->ArgNames({"native"})->Arg(0)->Arg(1);

void BM_LstmForward(benchmark::State& state) {
    util::rng gen(5);
    nn::lstm layer(9, 24, gen);
    const nn::tensor x = random_tensor({32, 40, 9}, 6);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LstmForward);

void BM_CnnFloatInference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 7);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor seg = random_tensor({window, 9}, 8);
    for (auto _ : state) {
        const float logit = spec.forward_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnFloatInference)->Arg(20)->Arg(30)->Arg(40);

void BM_CnnInt8Inference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 9);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor calibration = random_tensor({32, window, 9}, 10);
    const quant::quantized_cnn qmodel(spec, calibration);
    const nn::tensor seg = random_tensor({window, 9}, 11);
    for (auto _ : state) {
        const float logit = qmodel.predict_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnInt8Inference)->Arg(20)->Arg(30)->Arg(40);

void BM_SynthesizeFallTrial(benchmark::State& state) {
    data::subject_profile subject;
    data::motion_tuning tuning;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        util::rng gen(++seed);
        const data::trial t =
            data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen);
        benchmark::DoNotOptimize(t.sample_count());
    }
}
BENCHMARK(BM_SynthesizeFallTrial);

void BM_PreprocessTrial(benchmark::State& state) {
    util::rng gen(12);
    data::subject_profile subject;
    data::motion_tuning tuning;
    const data::trial t =
        data::synthesize_task(6, subject, tuning, data::synthesis_config{}, gen);
    for (auto _ : state) {
        const std::vector<float> stream = core::preprocess_trial(t, core::preprocess_config{});
        benchmark::DoNotOptimize(stream.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(t.sample_count()));
}
BENCHMARK(BM_PreprocessTrial);

}  // namespace

BENCHMARK_MAIN();
