// Kernel micro-benchmarks (google-benchmark): the hot paths of the
// preprocessing pipeline, float training layers, and int8 inference — the
// engineering substrate behind the paper-level numbers.
#include <benchmark/benchmark.h>

#include "core/models.hpp"
#include "core/preprocess.hpp"
#include "data/synthesizer.hpp"
#include "dsp/biquad.hpp"
#include "nn/conv1d.hpp"
#include "nn/dense.hpp"
#include "nn/lstm.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/rng.hpp"

namespace {

using namespace fallsense;

nn::tensor random_tensor(nn::shape_t shape, std::uint64_t seed) {
    util::rng gen(seed);
    nn::tensor t(std::move(shape));
    for (float& v : t.values()) v = static_cast<float>(gen.normal());
    return t;
}

void BM_ButterworthProcess(benchmark::State& state) {
    dsp::butterworth_lowpass filter(4, 5.0, 100.0);
    float x = 0.37f;
    for (auto _ : state) {
        x = filter.process(x);
        benchmark::DoNotOptimize(x);
    }
}
BENCHMARK(BM_ButterworthProcess);

void BM_ComplementaryFilterUpdate(benchmark::State& state) {
    dsp::complementary_filter fusion;
    const dsp::vec3 accel{0.1, 0.05, 0.99};
    const dsp::vec3 gyro{0.01, -0.02, 0.005};
    for (auto _ : state) {
        const dsp::euler_angles a = fusion.update(accel, gyro);
        benchmark::DoNotOptimize(a);
    }
}
BENCHMARK(BM_ComplementaryFilterUpdate);

void BM_DenseForward(benchmark::State& state) {
    const auto in_features = static_cast<std::size_t>(state.range(0));
    util::rng gen(1);
    nn::dense layer(in_features, 64, gen);
    const nn::tensor x = random_tensor({32, in_features}, 2);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_DenseForward)->Arg(128)->Arg(512)->Arg(912);

void BM_Conv1dForward(benchmark::State& state) {
    util::rng gen(3);
    nn::conv1d layer(3, 16, 3, gen);
    const nn::tensor x = random_tensor({32, 40, 3}, 4);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_Conv1dForward);

void BM_LstmForward(benchmark::State& state) {
    util::rng gen(5);
    nn::lstm layer(9, 24, gen);
    const nn::tensor x = random_tensor({32, 40, 9}, 6);
    for (auto _ : state) {
        nn::tensor y = layer.forward(x, false);
        benchmark::DoNotOptimize(y);
    }
    state.SetItemsProcessed(state.iterations() * 32);
}
BENCHMARK(BM_LstmForward);

void BM_CnnFloatInference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 7);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor seg = random_tensor({window, 9}, 8);
    for (auto _ : state) {
        const float logit = spec.forward_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnFloatInference)->Arg(20)->Arg(30)->Arg(40);

void BM_CnnInt8Inference(benchmark::State& state) {
    const auto window = static_cast<std::size_t>(state.range(0));
    auto net = core::build_fallsense_cnn(window, 9);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*net, window);
    const nn::tensor calibration = random_tensor({32, window, 9}, 10);
    const quant::quantized_cnn qmodel(spec, calibration);
    const nn::tensor seg = random_tensor({window, 9}, 11);
    for (auto _ : state) {
        const float logit = qmodel.predict_logit(seg.values());
        benchmark::DoNotOptimize(logit);
    }
}
BENCHMARK(BM_CnnInt8Inference)->Arg(20)->Arg(30)->Arg(40);

void BM_SynthesizeFallTrial(benchmark::State& state) {
    data::subject_profile subject;
    data::motion_tuning tuning;
    std::uint64_t seed = 0;
    for (auto _ : state) {
        util::rng gen(++seed);
        const data::trial t =
            data::synthesize_task(30, subject, tuning, data::synthesis_config{}, gen);
        benchmark::DoNotOptimize(t.sample_count());
    }
}
BENCHMARK(BM_SynthesizeFallTrial);

void BM_PreprocessTrial(benchmark::State& state) {
    util::rng gen(12);
    data::subject_profile subject;
    data::motion_tuning tuning;
    const data::trial t =
        data::synthesize_task(6, subject, tuning, data::synthesis_config{}, gen);
    for (auto _ : state) {
        const std::vector<float> stream = core::preprocess_trial(t, core::preprocess_config{});
        benchmark::DoNotOptimize(stream.size());
    }
    state.SetItemsProcessed(state.iterations() * static_cast<std::int64_t>(t.sample_count()));
}
BENCHMARK(BM_PreprocessTrial);

}  // namespace

BENCHMARK_MAIN();
