// Section IV-C reproduction: on-edge performance of the quantized CNN on
// the STM32F722 model.
//
// Paper figures: model 67.03 KiB flash, 16.87 KiB RAM, inference
// 4 ms +- 3 ms plus 3 ms sensor fusion, performance unchanged after
// quantization.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/deployment.hpp"
#include "mcu/memory_planner.hpp"
#include "quant/quantized_cnn.hpp"

int main() {
    using namespace fallsense;
    core::experiment_scale scale = bench::banner("Section IV-C — on-edge performance");
    const std::uint64_t seed = util::env_seed();
    scale.max_epochs = std::min<std::size_t>(scale.max_epochs, 10);

    // Train the 400 ms CNN briefly (footprint/latency do not depend on the
    // training state; accuracy parity is covered by quantization_parity).
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(400.0);
    const std::size_t window_samples = wc.segmentation.window_samples;
    nn::labeled_data data =
        core::to_labeled_data(core::extract_windows(merged.trials, wc), window_samples);
    auto cnn = core::build_fallsense_cnn(window_samples, seed);
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    nn::fit(*cnn, data, {}, tc);

    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, data.features);
    const mcu::device_spec device = mcu::stm32f722();

    std::printf("model: %zu float parameters -> int8\n", spec.parameter_count());
    const mcu::deployment_plan plan = mcu::plan_deployment(qmodel, device);
    std::printf("\nfootprint on %s:\n%s\n", device.name, plan.summary().c_str());
    std::printf("paper reference: 67.03 KiB flash, 16.87 KiB RAM\n");

    const mcu::latency_estimate inference = mcu::estimate_inference(qmodel, device);
    const mcu::latency_estimate fusion = mcu::estimate_fusion(window_samples, device);
    util::rng gen(seed);
    const mcu::latency_stats jitter = mcu::simulate_latency(qmodel, device, 20'000, gen);
    std::printf("\nlatency on the Cortex-M7 cost model @ %.0f MHz:\n",
                device.clock_hz / 1e6);
    std::printf("  inference (deterministic): %.2f ms\n", inference.milliseconds);
    std::printf("  inference (with jitter):   %.1f ms +- %.1f ms over %zu runs\n",
                jitter.mean_ms, jitter.stddev_ms, jitter.samples);
    std::printf("  sensor fusion per window:  %.2f ms\n", fusion.milliseconds);
    std::printf("paper reference: 4 ms +- 3 ms inference + 3 ms fusion\n");

    const quant::op_counts ops = qmodel.count_ops();
    std::printf("\nper-inference work: %llu int8 MACs, %llu requantizations, "
                "%llu pool compares\n",
                static_cast<unsigned long long>(ops.macs),
                static_cast<unsigned long long>(ops.requants),
                static_cast<unsigned long long>(ops.pool_compares));

    const auto blob = mcu::serialize_deployment_blob(qmodel);
    std::printf("firmware blob: %.2f KiB\n", static_cast<double>(blob.size()) / 1024.0);

    // Real-time budget check: tick period is 10 ms; scoring happens every
    // hop (200 ms at 50%% overlap), so fusion+inference must fit well inside.
    const double total = inference.milliseconds + fusion.milliseconds;
    std::printf("\nreal-time check: fusion + inference = %.2f ms per scored window "
                "(budget: 200 ms hop) -> %s\n",
                total, total < 200.0 ? "OK" : "VIOLATION");
    return 0;
}
