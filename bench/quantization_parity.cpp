// Quantization parity (Section IV-C claim: "the model's performance remains
// unchanged after quantization"): trains the CNN, evaluates the float and
// int8 executors on the same held-out fold, and reports the metric deltas
// plus the size reduction.
#include <cmath>
#include <cstdio>

#include "bench_common.hpp"
#include "eval/eval.hpp"
#include "quant/quantized_cnn.hpp"

int main() {
    using namespace fallsense;
    const core::experiment_scale scale = bench::banner("Quantization parity (CNN, 400 ms)");
    const std::uint64_t seed = util::env_seed();

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(400.0);
    const std::size_t window_samples = wc.segmentation.window_samples;

    eval::kfold_config kf;
    kf.folds = scale.folds;
    kf.validation_subjects = scale.validation_subjects;
    kf.shuffle_seed = util::derive_seed(seed, "kfold");
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);
    const eval::fold_split& split = splits[0];

    // Train on fold 0's training subjects (same procedure as run_fold).
    std::vector<data::trial> train_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(split.train_subjects.begin(), split.train_subjects.end(),
                      t.subject_id) != split.train_subjects.end()) {
            train_trials.push_back(t);
        }
    }
    util::rng aug_gen(util::derive_seed(seed, "augment"));
    augment::augment_fall_trials(train_trials, scale.augmentation_copies,
                                 augment::trial_augment_config{}, aug_gen);
    nn::labeled_data train =
        core::to_labeled_data(core::extract_windows(train_trials, wc), window_samples);
    const auto val_w = core::extract_windows(merged.trials, wc, &split.validation_subjects);
    nn::labeled_data val = core::to_labeled_data(val_w, window_samples);

    auto cnn = core::build_fallsense_cnn(window_samples, util::derive_seed(seed, "model"));
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    std::printf("training on %zu windows...\n", train.size());
    nn::fit(*cnn, train, val, tc);

    // Quantize with training data as the calibration set.
    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, train.features);

    // Evaluate both executors on the held-out fold.
    const auto test_w = core::extract_windows(merged.trials, wc, &split.test_subjects);
    std::vector<float> float_probs, int8_probs, labels;
    double max_logit_err = 0.0;
    for (const auto& w : test_w) {
        const float fl = spec.forward_logit(w.features);
        const float ql = qmodel.predict_logit(w.features);
        float_probs.push_back(1.0f / (1.0f + std::exp(-fl)));
        int8_probs.push_back(1.0f / (1.0f + std::exp(-ql)));
        labels.push_back(w.label);
        max_logit_err = std::max(max_logit_err, std::abs(static_cast<double>(fl) - ql));
    }
    const eval::classification_report float_report = eval::evaluate(float_probs, labels);
    const eval::classification_report int8_report = eval::evaluate(int8_probs, labels);

    bench::print_report_header();
    bench::print_report_row("CNN float32", float_report);
    bench::print_report_row("CNN int8", int8_report);
    std::printf("\nmax |logit delta| on %zu held-out segments: %.3f\n", test_w.size(),
                max_logit_err);
    std::printf("accuracy delta: %+.3f pp, F1 delta: %+.3f pp\n",
                (int8_report.accuracy - float_report.accuracy) * 100.0,
                (int8_report.f1 - float_report.f1) * 100.0);

    const std::size_t float_bytes = spec.parameter_count() * sizeof(float);
    const std::size_t int8_bytes = qmodel.weight_bytes() + qmodel.bias_bytes();
    std::printf("size: %.2f KiB float -> %.2f KiB int8 (%.1fx reduction)\n",
                static_cast<double>(float_bytes) / 1024.0,
                static_cast<double>(int8_bytes) / 1024.0,
                static_cast<double>(float_bytes) / static_cast<double>(int8_bytes));
    std::printf("paper claim: performance unchanged after quantization.\n");
    return 0;
}
