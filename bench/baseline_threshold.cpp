// Threshold-algorithm baseline vs. the proposed CNN (Table I context).
//
// The related work the paper positions against includes threshold-based
// pre-impact detectors (de Sousa 2021, Jung 2020): fast, tiny, but less
// accurate.  This bench runs both on the same held-out subjects at event
// level.  Expected shape: the threshold rule catches deep falls with good
// lead time but false-alarms on ballistic ADLs (jumps) and misses shallow
// (fainting/sitting) falls, while the trained CNN dominates on both axes.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "eval/eval.hpp"
#include "core/airbag.hpp"
#include "core/threshold_detector.hpp"
#include "quant/quantized_cnn.hpp"

int main() {
    using namespace fallsense;
    const core::experiment_scale scale =
        bench::banner("Baseline — threshold algorithm vs proposed CNN");
    const std::uint64_t seed = util::env_seed();

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    eval::kfold_config kf;
    kf.folds = scale.folds;
    kf.validation_subjects = scale.validation_subjects;
    kf.shuffle_seed = util::derive_seed(seed, "kfold");
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);
    const eval::fold_split& split = splits[0];

    std::vector<data::trial> test_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(split.test_subjects.begin(), split.test_subjects.end(),
                      t.subject_id) != split.test_subjects.end()) {
            test_trials.push_back(t);
        }
    }

    // --- threshold baseline (no training needed) -------------------------
    const core::threshold_event_counts thr =
        core::evaluate_threshold_baseline(test_trials);

    // --- proposed CNN, trained on the fold's training subjects -----------
    const core::windowing_config wc = core::standard_windowing(400.0);
    const std::size_t window_samples = wc.segmentation.window_samples;
    std::vector<data::trial> train_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(split.train_subjects.begin(), split.train_subjects.end(),
                      t.subject_id) != split.train_subjects.end()) {
            train_trials.push_back(t);
        }
    }
    util::rng aug_gen(util::derive_seed(seed, "augment"));
    augment::augment_fall_trials(train_trials, scale.augmentation_copies,
                                 augment::trial_augment_config{}, aug_gen);
    nn::labeled_data train =
        core::to_labeled_data(core::extract_windows(train_trials, wc), window_samples);
    auto cnn = core::build_fallsense_cnn(window_samples, util::derive_seed(seed, "model"));
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    std::printf("training CNN on %zu windows...\n\n", train.size());
    nn::fit(*cnn, train, {}, tc);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, train.features);

    // Tune the CNN's decision threshold for precision on the TRAINING
    // windows (the paper configures the model to minimize false positives
    // before deployment; test subjects stay untouched).
    std::vector<float> train_probs;
    train_probs.reserve(train.size());
    const std::size_t seg_size = window_samples * core::k_feature_channels;
    for (std::size_t i = 0; i < train.size(); ++i) {
        train_probs.push_back(qmodel.predict_proba(
            {train.features.data() + i * seg_size, seg_size}));
    }
    const auto train_windows = core::extract_windows(train_trials, wc);
    const auto train_records = core::to_segment_records(train_windows, train_probs);
    const eval::threshold_selection sel =
        eval::select_threshold_for_precision(train_records, 0.05);
    std::printf("CNN threshold tuned on training subjects: %.2f\n\n", sel.threshold);

    core::detector_config dc;
    dc.window_samples = window_samples;
    dc.overlap_fraction = 0.75;
    dc.threshold = sel.threshold;
    const core::segment_scorer scorer = [&](std::span<const float> w) {
        return qmodel.predict_proba(w);
    };
    std::size_t cnn_falls = 0, cnn_detected = 0, cnn_adl = 0, cnn_false = 0;
    double cnn_lead_sum = 0.0;
    for (const data::trial& t : test_trials) {
        if (t.is_fall_trial()) {
            ++cnn_falls;
            const core::protection_outcome o = core::evaluate_protection(t, dc, scorer);
            if (o.detected) {
                ++cnn_detected;
                cnn_lead_sum += o.trigger_to_impact_ms;
            }
        } else {
            ++cnn_adl;
            core::streaming_detector det(dc, scorer);
            bool fired = false;
            for (const data::raw_sample& s : t.samples) fired |= det.push(s).has_value();
            cnn_false += fired ? 1 : 0;
        }
    }

    auto pct = [](std::size_t n, std::size_t d) {
        return d == 0 ? 0.0 : 100.0 * static_cast<double>(n) / static_cast<double>(d);
    };
    std::printf("%-22s %14s %14s %12s\n", "detector", "falls detected", "ADL false al.",
                "lead (ms)");
    std::printf("%-22s %6zu/%zu (%4.1f%%) %6zu/%zu (%4.1f%%) %10.0f\n", "threshold baseline",
                thr.falls_detected, thr.falls_total, pct(thr.falls_detected, thr.falls_total),
                thr.adl_false_alarms, thr.adl_total, pct(thr.adl_false_alarms, thr.adl_total),
                thr.mean_lead_time_ms);
    std::printf("%-22s %6zu/%zu (%4.1f%%) %6zu/%zu (%4.1f%%) %10.0f\n", "CNN (proposed)",
                cnn_detected, cnn_falls, pct(cnn_detected, cnn_falls), cnn_false, cnn_adl,
                pct(cnn_false, cnn_adl),
                cnn_detected ? cnn_lead_sum / static_cast<double>(cnn_detected) : 0.0);
    std::printf("\nexpected shape (Table I context): the learned model detects far more\n"
                "falls with longer pre-impact lead at a comparable-or-lower false-alarm\n"
                "rate; threshold rules trade accuracy for simplicity.\n");
    return 0;
}
