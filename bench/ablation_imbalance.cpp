// Imbalance-handling ablation (Section III-C design choices): the proposed
// CNN with and without (i) fall-trial augmentation (time/window warping),
// (ii) class weights, (iii) output-bias initialization — quantifying what
// each mechanism contributes on the heavily imbalanced segment stream.
#include <cstdio>
#include <memory>

#include "bench_common.hpp"
#include "eval/eval.hpp"

int main() {
    using namespace fallsense;
    core::experiment_scale scale =
        bench::banner("Ablation — imbalance handling (CNN, 300 ms)");
    const std::uint64_t seed = util::env_seed();
    scale.folds_to_run = 1;  // five variants; one fold each keeps this quick

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(300.0);

    struct variant {
        const char* name;
        core::train_options options;
    };
    const variant variants[] = {
        {"full (paper)", {.augment = true, .class_weights = true, .output_bias_init = true}},
        {"no augmentation", {.augment = false, .class_weights = true, .output_bias_init = true}},
        {"no class weights", {.augment = true, .class_weights = false, .output_bias_init = true}},
        {"no bias init", {.augment = true, .class_weights = true, .output_bias_init = false}},
        {"none", {.augment = false, .class_weights = false, .output_bias_init = false}},
    };

    std::printf("%-18s %8s %10s %8s %9s %12s %12s\n", "variant", "acc %", "prec %",
                "rec %", "f1 %", "falls det.", "ADL false");
    for (const variant& v : variants) {
        const core::cross_validation_result cv = core::run_cross_validation(
            core::model_kind::cnn, merged, wc, scale, seed, v.options);
        eval::evaluator_spec spec;
        spec.kind = eval::evaluator_kind::per_window;
        const std::unique_ptr<eval::evaluator> evaluator = eval::make_evaluator(spec);
        evaluator->add_segments(cv.all_records);
        const eval::event_counts events = *evaluator->finish().counts;
        std::printf("%-18s %8.2f %10.2f %8.2f %9.2f %7zu/%-4zu %7zu/%-4zu\n", v.name,
                    cv.pooled.accuracy * 100.0, cv.pooled.precision * 100.0,
                    cv.pooled.recall * 100.0, cv.pooled.f1 * 100.0, events.falls_detected,
                    events.falls_total, events.adl_false_alarms, events.adl_total);
    }
    std::printf("\nexpected shape: removing augmentation or class weights drops recall;\n");
    std::printf("bias init mainly accelerates convergence (small effect at full epochs).\n");
    return 0;
}
