// Overhead of the obs layer (google-benchmark).
//
// The contract (ISSUE 2 / docs/observability.md): with metrics disabled an
// instrumentation site costs one relaxed atomic load — nothing measurable
// on the kernel bench — and with metrics enabled the registry costs well
// under 2 % of a tiny-scale k-fold.  The *Disabled benchmarks here pin the
// first half; the enabled ones quantify the per-call cost that the <2 %
// end-to-end budget is made of.
#include <benchmark/benchmark.h>

#include "core/pipeline.hpp"
#include "obs/metrics.hpp"
#include "obs/trace.hpp"

namespace {

using namespace fallsense;

/// Restore the disabled default so co-registered benchmarks stay clean.
struct enable_guard {
    explicit enable_guard(bool on) { obs::set_enabled(on); }
    ~enable_guard() {
        obs::set_enabled(false);
        obs::reset();
    }
};

void BM_CounterDisabled(benchmark::State& state) {
    enable_guard guard(false);
    for (auto _ : state) {
        obs::add_counter("bench_obs/counter");
    }
}
BENCHMARK(BM_CounterDisabled);

void BM_CounterEnabled(benchmark::State& state) {
    enable_guard guard(true);
    for (auto _ : state) {
        obs::add_counter("bench_obs/counter");
    }
}
BENCHMARK(BM_CounterEnabled);

void BM_HistogramEnabled(benchmark::State& state) {
    enable_guard guard(true);
    double v = 0.0;
    for (auto _ : state) {
        obs::observe_latency_us("bench_obs/latency_us", v);
        v = (v < 10000.0) ? v + 17.0 : 0.0;
    }
}
BENCHMARK(BM_HistogramEnabled);

void BM_ScopeDisabled(benchmark::State& state) {
    enable_guard guard(false);
    for (auto _ : state) {
        OBS_SCOPE("bench_obs/scope");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_ScopeDisabled);

void BM_ScopeEnabled(benchmark::State& state) {
    enable_guard guard(true);
    for (auto _ : state) {
        OBS_SCOPE("bench_obs/scope");
        benchmark::ClobberMemory();
    }
}
BENCHMARK(BM_ScopeEnabled);

/// The hottest instrumented production path: one streaming-detector tick
/// (filter + fusion + ring write, scoring every hop), with and without the
/// registry recording.
void stream_ticks(benchmark::State& state, bool metrics_on) {
    enable_guard guard(metrics_on);
    core::detector_config config;
    config.window_samples = 40;
    core::streaming_detector detector(config, [](std::span<const float>) { return 0.1f; });
    data::raw_sample sample;
    sample.accel = {0.0f, 0.0f, 1.0f};
    sample.gyro = {0.01f, 0.0f, 0.0f};
    for (auto _ : state) {
        auto detection = detector.push(sample);
        benchmark::DoNotOptimize(detection);
    }
}

void BM_StreamTickDisabled(benchmark::State& state) { stream_ticks(state, false); }
BENCHMARK(BM_StreamTickDisabled);

void BM_StreamTickEnabled(benchmark::State& state) { stream_ticks(state, true); }
BENCHMARK(BM_StreamTickEnabled);

}  // namespace
