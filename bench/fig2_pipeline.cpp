// Figure 2 reproduction: the methodological pipeline, stage by stage.
//
// Walks one trial through data acquisition -> alignment -> low-pass filter
// -> sensor fusion -> segmentation -> CNN -> event decision, printing the
// shape and a sample of the data after every stage — the schematic of
// Figure 2 rendered as an execution trace.
#include <cstdio>

#include "bench_common.hpp"
#include "core/windowing.hpp"
#include "data/alignment.hpp"
#include "data/generator.hpp"
#include "nn/trainer.hpp"

int main() {
    using namespace fallsense;
    const core::experiment_scale scale = bench::banner("Figure 2 — methodology walkthrough");
    const std::uint64_t seed = util::env_seed();

    // Stage 1: data acquisition (KFall-like profile: rotated frame, m/s^2).
    data::dataset_profile profile = data::kfall_profile();
    profile.n_subjects = 1;
    profile.tuning = scale.tuning;
    const data::dataset raw = data::generate_dataset(profile, seed);
    const data::trial* fall = nullptr;
    for (const data::trial& t : raw.trials) {
        if (t.task_id == 30) fall = &t;
    }
    std::printf("[1] acquisition: trial task=%d subject=%d, %zu samples @ %.0f Hz, "
                "units %s / %s\n",
                fall->task_id, fall->subject_id, fall->sample_count(),
                fall->sample_rate_hz, data::accel_unit_name(fall->accel_units),
                data::gyro_unit_name(fall->gyro_units));
    std::printf("    raw sample[0]: accel = (%.2f, %.2f, %.2f) %s\n",
                fall->samples[0].accel[0], fall->samples[0].accel[1],
                fall->samples[0].accel[2], data::accel_unit_name(fall->accel_units));

    // Stage 2: alignment (Rodrigues rotation + unit standardization).
    data::trial aligned = *fall;
    data::align_trial(aligned, raw.to_reference_frame);
    std::printf("[2] alignment: rotated to reference frame, units -> g / rad/s\n");
    std::printf("    aligned sample[0]: accel = (%.2f, %.2f, %.2f) g\n",
                aligned.samples[0].accel[0], aligned.samples[0].accel[1],
                aligned.samples[0].accel[2]);

    // Stage 3+4: Butterworth low-pass + Euler fusion.
    const core::preprocess_config pp;
    const std::vector<float> stream = core::preprocess_trial(aligned, pp);
    std::printf("[3] butterworth low-pass: order %zu, cutoff %.1f Hz\n", pp.filter_order,
                pp.cutoff_hz);
    std::printf("[4] sensor fusion: 9 channels = accel(3) + gyro(3) + euler(3)\n");
    const std::size_t mid = aligned.fall->impact_index - 30;
    std::printf("    fused row near fall: ax=%.2f gz=%.2f pitch=%.2f rad\n",
                stream[mid * 9 + 0], stream[mid * 9 + 5], stream[mid * 9 + 6]);

    // Stage 5: segmentation with pre-impact truncation.
    const core::windowing_config wc = core::standard_windowing(400.0);
    const auto windows = core::extract_windows(aligned, wc);
    std::size_t positives = 0;
    for (const auto& w : windows) positives += w.label > 0.5f ? 1 : 0;
    std::printf("[5] segmentation: window %zu samples (400 ms), 50%% overlap, "
                "150 ms truncation -> %zu segments (%zu falling)\n",
                wc.segmentation.window_samples, windows.size(), positives);

    // Stage 6: the CNN (untrained here — the walkthrough shows dataflow).
    auto cnn = core::build_fallsense_cnn(wc.segmentation.window_samples, seed);
    std::printf("[6] model: %zu parameters\n%s\n", cnn->parameter_count(),
                cnn->summary().c_str());
    const nn::labeled_data batch =
        core::to_labeled_data(windows, wc.segmentation.window_samples);
    const std::vector<float> probs = nn::predict_proba(*cnn, batch.features);
    std::printf("    forward pass on %zu segments -> %zu sigmoid confidences\n",
                windows.size(), probs.size());

    // Stage 7: event decision.
    const auto records = core::to_segment_records(windows, probs);
    const eval::event_counts counts = eval::count_events(records);
    std::printf("[7] event decision: %zu fall event(s), detected (untrained) %zu; "
                "train first for real performance — see table3_models\n",
                counts.falls_total, counts.falls_detected);
    return 0;
}
