// Table IV reproduction: event-level misclassification at the best
// configuration (400 ms, 50 % overlap).
//
// (a) per-task percentage of fall events missed — the paper's hardest are
//     falls from height (39, 40) and sit-related falls; average 4.17 %.
// (b) per-task percentage of ADL events misclassified as falls — dominated
//     by jump-over-obstacle (44) and collapse-into-chair (15); average
//     2.04 %, red ADLs 3.34 % vs green 0.46 %.
#include <cstdio>
#include <memory>
#include <string>

#include "bench_common.hpp"
#include "data/taxonomy.hpp"
#include "eval/eval.hpp"

int main() {
    using namespace fallsense;
    core::experiment_scale scale =
        bench::banner("Table IV — event-level misclassification (400 ms)");
    const std::uint64_t seed = util::env_seed();
    // Event statistics need every fold's test subjects for per-task counts.
    scale.folds_to_run = scale.folds;

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(400.0);
    std::printf("training CNN over %zu folds...\n\n", scale.folds_to_run);
    const core::cross_validation_result cv =
        core::run_cross_validation(core::model_kind::cnn, merged, wc, scale, seed);

    // The paper tunes the decision threshold to minimize false positives.
    const eval::threshold_selection sel =
        eval::select_threshold_for_precision(cv.all_records, 0.03);
    std::printf("threshold tuned for precision: %.2f (fall detection %.1f%%, "
                "ADL false rate %.2f%%)\n\n",
                sel.threshold, sel.fall_detection_rate * 100.0,
                sel.adl_false_rate * 100.0);

    // Event grouping through the factory surface, like every consumer
    // outside src/eval (eval/evaluator.hpp).
    eval::evaluator_spec spec;
    spec.kind = eval::evaluator_kind::per_window;
    spec.threshold = sel.threshold;
    const std::unique_ptr<eval::evaluator> evaluator = eval::make_evaluator(spec);
    evaluator->add_segments(cv.all_records);
    const eval::event_analysis analysis = *evaluator->finish().events;

    std::printf("(a) falls misclassified as ADLs\n");
    std::printf("%-8s %-8s %-8s  %s\n", "task", "events", "miss %", "description");
    for (const eval::task_event_stats& s : analysis.fall_misses) {
        std::printf("%-8d %-8zu %-8.2f  %.55s\n", s.task_id, s.events, s.miss_percent(),
                    std::string(data::task_by_id(s.task_id).description).c_str());
    }
    std::printf("%-8s %-8s %-8.2f  (paper: 4.17%%)\n\n", "all", "",
                analysis.fall_miss_percent_avg);

    std::printf("(b) ADLs misclassified as falls\n");
    std::printf("%-8s %-8s %-8s %-6s  %s\n", "task", "events", "fp %", "risk",
                "description");
    for (const eval::task_event_stats& s : analysis.adl_false_alarms) {
        const data::task_info& info = data::task_by_id(s.task_id);
        std::printf("%-8d %-8zu %-8.2f %-6s  %.55s\n", s.task_id, s.events,
                    s.miss_percent(), info.risk == data::risk_class::red ? "red" : "green",
                    std::string(info.description).c_str());
    }
    std::printf("%-8s %-8s %-8.2f        (paper: 2.04%%)\n", "all", "",
                analysis.adl_false_percent_avg);
    std::printf("%-8s %-8s %-8.2f        (paper: 3.34%%)\n", "red", "",
                analysis.red_adl_false_percent);
    std::printf("%-8s %-8s %-8.2f        (paper: 0.46%%)\n", "green", "",
                analysis.green_adl_false_percent);
    return 0;
}
