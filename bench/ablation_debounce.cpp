// Trigger-debouncing extension: require N consecutive positive windows
// before firing the airbag.  The paper triggers on a single window; this
// ablation quantifies what one extra confirmation window buys in
// false-alarm suppression and what it costs in detection/lead time — the
// next design question a deployment team would ask.
#include <algorithm>
#include <cstdio>

#include "bench_common.hpp"
#include "core/airbag.hpp"
#include "quant/quantized_cnn.hpp"

int main() {
    using namespace fallsense;
    const core::experiment_scale scale =
        bench::banner("Extension — trigger debouncing (consecutive windows)");
    const std::uint64_t seed = util::env_seed();

    const data::dataset merged = core::make_merged_dataset(scale, seed);
    eval::kfold_config kf;
    kf.folds = scale.folds;
    kf.validation_subjects = scale.validation_subjects;
    kf.shuffle_seed = util::derive_seed(seed, "kfold");
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);
    const eval::fold_split& split = splits[0];

    const core::windowing_config wc = core::standard_windowing(400.0);
    const std::size_t window_samples = wc.segmentation.window_samples;
    std::vector<data::trial> train_trials, test_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(split.train_subjects.begin(), split.train_subjects.end(),
                      t.subject_id) != split.train_subjects.end()) {
            train_trials.push_back(t);
        } else if (std::find(split.test_subjects.begin(), split.test_subjects.end(),
                             t.subject_id) != split.test_subjects.end()) {
            test_trials.push_back(t);
        }
    }
    util::rng aug_gen(util::derive_seed(seed, "augment"));
    augment::augment_fall_trials(train_trials, scale.augmentation_copies,
                                 augment::trial_augment_config{}, aug_gen);
    nn::labeled_data train =
        core::to_labeled_data(core::extract_windows(train_trials, wc), window_samples);
    auto cnn = core::build_fallsense_cnn(window_samples, util::derive_seed(seed, "model"));
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    std::printf("training CNN on %zu windows...\n\n", train.size());
    nn::fit(*cnn, train, {}, tc);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, train.features);
    const core::segment_scorer scorer = [&](std::span<const float> w) {
        return qmodel.predict_proba(w);
    };

    std::printf("%-12s %14s %14s %14s %12s\n", "consecutive", "falls detected",
                "in time (150ms)", "ADL false al.", "lead (ms)");
    for (const std::size_t consecutive : {std::size_t{1}, std::size_t{2}, std::size_t{3}}) {
        core::detector_config dc;
        dc.window_samples = window_samples;
        dc.overlap_fraction = 0.75;  // hop = 100 ms: each confirmation costs 100 ms
        dc.threshold = 0.5;
        dc.consecutive_required = consecutive;

        std::size_t falls = 0, detected = 0, in_time = 0, adl = 0, false_alarms = 0;
        double lead_sum = 0.0;
        for (const data::trial& t : test_trials) {
            if (t.is_fall_trial()) {
                ++falls;
                const core::protection_outcome o =
                    core::evaluate_protection(t, dc, scorer);
                if (o.detected) {
                    ++detected;
                    in_time += o.protected_in_time ? 1 : 0;
                    lead_sum += o.trigger_to_impact_ms;
                }
            } else {
                ++adl;
                core::streaming_detector det(dc, scorer);
                bool fired = false;
                for (const data::raw_sample& s : t.samples) {
                    fired |= det.push(s).has_value();
                }
                false_alarms += fired ? 1 : 0;
            }
        }
        std::printf("%-12zu %8zu/%-5zu %8zu/%-5zu %8zu/%-5zu %10.0f\n", consecutive,
                    detected, falls, in_time, falls, false_alarms, adl,
                    detected ? lead_sum / static_cast<double>(detected) : 0.0);
    }
    std::printf("\nexpected shape: each confirmation window trades ~100 ms of lead time\n"
                "for a visible drop in ADL false alarms; the single-window trigger (the\n"
                "paper's choice) maximizes protection margin.\n");
    return 0;
}
