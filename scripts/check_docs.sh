#!/usr/bin/env bash
# Docs consistency checker (wired as ctest `docs.check`).
#
# Scans README.md and docs/*.md for three kinds of claims and fails if any
# of them has drifted from the tree:
#
#   1. File paths — every token matching
#      (src|docs|tests|bench|examples|scripts|tools)/... must exist, either
#      verbatim or as <path>.cpp (docs refer to executables like
#      bench/kernel_micro by target name).  Paths under build/ are build
#      outputs, not tree files, and are skipped.
#   2. FALLSENSE_* names — every cited environment variable or CMake
#      option must appear somewhere in the sources/build files.
#   3. CLI flags — every --flag token appearing in tools/*.cpp (usage
#      strings, option tables, header synopses) must be documented in
#      README.md or docs/*.md, so a tool cannot grow a knob the docs
#      never heard of.
#   4. CLI flags, reverse — every --flag on a doc line that invokes
#      `fallsense` or `fallsense_loadgen` (word-boundary match, so
#      fallsense_tests lines don't count) must exist in tools/*.cpp, so a
#      doc cannot show an invocation the tools would reject.
#   5. Benchmark rows — every BM_* token a doc cites must be defined in
#      bench/*.cpp, so docs (the simd_speedup / fused_speedup /
#      restore_latency tables in docs/performance.md in particular)
#      cannot reference a row the harness no longer emits.
#   6. Eval API surface — everything outside src/eval must include the
#      eval/eval.hpp umbrella, never the per-module headers
#      (eval/metrics.hpp, eval/events.hpp, eval/roc.hpp,
#      eval/threshold.hpp, eval/kfold.hpp, eval/stream.hpp,
#      eval/evaluator.hpp), so the evaluation layer keeps one public
#      include and one construction point (eval::make_evaluator).
#
# Usage:
#   scripts/check_docs.sh                 # check the repo's docs
#   scripts/check_docs.sh --extra-doc F   # also check file F
#   scripts/check_docs.sh --only F        # check only file F (internal)
#   scripts/check_docs.sh --self-test     # verify the checker itself
#                                         # rejects a doc with a bogus path
set -u

ROOT="$(cd "$(dirname "$0")/.." && pwd)"
cd "$ROOT"

MODE=check
ONLY_DOC=""
EXTRA_DOCS=()
TOOLS_DIR=tools
BENCH_DIR=bench
INCLUDE_DIRS=(src tools bench tests examples)
while [ $# -gt 0 ]; do
    case "$1" in
        --self-test) MODE=self-test ;;
        --only) ONLY_DOC="$2"; shift ;;
        --extra-doc) EXTRA_DOCS+=("$2"); shift ;;
        --tools-dir) TOOLS_DIR="$2"; shift ;;  # internal, for the self-test
        --bench-dir) BENCH_DIR="$2"; shift ;;  # internal, for the self-test
        --include-dirs) read -r -a INCLUDE_DIRS <<< "$2"; shift ;;  # internal
        *) echo "unknown argument: $1" >&2; exit 2 ;;
    esac
    shift
done

if [ "$MODE" = self-test ]; then
    tmp="$(mktemp -d)"
    trap 'rm -rf "$tmp"' EXIT
    cat > "$tmp/bogus.md" <<'EOF'
A doc citing src/definitely/not/a/real/file.cpp, the unset
environment variable FALLSENSE_NO_SUCH_VAR, and the benchmark
BM_NoSuchBenchmarkRow nothing in bench/ defines.
EOF
    if "$0" --only "$tmp/bogus.md" > "$tmp/out.txt" 2>&1; then
        echo "self-test FAILED: checker accepted a doc with a bogus path" >&2
        cat "$tmp/out.txt" >&2
        exit 1
    fi
    if ! grep -q "definitely/not/a/real/file" "$tmp/out.txt"; then
        echo "self-test FAILED: bogus path not reported" >&2
        cat "$tmp/out.txt" >&2
        exit 1
    fi
    if ! grep -q "FALLSENSE_NO_SUCH_VAR" "$tmp/out.txt"; then
        echo "self-test FAILED: bogus env var not reported" >&2
        cat "$tmp/out.txt" >&2
        exit 1
    fi
    if ! grep -q "BM_NoSuchBenchmarkRow" "$tmp/out.txt"; then
        echo "self-test FAILED: bogus benchmark name not reported" >&2
        cat "$tmp/out.txt" >&2
        exit 1
    fi
    # A tool declaring a flag no doc mentions must be rejected too.
    mkdir "$tmp/tools"
    cat > "$tmp/tools/fake_tool.cpp" <<'EOF'
// usage: fake_tool [--no-such-undocumented-flag]
EOF
    if "$0" --tools-dir "$tmp/tools" > "$tmp/flags.txt" 2>&1; then
        echo "self-test FAILED: checker accepted an undocumented CLI flag" >&2
        cat "$tmp/flags.txt" >&2
        exit 1
    fi
    if ! grep -q -- "--no-such-undocumented-flag" "$tmp/flags.txt"; then
        echo "self-test FAILED: undocumented flag not reported" >&2
        cat "$tmp/flags.txt" >&2
        exit 1
    fi
    # A doc showing a tool invocation with a flag the tools don't declare
    # must be rejected by the reverse check.
    cat > "$tmp/bogus_flag.md" <<'EOF'
Run `fallsense serve --flag-the-tool-never-heard-of 3` to reproduce.
EOF
    if "$0" --only "$tmp/bogus_flag.md" > "$tmp/rev.txt" 2>&1; then
        echo "self-test FAILED: checker accepted a doc citing a bogus CLI flag" >&2
        cat "$tmp/rev.txt" >&2
        exit 1
    fi
    if ! grep -q -- "--flag-the-tool-never-heard-of" "$tmp/rev.txt"; then
        echo "self-test FAILED: bogus doc flag not reported" >&2
        cat "$tmp/rev.txt" >&2
        exit 1
    fi
    # A source file outside src/eval reaching past the eval umbrella must
    # be rejected by the include-surface check.
    mkdir "$tmp/deep_include"
    cat > "$tmp/deep_include/sneaky.cpp" <<'EOF'
#include "eval/metrics.hpp"
EOF
    if "$0" --include-dirs "$tmp/deep_include" > "$tmp/inc.txt" 2>&1; then
        echo "self-test FAILED: checker accepted a direct eval-module include" >&2
        cat "$tmp/inc.txt" >&2
        exit 1
    fi
    if ! grep -q "sneaky.cpp" "$tmp/inc.txt"; then
        echo "self-test FAILED: direct eval include not reported" >&2
        cat "$tmp/inc.txt" >&2
        exit 1
    fi
    echo "self-test OK: bogus citations are rejected"
    exit 0
fi

if [ -n "$ONLY_DOC" ]; then
    DOCS=("$ONLY_DOC")
else
    DOCS=(README.md docs/*.md "${EXTRA_DOCS[@]+"${EXTRA_DOCS[@]}"}")
fi

# Where FALLSENSE_* names must be defined or consumed.
NAME_SOURCES=(src tools bench scripts tests examples CMakeLists.txt)

errors=0
report() {
    echo "check_docs: $1" >&2
    errors=$((errors + 1))
}

for doc in "${DOCS[@]}"; do
    if [ ! -f "$doc" ]; then
        report "$doc: doc file not found"
        continue
    fi

    # Drop build-output paths, then collect tree-path citations, stripping
    # trailing sentence punctuation the token regex may have swallowed.
    paths="$(sed 's|build/[A-Za-z0-9_./-]*||g' "$doc" \
        | grep -oE '(src|docs|tests|bench|examples|scripts|tools)/[A-Za-z0-9_./-]+' \
        | sed 's/[.,:;]*$//' | sort -u)"
    for p in $paths; do
        if [ ! -e "$p" ] && [ ! -e "$p.cpp" ]; then
            report "$doc: cited path does not exist: $p"
        fi
    done

    # Reverse flag check: flags shown on fallsense / fallsense_loadgen
    # invocation lines must exist in the tools.  \b keeps fallsense_tests
    # and other fallsense_* binaries out of scope.
    doc_flags="$(grep -E '\bfallsense(_loadgen)?\b' "$doc" \
        | grep -ohE -- '--[a-z][a-z0-9_-]*' | sort -u || true)"
    for flag in $doc_flags; do
        if ! grep -qF -- "$flag" "$TOOLS_DIR"/*.cpp 2> /dev/null; then
            report "$doc: cited CLI flag not declared by any tool: $flag"
        fi
    done

    # Benchmark rows: every BM_* name a doc cites must be defined in
    # bench/ — BENCH_*.json tables in docs cannot reference a row the
    # harness no longer emits.
    bms="$(grep -oE 'BM_[A-Za-z0-9_]+' "$doc" | sort -u || true)"
    for bm in $bms; do
        if ! grep -rqE "\b$bm\b" "$BENCH_DIR"/*.cpp 2> /dev/null; then
            report "$doc: cited benchmark not defined in $BENCH_DIR/: $bm"
        fi
    done

    vars="$(grep -oE 'FALLSENSE_[A-Z_]+' "$doc" | sort -u || true)"
    for v in $vars; do
        # --exclude this script: its self-test heredoc deliberately contains
        # a bogus FALLSENSE_* name.
        if ! grep -rq --include='*.cpp' --include='*.hpp' --include='*.sh' \
                --include='*.txt' --include='*.cmake' --exclude=check_docs.sh \
                -- "$v" "${NAME_SOURCES[@]}"; then
            report "$doc: cited name not found in sources: $v"
        fi
    done
done

# CLI-flag coverage: a flag a tool knows (or claims in its synopsis)
# that no doc mentions is documentation drift in the other direction.
if [ -z "$ONLY_DOC" ] && ls "$TOOLS_DIR"/*.cpp > /dev/null 2>&1; then
    FLAG_DOCS=(README.md docs/*.md)
    flags="$(grep -ohE -- '--[a-z][a-z0-9_-]*' "$TOOLS_DIR"/*.cpp | sort -u)"
    for flag in $flags; do
        if ! grep -qF -- "$flag" "${FLAG_DOCS[@]}"; then
            report "$TOOLS_DIR: CLI flag not documented in README.md or docs/: $flag"
        fi
    done
fi

# Eval include surface: src/eval owns its per-module headers; everyone
# else goes through the eval/eval.hpp umbrella and make_evaluator.
if [ -z "$ONLY_DOC" ]; then
    offenders="$(grep -rnE --include='*.cpp' --include='*.hpp' \
        '#include "eval/(metrics|events|roc|threshold|kfold|stream|evaluator)\.hpp"' \
        "${INCLUDE_DIRS[@]}" 2> /dev/null | grep -v '^src/eval/' || true)"
    if [ -n "$offenders" ]; then
        while IFS= read -r line; do
            report "direct eval-module include outside src/eval (use eval/eval.hpp): $line"
        done <<< "$offenders"
    fi
fi

if [ "$errors" -gt 0 ]; then
    echo "check_docs: $errors problem(s) found" >&2
    exit 1
fi
echo "check_docs: all cited paths and names exist"
