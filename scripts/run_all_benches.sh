#!/usr/bin/env sh
# Run every table/figure bench and the micro-benchmarks, teeing the output.
# Usage: scripts/run_all_benches.sh [build-dir] [scale]
set -eu
BUILD_DIR="${1:-build}"
SCALE="${2:-quick}"
export FALLSENSE_SCALE="$SCALE"

for b in "$BUILD_DIR"/bench/*; do
    [ -x "$b" ] || continue
    echo "================================================================"
    echo ">>> $b (FALLSENSE_SCALE=$SCALE)"
    echo "================================================================"
    "$b"
    echo
done
