#!/usr/bin/env sh
# Run the google-benchmark binaries with JSON output: kernel_micro and
# parallel_scaling combine into BENCH_kernel.json; serve_scaling (the
# fused-vs-per_shard fleet sweep plus the checkpoint restore-latency row)
# and stream_eval (the streaming-evaluator and scenario-perturbation
# sweep) combine into BENCH_serve.json, both at the repo root and each
# carrying its own build manifest.
# Usage: scripts/run_bench.sh [build-dir]
#
# Optional environment:
#   FALLSENSE_BENCH_FILTER   passed as --benchmark_filter (default: all)
#   FALLSENSE_THREADS        baseline pool size (sweeps override it per-run)
#   FALLSENSE_SIMD           kernel dispatch mode (scalar|native).  The
#                            manifests record the RESOLVED backend this
#                            requests on the build host (bench/simd_probe:
#                            scalar / neon / avx2-fma / avx512), not the
#                            requested mode.  The BM_*Simd rows pin the
#                            backend per-row regardless of this setting.
#   FALLSENSE_SIMD_BACKEND   caps the native backend tier (see nn/simd.hpp)
set -eu

BUILD_DIR="${1:-build}"
REPO_ROOT="$(CDPATH= cd -- "$(dirname -- "$0")/.." && pwd)"
OUT="$REPO_ROOT/BENCH_kernel.json"
SERVE_OUT="$REPO_ROOT/BENCH_serve.json"
FILTER="${FALLSENSE_BENCH_FILTER:-}"

KERNEL_BIN="$BUILD_DIR/bench/kernel_micro"
SCALING_BIN="$BUILD_DIR/bench/parallel_scaling"
SERVE_BIN="$BUILD_DIR/bench/serve_scaling"
STREAM_EVAL_BIN="$BUILD_DIR/bench/stream_eval"
SIMD_PROBE_BIN="$BUILD_DIR/bench/simd_probe"

for bin in "$KERNEL_BIN" "$SCALING_BIN" "$SERVE_BIN" "$STREAM_EVAL_BIN" \
           "$SIMD_PROBE_BIN"; do
    if [ ! -x "$bin" ]; then
        echo "error: $bin not found or not executable; build first:" >&2
        echo "  cmake -B $BUILD_DIR -S . && cmake --build $BUILD_DIR -j" >&2
        exit 1
    fi
done

TMP_DIR="$(mktemp -d)"
trap 'rm -rf "$TMP_DIR"' EXIT INT TERM

run_bench() {
    # run_bench <binary> <json-out>
    if [ -n "$FILTER" ]; then
        "$1" --benchmark_format=json --benchmark_out="$2" \
             --benchmark_out_format=json --benchmark_filter="$FILTER" \
             >/dev/null
    else
        "$1" --benchmark_format=json --benchmark_out="$2" \
             --benchmark_out_format=json >/dev/null
    fi
    # A filter matching nothing in this binary leaves no output document;
    # substitute an empty object so the combined file stays valid JSON.
    if [ ! -s "$2" ]; then
        printf '{}\n' > "$2"
    fi
}

echo ">>> kernel_micro"
run_bench "$KERNEL_BIN" "$TMP_DIR/kernel_micro.json"
echo ">>> parallel_scaling"
run_bench "$SCALING_BIN" "$TMP_DIR/parallel_scaling.json"
echo ">>> serve_scaling"
run_bench "$SERVE_BIN" "$TMP_DIR/serve_scaling.json"
echo ">>> stream_eval"
run_bench "$STREAM_EVAL_BIN" "$TMP_DIR/stream_eval.json"

# Run manifest: thread count plus the build configuration the binaries
# were compiled with, read from the CMake cache so the numbers in the
# output files carry their own provenance.
cache_value() {
    # cache_value <CACHE_VARIABLE> <default>
    if [ -f "$BUILD_DIR/CMakeCache.txt" ]; then
        v="$(sed -n "s/^$1:[A-Z]*=//p" "$BUILD_DIR/CMakeCache.txt" | head -n 1)"
        printf '%s' "${v:-$2}"
    else
        printf '%s' "$2"
    fi
}

THREADS="${FALLSENSE_THREADS:-$(nproc 2>/dev/null || echo 1)}"
# The backend the dispatch layer resolves under the current environment —
# what actually ran, not what FALLSENSE_SIMD requested.
SIMD_BACKEND="$("$SIMD_PROBE_BIN")"
BUILD_TYPE="$(cache_value CMAKE_BUILD_TYPE unknown)"
NATIVE_ARCH="$(cache_value FALLSENSE_NATIVE_ARCH OFF)"
SANITIZE="$(cache_value FALLSENSE_SANITIZE OFF)"

# Combine into JSON objects keyed by binary name, prefixed with the
# manifest.  Plain shell concatenation: the benchmark inputs are complete
# JSON documents emitted by google-benchmark, so wrapping them needs no
# JSON parser.
print_manifest() {
    printf '"manifest": {\n'
    printf '  "threads": %s,\n' "$THREADS"
    printf '  "simd": "%s",\n' "$SIMD_BACKEND"
    printf '  "build_type": "%s",\n' "$BUILD_TYPE"
    printf '  "native_arch": "%s",\n' "$NATIVE_ARCH"
    printf '  "sanitize": "%s",\n' "$SANITIZE"
    printf '  "filter": "%s"\n' "$FILTER"
    printf '}'
}

# Dispatch speedups: kernel_micro registers each BM_*Simd benchmark once
# per probed backend (BM_*Simd/backend:<label>); divide every vector row's
# real_time into the scalar row of the same kernel, producing one ratio
# object per kernel.  awk keeps the script free of JSON tooling —
# google-benchmark emits one "name"/"real_time" pair per row.
simd_speedups() {
    awk '
        /"name":/ {
            name = $0
            sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        }
        /"real_time":/ && name ~ /Simd\/backend:[a-z0-9-]+$/ {
            t = $0
            sub(/.*"real_time": /, "", t); sub(/[,[:space:]].*/, "", t)
            base = name
            sub(/\/backend:[a-z0-9-]+$/, "", base)
            backend = name
            sub(/.*\/backend:/, "", backend)
            if (!(base in seen_base)) { seen_base[base] = 1; bases[nb++] = base }
            if (backend == "scalar") scalar[base] = t + 0
            else {
                if (!(backend in seen_backend)) {
                    seen_backend[backend] = 1
                    backends[nv++] = backend
                }
                vec[base "|" backend] = t + 0
            }
        }
        END {
            sep = ""
            for (i = 0; i < nb; i++) {
                b = bases[i]
                if (!(scalar[b] > 0)) continue
                inner = ""
                isep = ""
                for (j = 0; j < nv; j++) {
                    v = backends[j]
                    if (vec[b "|" v] > 0) {
                        inner = inner sprintf("%s\"%s\": %.3f", isep, v, \
                                              scalar[b] / vec[b "|" v])
                        isep = ", "
                    }
                }
                if (inner != "") {
                    printf "%s  \"%s\": {%s}", sep, b, inner
                    sep = ",\n"
                }
            }
            printf "\n"
        }
    ' "$TMP_DIR/kernel_micro.json"
}

# Fused-epilogue speedup: the BM_CnnFloatInferSimd (fused bias+activation
# epilogues) vs BM_CnnFloatInferNoFuseSimd (fusion disabled) pair, same
# backend — unfused real_time / fused real_time per backend.
fused_speedups() {
    awk '
        /"name":/ {
            name = $0
            sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        }
        /"real_time":/ && name ~ /^BM_CnnFloatInfer(NoFuse)?Simd\/backend:[a-z0-9-]+$/ {
            t = $0
            sub(/.*"real_time": /, "", t); sub(/[,[:space:]].*/, "", t)
            backend = name
            sub(/.*\/backend:/, "", backend)
            if (name ~ /NoFuse/) nofuse[backend] = t + 0
            else {
                fused[backend] = t + 0
                if (!(backend in seen)) { seen[backend] = 1; order[n++] = backend }
            }
        }
        END {
            sep = ""
            for (i = 0; i < n; i++) {
                b = order[i]
                if (fused[b] > 0 && nofuse[b] > 0) {
                    printf "%s  \"%s\": %.3f", sep, b, nofuse[b] / fused[b]
                    sep = ",\n"
                }
            }
            printf "\n"
        }
    ' "$TMP_DIR/kernel_micro.json"
}

# Checkpoint restore latency: the BM_FleetRestoreSessions rows from
# serve_scaling — fleet_router::restore of a warmed 4096-session snapshot.
restore_latency() {
    awk '
        /"name":/ {
            name = $0
            sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        }
        /"real_time":/ && name ~ /^BM_FleetRestoreSessions\// {
            t = $0
            sub(/.*"real_time": /, "", t); sub(/[,[:space:]].*/, "", t)
            if (!(name in seen)) { seen[name] = 1; order[n++] = name }
            rt[name] = t + 0
        }
        /"time_unit":/ && name ~ /^BM_FleetRestoreSessions\// {
            u = $0
            sub(/.*"time_unit": "/, "", u); sub(/".*/, "", u)
            unit[name] = u
        }
        END {
            sep = ""
            for (i = 0; i < n; i++) {
                b = order[i]
                printf "%s  \"%s\": {\"real_time\": %.3f, \"time_unit\": \"%s\"}", \
                       sep, b, rt[b], unit[b]
                sep = ",\n"
            }
            printf "\n"
        }
    ' "$TMP_DIR/serve_scaling.json"
}

{
    printf '{\n'
    print_manifest
    printf ',\n"kernel_micro":\n'
    cat "$TMP_DIR/kernel_micro.json"
    printf ',\n"parallel_scaling":\n'
    cat "$TMP_DIR/parallel_scaling.json"
    printf ',\n"simd_speedup": {\n'
    simd_speedups
    printf '}'
    printf ',\n"fused_speedup": {\n'
    fused_speedups
    printf '}\n'
    printf '}\n'
} > "$OUT"

echo ">>> simd speedup (scalar real_time / backend real_time)"
simd_speedups
echo ">>> fused epilogue speedup (unfused real_time / fused real_time)"
fused_speedups

{
    printf '{\n'
    print_manifest
    printf ',\n"serve_scaling":\n'
    cat "$TMP_DIR/serve_scaling.json"
    printf ',\n"stream_eval":\n'
    cat "$TMP_DIR/stream_eval.json"
    printf ',\n"restore_latency": {\n'
    restore_latency
    printf '}\n'
    printf '}\n'
} > "$SERVE_OUT"

echo "wrote $OUT"
echo "wrote $SERVE_OUT"
