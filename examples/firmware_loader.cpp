// Firmware loader demo: the device-side half of deployment.
//
// Host side: train briefly, quantize, serialize the flash blob.
// Device side: parse the blob back with the firmware loader, validate it,
// and serve inferences from the loaded graph — verifying bit-identical
// behavior against the host model, plus the loader's rejection of a
// corrupted image (what a failed OTA update must trigger).
#include <cstdio>

#include "core/experiment.hpp"
#include "mcu/deployment.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;
    const std::uint64_t seed = util::env_seed();

    // --- host side -------------------------------------------------------
    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 4;
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(200.0);
    const std::size_t window = wc.segmentation.window_samples;
    nn::labeled_data data =
        core::to_labeled_data(core::extract_windows(merged.trials, wc), window);
    auto cnn = core::build_fallsense_cnn(window, seed);
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    nn::fit(*cnn, data, {}, tc);
    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window);
    const quant::quantized_cnn host_model(spec, data.features);
    const auto blob = mcu::serialize_deployment_blob(host_model);
    std::printf("host: serialized %.2f KiB deployment blob\n",
                static_cast<double>(blob.size()) / 1024.0);

    // --- device side -----------------------------------------------------
    const quant::quantized_cnn device_model = mcu::deserialize_deployment_blob(blob);
    std::printf("device: loaded graph — %zu-sample window, %zu channels, "
                "%zu branches, %zu dense layers\n",
                device_model.time_steps(), device_model.input_channels(),
                device_model.branches().size(), device_model.trunk().size());

    std::size_t identical = 0;
    const std::size_t seg_size = window * core::k_feature_channels;
    const std::size_t n = std::min<std::size_t>(data.size(), 200);
    for (std::size_t i = 0; i < n; ++i) {
        const std::span<const float> seg(data.features.data() + i * seg_size, seg_size);
        identical += (host_model.predict_logit(seg) == device_model.predict_logit(seg)) ? 1 : 0;
    }
    std::printf("device vs host logits: %zu/%zu bit-identical\n", identical, n);

    // --- corrupted image -------------------------------------------------
    auto corrupted = blob;
    corrupted[10] ^= 0xff;  // flip a header byte
    try {
        (void)mcu::deserialize_deployment_blob(corrupted);
        std::printf("ERROR: corrupted image was accepted!\n");
        return 1;
    } catch (const std::exception& e) {
        std::printf("corrupted image correctly rejected: %s\n", e.what());
    }
    return 0;
}
