// Observability demo: run a small cross-validation with the metrics
// registry enabled, print what the registry saw (counters, gauges, stage
// timers), then emit the same state as a run-manifest JSON document —
// first the deterministic form (byte-identical for any FALLSENSE_THREADS),
// then with the opt-in timing section.  See docs/observability.md.
#include <cstdio>
#include <iostream>

#include "core/experiment.hpp"
#include "obs/manifest.hpp"
#include "obs/metrics.hpp"
#include "util/env.hpp"

using namespace fallsense;

int main() {
    obs::set_enabled(true);

    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 4;
    const std::uint64_t seed = util::env_seed();

    std::printf("tiny cross-validation with metrics on (seed %llu)...\n\n",
                static_cast<unsigned long long>(seed));
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config wc = core::standard_windowing(200.0);
    core::run_cross_validation(core::model_kind::cnn, merged, wc, scale, seed);

    const obs::metrics_snapshot snap = obs::snapshot();

    std::printf("--- counters ---\n");
    for (const obs::counter_snapshot& c : snap.counters) {
        std::printf("%-36s %12llu\n", c.name.c_str(),
                    static_cast<unsigned long long>(c.value));
    }
    std::printf("\n--- gauges ---\n");
    for (const obs::gauge_snapshot& g : snap.gauges) {
        std::printf("%-36s %12.6f\n", g.name.c_str(), g.value);
    }
    std::printf("\n--- stages (merged over threads) ---\n");
    std::printf("%-36s %8s %12s %12s\n", "stage", "count", "wall ms", "cpu ms");
    for (const obs::stage_snapshot& s : snap.stages) {
        std::printf("%-36s %8llu %12.2f %12.2f\n", s.name.c_str(),
                    static_cast<unsigned long long>(s.count), s.wall_ms, s.cpu_ms);
    }

    obs::run_manifest run;
    run.command = "observability_demo";
    run.seed = seed;
    run.scale = "tiny";
    run.config.emplace_back("window-ms", "200");

    std::printf("\n--- deterministic run manifest ---\n");
    obs::write_manifest(std::cout, run, snap);

    std::printf("\n--- with timings (varies run to run) ---\n");
    obs::manifest_options with_timings;
    with_timings.include_timings = true;
    obs::write_manifest(std::cout, run, snap, with_timings);
    return 0;
}
