// Streaming replay: the integration path for users with their own
// recordings.  Exports a trial to CSV (the interchange format), reads it
// back, and replays it tick-by-tick through both detectors — the
// threshold baseline and an (untrained-weights-free) scorer — printing
// every trigger with its timing relative to the annotated fall.
#include <cmath>
#include <cstdio>
#include <filesystem>

#include "core/threshold_detector.hpp"
#include "data/synthesizer.hpp"
#include "data/trial_io.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;
    util::rng gen(util::env_seed());

    // Record a backward fall from height (task 40) to CSV.
    data::subject_profile subject;
    subject.id = 12;
    data::motion_tuning tuning;
    const data::trial original =
        data::synthesize_task(40, subject, tuning, data::synthesis_config{}, gen);
    const auto path = std::filesystem::temp_directory_path() / "fallsense_replay.csv";
    data::write_trial_csv(original, path);
    std::printf("wrote %zu samples to %s\n", original.sample_count(), path.c_str());

    // Read it back, as a user would with their own file.
    data::trial replay = data::read_trial_csv(path, 100.0);
    replay.task_id = original.task_id;
    replay.fall = original.fall;  // annotation sidecar
    std::printf("replaying task %d (%zu samples, fall onset %.2f s, impact %.2f s)\n\n",
                replay.task_id, replay.sample_count(),
                static_cast<double>(replay.fall->onset_index) / 100.0,
                static_cast<double>(replay.fall->impact_index) / 100.0);

    core::threshold_detector detector;
    std::printf("%-10s %-12s %-14s %s\n", "t (s)", "|a| (g)", "v_est (m/s)", "event");
    for (std::size_t i = 0; i < replay.sample_count(); ++i) {
        const auto& s = replay.samples[i];
        const auto fired = detector.push(s);
        if (i % 25 == 0 || fired) {
            const double mag = std::sqrt(static_cast<double>(s.accel[0]) * s.accel[0] +
                                         s.accel[1] * s.accel[1] + s.accel[2] * s.accel[2]);
            std::printf("%-10.2f %-12.2f %-14.2f %s\n", static_cast<double>(i) / 100.0, mag,
                        detector.velocity_estimate(),
                        fired ? ">>> TRIGGER (airbag fires)" : "");
            if (fired) {
                const double lead =
                    (static_cast<double>(replay.fall->impact_index) -
                     static_cast<double>(fired->sample_index)) * 10.0;
                std::printf("%-10s trigger-to-impact lead: %.0f ms (airbag needs 150 ms) "
                            "-> %s\n",
                            "", lead, lead >= 150.0 ? "protected" : "too late");
            }
        }
    }
    std::filesystem::remove(path);
    return 0;
}
