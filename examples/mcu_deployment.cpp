// MCU deployment example: quantize a trained CNN, plan its flash/RAM layout
// on the STM32F722, estimate inference + fusion latency on the Cortex-M7
// cost model, and emit the firmware C-array blob — Section IV-C as a
// runnable program.
#include <cstdio>
#include <filesystem>
#include <fstream>

#include "core/experiment.hpp"
#include "mcu/cost_model.hpp"
#include "mcu/deployment.hpp"
#include "mcu/memory_planner.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;
    const std::uint64_t seed = util::env_seed();

    // Build a 400 ms model (the paper's best configuration) and calibrate
    // on synthetic windows.  For footprint/latency the weights' training
    // state is irrelevant, so a short training run suffices.
    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 4;
    const data::dataset merged = core::make_merged_dataset(scale, seed);
    const core::windowing_config windows = core::standard_windowing(400.0);
    const std::size_t window_samples = windows.segmentation.window_samples;
    nn::labeled_data data =
        core::to_labeled_data(core::extract_windows(merged.trials, windows), window_samples);

    auto cnn = core::build_fallsense_cnn(window_samples, seed);
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    nn::fit(*cnn, data, {}, tc);

    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, data.features);

    const mcu::device_spec device = mcu::stm32f722();
    std::printf("target: %s @ %.0f MHz\n", device.name, device.clock_hz / 1e6);

    const mcu::deployment_plan plan = mcu::plan_deployment(qmodel, device);
    std::printf("\n%s\n", plan.summary().c_str());

    const mcu::latency_estimate inference = mcu::estimate_inference(qmodel, device);
    const mcu::latency_estimate fusion = mcu::estimate_fusion(window_samples, device);
    std::printf("\nlatency estimates:\n");
    std::printf("  inference: %.2f ms (%.0f cycles)\n", inference.milliseconds,
                inference.cycles);
    std::printf("  fusion:    %.2f ms (%.0f cycles)\n", fusion.milliseconds, fusion.cycles);

    util::rng gen(seed);
    const mcu::latency_stats jitter = mcu::simulate_latency(qmodel, device, 10'000, gen);
    std::printf("  with jitter over %zu runs: %.1f ms +- %.1f ms (min %.1f, max %.1f)\n",
                jitter.samples, jitter.mean_ms, jitter.stddev_ms, jitter.min_ms,
                jitter.max_ms);

    const auto blob = mcu::serialize_deployment_blob(qmodel);
    const auto path = std::filesystem::temp_directory_path() / "fallsense_model.c";
    std::ofstream out(path);
    out << mcu::render_c_array(blob, "fallsense_model_blob");
    std::printf("\nfirmware blob: %zu bytes -> %s\n", blob.size(), path.c_str());
    return 0;
}
