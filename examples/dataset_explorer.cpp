// Dataset explorer: synthesizes the merged dataset and prints per-task
// statistics (Table II coverage): duration, fall annotation timing, peak
// acceleration — useful for sanity-checking the motion profiles against
// the biomechanics they imitate.
#include <cmath>
#include <cstdio>
#include <map>

#include "core/experiment.hpp"
#include "data/taxonomy.hpp"
#include "util/env.hpp"
#include "util/stats.hpp"

int main() {
    using namespace fallsense;

    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    const data::dataset merged = core::make_merged_dataset(scale, util::env_seed());

    struct task_stats {
        util::running_stats duration_s;
        util::running_stats falling_ms;
        util::running_stats peak_g;
        std::size_t trials = 0;
    };
    std::map<int, task_stats> by_task;

    for (const data::trial& t : merged.trials) {
        task_stats& s = by_task[t.task_id];
        ++s.trials;
        s.duration_s.add(t.duration_s());
        double peak = 0.0;
        for (const data::raw_sample& sample : t.samples) {
            const double mag = std::sqrt(static_cast<double>(sample.accel[0]) * sample.accel[0] +
                                         sample.accel[1] * sample.accel[1] +
                                         sample.accel[2] * sample.accel[2]);
            peak = std::max(peak, mag);
        }
        s.peak_g.add(peak);
        if (t.fall) {
            s.falling_ms.add(static_cast<double>(t.fall->falling_samples()) /
                             t.sample_rate_hz * 1000.0);
        }
    }

    std::printf("%-4s %-6s %-7s %-9s %-9s %-10s  %s\n", "id", "kind", "trials",
                "dur (s)", "peak (g)", "fall (ms)", "description");
    for (const data::task_info& info : data::all_tasks()) {
        const auto it = by_task.find(info.id);
        if (it == by_task.end()) continue;
        const task_stats& s = it->second;
        std::printf("%-4d %-6s %-7zu %-9.2f %-9.2f ", info.id,
                    info.is_fall() ? "FALL" : "adl", s.trials, s.duration_s.mean(),
                    s.peak_g.mean());
        if (s.falling_ms.count() > 0) {
            std::printf("%-10.0f ", s.falling_ms.mean());
        } else {
            std::printf("%-10s ", "-");
        }
        std::printf(" %.60s\n", std::string(info.description).c_str());
    }

    std::printf("\ntotals: %zu trials, %zu falls, %zu subjects\n", merged.trial_count(),
                merged.fall_trial_count(), merged.subject_ids().size());
    return 0;
}
