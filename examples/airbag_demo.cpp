// Airbag demo: trains the CNN, then replays held-out fall trials through
// the streaming detector + airbag controller, printing for each fall
// whether the airbag reached full extension before ground contact and with
// what margin — the paper's central real-time claim made concrete.
#include <algorithm>
#include <cstdio>

#include "core/airbag.hpp"
#include "core/experiment.hpp"
#include "data/taxonomy.hpp"
#include "quant/quantized_cnn.hpp"
#include "util/env.hpp"

int main() {
    using namespace fallsense;
    const std::uint64_t seed = util::env_seed();

    core::experiment_scale scale = core::scale_preset(util::run_scale::tiny);
    scale.max_epochs = 10;
    const data::dataset merged = core::make_merged_dataset(scale, seed);

    eval::kfold_config kf;
    kf.folds = scale.folds;
    kf.validation_subjects = scale.validation_subjects;
    const auto splits = eval::make_subject_folds(merged.subject_ids(), kf);
    const eval::fold_split& split = splits[0];

    // Train on the train subjects.
    const core::windowing_config windows = core::standard_windowing(200.0);
    const std::size_t window_samples = windows.segmentation.window_samples;
    std::vector<data::trial> train_trials;
    for (const data::trial& t : merged.trials) {
        if (std::find(split.train_subjects.begin(), split.train_subjects.end(),
                      t.subject_id) != split.train_subjects.end()) {
            train_trials.push_back(t);
        }
    }
    util::rng aug_gen(seed);
    augment::augment_fall_trials(train_trials, scale.augmentation_copies,
                                 augment::trial_augment_config{}, aug_gen);
    nn::labeled_data train =
        core::to_labeled_data(core::extract_windows(train_trials, windows), window_samples);
    auto cnn = core::build_fallsense_cnn(window_samples, seed);
    nn::train_config tc;
    tc.max_epochs = scale.max_epochs;
    tc.early_stop_patience = scale.early_stop_patience;
    std::printf("training CNN on %zu windows...\n", train.size());
    nn::fit(*cnn, train, {}, tc);

    // Quantize (deployment parity) and wire up the streaming detector.
    const quant::cnn_spec spec = quant::extract_cnn_spec(*cnn, window_samples);
    const quant::quantized_cnn qmodel(spec, train.features);
    core::detector_config dc;
    dc.window_samples = window_samples;
    dc.overlap_fraction = 0.75;
    dc.threshold = 0.5;
    const core::segment_scorer scorer = [&](std::span<const float> w) {
        return qmodel.predict_proba(w);
    };

    std::printf("\nreplaying held-out fall trials (airbag needs 150 ms):\n");
    std::printf("%-4s %-8s %-9s %-11s %-9s  %s\n", "task", "subject", "detected",
                "lead (ms)", "margin", "outcome");
    std::size_t protected_count = 0, detected_count = 0, falls = 0;
    for (const data::trial& t : merged.trials) {
        if (!t.is_fall_trial()) continue;
        if (std::find(split.test_subjects.begin(), split.test_subjects.end(),
                      t.subject_id) == split.test_subjects.end()) {
            continue;
        }
        ++falls;
        const core::protection_outcome o = core::evaluate_protection(t, dc, scorer);
        detected_count += o.detected ? 1 : 0;
        protected_count += o.protected_in_time ? 1 : 0;
        std::printf("%-4d %-8d %-9s ", t.task_id, t.subject_id, o.detected ? "yes" : "NO");
        if (o.detected) {
            std::printf("%-11.0f %-9.0f  %s\n", o.trigger_to_impact_ms, o.margin_ms,
                        o.protected_in_time ? "protected" : "TOO LATE");
        } else {
            std::printf("%-11s %-9s  %s\n", "-", "-", "missed");
        }
    }
    std::printf("\n%zu/%zu falls detected, %zu/%zu protected in time\n", detected_count,
                falls, protected_count, falls);
    return 0;
}
